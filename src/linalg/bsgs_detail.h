#ifndef ORION_SRC_LINALG_BSGS_DETAIL_H_
#define ORION_SRC_LINALG_BSGS_DETAIL_H_

/**
 * @file
 * Shared internals of the parallel BSGS evaluation paths, used by both
 * HeDiagonalMatrix (bsgs.cpp) and HeBlockedMatrix (blocked.cpp) so the
 * fan-out logic lives in exactly one place. Definitions in bsgs.cpp.
 */

#include <map>
#include <optional>

#include "src/ckks/encoder.h"
#include "src/ckks/evaluator.h"
#include "src/linalg/bsgs.h"

namespace orion::lin::detail {

/** One pending "encode diag rotated down by g into *out" work item. */
struct EncodeSlot {
    const std::vector<double>* diag;
    u64 g;
    ckks::Plaintext* out;
};

/**
 * Encodes every slot in parallel: out[t] = diag[(t - g) mod dim]
 * (Equation 1's pre-rotated giant-group diagonals).
 */
void encode_rotated_diagonals(const ckks::Encoder& encoder, u64 dim,
                              int level, double scale,
                              const std::vector<EncodeSlot>& slots);

/**
 * Hoists ct once and serves every baby rotation from it, fanning the
 * rotations out across the thread pool. Returns the ciphertexts aligned
 * with `steps` and fills `lookup` (step -> pointer into the result).
 * The returned vector owns the ciphertexts; keep it alive while using
 * `lookup`.
 */
std::vector<ckks::Ciphertext> hoisted_baby_rotations(
    const ckks::Evaluator& eval, const ckks::Ciphertext& ct,
    const std::vector<u64>& steps,
    std::map<u64, const ckks::Ciphertext*>* lookup);

/**
 * One giant group's inner sum of PMults, in fixed term order:
 * sum_t babies[terms[t].baby] * encoded[t].
 */
std::optional<ckks::Ciphertext> group_inner_sum(
    const ckks::Evaluator& eval, const std::vector<BsgsPlan::Term>& terms,
    const std::vector<ckks::Plaintext>& encoded,
    const std::map<u64, const ckks::Ciphertext*>& babies);

/**
 * One giant group's full work item: the inner sum of PMults followed by a
 * rotation by `giant` accumulated into the output accumulator `accs[acc]`.
 */
struct GroupTask {
    std::size_t acc;  ///< index into the output accumulator array
    u64 giant;        ///< giant-step rotation amount
    const std::vector<BsgsPlan::Term>* terms;
    const std::vector<ckks::Plaintext>* encoded;
};

/**
 * Evaluates every giant-group task — inner sum, giant rotation, rotation
 * accumulation — across the thread pool. Each worker chunk accumulates
 * into private per-acc partial accumulators that are merged into `accs`
 * serially in fixed (accumulator, chunk) order; the merge is exact modular
 * addition, so the result is bit-identical to serial accumulation at any
 * thread count. This lifts the formerly-serial giant-step accumulation
 * (the last serial fraction of the BSGS matvec) onto the pool.
 */
void accumulate_group_sums(
    const ckks::Evaluator& eval, const std::vector<GroupTask>& tasks,
    const std::map<u64, const ckks::Ciphertext*>& babies,
    std::vector<ckks::Evaluator::RotationAccumulator>& accs);

}  // namespace orion::lin::detail

#endif  // ORION_SRC_LINALG_BSGS_DETAIL_H_
