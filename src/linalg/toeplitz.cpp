#include "src/linalg/toeplitz.h"

#include <algorithm>

#include "src/core/thread_pool.h"

namespace orion::lin {

TensorLayout
conv_output_layout(const Conv2dSpec& spec, const TensorLayout& in)
{
    spec.validate();
    ORION_CHECK(in.channels == spec.in_channels,
                "layout/spec channel mismatch: " << in.channels << " vs "
                                                 << spec.in_channels);
    const TensorLayout out(spec.out_channels, spec.out_h(in.height),
                           spec.out_w(in.width), in.gap * spec.stride);
    if (in.batch > 1) return out.with_batch(in.batch, in.batch_stride);
    return out;
}

BlockedMatrix
build_conv_matrix(const Conv2dSpec& spec, const std::vector<double>& weights,
                  const TensorLayout& in, const TensorLayout& out,
                  u64 block_dim, const std::vector<double>& channel_scale)
{
    spec.validate();
    ORION_CHECK(weights.size() == spec.weight_count(),
                "weight count mismatch: " << weights.size() << " vs "
                                          << spec.weight_count());
    ORION_CHECK(channel_scale.empty() ||
                    channel_scale.size() ==
                        static_cast<std::size_t>(spec.out_channels),
                "channel_scale must have one entry per output channel");

    ORION_CHECK(in.batch == out.batch && in.batch_stride == out.batch_stride,
                "conv input/output batch mismatch");

    const int ci_per_group = spec.in_channels / spec.groups;
    const int co_per_group = spec.out_channels / spec.groups;
    const u64 rows = out.total_slots();
    const u64 cols = in.total_slots();
    BlockedMatrix m(std::max(rows, u64(1)), std::max(cols, u64(1)),
                    block_dim);

    // One matrix row per output element (Figure 3a): walk every filter
    // placement and scatter the taps into (row, col) positions under the
    // multiplexed layouts. Batch lanes shift row and column by the same
    // b * batch_stride, so they land on the same generalized diagonals
    // (block-diagonal weights: one BSGS product serves all lanes).
    const int nb = std::max(1, in.batch);
    for (int b = 0; b < nb; ++b) {
        for (int o = 0; o < spec.out_channels; ++o) {
            const int group = o / co_per_group;
            const double oscale =
                channel_scale.empty()
                    ? 1.0
                    : channel_scale[static_cast<std::size_t>(o)];
            for (int oy = 0; oy < out.height; ++oy) {
                for (int ox = 0; ox < out.width; ++ox) {
                    const u64 row = out.slot_of(b, o, oy, ox);
                    for (int ci = 0; ci < ci_per_group; ++ci) {
                        const int c = group * ci_per_group + ci;
                        for (int ky = 0; ky < spec.kernel_h; ++ky) {
                            const int iy = oy * spec.stride - spec.pad +
                                           ky * spec.dilation;
                            if (iy < 0 || iy >= in.height) continue;
                            for (int kx = 0; kx < spec.kernel_w; ++kx) {
                                const int ix = ox * spec.stride - spec.pad +
                                               kx * spec.dilation;
                                if (ix < 0 || ix >= in.width) continue;
                                const u64 col = in.slot_of(b, c, iy, ix);
                                const u64 widx =
                                    ((static_cast<u64>(o) * ci_per_group +
                                      ci) *
                                         spec.kernel_h +
                                     ky) *
                                        spec.kernel_w +
                                    kx;
                                m.add(row, col, oscale * weights[widx]);
                            }
                        }
                    }
                }
            }
        }
    }
    return m;
}

BlockedMatrix
build_linear_matrix(int out_features, int in_features,
                    const std::vector<double>& weights,
                    const TensorLayout& in, u64 block_dim,
                    const std::vector<double>& out_scale)
{
    ORION_CHECK(weights.size() == static_cast<std::size_t>(out_features) *
                                      static_cast<std::size_t>(in_features),
                "weight count mismatch");
    ORION_CHECK(static_cast<u64>(in_features) == in.logical_size(),
                "in_features must match the layout's logical size: "
                    << in_features << " vs " << in.logical_size());
    ORION_CHECK(out_scale.empty() ||
                    out_scale.size() ==
                        static_cast<std::size_t>(out_features),
                "out_scale must have one entry per output feature");

    // Column of logical feature f under the input layout.
    std::vector<u64> col_of(static_cast<std::size_t>(in_features));
    u64 f = 0;
    for (int c = 0; c < in.channels; ++c) {
        for (int y = 0; y < in.height; ++y) {
            for (int x = 0; x < in.width; ++x) {
                col_of[f++] = in.slot_of(c, y, x);
            }
        }
    }

    // Output lanes reuse the input's batch stride; lane b's block of rows
    // starts at b * batch_stride, mirroring the shifted input columns.
    const int nb = std::max(1, in.batch);
    const u64 rows = nb > 1 ? static_cast<u64>(nb - 1) * in.batch_stride +
                                  static_cast<u64>(out_features)
                            : static_cast<u64>(out_features);
    BlockedMatrix m(rows, in.total_slots(), block_dim);
    for (int b = 0; b < nb; ++b) {
        const u64 lane = static_cast<u64>(b) * in.batch_stride;
        for (int r = 0; r < out_features; ++r) {
            const double s = out_scale.empty()
                                 ? 1.0
                                 : out_scale[static_cast<std::size_t>(r)];
            for (int cf = 0; cf < in_features; ++cf) {
                const double w = weights[static_cast<std::size_t>(r) *
                                             static_cast<std::size_t>(
                                                 in_features) +
                                         static_cast<std::size_t>(cf)];
                if (w != 0.0) {
                    m.add(lane + static_cast<u64>(r),
                          lane + col_of[static_cast<std::size_t>(cf)],
                          s * w);
                }
            }
        }
    }
    return m;
}

TensorLayout
avgpool_output_layout(int kernel, int stride, const TensorLayout& in, int pad)
{
    Conv2dSpec spec;
    spec.in_channels = spec.out_channels = in.channels;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = in.channels;
    return conv_output_layout(spec, in);
}

BlockedMatrix
build_avgpool_matrix(int kernel, int stride, const TensorLayout& in,
                     const TensorLayout& out, u64 block_dim, int pad)
{
    Conv2dSpec spec;
    spec.in_channels = spec.out_channels = in.channels;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = in.channels;
    const std::vector<double> weights(
        spec.weight_count(), 1.0 / (static_cast<double>(kernel) * kernel));
    return build_conv_matrix(spec, weights, in, out, block_dim);
}

std::vector<double>
conv2d_reference(const Conv2dSpec& spec, const std::vector<double>& weights,
                 const std::vector<double>& input, int in_h, int in_w)
{
    spec.validate();
    ORION_CHECK(input.size() == static_cast<std::size_t>(spec.in_channels) *
                                    in_h * in_w,
                "input size mismatch");
    const int oh = spec.out_h(in_h);
    const int ow = spec.out_w(in_w);
    const int ci_per_group = spec.in_channels / spec.groups;
    const int co_per_group = spec.out_channels / spec.groups;
    std::vector<double> out(
        static_cast<std::size_t>(spec.out_channels) * oh * ow, 0.0);

    // Blocked + parallel: the output is tiled into (channel, row-band)
    // blocks that fan out across the thread pool — rows of one band reuse
    // the same input rows while they are cache-hot. Each output element's
    // accumulation runs in the original serial tap order, so results are
    // bitwise identical to the untiled single-threaded loop. This is the
    // reference path behind fig8_yolo's full mode (three 448x448x3
    // forwards), which was untenably slow untiled on small hosts.
    const int row_block = 16;
    const int bands = (oh + row_block - 1) / row_block;
    const i64 num_tiles = static_cast<i64>(spec.out_channels) * bands;
    core::parallel_for(0, num_tiles, [&](i64 tile) {
        const int o = static_cast<int>(tile / bands);
        const int band = static_cast<int>(tile % bands);
        const int oy_end = std::min((band + 1) * row_block, oh);
        const int group = o / co_per_group;
        const double* w_base =
            weights.data() +
            static_cast<std::size_t>(o) * ci_per_group * spec.kernel_h *
                spec.kernel_w;
        for (int oy = band * row_block; oy < oy_end; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                double acc = 0.0;
                for (int ci = 0; ci < ci_per_group; ++ci) {
                    const int c = group * ci_per_group + ci;
                    const double* w_ci =
                        w_base + static_cast<std::size_t>(ci) *
                                     spec.kernel_h * spec.kernel_w;
                    const double* in_c =
                        input.data() +
                        static_cast<std::size_t>(c) * in_h * in_w;
                    for (int ky = 0; ky < spec.kernel_h; ++ky) {
                        const int iy =
                            oy * spec.stride - spec.pad + ky * spec.dilation;
                        if (iy < 0 || iy >= in_h) continue;
                        const double* w_ky = w_ci + ky * spec.kernel_w;
                        const double* in_row = in_c + static_cast<std::size_t>(
                                                          iy) * in_w;
                        for (int kx = 0; kx < spec.kernel_w; ++kx) {
                            const int ix = ox * spec.stride - spec.pad +
                                           kx * spec.dilation;
                            if (ix < 0 || ix >= in_w) continue;
                            acc += w_ky[kx] * in_row[ix];
                        }
                    }
                }
                out[(static_cast<std::size_t>(o) * oh + oy) * ow + ox] = acc;
            }
        }
    });
    return out;
}

}  // namespace orion::lin

namespace {

using orion::u64;

/** Per-(block pair) bitmask collector of nonzero diagonal indices. */
class StructureSink {
  public:
    StructureSink(u64 rows, u64 cols, u64 block_dim)
    {
        s_.rows = rows;
        s_.cols = cols;
        s_.block_dim = block_dim;
    }

    void
    add(u64 r, u64 c)
    {
        const std::pair<u64, u64> key{r / s_.block_dim, c / s_.block_dim};
        std::vector<bool>& bits = bitsets_[key];
        if (bits.empty()) bits.assign(s_.block_dim, false);
        const u64 rr = r % s_.block_dim;
        const u64 cc = c % s_.block_dim;
        bits[(cc + s_.block_dim - rr) % s_.block_dim] = true;
    }

    orion::lin::BlockedStructure
    finish()
    {
        for (auto& [key, bits] : bitsets_) {
            std::vector<u64>& out = s_.blocks[key];
            for (u64 k = 0; k < s_.block_dim; ++k) {
                if (bits[k]) out.push_back(k);
            }
        }
        return std::move(s_);
    }

  private:
    orion::lin::BlockedStructure s_;
    std::map<std::pair<u64, u64>, std::vector<bool>> bitsets_;
};

}  // namespace

namespace orion::lin {

u64
BlockedStructure::num_diagonals() const
{
    u64 total = 0;
    for (const auto& [key, diags] : blocks) {
        (void)key;
        total += diags.size();
    }
    return total;
}

BlockedStructure
build_conv_structure(const Conv2dSpec& spec, const TensorLayout& in,
                     const TensorLayout& out, u64 block_dim)
{
    spec.validate();
    ORION_CHECK(in.batch == out.batch && in.batch_stride == out.batch_stride,
                "conv input/output batch mismatch");
    const int ci_per_group = spec.in_channels / spec.groups;
    const int co_per_group = spec.out_channels / spec.groups;
    StructureSink sink(out.total_slots(), in.total_slots(), block_dim);
    const int nb = std::max(1, in.batch);
    for (int b = 0; b < nb; ++b) {
        for (int o = 0; o < spec.out_channels; ++o) {
            const int group = o / co_per_group;
            for (int oy = 0; oy < out.height; ++oy) {
                for (int ox = 0; ox < out.width; ++ox) {
                    const u64 row = out.slot_of(b, o, oy, ox);
                    for (int ci = 0; ci < ci_per_group; ++ci) {
                        const int c = group * ci_per_group + ci;
                        for (int ky = 0; ky < spec.kernel_h; ++ky) {
                            const int iy = oy * spec.stride - spec.pad +
                                           ky * spec.dilation;
                            if (iy < 0 || iy >= in.height) continue;
                            for (int kx = 0; kx < spec.kernel_w; ++kx) {
                                const int ix = ox * spec.stride - spec.pad +
                                               kx * spec.dilation;
                                if (ix < 0 || ix >= in.width) continue;
                                sink.add(row, in.slot_of(b, c, iy, ix));
                            }
                        }
                    }
                }
            }
        }
    }
    return sink.finish();
}

BlockedStructure
build_linear_structure(int out_features, const TensorLayout& in,
                       u64 block_dim)
{
    const int nb = std::max(1, in.batch);
    const u64 rows = nb > 1 ? static_cast<u64>(nb - 1) * in.batch_stride +
                                  static_cast<u64>(out_features)
                            : static_cast<u64>(out_features);
    StructureSink sink(rows, in.total_slots(), block_dim);
    for (int b = 0; b < nb; ++b) {
        const u64 lane = static_cast<u64>(b) * in.batch_stride;
        for (int r = 0; r < out_features; ++r) {
            for (int c = 0; c < in.channels; ++c) {
                for (int y = 0; y < in.height; ++y) {
                    for (int x = 0; x < in.width; ++x) {
                        sink.add(lane + static_cast<u64>(r),
                                 lane + in.slot_of(c, y, x));
                    }
                }
            }
        }
    }
    return sink.finish();
}

BlockedStructure
build_avgpool_structure(int kernel, int stride, const TensorLayout& in,
                        const TensorLayout& out, u64 block_dim, int pad)
{
    Conv2dSpec spec;
    spec.in_channels = spec.out_channels = in.channels;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = in.channels;
    return build_conv_structure(spec, in, out, block_dim);
}

BlockedStructure
structure_of(const BlockedMatrix& m)
{
    BlockedStructure s;
    s.rows = m.rows();
    s.cols = m.cols();
    s.block_dim = m.block_dim();
    for (u64 br = 0; br < m.row_blocks(); ++br) {
        for (u64 bc = 0; bc < m.col_blocks(); ++bc) {
            const DiagonalMatrix* block = m.block(br, bc);
            if (block == nullptr) continue;
            s.blocks[{br, bc}] = block->diagonal_indices();
        }
    }
    return s;
}

}  // namespace orion::lin
