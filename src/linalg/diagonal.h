#ifndef ORION_SRC_LINALG_DIAGONAL_H_
#define ORION_SRC_LINALG_DIAGONAL_H_

/**
 * @file
 * Generalized-diagonal matrix representation (Section 3.1).
 *
 * The diagonal method stores a dim x dim matrix M by its generalized
 * diagonals diag_k[i] = M[i, (i + k) mod dim]. Homomorphic matrix-vector
 * products touch one plaintext per *nonzero* diagonal, so sparse diagonal
 * structure (the whole point of Orion's packing, Figure 5) is preserved by
 * construction: only nonzero diagonals are materialized.
 */

#include <map>
#include <vector>

#include "src/common.h"

namespace orion::lin {

/** A square matrix stored by its nonzero generalized diagonals. */
class DiagonalMatrix {
  public:
    explicit DiagonalMatrix(u64 dim) : dim_(dim)
    {
        ORION_CHECK(dim > 0, "matrix dimension must be positive");
    }

    u64 dim() const { return dim_; }

    /** Sets M[r, c] = v (materializing the diagonal if v != 0). */
    void
    set(u64 r, u64 c, double v)
    {
        ORION_ASSERT(r < dim_ && c < dim_);
        if (v == 0.0) {
            auto it = diags_.find(diag_index(r, c));
            if (it == diags_.end()) return;
            it->second[r] = 0.0;
            return;
        }
        mutable_diagonal(diag_index(r, c))[r] = v;
    }

    /** Adds v to M[r, c]. */
    void
    add(u64 r, u64 c, double v)
    {
        if (v == 0.0) return;
        ORION_ASSERT(r < dim_ && c < dim_);
        mutable_diagonal(diag_index(r, c))[r] += v;
    }

    double
    get(u64 r, u64 c) const
    {
        const auto it = diags_.find(diag_index(r, c));
        return it == diags_.end() ? 0.0 : it->second[r];
    }

    /** Diagonal index k with M[r, c] on diag_k: k = (c - r) mod dim. */
    u64
    diag_index(u64 r, u64 c) const
    {
        return (c + dim_ - r) % dim_;
    }

    /** Sorted indices of materialized (possibly nonzero) diagonals. */
    std::vector<u64>
    diagonal_indices() const
    {
        std::vector<u64> out;
        out.reserve(diags_.size());
        for (const auto& [k, v] : diags_) {
            (void)v;
            out.push_back(k);
        }
        return out;
    }

    /** The k-th generalized diagonal, or nullptr if all-zero. */
    const std::vector<double>*
    diagonal(u64 k) const
    {
        const auto it = diags_.find(k);
        return it == diags_.end() ? nullptr : &it->second;
    }

    std::vector<double>&
    mutable_diagonal(u64 k)
    {
        auto it = diags_.find(k);
        if (it == diags_.end()) {
            it = diags_.emplace(k, std::vector<double>(dim_, 0.0)).first;
        }
        return it->second;
    }

    u64 num_diagonals() const { return diags_.size(); }

    /** Drops diagonals that became all-zero (after set(.., 0)). */
    void prune();

    /** Cleartext matvec, for validation: y = M x. */
    std::vector<double> apply(const std::vector<double>& x) const;

    /** Total count of nonzero entries. */
    u64 num_nonzeros() const;

  private:
    u64 dim_;
    std::map<u64, std::vector<double>> diags_;
};

}  // namespace orion::lin

#endif  // ORION_SRC_LINALG_DIAGONAL_H_
