#ifndef ORION_SRC_LINALG_TOEPLITZ_H_
#define ORION_SRC_LINALG_TOEPLITZ_H_

/**
 * @file
 * Toeplitz lowering of convolutions (Section 4).
 *
 * Any convolution - arbitrary stride, padding, dilation, and groups - is a
 * linear map from input slots to output slots, so it can be written as a
 * matrix whose rows are one filter placement each (Figure 3a for SISO,
 * Figure 4 for MIMO). Packing the input and output tensors in multiplexed
 * layouts (gap_out = gap_in * stride) permutes the rows/columns of this
 * matrix so that strided convolutions stay densely diagonal (Figure 5b):
 * this is Orion's single-shot multiplexed packing, and it consumes a single
 * multiplicative level because the mask-and-collect step of Lee et al. is
 * fused into the (preprocessed) weight matrix.
 */

#include "src/linalg/blocked.h"
#include "src/linalg/layout.h"

namespace orion::lin {

/** Geometry of a 2-D convolution. */
struct Conv2dSpec {
    int in_channels = 1;
    int out_channels = 1;
    int kernel_h = 1;
    int kernel_w = 1;
    int stride = 1;
    int pad = 0;
    int dilation = 1;
    int groups = 1;

    int
    out_h(int in_h) const
    {
        return (in_h + 2 * pad - dilation * (kernel_h - 1) - 1) / stride + 1;
    }
    int
    out_w(int in_w) const
    {
        return (in_w + 2 * pad - dilation * (kernel_w - 1) - 1) / stride + 1;
    }
    /** Weight tensor element count: co * (ci/groups) * kh * kw. */
    u64
    weight_count() const
    {
        return static_cast<u64>(out_channels) *
               (static_cast<u64>(in_channels) / groups) * kernel_h * kernel_w;
    }
    void
    validate() const
    {
        ORION_CHECK(in_channels > 0 && out_channels > 0, "bad channels");
        ORION_CHECK(kernel_h > 0 && kernel_w > 0, "bad kernel");
        ORION_CHECK(stride > 0 && dilation > 0 && pad >= 0, "bad geometry");
        ORION_CHECK(groups > 0 && in_channels % groups == 0 &&
                        out_channels % groups == 0,
                    "channels must divide groups");
    }
};

/**
 * Output layout of a convolution under single-shot multiplexed packing:
 * same grid family, gap multiplied by the stride.
 */
TensorLayout conv_output_layout(const Conv2dSpec& spec,
                                const TensorLayout& in);

/**
 * Builds the (blocked) Toeplitz matrix of a convolution between the given
 * layouts. Weights are ordered [co][ci/groups][kh][kw] row-major. Optional
 * per-output-channel scale folds batch-norm / scale-down factors into the
 * matrix for free.
 */
BlockedMatrix build_conv_matrix(const Conv2dSpec& spec,
                                const std::vector<double>& weights,
                                const TensorLayout& in,
                                const TensorLayout& out, u64 block_dim,
                                const std::vector<double>& channel_scale = {});

/**
 * Builds the matrix of a fully-connected layer applied to a tensor in the
 * given input layout (the layout permutation is absorbed into the matrix).
 * Weights are [out_features][in_features] row-major, where in_features
 * enumerates the tensor in logical (c, y, x) order.
 */
BlockedMatrix build_linear_matrix(int out_features, int in_features,
                                  const std::vector<double>& weights,
                                  const TensorLayout& in, u64 block_dim,
                                  const std::vector<double>& out_scale = {});

/** Average pooling as a grouped convolution with constant 1/(k*k) taps. */
BlockedMatrix build_avgpool_matrix(int kernel, int stride,
                                   const TensorLayout& in,
                                   const TensorLayout& out, u64 block_dim,
                                   int pad = 0);

/** The layout produced by average pooling (gap multiplied by stride). */
TensorLayout avgpool_output_layout(int kernel, int stride,
                                   const TensorLayout& in, int pad = 0);

/**
 * Structure-only variant: records which generalized diagonals of which
 * blocks are nonzero, without materializing values. Used to plan rotation
 * schedules for networks whose full Toeplitz matrices would not fit in
 * memory (ResNet-50, YOLO-v1).
 */
struct BlockedStructure {
    u64 rows = 0, cols = 0, block_dim = 0;
    /** (block_row, block_col) -> sorted nonzero diagonal indices. */
    std::map<std::pair<u64, u64>, std::vector<u64>> blocks;

    u64 row_blocks() const { return ceil_div(rows, block_dim); }
    u64 col_blocks() const { return ceil_div(cols, block_dim); }
    u64 num_diagonals() const;
};

/** Diagonal structure of a convolution between the given layouts. */
BlockedStructure build_conv_structure(const Conv2dSpec& spec,
                                      const TensorLayout& in,
                                      const TensorLayout& out, u64 block_dim);

/** Diagonal structure of a dense fully-connected layer. */
BlockedStructure build_linear_structure(int out_features,
                                        const TensorLayout& in,
                                        u64 block_dim);

/** Diagonal structure of average pooling. */
BlockedStructure build_avgpool_structure(int kernel, int stride,
                                         const TensorLayout& in,
                                         const TensorLayout& out,
                                         u64 block_dim, int pad = 0);

/** Structure of an (already built) value matrix. */
BlockedStructure structure_of(const BlockedMatrix& m);

/**
 * Reference cleartext convolution on logical (c, y, x)-major tensors, the
 * ground truth for every packing test.
 */
std::vector<double> conv2d_reference(const Conv2dSpec& spec,
                                     const std::vector<double>& weights,
                                     const std::vector<double>& input,
                                     int in_h, int in_w);

}  // namespace orion::lin

#endif  // ORION_SRC_LINALG_TOEPLITZ_H_
