#ifndef ORION_SRC_LINALG_LINALG_H_
#define ORION_SRC_LINALG_LINALG_H_

/**
 * @file
 * Umbrella header for Orion's homomorphic linear algebra.
 */

#include "src/linalg/blocked.h"
#include "src/linalg/bsgs.h"
#include "src/linalg/diagonal.h"
#include "src/linalg/layout.h"
#include "src/linalg/toeplitz.h"

#endif  // ORION_SRC_LINALG_LINALG_H_
