#include "src/linalg/diagonal.h"

#include <algorithm>

namespace orion::lin {

void
DiagonalMatrix::prune()
{
    for (auto it = diags_.begin(); it != diags_.end();) {
        const bool all_zero =
            std::all_of(it->second.begin(), it->second.end(),
                        [](double v) { return v == 0.0; });
        it = all_zero ? diags_.erase(it) : std::next(it);
    }
}

std::vector<double>
DiagonalMatrix::apply(const std::vector<double>& x) const
{
    ORION_CHECK(x.size() == dim_, "matvec size mismatch: " << x.size()
                                                           << " vs " << dim_);
    std::vector<double> y(dim_, 0.0);
    for (const auto& [k, diag] : diags_) {
        for (u64 i = 0; i < dim_; ++i) {
            y[i] += diag[i] * x[(i + k) % dim_];
        }
    }
    return y;
}

u64
DiagonalMatrix::num_nonzeros() const
{
    u64 count = 0;
    for (const auto& [k, diag] : diags_) {
        (void)k;
        for (double v : diag) {
            if (v != 0.0) ++count;
        }
    }
    return count;
}

}  // namespace orion::lin
