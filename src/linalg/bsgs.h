#ifndef ORION_SRC_LINALG_BSGS_H_
#define ORION_SRC_LINALG_BSGS_H_

/**
 * @file
 * Baby-step giant-step homomorphic matrix-vector products (Sections
 * 3.1-3.3, Equation 1).
 *
 * A BsgsPlan splits the nonzero diagonals of a matrix into giant groups of
 * n1 consecutive indices. Evaluation rotates the input by each needed baby
 * step (all served from one hoisted decomposition), multiplies by
 * pre-rotated plaintext diagonals, and applies one giant rotation per
 * group, accumulated with a deferred mod-down (double-hoisting).
 *
 * Every linear layer in Orion (convolutions, fully-connected layers) is
 * evaluated through this code path and consumes exactly one level.
 */

#include <optional>

#include "src/ckks/encoder.h"
#include "src/ckks/evaluator.h"
#include "src/linalg/diagonal.h"

namespace orion::lin {

/** The rotation schedule of a BSGS matvec over a fixed diagonal set. */
struct BsgsPlan {
    u64 dim = 0;   ///< matrix dimension (must equal the CKKS slot count
                   ///  for homomorphic evaluation)
    u64 n1 = 1;    ///< giant group size (baby steps are 0..n1-1)

    /** One (baby rotation, diagonal) pair within a giant group. */
    struct Term {
        u64 baby;
        u64 diag;
    };
    /** Giant rotation amount -> terms evaluated under that group. */
    std::map<u64, std::vector<Term>> groups;
    /** Distinct baby steps needed across all groups (sorted). */
    std::vector<u64> baby_steps;

    /** Rotations performed: nontrivial baby steps + nontrivial giants. */
    u64 rotation_count() const;
    /** Baby-step rotations only (these are hoisted). */
    u64 baby_rotation_count() const;
    /** Giant-step rotations only. */
    u64 giant_rotation_count() const;
    /** Number of plaintext multiplications (= number of diagonals). */
    u64 pmult_count() const;
    /** All rotation steps the plan needs keys for. */
    std::vector<int> required_steps() const;

    /**
     * Builds a plan for the matrix's nonzero diagonals. n1 = 0 picks the
     * group size minimizing the rotation count (searched over powers of
     * two and the square-root neighborhood); n1 = 1 degenerates to the
     * plain diagonal method of Figure 2a.
     */
    static BsgsPlan build(const DiagonalMatrix& m, u64 n1 = 0);
    static BsgsPlan build_from_indices(u64 dim,
                                       const std::vector<u64>& diag_indices,
                                       u64 n1 = 0);
};

/**
 * A matrix encoded as plaintext diagonals at a fixed level and scale,
 * ready for repeated homomorphic application.
 */
class HeDiagonalMatrix {
  public:
    /**
     * Encodes the (pre-rotated) diagonals of m. `scale` is the plaintext
     * scale; passing the level's prime q_level (see Context::q) makes the
     * post-rescale output scale exactly equal to the input scale (the
     * paper's errorless scale management, Figure 7).
     */
    HeDiagonalMatrix(const ckks::Context& ctx, const ckks::Encoder& encoder,
                     const DiagonalMatrix& m, const BsgsPlan& plan, int level,
                     double scale);

    /**
     * y = M x homomorphically. Consumes exactly one level: the result is
     * rescaled once, at level `level() - 1`.
     */
    ckks::Ciphertext apply(const ckks::Evaluator& eval,
                           const ckks::Ciphertext& ct) const;

    const BsgsPlan& plan() const { return plan_; }
    int level() const { return level_; }
    double scale() const { return scale_; }

  private:
    const ckks::Context* ctx_;
    BsgsPlan plan_;
    int level_;
    double scale_;
    /** groups_[g][t] aligns with plan_.groups[g][t]. */
    std::map<u64, std::vector<ckks::Plaintext>> encoded_;
};

}  // namespace orion::lin

#endif  // ORION_SRC_LINALG_BSGS_H_
