#include "src/linalg/bsgs.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/core/thread_pool.h"
#include "src/linalg/bsgs_detail.h"

namespace orion::lin {

namespace detail {

void
encode_rotated_diagonals(const ckks::Encoder& encoder, u64 dim, int level,
                         double scale, const std::vector<EncodeSlot>& slots)
{
    core::parallel_for(0, static_cast<i64>(slots.size()), [&](i64 si) {
        const EncodeSlot& s = slots[static_cast<std::size_t>(si)];
        ORION_ASSERT(s.diag != nullptr);
        std::vector<double> rotated(dim);
        for (u64 t = 0; t < dim; ++t) {
            rotated[t] = (*s.diag)[(t + dim - s.g) % dim];
        }
        *s.out = encoder.encode(rotated, level, scale);
    });
}

std::vector<ckks::Ciphertext>
hoisted_baby_rotations(const ckks::Evaluator& eval,
                       const ckks::Ciphertext& ct,
                       const std::vector<u64>& steps,
                       std::map<u64, const ckks::Ciphertext*>* lookup)
{
    const ckks::Evaluator::Hoisted hoisted = eval.hoist(ct);
    std::vector<ckks::Ciphertext> cts(steps.size());
    core::parallel_for(0, static_cast<i64>(steps.size()), [&](i64 i) {
        const u64 b = steps[static_cast<std::size_t>(i)];
        cts[static_cast<std::size_t>(i)] =
            b == 0 ? ct : eval.rotate_hoisted(hoisted, static_cast<int>(b));
    });
    for (std::size_t i = 0; i < steps.size(); ++i) {
        lookup->emplace(steps[i], &cts[i]);
    }
    return cts;
}

std::optional<ckks::Ciphertext>
group_inner_sum(const ckks::Evaluator& eval,
                const std::vector<BsgsPlan::Term>& terms,
                const std::vector<ckks::Plaintext>& encoded,
                const std::map<u64, const ckks::Ciphertext*>& babies)
{
    std::optional<ckks::Ciphertext> inner;
    for (std::size_t t = 0; t < terms.size(); ++t) {
        ckks::Ciphertext part =
            eval.mul_plain(*babies.at(terms[t].baby), encoded[t]);
        if (inner.has_value()) {
            eval.add_inplace(*inner, part);
        } else {
            inner = std::move(part);
        }
    }
    return inner;
}

void
accumulate_group_sums(const ckks::Evaluator& eval,
                      const std::vector<GroupTask>& tasks,
                      const std::map<u64, const ckks::Ciphertext*>& babies,
                      std::vector<ckks::Evaluator::RotationAccumulator>& accs)
{
    if (tasks.empty()) return;
    auto run_task = [&](const GroupTask& task,
                        ckks::Evaluator::RotationAccumulator& acc) {
        std::optional<ckks::Ciphertext> inner =
            group_inner_sum(eval, *task.terms, *task.encoded, babies);
        ORION_ASSERT(inner.has_value());
        eval.accumulate_rotation(acc, *inner, static_cast<int>(task.giant));
    };

    const i64 chunks = core::chunk_count(static_cast<i64>(tasks.size()));
    if (chunks <= 1) {
        // Serial fast path: accumulate straight into the outputs, with no
        // partial accumulators to allocate or merge (identical to the
        // multi-chunk result because the merge adds are exact).
        for (const GroupTask& task : tasks) run_task(task, accs[task.acc]);
        return;
    }

    // Per-chunk private partial accumulators, created lazily for the acc
    // indices the chunk actually touches.
    using Partial = std::optional<ckks::Evaluator::RotationAccumulator>;
    std::vector<std::vector<Partial>> partials(
        static_cast<std::size_t>(chunks),
        std::vector<Partial>(accs.size()));
    core::parallel_chunks(
        static_cast<i64>(tasks.size()), chunks,
        [&](i64 c, i64 begin, i64 end) {
            for (i64 i = begin; i < end; ++i) {
                const GroupTask& task = tasks[static_cast<std::size_t>(i)];
                Partial& slot =
                    partials[static_cast<std::size_t>(c)][task.acc];
                if (!slot.has_value()) {
                    slot = eval.make_accumulator(accs[task.acc].level(),
                                                 accs[task.acc].scale());
                }
                run_task(task, *slot);
            }
        });
    for (std::size_t a = 0; a < accs.size(); ++a) {
        for (std::size_t c = 0; c < static_cast<std::size_t>(chunks); ++c) {
            if (partials[c][a].has_value()) {
                eval.merge_accumulator(accs[a], *partials[c][a]);
            }
        }
    }
}

}  // namespace detail

u64
BsgsPlan::baby_rotation_count() const
{
    u64 count = 0;
    for (u64 b : baby_steps) {
        if (b != 0) ++count;
    }
    return count;
}

u64
BsgsPlan::giant_rotation_count() const
{
    u64 count = 0;
    for (const auto& [g, terms] : groups) {
        (void)terms;
        if (g != 0) ++count;
    }
    return count;
}

u64
BsgsPlan::rotation_count() const
{
    return baby_rotation_count() + giant_rotation_count();
}

u64
BsgsPlan::pmult_count() const
{
    u64 count = 0;
    for (const auto& [g, terms] : groups) {
        (void)g;
        count += terms.size();
    }
    return count;
}

std::vector<int>
BsgsPlan::required_steps() const
{
    std::set<int> steps;
    for (u64 b : baby_steps) {
        if (b != 0) steps.insert(static_cast<int>(b));
    }
    for (const auto& [g, terms] : groups) {
        (void)terms;
        if (g != 0) steps.insert(static_cast<int>(g));
    }
    return {steps.begin(), steps.end()};
}

BsgsPlan
BsgsPlan::build_from_indices(u64 dim, const std::vector<u64>& diag_indices,
                             u64 n1)
{
    ORION_CHECK(dim > 0, "empty matrix");
    auto make_plan = [&](u64 group_size) {
        BsgsPlan plan;
        plan.dim = dim;
        plan.n1 = group_size;
        std::set<u64> babies;
        for (u64 k : diag_indices) {
            ORION_ASSERT(k < dim);
            const u64 g = (k / group_size) * group_size;
            const u64 b = k % group_size;
            plan.groups[g].push_back({b, k});
            babies.insert(b);
        }
        plan.baby_steps.assign(babies.begin(), babies.end());
        return plan;
    };

    if (n1 != 0) return make_plan(n1);

    // Search group sizes: powers of two plus the sqrt neighborhood of the
    // diagonal count (the classic n1 = n2 = sqrt(n) optimum of Section 3.2
    // applies to dense matrices; sparse diagonal sets can prefer other
    // splits).
    std::set<u64> candidates = {1};
    for (u64 p = 2; p <= dim; p <<= 1) candidates.insert(p);
    const u64 root = static_cast<u64>(
        std::llround(std::sqrt(static_cast<double>(dim))));
    for (u64 c : {root / 2, root, root * 2}) {
        if (c >= 1 && c <= dim) candidates.insert(c);
    }
    const u64 d_root = static_cast<u64>(std::llround(
        std::sqrt(static_cast<double>(std::max<std::size_t>(
            diag_indices.size(), 1)))));
    for (u64 c : {d_root, d_root * 2}) {
        if (c >= 1 && c <= dim) candidates.insert(c);
    }

    BsgsPlan best;
    u64 best_cost = ~u64(0);
    for (u64 c : candidates) {
        BsgsPlan plan = make_plan(c);
        const u64 cost = plan.rotation_count();
        if (cost < best_cost) {
            best_cost = cost;
            best = std::move(plan);
        }
    }
    return best;
}

BsgsPlan
BsgsPlan::build(const DiagonalMatrix& m, u64 n1)
{
    return build_from_indices(m.dim(), m.diagonal_indices(), n1);
}

HeDiagonalMatrix::HeDiagonalMatrix(const ckks::Context& ctx,
                                   const ckks::Encoder& encoder,
                                   const DiagonalMatrix& m,
                                   const BsgsPlan& plan, int level,
                                   double scale)
    : ctx_(&ctx), plan_(plan), level_(level), scale_(scale)
{
    ORION_CHECK(m.dim() == ctx.slot_count(),
                "homomorphic matrices must match the slot count ("
                    << m.dim() << " vs " << ctx.slot_count() << ")");
    const u64 dim = m.dim();
    // Encode diag_{g+b} rotated down by the giant amount g (Equation 1):
    // e[t] = diag_k[(t - g) mod dim]. Every (group, term) encode is
    // independent, so flatten the plan and encode in parallel.
    std::vector<detail::EncodeSlot> slots;
    for (const auto& [g, terms] : plan_.groups) {
        std::vector<ckks::Plaintext>& row = encoded_[g];
        row.resize(terms.size());
        for (std::size_t t = 0; t < terms.size(); ++t) {
            slots.push_back({m.diagonal(terms[t].diag), g, &row[t]});
        }
    }
    detail::encode_rotated_diagonals(encoder, dim, level, scale, slots);
}

ckks::Ciphertext
HeDiagonalMatrix::apply(const ckks::Evaluator& eval,
                        const ckks::Ciphertext& ct) const
{
    ORION_CHECK(ct.level() == level_,
                "matrix encoded at level " << level_ << ", input at level "
                                           << ct.level());
    // Baby steps: one hoisted decomposition serves every baby rotation,
    // and the rotations themselves fan out across the thread pool.
    std::map<u64, const ckks::Ciphertext*> babies;
    const std::vector<ckks::Ciphertext> baby_cts =
        detail::hoisted_baby_rotations(eval, ct, plan_.baby_steps, &babies);

    // Giant groups: inner sums AND the deferred-mod-down giant-step
    // accumulation both fan out across the pool — worker chunks fold into
    // private partial accumulators that merge in fixed order at the end
    // (exact modular adds, so the result is bit-identical to the
    // single-threaded path).
    std::vector<detail::GroupTask> tasks;
    tasks.reserve(plan_.groups.size());
    for (const auto& [g, terms] : plan_.groups) {
        tasks.push_back({0, g, &terms, &encoded_.at(g)});
    }
    std::vector<ckks::Evaluator::RotationAccumulator> accs;
    accs.push_back(eval.make_accumulator(level_, ct.scale * scale_));
    detail::accumulate_group_sums(eval, tasks, babies, accs);
    ckks::Ciphertext out = eval.finalize_accumulator(accs[0]);
    eval.rescale_inplace(out);
    return out;
}

}  // namespace orion::lin
