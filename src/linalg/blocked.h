#ifndef ORION_SRC_LINALG_BLOCKED_H_
#define ORION_SRC_LINALG_BLOCKED_H_

/**
 * @file
 * Blocked matrix-vector products for tensors larger than one ciphertext
 * (Section 4.3, "Multi-ciphertext"). The matrix is tiled into slots x slots
 * blocks; each block is a DiagonalMatrix evaluated with BSGS. Baby-step
 * rotations are shared across all blocks in one block-column (they rotate
 * the same input ciphertext), so every block-column uses a common group
 * size n1.
 */

#include "src/linalg/bsgs.h"

namespace orion::lin {

/** A rows x cols matrix tiled into block_dim x block_dim diagonal blocks. */
class BlockedMatrix {
  public:
    BlockedMatrix(u64 rows, u64 cols, u64 block_dim);

    u64 rows() const { return rows_; }
    u64 cols() const { return cols_; }
    u64 block_dim() const { return block_dim_; }
    u64 row_blocks() const { return ceil_div(rows_, block_dim_); }
    u64 col_blocks() const { return ceil_div(cols_, block_dim_); }

    /** Adds v at logical position (r, c). */
    void add(u64 r, u64 c, double v);

    /** The (br, bc) block, or nullptr when all-zero. */
    const DiagonalMatrix* block(u64 br, u64 bc) const;

    /** Cleartext matvec (x padded to col_blocks * block_dim). */
    std::vector<double> apply(const std::vector<double>& x) const;

    /** Sum of materialized diagonals over all blocks. */
    u64 num_diagonals() const;

  private:
    u64 rows_, cols_, block_dim_;
    std::map<std::pair<u64, u64>, DiagonalMatrix> blocks_;
};

/** Rotation schedule for a blocked matvec (per-block BSGS, shared babies). */
struct BlockedPlan {
    /** Plan of each materialized block, keyed by (block_row, block_col). */
    std::map<std::pair<u64, u64>, BsgsPlan> block_plans;
    /** Baby steps of each block-column (the union over its blocks). */
    std::map<u64, std::vector<u64>> column_babies;

    /**
     * Total ciphertext rotations: per column, its shared nontrivial baby
     * steps; per block, its nontrivial giant steps.
     */
    u64 rotation_count() const;
    u64 pmult_count() const;
    std::vector<int> required_steps() const;

    static BlockedPlan build(const BlockedMatrix& m, u64 n1 = 0);
    /** Builds a plan from diagonal index sets alone (no values needed). */
    static BlockedPlan build_from_structure(
        u64 block_dim, u64 row_blocks, u64 col_blocks,
        const std::map<std::pair<u64, u64>, std::vector<u64>>& blocks,
        u64 n1 = 0);
};

/** A blocked matrix encoded for homomorphic evaluation. */
class HeBlockedMatrix {
  public:
    HeBlockedMatrix(const ckks::Context& ctx, const ckks::Encoder& encoder,
                    const BlockedMatrix& m, const BlockedPlan& plan,
                    int level, double scale);

    /**
     * y = M x homomorphically over ciphertext vectors; one level consumed.
     * in.size() must equal col_blocks(); the result has row_blocks()
     * entries.
     */
    std::vector<ckks::Ciphertext> apply(
        const ckks::Evaluator& eval,
        const std::vector<ckks::Ciphertext>& in) const;

    const BlockedPlan& plan() const { return plan_; }
    u64 row_blocks() const { return row_blocks_; }
    u64 col_blocks() const { return col_blocks_; }
    int level() const { return level_; }

  private:
    const ckks::Context* ctx_;
    BlockedPlan plan_;
    int level_;
    double scale_;
    u64 row_blocks_, col_blocks_;
    /** Encoded diagonals per block, aligned with the block plan's groups. */
    std::map<std::pair<u64, u64>,
             std::map<u64, std::vector<ckks::Plaintext>>>
        encoded_;
};

}  // namespace orion::lin

#endif  // ORION_SRC_LINALG_BLOCKED_H_
