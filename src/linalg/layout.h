#ifndef ORION_SRC_LINALG_LAYOUT_H_
#define ORION_SRC_LINALG_LAYOUT_H_

/**
 * @file
 * Multiplexed tensor layouts (Section 4.3).
 *
 * A (channels, height, width) activation tensor is packed into ciphertext
 * slots on a (height*gap) x (width*gap) pixel grid: each logical pixel is a
 * gap x gap block holding gap^2 different channels, and channels beyond
 * gap^2 occupy further grid planes. gap = 1 is the plain raster-scan
 * layout of Section 4.1. Strided convolutions multiply the gap by the
 * stride, which is what keeps their Toeplitz matrices densely diagonal
 * (Figure 5b) instead of spatially sparse (Figure 5a).
 */

#include "src/common.h"

namespace orion::lin {

/** Slot layout of a (c, h, w) tensor with a channel-multiplex gap. */
struct TensorLayout {
    int channels = 0;
    int height = 0;
    int width = 0;
    int gap = 1;

    TensorLayout() = default;
    TensorLayout(int c, int h, int w, int g = 1)
        : channels(c), height(h), width(w), gap(g)
    {
        ORION_CHECK(c > 0 && h > 0 && w > 0 && g > 0, "bad layout");
    }

    /** Channels stored per grid plane. */
    int channels_per_plane() const { return gap * gap; }
    /** Number of gap^2-channel planes. */
    int
    planes() const
    {
        return static_cast<int>(
            ceil_div(static_cast<u64>(channels),
                     static_cast<u64>(channels_per_plane())));
    }
    int grid_height() const { return height * gap; }
    int grid_width() const { return width * gap; }
    /** Slots spanned by the layout (including padding slots). */
    u64
    total_slots() const
    {
        return static_cast<u64>(planes()) * grid_height() * grid_width();
    }

    /** Slot index of logical element (c, y, x). */
    u64
    slot_of(int c, int y, int x) const
    {
        ORION_ASSERT(c >= 0 && c < channels && y >= 0 && y < height &&
                     x >= 0 && x < width);
        const int plane = c / channels_per_plane();
        const int k = c % channels_per_plane();
        const int grid_y = y * gap + k / gap;
        const int grid_x = x * gap + k % gap;
        return static_cast<u64>(plane) * grid_height() * grid_width() +
               static_cast<u64>(grid_y) * grid_width() +
               static_cast<u64>(grid_x);
    }

    /** Flattened logical size c*h*w (no multiplex padding). */
    u64
    logical_size() const
    {
        return static_cast<u64>(channels) * height * width;
    }

    /** Packs a logical (c, h, w)-major tensor into layout order. */
    std::vector<double>
    pack(const std::vector<double>& chw, u64 padded_size = 0) const
    {
        ORION_CHECK(chw.size() == logical_size(),
                    "tensor size mismatch: " << chw.size() << " vs "
                                             << logical_size());
        std::vector<double> out(padded_size == 0 ? total_slots()
                                                 : padded_size,
                                0.0);
        u64 idx = 0;
        for (int c = 0; c < channels; ++c) {
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    out[slot_of(c, y, x)] = chw[idx++];
                }
            }
        }
        return out;
    }

    /** Extracts the logical (c, h, w)-major tensor from layout order. */
    std::vector<double>
    unpack(const std::vector<double>& slots) const
    {
        std::vector<double> out(logical_size());
        u64 idx = 0;
        for (int c = 0; c < channels; ++c) {
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    out[idx++] = slots[slot_of(c, y, x)];
                }
            }
        }
        return out;
    }

    bool
    operator==(const TensorLayout& o) const
    {
        return channels == o.channels && height == o.height &&
               width == o.width && gap == o.gap;
    }
};

}  // namespace orion::lin

#endif  // ORION_SRC_LINALG_LAYOUT_H_
