#ifndef ORION_SRC_LINALG_LAYOUT_H_
#define ORION_SRC_LINALG_LAYOUT_H_

/**
 * @file
 * Multiplexed tensor layouts (Section 4.3) with an optional batch tile
 * dimension (HeLayers-style tile tensors).
 *
 * A (channels, height, width) activation tensor is packed into ciphertext
 * slots on a (height*gap) x (width*gap) pixel grid: each logical pixel is a
 * gap x gap block holding gap^2 different channels, and channels beyond
 * gap^2 occupy further grid planes. gap = 1 is the plain raster-scan
 * layout of Section 4.1. Strided convolutions multiply the gap by the
 * stride, which is what keeps their Toeplitz matrices densely diagonal
 * (Figure 5b) instead of spatially sparse (Figure 5a).
 *
 * Batching: `batch` samples share one slot vector, sample b starting at
 * slot b * batch_stride. The stride is one power-of-two value for the
 * whole program (the widest layer's span rounded up), so every layer sees
 * its lanes at the same offsets and the batched weight matrices are
 * block-diagonal shifts of the single-sample matrix — the diagonal index
 * sets (and hence the rotation plans) are identical to B = 1. batch = 1
 * with batch_stride = 0 is bit-identical to the historical layout.
 */

#include "src/common.h"

namespace orion::lin {

/** Slot layout of a (c, h, w) tensor with a channel-multiplex gap. */
struct TensorLayout {
    int channels = 0;
    int height = 0;
    int width = 0;
    int gap = 1;
    /** Samples packed side by side in the slot vector. */
    int batch = 1;
    /** Slot offset between consecutive samples (0 when batch == 1). */
    u64 batch_stride = 0;

    TensorLayout() = default;
    TensorLayout(int c, int h, int w, int g = 1)
        : channels(c), height(h), width(w), gap(g)
    {
        ORION_CHECK(c > 0 && h > 0 && w > 0 && g > 0, "bad layout");
    }

    /** Channels stored per grid plane. */
    int channels_per_plane() const { return gap * gap; }
    /** Number of gap^2-channel planes. */
    int
    planes() const
    {
        return static_cast<int>(
            ceil_div(static_cast<u64>(channels),
                     static_cast<u64>(channels_per_plane())));
    }
    int grid_height() const { return height * gap; }
    int grid_width() const { return width * gap; }

    /** Slots spanned by one sample (including padding slots). */
    u64
    base_slots() const
    {
        return static_cast<u64>(planes()) * grid_height() * grid_width();
    }

    /** Slots spanned by the layout across all batch lanes. */
    u64
    total_slots() const
    {
        if (batch <= 1) return base_slots();
        return static_cast<u64>(batch - 1) * batch_stride + base_slots();
    }

    /** A copy of this layout carrying b samples at the given lane stride. */
    TensorLayout
    with_batch(int b, u64 stride) const
    {
        ORION_CHECK(b >= 1, "bad batch " << b);
        ORION_CHECK(b == 1 || stride >= base_slots(),
                    "batch stride " << stride << " smaller than sample span "
                                    << base_slots());
        TensorLayout l = *this;
        l.batch = b;
        l.batch_stride = b > 1 ? stride : 0;
        return l;
    }

    /** Slot index of logical element (c, y, x) of sample 0. */
    u64
    slot_of(int c, int y, int x) const
    {
        ORION_ASSERT(c >= 0 && c < channels && y >= 0 && y < height &&
                     x >= 0 && x < width);
        const int plane = c / channels_per_plane();
        const int k = c % channels_per_plane();
        const int grid_y = y * gap + k / gap;
        const int grid_x = x * gap + k % gap;
        return static_cast<u64>(plane) * grid_height() * grid_width() +
               static_cast<u64>(grid_y) * grid_width() +
               static_cast<u64>(grid_x);
    }

    /** Slot index of logical element (c, y, x) of batch lane b. */
    u64
    slot_of(int b, int c, int y, int x) const
    {
        ORION_ASSERT(b >= 0 && b < batch);
        return static_cast<u64>(b) * batch_stride + slot_of(c, y, x);
    }

    /** Flattened logical size c*h*w of one sample (no multiplex padding). */
    u64
    logical_size() const
    {
        return static_cast<u64>(channels) * height * width;
    }

    /** Packs a logical (c, h, w)-major tensor into lane 0 of layout order. */
    std::vector<double>
    pack(const std::vector<double>& chw, u64 padded_size = 0) const
    {
        ORION_CHECK(chw.size() == logical_size(),
                    "tensor size mismatch: " << chw.size() << " vs "
                                             << logical_size());
        std::vector<double> out(padded_size == 0 ? total_slots()
                                                 : padded_size,
                                0.0);
        u64 idx = 0;
        for (int c = 0; c < channels; ++c) {
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    out[slot_of(c, y, x)] = chw[idx++];
                }
            }
        }
        return out;
    }

    /**
     * Packs up to `batch` logical tensors, sample b into lane b. Lanes
     * beyond samples.size() stay zero.
     */
    std::vector<double>
    pack_batch(const std::vector<std::vector<double>>& samples,
               u64 padded_size = 0) const
    {
        ORION_CHECK(!samples.empty() &&
                        samples.size() <= static_cast<std::size_t>(batch),
                    "batch size " << samples.size()
                                  << " exceeds layout batch " << batch);
        std::vector<double> out(padded_size == 0 ? total_slots()
                                                 : padded_size,
                                0.0);
        for (std::size_t b = 0; b < samples.size(); ++b) {
            const std::vector<double>& chw = samples[b];
            ORION_CHECK(chw.size() == logical_size(),
                        "tensor size mismatch: " << chw.size() << " vs "
                                                 << logical_size());
            u64 idx = 0;
            for (int c = 0; c < channels; ++c) {
                for (int y = 0; y < height; ++y) {
                    for (int x = 0; x < width; ++x) {
                        out[slot_of(static_cast<int>(b), c, y, x)] =
                            chw[idx++];
                    }
                }
            }
        }
        return out;
    }

    /** Extracts the logical (c, h, w)-major tensor of lane 0. */
    std::vector<double>
    unpack(const std::vector<double>& slots) const
    {
        ORION_CHECK(slots.size() >= total_slots(),
                    "slot vector too short: " << slots.size() << " vs "
                                              << total_slots());
        std::vector<double> out(logical_size());
        u64 idx = 0;
        for (int c = 0; c < channels; ++c) {
            for (int y = 0; y < height; ++y) {
                for (int x = 0; x < width; ++x) {
                    out[idx++] = slots[slot_of(c, y, x)];
                }
            }
        }
        return out;
    }

    /** Extracts the first `count` batch lanes as logical tensors. */
    std::vector<std::vector<double>>
    unpack_batch(const std::vector<double>& slots, int count) const
    {
        ORION_CHECK(count >= 1 && count <= batch,
                    "batch count " << count << " exceeds layout batch "
                                   << batch);
        ORION_CHECK(slots.size() >= total_slots(),
                    "slot vector too short: " << slots.size() << " vs "
                                              << total_slots());
        std::vector<std::vector<double>> out(
            static_cast<std::size_t>(count));
        for (int b = 0; b < count; ++b) {
            std::vector<double>& chw = out[static_cast<std::size_t>(b)];
            chw.resize(logical_size());
            u64 idx = 0;
            for (int c = 0; c < channels; ++c) {
                for (int y = 0; y < height; ++y) {
                    for (int x = 0; x < width; ++x) {
                        chw[idx++] = slots[slot_of(b, c, y, x)];
                    }
                }
            }
        }
        return out;
    }

    bool
    operator==(const TensorLayout& o) const
    {
        return channels == o.channels && height == o.height &&
               width == o.width && gap == o.gap && batch == o.batch &&
               batch_stride == o.batch_stride;
    }
};

}  // namespace orion::lin

#endif  // ORION_SRC_LINALG_LAYOUT_H_
