#include "src/linalg/blocked.h"

#include <algorithm>
#include <optional>
#include <set>

#include "src/core/thread_pool.h"
#include "src/linalg/bsgs_detail.h"

namespace orion::lin {

BlockedMatrix::BlockedMatrix(u64 rows, u64 cols, u64 block_dim)
    : rows_(rows), cols_(cols), block_dim_(block_dim)
{
    ORION_CHECK(rows > 0 && cols > 0 && block_dim > 0,
                "bad blocked matrix shape");
}

void
BlockedMatrix::add(u64 r, u64 c, double v)
{
    if (v == 0.0) return;
    ORION_ASSERT(r < rows_ && c < cols_);
    const std::pair<u64, u64> key{r / block_dim_, c / block_dim_};
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
        it = blocks_.emplace(key, DiagonalMatrix(block_dim_)).first;
    }
    it->second.add(r % block_dim_, c % block_dim_, v);
}

const DiagonalMatrix*
BlockedMatrix::block(u64 br, u64 bc) const
{
    const auto it = blocks_.find({br, bc});
    return it == blocks_.end() ? nullptr : &it->second;
}

std::vector<double>
BlockedMatrix::apply(const std::vector<double>& x) const
{
    ORION_CHECK(x.size() >= cols_, "input too short");
    std::vector<double> padded(col_blocks() * block_dim_, 0.0);
    std::copy(x.begin(), x.end(), padded.begin());
    std::vector<double> y(row_blocks() * block_dim_, 0.0);
    for (const auto& [key, block] : blocks_) {
        const auto [br, bc] = key;
        const std::vector<double> seg(
            padded.begin() + static_cast<std::ptrdiff_t>(bc * block_dim_),
            padded.begin() +
                static_cast<std::ptrdiff_t>((bc + 1) * block_dim_));
        const std::vector<double> part = block.apply(seg);
        for (u64 i = 0; i < block_dim_; ++i) {
            y[br * block_dim_ + i] += part[i];
        }
    }
    return y;
}

u64
BlockedMatrix::num_diagonals() const
{
    u64 total = 0;
    for (const auto& [key, block] : blocks_) {
        (void)key;
        total += block.num_diagonals();
    }
    return total;
}

BlockedPlan
BlockedPlan::build_from_structure(
    u64 block_dim, u64 row_blocks, u64 col_blocks,
    const std::map<std::pair<u64, u64>, std::vector<u64>>& blocks, u64 n1)
{
    BlockedPlan plan;
    // Pick one group size per block-column from the union of its blocks'
    // diagonal indices, so baby rotations can be shared.
    for (u64 bc = 0; bc < col_blocks; ++bc) {
        std::set<u64> union_indices;
        for (u64 br = 0; br < row_blocks; ++br) {
            const auto it = blocks.find({br, bc});
            if (it == blocks.end()) continue;
            for (u64 k : it->second) union_indices.insert(k);
        }
        if (union_indices.empty()) continue;
        const std::vector<u64> indices(union_indices.begin(),
                                       union_indices.end());
        const BsgsPlan column_plan =
            BsgsPlan::build_from_indices(block_dim, indices, n1);
        const u64 column_n1 = column_plan.n1;

        std::set<u64> babies;
        for (u64 br = 0; br < row_blocks; ++br) {
            const auto it = blocks.find({br, bc});
            if (it == blocks.end()) continue;
            BsgsPlan bp = BsgsPlan::build_from_indices(block_dim, it->second,
                                                       column_n1);
            for (u64 b : bp.baby_steps) babies.insert(b);
            plan.block_plans.emplace(std::make_pair(br, bc), std::move(bp));
        }
        plan.column_babies[bc] = {babies.begin(), babies.end()};
    }
    return plan;
}

BlockedPlan
BlockedPlan::build(const BlockedMatrix& m, u64 n1)
{
    std::map<std::pair<u64, u64>, std::vector<u64>> blocks;
    for (u64 br = 0; br < m.row_blocks(); ++br) {
        for (u64 bc = 0; bc < m.col_blocks(); ++bc) {
            const DiagonalMatrix* block = m.block(br, bc);
            if (block == nullptr) continue;
            blocks[{br, bc}] = block->diagonal_indices();
        }
    }
    return build_from_structure(m.block_dim(), m.row_blocks(),
                                m.col_blocks(), blocks, n1);
}

u64
BlockedPlan::rotation_count() const
{
    u64 count = 0;
    for (const auto& [bc, babies] : column_babies) {
        (void)bc;
        for (u64 b : babies) {
            if (b != 0) ++count;
        }
    }
    for (const auto& [key, bp] : block_plans) {
        (void)key;
        count += bp.giant_rotation_count();
    }
    return count;
}

u64
BlockedPlan::pmult_count() const
{
    u64 count = 0;
    for (const auto& [key, bp] : block_plans) {
        (void)key;
        count += bp.pmult_count();
    }
    return count;
}

std::vector<int>
BlockedPlan::required_steps() const
{
    std::set<int> steps;
    for (const auto& [key, bp] : block_plans) {
        (void)key;
        for (int s : bp.required_steps()) steps.insert(s);
    }
    return {steps.begin(), steps.end()};
}

HeBlockedMatrix::HeBlockedMatrix(const ckks::Context& ctx,
                                 const ckks::Encoder& encoder,
                                 const BlockedMatrix& m,
                                 const BlockedPlan& plan, int level,
                                 double scale)
    : ctx_(&ctx), plan_(plan), level_(level), scale_(scale),
      row_blocks_(m.row_blocks()), col_blocks_(m.col_blocks())
{
    ORION_CHECK(m.block_dim() == ctx.slot_count(),
                "block dimension must equal the slot count");
    const u64 dim = m.block_dim();
    // Flatten every (block, group, term) encode into one parallel sweep;
    // the map structure is built serially first so tasks only fill
    // preallocated slots.
    std::vector<detail::EncodeSlot> slots;
    for (const auto& [key, bp] : plan_.block_plans) {
        const DiagonalMatrix* block = m.block(key.first, key.second);
        ORION_ASSERT(block != nullptr);
        auto& group_map = encoded_[key];
        for (const auto& [g, terms] : bp.groups) {
            std::vector<ckks::Plaintext>& row = group_map[g];
            row.resize(terms.size());
            for (std::size_t t = 0; t < terms.size(); ++t) {
                slots.push_back({block->diagonal(terms[t].diag), g, &row[t]});
            }
        }
    }
    detail::encode_rotated_diagonals(encoder, dim, level, scale, slots);
}

std::vector<ckks::Ciphertext>
HeBlockedMatrix::apply(const ckks::Evaluator& eval,
                       const std::vector<ckks::Ciphertext>& in) const
{
    ORION_CHECK(in.size() == col_blocks_,
                "expected " << col_blocks_ << " input ciphertexts, got "
                            << in.size());
    for (const ckks::Ciphertext& ct : in) {
        ORION_CHECK(ct.level() == level_, "input level mismatch");
    }
    const double out_scale = in.front().scale * scale_;

    std::vector<ckks::Evaluator::RotationAccumulator> accs;
    accs.reserve(row_blocks_);
    for (u64 br = 0; br < row_blocks_; ++br) {
        accs.push_back(eval.make_accumulator(level_, out_scale));
    }

    for (u64 bc = 0; bc < col_blocks_; ++bc) {
        const auto babies_it = plan_.column_babies.find(bc);
        if (babies_it == plan_.column_babies.end()) continue;

        // Shared hoisted baby rotations for this input ciphertext; the
        // rotations fan out across the thread pool.
        std::map<u64, const ckks::Ciphertext*> babies;
        const std::vector<ckks::Ciphertext> baby_cts =
            detail::hoisted_baby_rotations(eval, in[bc], babies_it->second,
                                           &babies);

        // Per-(row block, giant group) inner sums and their giant-step
        // accumulations fan out together: worker chunks fold into private
        // per-row partial accumulators merged in fixed order (exact
        // modular adds — bit-identical to the serial path).
        std::vector<detail::GroupTask> tasks;
        for (u64 br = 0; br < row_blocks_; ++br) {
            const auto plan_it = plan_.block_plans.find({br, bc});
            if (plan_it == plan_.block_plans.end()) continue;
            const auto& group_map = encoded_.at({br, bc});
            for (const auto& [g, terms] : plan_it->second.groups) {
                tasks.push_back({static_cast<std::size_t>(br), g, &terms,
                                 &group_map.at(g)});
            }
        }
        detail::accumulate_group_sums(eval, tasks, babies, accs);
    }

    std::vector<ckks::Ciphertext> out;
    out.reserve(row_blocks_);
    for (u64 br = 0; br < row_blocks_; ++br) {
        ckks::Ciphertext ct = eval.finalize_accumulator(accs[br]);
        eval.rescale_inplace(ct);
        out.push_back(std::move(ct));
    }
    return out;
}

}  // namespace orion::lin
