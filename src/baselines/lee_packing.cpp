#include "src/baselines/lee_packing.h"

#include <set>

namespace orion::baselines {

namespace {

using lin::BlockedStructure;
using lin::Conv2dSpec;
using lin::TensorLayout;

/** Rotation count of a structure under the plain diagonal method: one
 * rotation per nontrivial nonzero diagonal, with baby steps shared within
 * each block-column (inputs are rotated once per distinct diagonal). */
u64
diagonal_method_rotations(const BlockedStructure& s)
{
    u64 rotations = 0;
    // Distinct nonzero diagonal indices per block-column (rotations of the
    // same input ciphertext are shared across the column's blocks).
    for (u64 bc = 0; bc < s.col_blocks(); ++bc) {
        std::set<u64> indices;
        for (u64 br = 0; br < s.row_blocks(); ++br) {
            const auto it = s.blocks.find({br, bc});
            if (it == s.blocks.end()) continue;
            for (u64 k : it->second) {
                if (k != 0) indices.insert(k);
            }
        }
        rotations += indices.size();
    }
    return rotations;
}

}  // namespace

LeeLayerCounts
lee_conv_counts(const Conv2dSpec& spec, const TensorLayout& in, u64 slots)
{
    LeeLayerCounts counts;
    // Step 1: non-strided convolution at the input gap (their parallel
    // multiplexed convolution), evaluated with the diagonal method.
    Conv2dSpec unstrided = spec;
    unstrided.stride = 1;
    const TensorLayout mid = lin::conv_output_layout(unstrided, in);
    const BlockedStructure conv =
        lin::build_conv_structure(unstrided, in, mid, slots);
    counts.rotations += diagonal_method_rotations(conv);
    counts.pmults += conv.num_diagonals();
    counts.depth = 1;

    if (spec.stride > 1) {
        // Step 2: mask-and-collect - a permutation gathering the strided
        // positions of the dense output into the gap * stride multiplexed
        // layout, costing one more level and its own rotations.
        const TensorLayout out(spec.out_channels, spec.out_h(in.height),
                               spec.out_w(in.width), in.gap * spec.stride);
        BlockedStructure collect;
        collect.rows = out.total_slots();
        collect.cols = mid.total_slots();
        collect.block_dim = slots;
        std::map<std::pair<u64, u64>, std::set<u64>> sets;
        for (int c = 0; c < out.channels; ++c) {
            for (int y = 0; y < out.height; ++y) {
                for (int x = 0; x < out.width; ++x) {
                    const u64 row = out.slot_of(c, y, x);
                    const u64 col =
                        mid.slot_of(c, y * spec.stride, x * spec.stride);
                    sets[{row / slots, col / slots}].insert(
                        ((col % slots) + slots - (row % slots)) % slots);
                }
            }
        }
        for (auto& [key, set] : sets) {
            collect.blocks[key] = {set.begin(), set.end()};
        }
        counts.rotations += diagonal_method_rotations(collect);
        counts.pmults += collect.num_diagonals();
        counts.depth = 2;
    }
    return counts;
}

LeeLayerCounts
lee_linear_counts(int out_features, const TensorLayout& in, u64 slots)
{
    LeeLayerCounts counts;
    const BlockedStructure s =
        lin::build_linear_structure(out_features, in, slots);
    counts.rotations = diagonal_method_rotations(s);
    counts.pmults = s.num_diagonals();
    counts.depth = 1;
    return counts;
}

LeeNetworkCounts
lee_network_counts(const nn::Network& net, u64 slots)
{
    LeeNetworkCounts total;
    // Walk the graph propagating Lee-style multiplexed layouts (gap grows
    // with stride, exactly as in Orion; the difference is in how each
    // layer is evaluated, not in the layouts).
    std::vector<int> gap(static_cast<std::size_t>(net.num_layers()), 1);
    for (int id = 0; id < net.num_layers(); ++id) {
        const nn::Layer& l = net.layer(id);
        const int in_gap =
            l.inputs.empty() ? 1
                             : gap[static_cast<std::size_t>(l.inputs[0])];
        gap[static_cast<std::size_t>(id)] = in_gap;
        const nn::Shape in_shape =
            l.inputs.empty() ? l.out_shape : net.shape_of(l.inputs[0]);

        switch (l.kind) {
        case nn::LayerKind::kConv2d: {
            const TensorLayout in(in_shape.c, in_shape.h, in_shape.w,
                                  in_gap);
            const LeeLayerCounts c = lee_conv_counts(l.conv, in, slots);
            total.rotations += c.rotations;
            total.pmults += c.pmults;
            total.mult_depth_linear += c.depth;
            gap[static_cast<std::size_t>(id)] = in_gap * l.conv.stride;
            break;
        }
        case nn::LayerKind::kAvgPool2d: {
            lin::Conv2dSpec spec;
            spec.in_channels = spec.out_channels = in_shape.c;
            spec.kernel_h = spec.kernel_w = l.pool_kernel;
            spec.stride = l.pool_stride;
            spec.pad = l.pool_pad;
            spec.groups = in_shape.c;
            const TensorLayout in(in_shape.c, in_shape.h, in_shape.w,
                                  in_gap);
            const LeeLayerCounts c = lee_conv_counts(spec, in, slots);
            total.rotations += c.rotations;
            total.pmults += c.pmults;
            total.mult_depth_linear += c.depth;
            gap[static_cast<std::size_t>(id)] = in_gap * l.pool_stride;
            break;
        }
        case nn::LayerKind::kLinear: {
            // The layout feeding the FC layer: nearest non-flat producer.
            int src = l.inputs[0];
            while (net.layer(src).kind == nn::LayerKind::kFlatten) {
                src = net.layer(src).inputs[0];
            }
            const nn::Shape s = net.shape_of(src);
            const TensorLayout in =
                s.flat ? TensorLayout(1, 1, s.features, 1)
                       : TensorLayout(s.c, s.h, s.w,
                                      gap[static_cast<std::size_t>(src)]);
            const LeeLayerCounts c =
                lee_linear_counts(l.out_features, in, slots);
            total.rotations += c.rotations;
            total.pmults += c.pmults;
            total.mult_depth_linear += c.depth;
            gap[static_cast<std::size_t>(id)] = 1;
            break;
        }
        default:
            break;
        }
    }
    return total;
}

}  // namespace orion::baselines
