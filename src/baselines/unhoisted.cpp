#include "src/baselines/unhoisted.h"

#include <optional>

namespace orion::baselines {

ckks::Ciphertext
apply_unhoisted(const ckks::Evaluator& eval, const ckks::Encoder& encoder,
                const lin::DiagonalMatrix& m, const lin::BsgsPlan& plan,
                int level, double scale, const ckks::Ciphertext& ct)
{
    ORION_CHECK(ct.level() == level, "input level mismatch");
    const u64 dim = m.dim();

    // Baby steps: every rotation pays the full (un-hoisted) key switch.
    std::map<u64, ckks::Ciphertext> babies;
    for (u64 b : plan.baby_steps) {
        babies.emplace(b, eval.rotate(ct, static_cast<int>(b)));
    }

    std::optional<ckks::Ciphertext> total;
    std::vector<double> rotated(dim);
    for (const auto& [g, terms] : plan.groups) {
        std::optional<ckks::Ciphertext> inner;
        for (const lin::BsgsPlan::Term& term : terms) {
            // Fhelipe-style: encode the diagonal now, on the critical path.
            const std::vector<double>* diag = m.diagonal(term.diag);
            ORION_ASSERT(diag != nullptr);
            for (u64 t = 0; t < dim; ++t) {
                rotated[t] = (*diag)[(t + dim - g) % dim];
            }
            const ckks::Plaintext pt = encoder.encode(rotated, level, scale);
            ckks::Ciphertext part = eval.mul_plain(babies.at(term.baby), pt);
            if (inner.has_value()) {
                eval.add_inplace(*inner, part);
            } else {
                inner = std::move(part);
            }
        }
        ckks::Ciphertext shifted = eval.rotate(*inner, static_cast<int>(g));
        if (total.has_value()) {
            eval.add_inplace(*total, shifted);
        } else {
            total = std::move(shifted);
        }
    }
    eval.rescale_inplace(*total);
    return *total;
}

}  // namespace orion::baselines
