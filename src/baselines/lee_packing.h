#ifndef ORION_SRC_BASELINES_LEE_PACKING_H_
#define ORION_SRC_BASELINES_LEE_PACKING_H_

/**
 * @file
 * Baseline: the multiplexed parallel convolutions of Lee et al. (ICML'22),
 * the state-of-the-art packing Orion's single-shot multiplexing improves
 * on (Section 4.3, Table 3).
 *
 * Differences from Orion, reproduced here structurally so rotation counts
 * and depths are *counted*, not assumed:
 *   1. No BSGS over the convolution's diagonals: the packed-SISO lineage
 *      performs one ciphertext rotation per filter tap interaction (the
 *      plain diagonal method, O(f) instead of O(sqrt(f))).
 *   2. Strided convolutions take two multiplicative levels: a non-strided
 *      convolution at the input gap, then a mask-and-collect step that
 *      gathers the strided outputs into the multiplexed layout (Figure 5
 *      of Lee et al.; Orion fuses this into the preprocessed matrix).
 */

#include "src/linalg/toeplitz.h"
#include "src/nn/network.h"

namespace orion::baselines {

/** Counted costs of one linear layer under Lee et al.'s scheme. */
struct LeeLayerCounts {
    u64 rotations = 0;
    u64 pmults = 0;
    int depth = 1;  ///< 2 for strided convolutions (mask + collect)
};

/** Costs of a convolution (or pooling) layer under Lee et al. packing. */
LeeLayerCounts lee_conv_counts(const lin::Conv2dSpec& spec,
                               const lin::TensorLayout& in, u64 slots);

/** Costs of a fully-connected layer (diagonal method, no BSGS). */
LeeLayerCounts lee_linear_counts(int out_features,
                                 const lin::TensorLayout& in, u64 slots);

/** Aggregate counts over a whole network. */
struct LeeNetworkCounts {
    u64 rotations = 0;
    u64 pmults = 0;
    int mult_depth_linear = 0;  ///< levels consumed by linear layers only
};

LeeNetworkCounts lee_network_counts(const nn::Network& net, u64 slots);

}  // namespace orion::baselines

#endif  // ORION_SRC_BASELINES_LEE_PACKING_H_
