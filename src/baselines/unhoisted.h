#ifndef ORION_SRC_BASELINES_UNHOISTED_H_
#define ORION_SRC_BASELINES_UNHOISTED_H_

/**
 * @file
 * Baseline: matrix-vector products without hoisting and with on-the-fly
 * plaintext encoding - the two execution-strategy differences Table 4
 * attributes Fhelipe's slower convolutions to:
 *   1. every rotation pays the full key-switch (no shared decomposition,
 *      no deferred mod-down), and
 *   2. diagonal plaintexts are encoded during the convolution (iFFT + NTT
 *      on the critical path) instead of at compile time.
 */

#include "src/linalg/bsgs.h"

namespace orion::baselines {

/**
 * Evaluates y = M x with the same BSGS schedule as HeDiagonalMatrix but
 * un-hoisted rotations and per-use plaintext encoding. Same result, same
 * level consumption; strictly more work per rotation.
 */
ckks::Ciphertext apply_unhoisted(const ckks::Evaluator& eval,
                                 const ckks::Encoder& encoder,
                                 const lin::DiagonalMatrix& m,
                                 const lin::BsgsPlan& plan, int level,
                                 double scale, const ckks::Ciphertext& ct);

}  // namespace orion::baselines

#endif  // ORION_SRC_BASELINES_UNHOISTED_H_
