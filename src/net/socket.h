#ifndef ORION_SRC_NET_SOCKET_H_
#define ORION_SRC_NET_SOCKET_H_

/**
 * @file
 * Thin RAII layer over POSIX TCP sockets: `Conn` (one established
 * connection, always non-blocking at the fd level) and `Listener` (a bound
 * accepting socket). Two usage styles share the same Conn:
 *
 *  - deadline IO (`read_exact` / `write_all`): poll-based waits that make
 *    a non-blocking fd behave like a blocking one with a timeout. Clients
 *    and the router's backend links use this.
 *  - event-loop IO (`read_some` / `write_some`): single non-blocking
 *    syscalls that report would-block explicitly. The FrameServer poll
 *    loop uses this.
 *
 * All failures throw orion::Error with the errno text; timeouts throw
 * TimeoutError (a distinct type so retry loops can tell a slow peer from
 * a dead one). SIGPIPE is never raised (sends use MSG_NOSIGNAL).
 */

#include <string>
#include <vector>

#include "src/common.h"

namespace orion::net {

/** A deadline expired before the requested IO completed. */
class TimeoutError : public Error {
  public:
    using Error::Error;
};

/** The peer closed the connection (EOF mid-read, ECONNRESET, EPIPE). */
class DisconnectError : public Error {
  public:
    using Error::Error;
};

/** Splits "host:port"; throws on a missing/invalid port. */
void parse_host_port(const std::string& addr, std::string& host, int& port);

/** One established TCP connection (move-only; closes on destruction). */
class Conn {
  public:
    Conn() = default;
    /** Adopts a connected fd: sets O_NONBLOCK and TCP_NODELAY. */
    explicit Conn(int fd);
    ~Conn();

    Conn(Conn&& other) noexcept;
    Conn& operator=(Conn&& other) noexcept;
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    /**
     * Connects to host:port, waiting at most `timeout_s` for the TCP
     * handshake. Throws TimeoutError / Error; never returns an invalid
     * Conn.
     */
    static Conn connect(const std::string& host, int port, double timeout_s);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();
    /**
     * Half-closes both directions without releasing the fd: a thread
     * blocked reading this Conn wakes with EOF. Unlike close(), safe to
     * call while another thread is inside read_exact/poll on the same fd
     * (the fd number cannot be reused until close()).
     */
    void shutdown_both();

    // ---- deadline IO (poll until complete or timeout) ----

    /** Reads exactly n bytes; TimeoutError / DisconnectError on failure. */
    void read_exact(void* dst, std::size_t n, double timeout_s);
    /** Writes all n bytes; TimeoutError / DisconnectError on failure. */
    void write_all(const void* src, std::size_t n, double timeout_s);

    // ---- event-loop IO (one non-blocking syscall) ----

    enum class Io {
        kOk,          ///< made progress (*done bytes)
        kWouldBlock,  ///< no progress, retry when poll reports readiness
        kEof,         ///< orderly shutdown by the peer (read only)
        kClosed,      ///< hard error (reset, pipe); treat as disconnect
    };

    /** Appends up to `max_chunk` available bytes to buf. */
    Io read_some(std::vector<u8>& buf, std::size_t max_chunk,
                 std::size_t* done);
    /** Writes up to n bytes without blocking. */
    Io write_some(const u8* data, std::size_t n, std::size_t* done);

  private:
    int fd_ = -1;
};

/** A bound, listening TCP socket (loopback-reachable; move-only). */
class Listener {
  public:
    /** Binds to `port` on all interfaces (0 = kernel-assigned). */
    explicit Listener(int port, int backlog = 64);
    ~Listener();

    Listener(Listener&& other) noexcept;
    Listener& operator=(Listener&& other) noexcept;
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    /** The actual bound port (resolves port-0 binds). */
    int port() const { return port_; }
    void close();

    /** Non-blocking accept: an invalid Conn when nothing is pending. */
    Conn accept();

  private:
    int fd_ = -1;
    int port_ = 0;
};

/** Monotonic seconds (steady_clock) for deadline arithmetic. */
double mono_seconds();

}  // namespace orion::net

#endif  // ORION_SRC_NET_SOCKET_H_
