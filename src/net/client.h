#ifndef ORION_SRC_NET_CLIENT_H_
#define ORION_SRC_NET_CLIENT_H_

/**
 * @file
 * net::NetClient — the socket-backed mode of the serving client. It owns
 * a serve::ServeClient (all key material and crypto stay client-side) and
 * a blocking Conn to either a ServeEndpoint or a Router; the two are
 * indistinguishable on the wire, which is the point.
 *
 * Reliability contract (what ISSUE 9 calls "connect/request retry with
 * capped exponential backoff"):
 *  - connect() retries the TCP dial with exponential backoff
 *    (base * 2^attempt, capped) up to max_attempts.
 *  - infer() resends on *retryable* wire errors (overloaded, shard_down,
 *    shutting_down) after the same backoff schedule, re-registers the key
 *    bundle first when the error says needs_reregister (unknown_session —
 *    the router failover path), and transparently reconnects on link
 *    timeouts/disconnects. Exhausted attempts throw serve::RequestError
 *    with the last error's mapped kind; permanent wire errors throw
 *    immediately.
 *
 * The session is named by a client-chosen nonzero 64-bit token (see
 * endpoint.h); NetClient stamps it into the ServeClient so every Request
 * record carries it.
 */

#include "src/net/frame.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

namespace orion::net {

struct ClientOptions {
    double connect_timeout_s = 2.0;  ///< per TCP dial attempt
    double io_timeout_s = 60.0;      ///< per frame send/recv (FHE is slow)
    int max_attempts = 8;            ///< dial / resend attempts
    double backoff_base_s = 0.05;    ///< first retry delay
    double backoff_cap_s = 2.0;      ///< backoff ceiling
    u64 max_frame_bytes = kDefaultMaxFrameBytes;
};

/** Counters of the reliability machinery (asserted by tests). */
struct RetryStats {
    u64 connects = 0;     ///< successful dials (1 + reconnects)
    u64 reconnects = 0;   ///< dials after a link failure
    u64 retries = 0;      ///< resends after retryable wire errors
    u64 reregisters = 0;  ///< bundle re-sends (failover adoptions)
};

class NetClient {
  public:
    /**
     * Dials host:port (with backoff) and registers `crypto`'s key bundle
     * under `session_token` (nonzero, globally unique per client — e.g.
     * splitmix64 of a client index). `crypto` must outlive the client.
     */
    NetClient(serve::ServeClient& crypto, std::string host, int port,
              u64 session_token, ClientOptions opts = {});
    ~NetClient();

    NetClient(const NetClient&) = delete;
    NetClient& operator=(const NetClient&) = delete;

    /** Encrypt, send, retry per the contract above, decrypt. */
    std::vector<double> infer(const std::vector<double>& input);
    /** infer() without the final decrypt: the raw Response record. */
    ckks::serial::Bytes infer_raw(const std::vector<double>& input);

    Pong ping();
    /** The peer's /metrics-style exposition text. */
    std::string fetch_metrics();
    /** Unregisters the session (best effort) and closes the link. */
    void close();

    u64 token() const { return token_; }
    serve::ServeClient& crypto() { return crypto_; }
    const RetryStats& retry_stats() const { return rstats_; }

  private:
    /** Dials with capped exponential backoff; throws when exhausted. */
    void connect_with_backoff();
    /** (Re-)sends the key bundle; throws on a non-ok reply. */
    void do_register();
    void ensure_connected();
    /** One frame round trip on the live conn; link errors propagate. */
    Frame rpc(MsgType type, std::span<const u8> payload);
    void backoff_sleep(int attempt) const;

    serve::ServeClient& crypto_;
    std::string host_;
    int port_ = 0;
    u64 token_ = 0;
    ClientOptions opts_;
    Conn conn_;
    bool registered_ = false;
    u64 next_corr_ = 1;
    RetryStats rstats_;
};

}  // namespace orion::net

#endif  // ORION_SRC_NET_CLIENT_H_
