#include "src/net/frame_loop.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "src/core/telemetry.h"

namespace orion::net {

namespace {

/** Shared transport counters in the global registry, captured once. */
struct LoopMetrics {
    telemetry::Registry& reg = telemetry::Registry::global();
    telemetry::Counter& accepted = reg.counter("net.conn.accepted");
    telemetry::Counter& closed = reg.counter("net.conn.closed");
    telemetry::Counter& read_timeout = reg.counter("net.conn.read_timeout");
    telemetry::Counter& write_timeout =
        reg.counter("net.conn.write_timeout");
    telemetry::Counter& frame_rejected =
        reg.counter("net.conn.frame_rejected");
    telemetry::Counter& bytes_rx = reg.counter("net.bytes.rx");
    telemetry::Counter& bytes_tx = reg.counter("net.bytes.tx");
    telemetry::Counter& frames_rx = reg.counter("net.frames.rx");
    telemetry::Counter& frames_tx = reg.counter("net.frames.tx");
};

LoopMetrics&
loop_metrics()
{
    static LoopMetrics m;
    return m;
}

constexpr std::size_t kReadChunk = 1 << 16;

}  // namespace

FrameServer::FrameServer(Listener listener, Options opts,
                         FrameHandler on_frame, CloseHandler on_close)
    : listener_(std::move(listener)), opts_(opts),
      on_frame_(std::move(on_frame)), on_close_(std::move(on_close))
{
    ORION_CHECK(listener_.valid(), "FrameServer needs a bound listener");
    ORION_CHECK(on_frame_ != nullptr, "FrameServer needs a frame handler");
    ORION_CHECK(::pipe(wake_pipe_) == 0,
                "wake pipe creation failed: " << std::strerror(errno));
    // The loop drains the pipe non-blockingly; writers must never stall.
    for (const int fd : wake_pipe_) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    open_gauge_collector_ = telemetry::Registry::global().add_collector(
        [this](std::vector<telemetry::Sample>& out) {
            out.push_back({"net.conn.open",
                           static_cast<double>(open_conns()),
                           telemetry::Sample::Kind::kGauge});
        });
}

FrameServer::~FrameServer()
{
    stop();
    telemetry::Registry::global().remove_collector(open_gauge_collector_);
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void
FrameServer::start()
{
    ORION_CHECK(!thread_.joinable(), "FrameServer already started");
    thread_ = std::thread([this] { loop(); });
}

void
FrameServer::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_) return;
        stop_ = true;
    }
    wake();
    if (thread_.joinable()) thread_.join();
    std::map<u64, ConnState> orphaned;
    {
        std::lock_guard<std::mutex> lk(mu_);
        orphaned.swap(conns_);
    }
    loop_metrics().closed.add(orphaned.size());
}

void
FrameServer::wake()
{
    const u8 b = 1;
    (void)!::write(wake_pipe_[1], &b, 1);
}

bool
FrameServer::send(u64 conn_id, MsgType type, u64 corr,
                  std::span<const u8> payload)
{
    ckks::serial::Bytes wire = encode_frame(type, corr, payload);
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(conn_id);
        if (it == conns_.end()) return false;
        it->second.wq.push_back(std::move(wire));
    }
    loop_metrics().frames_tx.add();
    wake();
    return true;
}

void
FrameServer::close_conn(u64 conn_id)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = conns_.find(conn_id);
        if (it == conns_.end()) return;
        it->second.close_after_flush = true;
    }
    wake();
}

std::size_t
FrameServer::open_conns() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return conns_.size();
}

bool
FrameServer::pump_reads(ConnState& cs,
                        std::vector<std::pair<u64, Frame>>& out, u64 id)
{
    for (;;) {
        std::size_t got = 0;
        const Conn::Io rc = cs.conn.read_some(cs.rbuf, kReadChunk, &got);
        if (rc == Conn::Io::kEof || rc == Conn::Io::kClosed) return false;
        if (got > 0) loop_metrics().bytes_rx.add(got);

        // Assemble every complete frame currently buffered.
        for (;;) {
            const std::size_t avail = cs.rbuf.size() - cs.rpos;
            if (avail < kFrameHeaderBytes) break;
            FrameHeader h;
            try {
                TELEM_SPAN("net.frame.decode");
                h = decode_frame_header(
                    std::span<const u8>(cs.rbuf.data() + cs.rpos,
                                        kFrameHeaderBytes),
                    opts_.max_frame_bytes);
            } catch (const Error&) {
                // Garbage on the wire: the stream position is unusable.
                loop_metrics().frame_rejected.add();
                return false;
            }
            if (avail - kFrameHeaderBytes <
                static_cast<std::size_t>(h.payload_len)) {
                break;
            }
            Frame f;
            f.type = h.type;
            f.corr = h.corr;
            const u8* body = cs.rbuf.data() + cs.rpos + kFrameHeaderBytes;
            f.payload.assign(body, body + h.payload_len);
            cs.rpos += kFrameHeaderBytes +
                       static_cast<std::size_t>(h.payload_len);
            loop_metrics().frames_rx.add();
            out.emplace_back(id, std::move(f));
        }
        // Compact the consumed prefix once it dominates the buffer.
        if (cs.rpos > 0 && (cs.rpos == cs.rbuf.size() ||
                            cs.rpos > (std::size_t{1} << 20))) {
            cs.rbuf.erase(cs.rbuf.begin(),
                          cs.rbuf.begin() +
                              static_cast<std::ptrdiff_t>(cs.rpos));
            cs.rpos = 0;
        }
        // Slow-loris bookkeeping: a partial frame starts (or keeps) the
        // clock; an empty buffer clears it.
        if (cs.rbuf.size() == cs.rpos) {
            cs.partial_since = 0.0;
        } else if (got > 0 || cs.partial_since == 0.0) {
            // Progress (or a fresh partial) resets the deadline: only a
            // *stalled* partial frame trips the timeout.
            cs.partial_since = mono_seconds();
        }
        if (rc == Conn::Io::kWouldBlock) return true;
    }
}

bool
FrameServer::pump_writes(ConnState& cs)
{
    while (!cs.wq.empty()) {
        const ckks::serial::Bytes& buf = cs.wq.front();
        std::size_t done = 0;
        const Conn::Io rc = cs.conn.write_some(buf.data() + cs.wq_off,
                                               buf.size() - cs.wq_off,
                                               &done);
        if (rc == Conn::Io::kClosed) return false;
        if (done > 0) {
            loop_metrics().bytes_tx.add(done);
            cs.wq_off += done;
            cs.write_stalled_since = 0.0;
            if (cs.wq_off == buf.size()) {
                cs.wq.pop_front();
                cs.wq_off = 0;
            }
            continue;
        }
        if (cs.write_stalled_since == 0.0) {
            cs.write_stalled_since = mono_seconds();
        }
        return true;  // would block; poll will re-arm POLLOUT
    }
    cs.write_stalled_since = 0.0;
    return true;
}

void
FrameServer::loop()
{
    std::vector<struct pollfd> pfds;
    std::vector<u64> pfd_conn;  // conn id per pollfd (0 for specials)
    std::vector<std::pair<u64, Frame>> ready;
    std::vector<u64> closed;

    for (;;) {
        pfds.clear();
        pfd_conn.clear();
        pfds.push_back({wake_pipe_[0], POLLIN, 0});
        pfd_conn.push_back(0);
        pfds.push_back({listener_.fd(), POLLIN, 0});
        pfd_conn.push_back(0);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stop_) return;
            for (auto& [id, cs] : conns_) {
                short events = POLLIN;
                if (!cs.wq.empty()) events |= POLLOUT;
                pfds.push_back({cs.conn.fd(), events, 0});
                pfd_conn.push_back(id);
            }
        }

        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), 50);
        if (rc < 0 && errno != EINTR) return;  // unrecoverable

        // Drain wakeups.
        if (pfds[0].revents != 0) {
            u8 scratch[64];
            while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
            }
        }

        // Accept everything pending.
        if (pfds[1].revents != 0) {
            for (;;) {
                Conn c = listener_.accept();
                if (!c.valid()) break;
                std::lock_guard<std::mutex> lk(mu_);
                ConnState cs;
                cs.conn = std::move(c);
                conns_.emplace(next_conn_id_++, std::move(cs));
                loop_metrics().accepted.add();
            }
        }

        ready.clear();
        closed.clear();
        const double now = mono_seconds();
        {
            std::lock_guard<std::mutex> lk(mu_);
            for (std::size_t i = 2; i < pfds.size(); ++i) {
                auto it = conns_.find(pfd_conn[i]);
                if (it == conns_.end()) continue;
                ConnState& cs = it->second;
                bool ok = true;
                if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) !=
                    0) {
                    // POLLHUP can still carry buffered bytes; read first.
                    ok = pump_reads(cs, ready, it->first);
                }
                if (ok && (pfds[i].revents & POLLIN) != 0) {
                    ok = pump_reads(cs, ready, it->first);
                }
                if (ok && (pfds[i].revents & POLLOUT) != 0) {
                    ok = pump_writes(cs);
                }
                if (ok && cs.partial_since != 0.0 &&
                    now - cs.partial_since > opts_.read_timeout_s) {
                    loop_metrics().read_timeout.add();
                    ok = false;
                }
                if (ok && cs.write_stalled_since != 0.0 &&
                    now - cs.write_stalled_since > opts_.write_timeout_s) {
                    loop_metrics().write_timeout.add();
                    ok = false;
                }
                if (ok && cs.close_after_flush && cs.wq.empty()) {
                    ok = false;
                }
                if (!ok) {
                    closed.push_back(it->first);
                    conns_.erase(it);
                    loop_metrics().closed.add();
                }
            }
        }

        // Callbacks run off the lock: handlers may send()/close_conn().
        for (auto& [id, frame] : ready) {
            on_frame_(id, std::move(frame));
        }
        if (on_close_) {
            for (const u64 id : closed) on_close_(id);
        }
    }
}

}  // namespace orion::net
