#ifndef ORION_SRC_NET_FRAME_H_
#define ORION_SRC_NET_FRAME_H_

/**
 * @file
 * Orion-Net framing: every message on a serving TCP connection is one
 * length-prefixed frame,
 *
 *   [4]  magic   "ONF1"
 *   [1]  version (kFrameVersion)
 *   [1]  type    (MsgType)
 *   [8]  correlation id (echoed verbatim in the reply; 0 = none)
 *   [8]  payload byte count (must not exceed the receiver's cap)
 *   [..] payload
 *
 * The payload of kRequest/kResponse/kRegister frames is (or contains) an
 * unmodified serve::wire record — the transport moves the existing
 * transport-agnostic byte strings around, it does not reinterpret them.
 * Control payloads (errors, pongs) are built with serial::ByteWriter and
 * decoded through serial::ByteReader, so hostile lengths/counts hit the
 * same bounds-checked validation as every other wire artifact.
 *
 * Hostile-input policy: a frame header that fails validation (bad magic,
 * unknown version/type, payload above the cap) poisons the connection —
 * the stream position can no longer be trusted, so the receiver closes it
 * (FrameServer) or throws (blocking recv_frame).
 */

#include "src/ckks/serial.h"
#include "src/net/socket.h"

namespace orion::net {

inline constexpr u8 kFrameMagic[4] = {'O', 'N', 'F', '1'};
inline constexpr u8 kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 1 + 8 + 8;
/** Default per-frame payload cap (key bundles are the largest frames). */
inline constexpr u64 kDefaultMaxFrameBytes = u64(256) << 20;

/** Frame discriminator. Requests carry a correlation id; replies echo it. */
enum class MsgType : u8 {
    kRegister = 1,    ///< c->s: u64 session token + KeyBundle record
    kRegisterOk = 2,  ///< s->c: u64 session token
    kUnregister = 3,  ///< c->s: u64 session token
    kUnregisterOk = 4,  ///< s->c: u64 session token + u8 was_known
    kRequest = 5,     ///< c->s: serve Request record (session = token)
    kResponse = 6,    ///< s->c: serve Response record
    kError = 7,       ///< s->c: u8 ErrCode + string message
    kPing = 8,        ///< health check (empty payload)
    kPong = 9,        ///< u64 queue_depth, inflight, sessions, completed
    kMetrics = 10,    ///< c->s: scrape request (empty payload)
    kMetricsText = 11,  ///< s->c: Prometheus-style exposition string
};
const char* to_string(MsgType t);

/**
 * Typed request failure on the wire. The split that matters operationally:
 * kOverloaded/kShardDown/kShuttingDown are *retryable* (transient server
 * state — back off and resend the same request), kUnknownSession is
 * retryable *after re-registering* (the receiving process has no keys for
 * this session — the failover path), and the rest are permanent for that
 * request.
 */
enum class ErrCode : u8 {
    kOverloaded = 1,      ///< submission queue full (try_submit rejected)
    kUnknownSession = 2,  ///< no keys registered here; re-register first
    kBadSession = 3,      ///< keys vanished mid-request (unregistered)
    kDecodeError = 4,     ///< malformed request record
    kExecError = 5,       ///< execution failed under valid keys
    kShardDown = 6,       ///< router: the owning backend died mid-flight
    kShuttingDown = 7,    ///< endpoint is draining
    kBadFrame = 8,        ///< unhandled/invalid frame for this peer
    kInternal = 9,
};
const char* to_string(ErrCode c);
/** True when resending the identical request later can succeed. */
bool retryable(ErrCode c);
/** True when the client must re-send its key bundle before retrying. */
bool needs_reregister(ErrCode c);

/** One decoded frame. */
struct Frame {
    MsgType type = MsgType::kError;
    u64 corr = 0;
    ckks::serial::Bytes payload;
};

/** Header + payload as one contiguous wire image. */
ckks::serial::Bytes encode_frame(MsgType type, u64 corr,
                                 std::span<const u8> payload);

/**
 * Validates a wire header (magic, version, known type, length <= cap).
 * Throws orion::Error naming the defect; the caller must then drop the
 * connection.
 */
struct FrameHeader {
    MsgType type;
    u64 corr;
    u64 payload_len;
};
FrameHeader decode_frame_header(std::span<const u8> header,
                                u64 max_payload_bytes);

// ---- blocking frame IO (client + router backend links) ----

void send_frame(Conn& conn, MsgType type, u64 corr,
                std::span<const u8> payload, double timeout_s);
Frame recv_frame(Conn& conn, double timeout_s,
                 u64 max_payload_bytes = kDefaultMaxFrameBytes);

// ---- typed control payloads ----

struct WireError {
    ErrCode code = ErrCode::kInternal;
    std::string message;
};
ckks::serial::Bytes encode_error(ErrCode code, const std::string& message);
WireError decode_error(std::span<const u8> payload);

struct Pong {
    u64 queue_depth = 0;
    u64 inflight = 0;
    u64 sessions = 0;
    u64 completed = 0;
};
ckks::serial::Bytes encode_pong(const Pong& p);
Pong decode_pong(std::span<const u8> payload);

/** [u64 token][record bytes] — kRegister's payload. */
ckks::serial::Bytes encode_register(u64 token, std::span<const u8> bundle);
u64 decode_register_token(std::span<const u8> payload);
/** The bundle record bytes of a kRegister payload (view, no copy). */
std::span<const u8> register_bundle(std::span<const u8> payload);

ckks::serial::Bytes encode_u64(u64 v);
u64 decode_u64(std::span<const u8> payload);

ckks::serial::Bytes encode_text(const std::string& s);
std::string decode_text(std::span<const u8> payload);

}  // namespace orion::net

#endif  // ORION_SRC_NET_FRAME_H_
