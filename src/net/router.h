#ifndef ORION_SRC_NET_ROUTER_H_
#define ORION_SRC_NET_ROUTER_H_

/**
 * @file
 * net::Router — the sharded serving front-end. Clients speak Orion-Net
 * frames to the router exactly as they would to a single ServeEndpoint;
 * the router shards sessions across N backend endpoints and hides which
 * process actually executes.
 *
 * Shard placement is rendezvous (highest-random-weight) hashing of the
 * client's session token over the *currently alive* shard set: each
 * (token, shard) pair gets a deterministic pseudo-random score and the
 * session lives on the alive shard with the highest score. Unlike modulo
 * hashing, a shard death only moves the sessions that lived on the dead
 * shard — everyone else's placement is unchanged.
 *
 * Failure protocol (the contract tests/test_net.cpp pins):
 *  - A periodic health thread pings every shard; a missed pong deadline,
 *    a connect failure, or any link-level IO error marks the shard dead.
 *  - Marking a shard dead *drains* it: every in-flight request forwarded
 *    to it is answered with the retryable `shard_down` error (clients
 *    back off and resend), and every session mapped to it is forgotten —
 *    counted in `router.shard.failover`.
 *  - The next request for a forgotten session gets `unknown_session`,
 *    which tells the client to re-send its key bundle; the re-register
 *    lands on the surviving shard rendezvous hashing now picks. No state
 *    is lost because the client owns the keys — the router deliberately
 *    caches no bundles.
 *  - Dead shards are re-dialed on every health tick; a reconnected shard
 *    rejoins the rendezvous set empty (sessions return only when clients
 *    re-register, or naturally as new sessions hash onto it).
 *
 * Backpressure propagates end to end: a backend's `overloaded` rejection
 * (its InferenceServer::try_submit refusing a full queue) flows through
 * the router to the client unchanged as a typed retryable error.
 *
 * Router metrics live in a private registry (router.* counters, the
 * forward-hop histogram) and metrics_text() appends the process-global
 * registry (net.* transport counters) — same shape as InferenceServer.
 */

#include <atomic>
#include <memory>
#include <thread>

#include "src/core/telemetry.h"
#include "src/net/frame_loop.h"

namespace orion::net {

struct RouterOptions {
    FrameServer::Options net;
    double health_interval_s = 0.25;  ///< ping cadence per shard
    double pong_timeout_s = 1.0;      ///< missed-pong death sentence
    double connect_timeout_s = 1.0;   ///< backend dial timeout
    double shard_io_timeout_s = 5.0;  ///< backend link write timeout
    /**
     * Backend link read timeout. Must comfortably exceed the health
     * interval (pings keep the link busy even while a multi-second FHE
     * request executes); a silent link beyond this is dead.
     */
    double shard_read_timeout_s = 10.0;
};

class Router {
  public:
    /** Dials every "host:port" in `backends` from the health thread (a
     *  backend may come up after the router; it joins when reachable). */
    Router(std::vector<std::string> backends, Listener listener,
           RouterOptions opts = {});
    ~Router();

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    int port() const { return fs_.port(); }
    void stop();

    std::size_t alive_shards() const;
    std::size_t session_count() const;
    /** Blocks until >= n shards are alive or the deadline passes. */
    bool wait_for_shards(std::size_t n, double timeout_s) const;

    std::string metrics_text() const;
    const telemetry::Registry& metrics() const { return metrics_; }

  private:
    struct Pend {
        u64 conn_id = 0;  ///< front conn awaiting the reply (0 = ping)
        u64 corr = 0;     ///< client's correlation id
        MsgType kind = MsgType::kPing;
        u64 token = 0;    ///< session token (register/unregister)
        double t0 = 0.0;
        double deadline = 0.0;  ///< pings only
    };

    struct Shard {
        std::string addr;
        std::string host;
        int port = 0;
        std::atomic<bool> alive{false};
        std::atomic<bool> ever_connected{false};
        std::mutex wmu;  ///< serializes writes + conn swap
        Conn conn;
        std::thread reader;
        std::mutex pmu;
        std::map<u64, Pend> pending;
    };

    void on_front_frame(u64 conn_id, Frame&& f);
    void handle_front_register(u64 conn_id, Frame&& f);
    void handle_front_request(u64 conn_id, Frame&& f);
    void handle_front_unregister(u64 conn_id, Frame&& f);

    /** Alive-shard index with the max rendezvous score (-1 when none). */
    int pick_shard(u64 token) const;
    /** Sends one frame down a shard link; marks it dead on failure. */
    bool shard_send(std::size_t idx, MsgType type, u64 corr,
                    std::span<const u8> payload);
    /** Registers a pending entry and forwards; replies shard_down to the
     *  client when the link fails. */
    void forward(std::size_t idx, u64 conn_id, Frame&& f, u64 token);
    void shard_reader(std::size_t idx);
    /** The drain protocol: fail in-flight, forget sessions, count. */
    void mark_shard_dead(std::size_t idx, const char* why);
    void health_loop();
    void try_connect(std::size_t idx);
    void send_front_error(u64 conn_id, u64 corr, ErrCode code,
                          const std::string& message);

    RouterOptions opts_;
    std::vector<std::unique_ptr<Shard>> shards_;
    FrameServer fs_;

    mutable std::mutex smu_;  ///< sessions_ map
    std::map<u64, std::size_t> sessions_;  ///< token -> shard index

    std::atomic<u64> next_corr_{1};
    std::atomic<bool> stop_{false};
    std::thread health_;

    telemetry::Registry metrics_;
    telemetry::Counter& m_forwarded_ =
        metrics_.counter("router.requests.forwarded");
    telemetry::Counter& m_replied_ =
        metrics_.counter("router.requests.replied");
    telemetry::Counter& m_registered_ =
        metrics_.counter("router.sessions.registered");
    telemetry::Counter& m_unknown_ =
        metrics_.counter("router.requests.unknown_session");
    telemetry::Counter& m_shard_dead_ =
        metrics_.counter("router.shard.dead");
    telemetry::Counter& m_shard_reconnect_ =
        metrics_.counter("router.shard.reconnected");
    telemetry::Counter& m_failover_ =
        metrics_.counter("router.shard.failover");
    telemetry::Counter& m_health_pings_ =
        metrics_.counter("router.health.pings");
    telemetry::Histogram& m_forward_seconds_ =
        metrics_.histogram("router.forward.seconds");
};

}  // namespace orion::net

#endif  // ORION_SRC_NET_ROUTER_H_
