#ifndef ORION_SRC_NET_FRAME_LOOP_H_
#define ORION_SRC_NET_FRAME_LOOP_H_

/**
 * @file
 * FrameServer: the poll-based accept/read/write loop shared by
 * net::ServeEndpoint (serving backends) and net::Router (the client-facing
 * front). One thread multiplexes the listening socket and every accepted
 * connection:
 *
 *  - non-blocking accept of new connections (each gets a stable u64 id),
 *  - incremental frame assembly per connection (a peer may dribble a
 *    frame byte-by-byte; state is kept per conn, the loop never blocks on
 *    a slow sender),
 *  - hostile-input rejection: a malformed header (bad magic/version/type,
 *    payload above the cap) closes the connection immediately — the
 *    stream position can't be trusted after it,
 *  - slow-loris defense: a connection sitting on a *partial* frame
 *    longer than `read_timeout_s` is dropped (idle conns with no bytes
 *    buffered may idle forever — clients keep conns open between
 *    requests),
 *  - buffered non-blocking writes with a progress timeout, so one
 *    stalled receiver cannot wedge the loop.
 *
 * Completed frames are handed to the owner's callback *off* the internal
 * lock, so handlers may call send()/close_conn() re-entrantly. Handlers
 * run on the loop thread: anything slow (program execution) must be
 * punted to other threads (the endpoint submits to the InferenceServer
 * worker pool and replies from completion threads).
 *
 * Transport metrics land in telemetry::Registry::global():
 * net.conn.{accepted,closed,read_timeout,write_timeout,frame_rejected}
 * counters, a net.conn.open gauge, and net.{bytes,frames}.{rx,tx}.
 */

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "src/net/frame.h"

namespace orion::net {

class FrameServer {
  public:
    struct Options {
        u64 max_frame_bytes = kDefaultMaxFrameBytes;
        /** Max age of a partially received frame before the conn drops. */
        double read_timeout_s = 30.0;
        /** Max stall of a pending write before the conn drops. */
        double write_timeout_s = 30.0;
    };

    /** Complete frame from `conn_id` (runs on the loop thread). */
    using FrameHandler = std::function<void(u64 conn_id, Frame&& frame)>;
    /** `conn_id` disappeared (EOF, error, timeout, or close_conn). */
    using CloseHandler = std::function<void(u64 conn_id)>;

    FrameServer(Listener listener, Options opts, FrameHandler on_frame,
                CloseHandler on_close = {});
    ~FrameServer();

    FrameServer(const FrameServer&) = delete;
    FrameServer& operator=(const FrameServer&) = delete;

    void start();
    /** Stops the loop and closes every connection (idempotent). */
    void stop();

    int port() const { return listener_.port(); }

    /**
     * Queues one frame for `conn_id` (thread-safe; wakes the loop).
     * False when the connection is already gone — the caller's reply has
     * nowhere to go and should be dropped.
     */
    bool send(u64 conn_id, MsgType type, u64 corr,
              std::span<const u8> payload);

    /** Closes after flushing queued writes (thread-safe). */
    void close_conn(u64 conn_id);

    std::size_t open_conns() const;

  private:
    struct ConnState {
        Conn conn;
        std::vector<u8> rbuf;
        std::size_t rpos = 0;  ///< consumed prefix of rbuf
        std::deque<ckks::serial::Bytes> wq;
        std::size_t wq_off = 0;  ///< sent prefix of wq.front()
        double partial_since = 0.0;  ///< 0 = no partial frame pending
        double write_stalled_since = 0.0;  ///< 0 = no pending write
        bool close_after_flush = false;
    };

    void loop();
    void wake();
    /** Drains readable bytes and appends completed frames to `out`.
     *  Returns false when the conn must close (EOF/garbage/overrun). */
    bool pump_reads(ConnState& cs, std::vector<std::pair<u64, Frame>>& out,
                    u64 id);
    /** Flushes queued writes; false when the conn must close. */
    bool pump_writes(ConnState& cs);

    Listener listener_;
    Options opts_;
    FrameHandler on_frame_;
    CloseHandler on_close_;

    mutable std::mutex mu_;
    std::map<u64, ConnState> conns_;
    u64 next_conn_id_ = 1;
    bool stop_ = false;
    int wake_pipe_[2] = {-1, -1};
    std::thread thread_;
    u64 open_gauge_collector_ = 0;  ///< global-registry collector handle
};

}  // namespace orion::net

#endif  // ORION_SRC_NET_FRAME_LOOP_H_
