#ifndef ORION_SRC_NET_ENDPOINT_H_
#define ORION_SRC_NET_ENDPOINT_H_

/**
 * @file
 * net::ServeEndpoint — an InferenceServer behind a TCP listener, so a
 * serving backend runs standalone in its own process (examples/
 * orion_served.cpp) and clients/routers reach it over Orion-Net frames.
 *
 * Session identity across processes: clients name their session with a
 * self-chosen globally unique 64-bit *token* (the session id field of
 * every Request record they send). The endpoint maps token -> the local
 * id its InferenceServer assigned at registration and rewrites the id in
 * place before submission (serve::rewrite_request_session), so the
 * in-process serving stack is completely unaware of the transport. The
 * token is what makes router failover work: any backend the router picks
 * can adopt a session under the same name once the client re-sends its
 * bundle.
 *
 * Threading: the FrameServer loop thread handles frames. Registration
 * decodes the bundle inline (blocking the loop for its duration — large
 * bundles gate other conns' progress, acceptable for a registration-rare
 * workload). Requests are submitted with try_submit — never blocking the
 * loop — and queue-full rejections go back as the typed retryable
 * `overloaded` wire error. Completion threads wait on the server futures
 * and write responses back through the loop's send queue.
 */

#include <condition_variable>
#include <future>
#include <unordered_map>

#include "src/net/frame_loop.h"
#include "src/serve/server.h"

namespace orion::net {

struct EndpointOptions {
    FrameServer::Options net;
    /** Threads draining server futures (0 = the server's max_inflight). */
    int completion_threads = 0;
};

class ServeEndpoint {
  public:
    /** Serves `server` on `listener`; starts immediately. The server
     *  must outlive the endpoint. */
    ServeEndpoint(serve::InferenceServer& server, Listener listener,
                  EndpointOptions opts = {});
    ~ServeEndpoint();

    ServeEndpoint(const ServeEndpoint&) = delete;
    ServeEndpoint& operator=(const ServeEndpoint&) = delete;

    int port() const { return fs_.port(); }
    /** Stops accepting/replying and joins all threads (idempotent). */
    void stop();

    serve::InferenceServer& server() { return server_; }
    /** The wrapped server's exposition (includes global net.* series). */
    std::string metrics_text() const { return server_.metrics_text(); }
    std::size_t open_conns() const { return fs_.open_conns(); }

  private:
    struct Done {
        u64 conn_id = 0;
        u64 corr = 0;
        std::future<serve::ServeReply> fut;
    };

    void on_frame(u64 conn_id, Frame&& f);
    void handle_register(u64 conn_id, const Frame& f);
    void handle_request(u64 conn_id, Frame&& f);
    void completion_loop();
    void send_error(u64 conn_id, u64 corr, ErrCode code,
                    const std::string& message);

    serve::InferenceServer& server_;
    FrameServer fs_;

    std::mutex mu_;
    std::unordered_map<u64, u64> token_to_local_;

    std::mutex done_mu_;
    std::condition_variable done_cv_;
    std::deque<Done> done_;
    bool stop_ = false;
    std::vector<std::thread> completion_;
};

}  // namespace orion::net

#endif  // ORION_SRC_NET_ENDPOINT_H_
