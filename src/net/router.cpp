#include "src/net/router.h"

#include <algorithm>
#include <optional>

#include "src/ckks/sampler.h"
#include "src/serve/wire.h"

namespace orion::net {

namespace {

/**
 * Rendezvous score of (token, shard): a deterministic 64-bit mix. The
 * shard's identity enters through its index *and* address hash so two
 * routers over the same backend list agree on placement.
 */
u64
rendezvous_score(u64 token, std::size_t shard_idx,
                 const std::string& addr)
{
    u64 h = 1469598103934665603ull;  // FNV-1a over the address
    for (const char c : addr) {
        h ^= static_cast<u8>(c);
        h *= 1099511628211ull;
    }
    return ckks::splitmix64(token ^ ckks::splitmix64(h + shard_idx));
}

}  // namespace

Router::Router(std::vector<std::string> backends, Listener listener,
               RouterOptions opts)
    : opts_(opts),
      fs_(std::move(listener), opts.net,
          [this](u64 id, Frame&& f) { on_front_frame(id, std::move(f)); })
{
    ORION_CHECK(!backends.empty(), "router needs at least one backend");
    shards_.reserve(backends.size());
    for (std::size_t i = 0; i < backends.size(); ++i) {
        auto s = std::make_unique<Shard>();
        s->addr = backends[i];
        parse_host_port(s->addr, s->host, s->port);
        shards_.push_back(std::move(s));
    }
    metrics_.add_collector([this](std::vector<telemetry::Sample>& out) {
        using Kind = telemetry::Sample::Kind;
        out.push_back({"router.sessions",
                       static_cast<double>(session_count()), Kind::kGauge});
        out.push_back({"router.shards.alive",
                       static_cast<double>(alive_shards()), Kind::kGauge});
        out.push_back({"router.shards.total",
                       static_cast<double>(shards_.size()), Kind::kGauge});
    });
    health_ = std::thread([this] { health_loop(); });
    fs_.start();
}

Router::~Router() { stop(); }

void
Router::stop()
{
    if (stop_.exchange(true)) return;
    fs_.stop();
    if (health_.joinable()) health_.join();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& s = *shards_[i];
        s.alive.store(false);
        {
            std::lock_guard<std::mutex> lk(s.wmu);
            s.conn.shutdown_both();
        }
        if (s.reader.joinable()) s.reader.join();
        std::lock_guard<std::mutex> lk(s.wmu);
        s.conn.close();
    }
}

std::size_t
Router::alive_shards() const
{
    std::size_t n = 0;
    for (const auto& s : shards_) {
        if (s->alive.load()) ++n;
    }
    return n;
}

std::size_t
Router::session_count() const
{
    std::lock_guard<std::mutex> lk(smu_);
    return sessions_.size();
}

bool
Router::wait_for_shards(std::size_t n, double timeout_s) const
{
    const double deadline = mono_seconds() + timeout_s;
    while (alive_shards() < n) {
        if (mono_seconds() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return true;
}

std::string
Router::metrics_text() const
{
    return metrics_.text() + telemetry::Registry::global().text();
}

void
Router::send_front_error(u64 conn_id, u64 corr, ErrCode code,
                         const std::string& message)
{
    (void)fs_.send(conn_id, MsgType::kError, corr,
                   encode_error(code, message));
}

int
Router::pick_shard(u64 token) const
{
    int best = -1;
    u64 best_score = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (!shards_[i]->alive.load()) continue;
        const u64 score = rendezvous_score(token, i, shards_[i]->addr);
        if (best < 0 || score > best_score) {
            best = static_cast<int>(i);
            best_score = score;
        }
    }
    return best;
}

bool
Router::shard_send(std::size_t idx, MsgType type, u64 corr,
                   std::span<const u8> payload)
{
    Shard& s = *shards_[idx];
    try {
        std::lock_guard<std::mutex> lk(s.wmu);
        ORION_CHECK(s.alive.load() && s.conn.valid(),
                    "shard " << s.addr << " is down");
        send_frame(s.conn, type, corr, payload, opts_.shard_io_timeout_s);
        return true;
    } catch (const std::exception&) {
        mark_shard_dead(idx, "link write failed");
        return false;
    }
}

void
Router::on_front_frame(u64 conn_id, Frame&& f)
{
    try {
        switch (f.type) {
        case MsgType::kRegister:
            handle_front_register(conn_id, std::move(f));
            return;
        case MsgType::kRequest:
            handle_front_request(conn_id, std::move(f));
            return;
        case MsgType::kUnregister:
            handle_front_unregister(conn_id, std::move(f));
            return;
        case MsgType::kPing: {
            Pong pong;
            pong.sessions = session_count();
            pong.queue_depth = 0;
            pong.inflight = 0;
            for (const auto& s : shards_) {
                std::lock_guard<std::mutex> lk(s->pmu);
                pong.inflight += s->pending.size();
            }
            pong.completed = m_replied_.value();
            (void)fs_.send(conn_id, MsgType::kPong, f.corr,
                           encode_pong(pong));
            return;
        }
        case MsgType::kMetrics:
            (void)fs_.send(conn_id, MsgType::kMetricsText, f.corr,
                           encode_text(metrics_text()));
            return;
        default:
            send_front_error(conn_id, f.corr, ErrCode::kBadFrame,
                             std::string("unexpected frame type '") +
                                 to_string(f.type) + "' at a router");
            return;
        }
    } catch (const std::exception& e) {
        send_front_error(conn_id, f.corr, ErrCode::kDecodeError, e.what());
    }
}

void
Router::forward(std::size_t idx, u64 conn_id, Frame&& f, u64 token)
{
    TELEM_SPAN_ID("router.forward", static_cast<i64>(idx));
    Shard& s = *shards_[idx];
    const u64 rcorr = next_corr_.fetch_add(1);
    Pend pend;
    pend.conn_id = conn_id;
    pend.corr = f.corr;
    pend.kind = f.type;
    pend.token = token;
    pend.t0 = mono_seconds();
    {
        std::lock_guard<std::mutex> lk(s.pmu);
        s.pending.emplace(rcorr, pend);
    }
    if (!shard_send(idx, f.type, rcorr, f.payload)) {
        // mark_shard_dead already failed every pending entry (including
        // this one) with shard_down; nothing more to do.
        return;
    }
    if (f.type == MsgType::kRequest) m_forwarded_.add();
}

void
Router::handle_front_register(u64 conn_id, Frame&& f)
{
    const u64 token = decode_register_token(f.payload);
    const int idx = pick_shard(token);
    if (idx < 0) {
        send_front_error(conn_id, f.corr, ErrCode::kShardDown,
                         "no alive shards to place the session on");
        return;
    }
    forward(static_cast<std::size_t>(idx), conn_id, std::move(f), token);
}

void
Router::handle_front_request(u64 conn_id, Frame&& f)
{
    u64 token = 0;
    try {
        token = serve::peek_request_session(f.payload);
    } catch (const std::exception& e) {
        send_front_error(conn_id, f.corr, ErrCode::kDecodeError, e.what());
        return;
    }
    std::size_t idx = 0;
    {
        std::lock_guard<std::mutex> lk(smu_);
        auto it = sessions_.find(token);
        if (it == sessions_.end()) {
            m_unknown_.add();
            std::ostringstream oss;
            oss << "session token " << token
                << " is not placed on any shard; (re-)register its key "
                   "bundle";
            send_front_error(conn_id, f.corr, ErrCode::kUnknownSession,
                             oss.str());
            return;
        }
        idx = it->second;
    }
    if (!shards_[idx]->alive.load()) {
        // Death raced the lookup: forget the placement now; the client's
        // retry gets unknown_session and re-registers on a survivor.
        {
            std::lock_guard<std::mutex> lk(smu_);
            if (sessions_.erase(token) > 0) m_failover_.add();
        }
        send_front_error(conn_id, f.corr, ErrCode::kShardDown,
                         "the session's shard died; retry to re-place it");
        return;
    }
    forward(idx, conn_id, std::move(f), token);
}

void
Router::handle_front_unregister(u64 conn_id, Frame&& f)
{
    const u64 token = decode_u64(f.payload);
    std::optional<std::size_t> idx;
    {
        std::lock_guard<std::mutex> lk(smu_);
        auto it = sessions_.find(token);
        if (it != sessions_.end()) {
            idx = it->second;
            sessions_.erase(it);
        }
    }
    if (!idx.has_value() || !shards_[*idx]->alive.load()) {
        ckks::serial::ByteWriter w;
        w.put_u64(token);
        w.put_u8(0);
        (void)fs_.send(conn_id, MsgType::kUnregisterOk, f.corr, w.take());
        return;
    }
    forward(*idx, conn_id, std::move(f), token);
}

void
Router::shard_reader(std::size_t idx)
{
    Shard& s = *shards_[idx];
    for (;;) {
        Frame f;
        try {
            f = recv_frame(s.conn, opts_.shard_read_timeout_s,
                           opts_.net.max_frame_bytes);
        } catch (const std::exception&) {
            if (s.alive.load()) mark_shard_dead(idx, "link read failed");
            return;
        }
        Pend pend;
        {
            std::lock_guard<std::mutex> lk(s.pmu);
            auto it = s.pending.find(f.corr);
            if (it == s.pending.end()) continue;  // stale/duplicate reply
            pend = it->second;
            s.pending.erase(it);
        }
        if (pend.kind == MsgType::kPing) continue;  // liveness proven

        if (pend.kind == MsgType::kRegister &&
            f.type == MsgType::kRegisterOk) {
            {
                std::lock_guard<std::mutex> lk(smu_);
                sessions_[pend.token] = idx;
            }
            m_registered_.add();
        }
        if (pend.kind == MsgType::kUnregister) {
            // Mapping was already dropped at forward time.
        }
        if (pend.kind == MsgType::kRequest) {
            m_replied_.add();
            m_forward_seconds_.observe(mono_seconds() - pend.t0);
        }
        (void)fs_.send(pend.conn_id, f.type, pend.corr, f.payload);
    }
}

void
Router::mark_shard_dead(std::size_t idx, const char* why)
{
    Shard& s = *shards_[idx];
    if (!s.alive.exchange(false)) return;  // one death per connection
    m_shard_dead_.add();
    {
        // Wake the reader (it re-checks alive and exits); the fd stays
        // allocated until the health thread reconnects, so a concurrent
        // poll on it is safe.
        std::lock_guard<std::mutex> lk(s.wmu);
        s.conn.shutdown_both();
    }
    // Drain: answer every in-flight request with the retryable
    // shard_down error so clients resend instead of hanging.
    std::map<u64, Pend> pending;
    {
        std::lock_guard<std::mutex> lk(s.pmu);
        pending.swap(s.pending);
    }
    std::size_t failed = 0;
    for (const auto& [corr, pend] : pending) {
        if (pend.kind == MsgType::kPing) continue;
        ++failed;
        std::ostringstream oss;
        oss << "shard " << s.addr << " died (" << why
            << ") with this message in flight; retry";
        send_front_error(pend.conn_id, pend.corr, ErrCode::kShardDown,
                         oss.str());
    }
    // Forget every session placed there; re-registration (driven by the
    // clients, who own the keys) re-places them on survivors.
    std::size_t moved = 0;
    {
        std::lock_guard<std::mutex> lk(smu_);
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            if (it->second == idx) {
                it = sessions_.erase(it);
                ++moved;
            } else {
                ++it;
            }
        }
    }
    m_failover_.add(moved);
    (void)failed;
}

void
Router::try_connect(std::size_t idx)
{
    Shard& s = *shards_[idx];
    Conn fresh;
    try {
        fresh = Conn::connect(s.host, s.port, opts_.connect_timeout_s);
    } catch (const std::exception&) {
        return;  // still down; next tick retries
    }
    if (s.reader.joinable()) s.reader.join();
    {
        std::lock_guard<std::mutex> lk(s.wmu);
        s.conn = std::move(fresh);
    }
    s.alive.store(true);
    // The first successful dial is a join, not a recovery.
    if (s.ever_connected.exchange(true)) m_shard_reconnect_.add();
    s.reader = std::thread([this, idx] { shard_reader(idx); });
}

void
Router::health_loop()
{
    while (!stop_.load()) {
        const double now = mono_seconds();
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            Shard& s = *shards_[i];
            if (!s.alive.load()) {
                try_connect(i);
                continue;
            }
            // Reap overdue pings, then send a fresh one.
            bool overdue = false;
            {
                std::lock_guard<std::mutex> lk(s.pmu);
                for (const auto& [corr, pend] : s.pending) {
                    if (pend.kind == MsgType::kPing &&
                        pend.deadline < now) {
                        overdue = true;
                        break;
                    }
                }
            }
            if (overdue) {
                mark_shard_dead(i, "health pong overdue");
                continue;
            }
            const u64 rcorr = next_corr_.fetch_add(1);
            Pend pend;
            pend.kind = MsgType::kPing;
            pend.deadline = now + opts_.pong_timeout_s;
            {
                std::lock_guard<std::mutex> lk(s.pmu);
                s.pending.emplace(rcorr, pend);
            }
            if (shard_send(i, MsgType::kPing, rcorr, {})) {
                m_health_pings_.add();
            }
        }
        const double sleep_s = opts_.health_interval_s;
        const int slices = std::max(1, static_cast<int>(sleep_s / 0.02));
        for (int k = 0; k < slices && !stop_.load(); ++k) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                sleep_s / static_cast<double>(slices)));
        }
    }
}

}  // namespace orion::net
