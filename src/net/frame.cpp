#include "src/net/frame.h"

#include <cstring>

#include "src/core/telemetry.h"

namespace orion::net {

using ckks::serial::ByteReader;
using ckks::serial::Bytes;
using ckks::serial::ByteWriter;

namespace {

/**
 * Process-wide transport counters (telemetry::Registry::global()). The
 * references are captured once — by-name lookup locks the registry.
 */
struct NetMetrics {
    telemetry::Counter& bytes_rx =
        telemetry::Registry::global().counter("net.bytes.rx");
    telemetry::Counter& bytes_tx =
        telemetry::Registry::global().counter("net.bytes.tx");
    telemetry::Counter& frames_rx =
        telemetry::Registry::global().counter("net.frames.rx");
    telemetry::Counter& frames_tx =
        telemetry::Registry::global().counter("net.frames.tx");
};

NetMetrics&
net_metrics()
{
    static NetMetrics m;
    return m;
}

u64
load_u64(const u8* p)
{
    u64 v = 0;
    std::memcpy(&v, p, sizeof(v));
    return v;  // little-endian hosts only, matching serial::ByteWriter
}

}  // namespace

const char*
to_string(MsgType t)
{
    switch (t) {
    case MsgType::kRegister: return "register";
    case MsgType::kRegisterOk: return "register_ok";
    case MsgType::kUnregister: return "unregister";
    case MsgType::kUnregisterOk: return "unregister_ok";
    case MsgType::kRequest: return "request";
    case MsgType::kResponse: return "response";
    case MsgType::kError: return "error";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kMetricsText: return "metrics_text";
    }
    return "unknown";
}

const char*
to_string(ErrCode c)
{
    switch (c) {
    case ErrCode::kOverloaded: return "overloaded";
    case ErrCode::kUnknownSession: return "unknown_session";
    case ErrCode::kBadSession: return "bad_session";
    case ErrCode::kDecodeError: return "decode_error";
    case ErrCode::kExecError: return "exec_error";
    case ErrCode::kShardDown: return "shard_down";
    case ErrCode::kShuttingDown: return "shutting_down";
    case ErrCode::kBadFrame: return "bad_frame";
    case ErrCode::kInternal: return "internal";
    }
    return "unknown";
}

bool
retryable(ErrCode c)
{
    return c == ErrCode::kOverloaded || c == ErrCode::kShardDown ||
           c == ErrCode::kShuttingDown;
}

bool
needs_reregister(ErrCode c)
{
    return c == ErrCode::kUnknownSession || c == ErrCode::kBadSession;
}

Bytes
encode_frame(MsgType type, u64 corr, std::span<const u8> payload)
{
    TELEM_SPAN("net.frame.encode");
    ByteWriter w;
    w.put_raw(kFrameMagic, sizeof(kFrameMagic));
    w.put_u8(kFrameVersion);
    w.put_u8(static_cast<u8>(type));
    w.put_u64(corr);
    w.put_u64(payload.size());
    w.put_raw(payload.data(), payload.size());
    return w.take();
}

FrameHeader
decode_frame_header(std::span<const u8> header, u64 max_payload_bytes)
{
    ORION_CHECK(header.size() >= kFrameHeaderBytes,
                "frame header needs " << kFrameHeaderBytes << " bytes, got "
                                      << header.size());
    ORION_CHECK(std::memcmp(header.data(), kFrameMagic,
                            sizeof(kFrameMagic)) == 0,
                "bad frame magic (not an Orion-Net peer?)");
    const u8 version = header[4];
    ORION_CHECK(version == kFrameVersion,
                "unsupported frame version " << int(version) << " (expected "
                                             << int(kFrameVersion) << ")");
    const u8 type = header[5];
    ORION_CHECK(type >= static_cast<u8>(MsgType::kRegister) &&
                    type <= static_cast<u8>(MsgType::kMetricsText),
                "unknown frame type " << int(type));
    FrameHeader h;
    h.type = static_cast<MsgType>(type);
    h.corr = load_u64(header.data() + 6);
    h.payload_len = load_u64(header.data() + 14);
    ORION_CHECK(h.payload_len <= max_payload_bytes,
                "frame payload of " << h.payload_len
                                    << " bytes exceeds the per-frame cap of "
                                    << max_payload_bytes << " bytes");
    return h;
}

void
send_frame(Conn& conn, MsgType type, u64 corr, std::span<const u8> payload,
           double timeout_s)
{
    const Bytes wire = encode_frame(type, corr, payload);
    conn.write_all(wire.data(), wire.size(), timeout_s);
    net_metrics().bytes_tx.add(wire.size());
    net_metrics().frames_tx.add();
}

Frame
recv_frame(Conn& conn, double timeout_s, u64 max_payload_bytes)
{
    u8 header[kFrameHeaderBytes];
    conn.read_exact(header, sizeof(header), timeout_s);
    FrameHeader h;
    {
        TELEM_SPAN("net.frame.decode");
        h = decode_frame_header(std::span<const u8>(header, sizeof(header)),
                                max_payload_bytes);
    }
    Frame f;
    f.type = h.type;
    f.corr = h.corr;
    f.payload.resize(h.payload_len);
    if (h.payload_len > 0) {
        conn.read_exact(f.payload.data(), f.payload.size(), timeout_s);
    }
    net_metrics().bytes_rx.add(kFrameHeaderBytes + h.payload_len);
    net_metrics().frames_rx.add();
    return f;
}

Bytes
encode_error(ErrCode code, const std::string& message)
{
    ByteWriter w;
    w.put_u8(static_cast<u8>(code));
    w.put_u64(message.size());
    w.put_raw(message.data(), message.size());
    return w.take();
}

WireError
decode_error(std::span<const u8> payload)
{
    ByteReader r(payload);
    WireError e;
    const u8 code = r.read_u8();
    ORION_CHECK(code >= static_cast<u8>(ErrCode::kOverloaded) &&
                    code <= static_cast<u8>(ErrCode::kInternal),
                "unknown wire error code " << int(code));
    e.code = static_cast<ErrCode>(code);
    const u64 len = r.read_count(1, "error message");
    e.message.resize(len);
    r.read_raw(e.message.data(), len);
    r.expect_done("wire error");
    return e;
}

Bytes
encode_pong(const Pong& p)
{
    ByteWriter w;
    w.put_u64(p.queue_depth);
    w.put_u64(p.inflight);
    w.put_u64(p.sessions);
    w.put_u64(p.completed);
    return w.take();
}

Pong
decode_pong(std::span<const u8> payload)
{
    ByteReader r(payload);
    Pong p;
    p.queue_depth = r.read_u64();
    p.inflight = r.read_u64();
    p.sessions = r.read_u64();
    p.completed = r.read_u64();
    r.expect_done("pong");
    return p;
}

Bytes
encode_register(u64 token, std::span<const u8> bundle)
{
    ByteWriter w;
    w.put_u64(token);
    w.put_raw(bundle.data(), bundle.size());
    return w.take();
}

u64
decode_register_token(std::span<const u8> payload)
{
    ByteReader r(payload);
    return r.read_u64();
}

std::span<const u8>
register_bundle(std::span<const u8> payload)
{
    ORION_CHECK(payload.size() > 8,
                "register payload carries no key bundle");
    return payload.subspan(8);
}

Bytes
encode_u64(u64 v)
{
    ByteWriter w;
    w.put_u64(v);
    return w.take();
}

u64
decode_u64(std::span<const u8> payload)
{
    ByteReader r(payload);
    const u64 v = r.read_u64();
    r.expect_done("u64 payload");
    return v;
}

Bytes
encode_text(const std::string& s)
{
    ByteWriter w;
    w.put_u64(s.size());
    w.put_raw(s.data(), s.size());
    return w.take();
}

std::string
decode_text(std::span<const u8> payload)
{
    ByteReader r(payload);
    const u64 len = r.read_count(1, "text payload");
    std::string s(len, '\0');
    r.read_raw(s.data(), len);
    r.expect_done("text payload");
    return s;
}

}  // namespace orion::net
