#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace orion::net {

namespace {

[[noreturn]] void
throw_errno(const char* what)
{
    std::ostringstream oss;
    oss << what << ": " << std::strerror(errno);
    throw Error(oss.str());
}

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ORION_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

void
set_nodelay(int fd)
{
    // Frames are written whole; Nagle would add 40ms stalls to the
    // request/response ping-pong.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/**
 * Polls fd for `events` until the deadline. Returns true when ready,
 * false when the deadline passed. Throws on poll failure.
 */
bool
poll_until(int fd, short events, double deadline)
{
    for (;;) {
        const double now = mono_seconds();
        if (now >= deadline) return false;
        const int ms = static_cast<int>((deadline - now) * 1e3) + 1;
        struct pollfd pfd = {fd, events, 0};
        const int rc = ::poll(&pfd, 1, ms);
        if (rc > 0) return true;
        if (rc == 0) return false;
        if (errno == EINTR) continue;
        throw_errno("poll");
    }
}

}  // namespace

double
mono_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
parse_host_port(const std::string& addr, std::string& host, int& port)
{
    const std::size_t colon = addr.rfind(':');
    ORION_CHECK(colon != std::string::npos && colon > 0 &&
                    colon + 1 < addr.size(),
                "address '" << addr << "' is not host:port");
    host = addr.substr(0, colon);
    try {
        port = std::stoi(addr.substr(colon + 1));
    } catch (const std::exception&) {
        port = -1;
    }
    ORION_CHECK(port > 0 && port < 65536,
                "address '" << addr << "' has an invalid port");
}

Conn::Conn(int fd) : fd_(fd)
{
    ORION_CHECK(fd >= 0, "Conn adopted an invalid fd");
    set_nonblocking(fd_);
    set_nodelay(fd_);
}

Conn::~Conn() { close(); }

Conn::Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Conn&
Conn::operator=(Conn&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Conn::shutdown_both()
{
    if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

Conn
Conn::connect(const std::string& host, int port, double timeout_s)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    const std::string port_str = std::to_string(port);
    const int gai = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                  &res);
    ORION_CHECK(gai == 0 && res != nullptr,
                "cannot resolve " << host << ": " << ::gai_strerror(gai));

    const int fd = ::socket(res->ai_family, res->ai_socktype,
                            res->ai_protocol);
    if (fd < 0) {
        ::freeaddrinfo(res);
        throw_errno("socket");
    }
    set_nonblocking(fd);
    const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc != 0 && errno != EINPROGRESS) {
        ::close(fd);
        throw_errno("connect");
    }
    if (rc != 0) {
        // Non-blocking connect: wait for writability, then read SO_ERROR.
        if (!poll_until(fd, POLLOUT, mono_seconds() + timeout_s)) {
            ::close(fd);
            std::ostringstream oss;
            oss << "connect to " << host << ":" << port << " timed out after "
                << timeout_s << " s";
            throw TimeoutError(oss.str());
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            ::close(fd);
            std::ostringstream oss;
            oss << "connect to " << host << ":" << port
                << " failed: " << std::strerror(err != 0 ? err : errno);
            throw Error(oss.str());
        }
    }
    return Conn(fd);
}

void
Conn::read_exact(void* dst, std::size_t n, double timeout_s)
{
    ORION_CHECK(valid(), "read on a closed connection");
    const double deadline = mono_seconds() + timeout_s;
    u8* out = static_cast<u8*>(dst);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t rc = ::recv(fd_, out + got, n - got, 0);
        if (rc > 0) {
            got += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc == 0) {
            throw DisconnectError("peer closed the connection mid-read");
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!poll_until(fd_, POLLIN, deadline)) {
                std::ostringstream oss;
                oss << "read timed out after " << timeout_s << " s ("
                    << got << "/" << n << " bytes)";
                throw TimeoutError(oss.str());
            }
            continue;
        }
        if (errno == ECONNRESET) {
            throw DisconnectError("connection reset by peer");
        }
        throw_errno("recv");
    }
}

void
Conn::write_all(const void* src, std::size_t n, double timeout_s)
{
    ORION_CHECK(valid(), "write on a closed connection");
    const double deadline = mono_seconds() + timeout_s;
    const u8* in = static_cast<const u8*>(src);
    std::size_t put = 0;
    while (put < n) {
        const ssize_t rc = ::send(fd_, in + put, n - put, MSG_NOSIGNAL);
        if (rc > 0) {
            put += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc < 0 && errno == EINTR) continue;
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!poll_until(fd_, POLLOUT, deadline)) {
                std::ostringstream oss;
                oss << "write timed out after " << timeout_s << " s ("
                    << put << "/" << n << " bytes)";
                throw TimeoutError(oss.str());
            }
            continue;
        }
        if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
            throw DisconnectError("peer closed the connection mid-write");
        }
        throw_errno("send");
    }
}

Conn::Io
Conn::read_some(std::vector<u8>& buf, std::size_t max_chunk,
                std::size_t* done)
{
    *done = 0;
    const std::size_t old = buf.size();
    buf.resize(old + max_chunk);
    const ssize_t rc = ::recv(fd_, buf.data() + old, max_chunk, 0);
    if (rc > 0) {
        buf.resize(old + static_cast<std::size_t>(rc));
        *done = static_cast<std::size_t>(rc);
        return Io::kOk;
    }
    buf.resize(old);
    if (rc == 0) return Io::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return Io::kWouldBlock;
    }
    return Io::kClosed;
}

Conn::Io
Conn::write_some(const u8* data, std::size_t n, std::size_t* done)
{
    *done = 0;
    const ssize_t rc = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (rc >= 0) {
        *done = static_cast<std::size_t>(rc);
        return Io::kOk;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return Io::kWouldBlock;
    }
    return Io::kClosed;
}

Listener::Listener(int port, int backlog)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        const int e = errno;
        ::close(fd_);
        fd_ = -1;
        std::ostringstream oss;
        oss << "bind to port " << port << " failed: " << std::strerror(e);
        throw Error(oss.str());
    }
    if (::listen(fd_, backlog) != 0) {
        const int e = errno;
        ::close(fd_);
        fd_ = -1;
        std::ostringstream oss;
        oss << "listen failed: " << std::strerror(e);
        throw Error(oss.str());
    }
    set_nonblocking(fd_);
    socklen_t len = sizeof(addr);
    ORION_CHECK(::getsockname(fd_,
                              reinterpret_cast<struct sockaddr*>(&addr),
                              &len) == 0,
                "getsockname failed: " << std::strerror(errno));
    port_ = static_cast<int>(ntohs(addr.sin_port));
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_)
{
    other.fd_ = -1;
    other.port_ = 0;
}

Listener&
Listener::operator=(Listener&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
        other.port_ = 0;
    }
    return *this;
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Conn
Listener::accept()
{
    ORION_CHECK(valid(), "accept on a closed listener");
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) return Conn(fd);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return Conn();
        // Transient per-connection failures (the peer gave up between
        // SYN and accept) are not listener errors.
        if (errno == ECONNABORTED) continue;
        throw_errno("accept");
    }
}

}  // namespace orion::net
