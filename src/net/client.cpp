#include "src/net/client.h"

#include <thread>

namespace orion::net {

namespace {

serve::ErrorKind
to_error_kind(ErrCode code)
{
    switch (code) {
    case ErrCode::kOverloaded:
    case ErrCode::kShardDown:
    case ErrCode::kShuttingDown:
        return serve::ErrorKind::kOverloaded;
    case ErrCode::kUnknownSession:
    case ErrCode::kBadSession:
        return serve::ErrorKind::kBadSession;
    case ErrCode::kDecodeError:
    case ErrCode::kBadFrame:
        return serve::ErrorKind::kDecodeError;
    case ErrCode::kExecError:
        return serve::ErrorKind::kExecError;
    case ErrCode::kInternal:
        break;
    }
    return serve::ErrorKind::kExecError;
}

}  // namespace

NetClient::NetClient(serve::ServeClient& crypto, std::string host, int port,
                     u64 session_token, ClientOptions opts)
    : crypto_(crypto),
      host_(std::move(host)),
      port_(port),
      token_(session_token),
      opts_(opts)
{
    ORION_CHECK(token_ != 0, "session token 0 is reserved");
    crypto_.set_session_id(token_);
    connect_with_backoff();
    do_register();
}

NetClient::~NetClient()
{
    try {
        close();
    } catch (...) {
        // Destructors don't throw; the conn closes either way.
    }
}

void
NetClient::backoff_sleep(int attempt) const
{
    double delay = opts_.backoff_base_s;
    for (int i = 0; i < attempt && delay < opts_.backoff_cap_s; ++i) {
        delay *= 2.0;
    }
    delay = std::min(delay, opts_.backoff_cap_s);
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

void
NetClient::connect_with_backoff()
{
    std::string last;
    for (int attempt = 0; attempt < opts_.max_attempts; ++attempt) {
        if (attempt > 0) backoff_sleep(attempt - 1);
        try {
            conn_ = Conn::connect(host_, port_, opts_.connect_timeout_s);
            if (rstats_.connects > 0) ++rstats_.reconnects;
            ++rstats_.connects;
            return;
        } catch (const std::exception& e) {
            last = e.what();
        }
    }
    ORION_CHECK(false, "could not connect to "
                           << host_ << ":" << port_ << " after "
                           << opts_.max_attempts << " attempts (last: "
                           << last << ")");
}

Frame
NetClient::rpc(MsgType type, std::span<const u8> payload)
{
    const u64 corr = next_corr_++;
    send_frame(conn_, type, corr, payload, opts_.io_timeout_s);
    for (;;) {
        Frame f = recv_frame(conn_, opts_.io_timeout_s,
                             opts_.max_frame_bytes);
        if (f.corr == corr) return f;
        // A stale reply to an abandoned correlation id (e.g. a response
        // that raced a retry). Drop it and keep waiting for ours.
    }
}

void
NetClient::do_register()
{
    const ckks::serial::Bytes bundle = crypto_.key_bundle();
    Frame f = rpc(MsgType::kRegister, encode_register(token_, bundle));
    if (f.type == MsgType::kRegisterOk) {
        ORION_CHECK(decode_u64(f.payload) == token_,
                    "register ack names a different session token");
        registered_ = true;
        return;
    }
    if (f.type == MsgType::kError) {
        const WireError we = decode_error(f.payload);
        throw serve::RequestError(
            to_error_kind(we.code),
            std::string("registration failed (") + to_string(we.code) +
                "): " + we.message);
    }
    ORION_CHECK(false,
                "unexpected reply to register: " << to_string(f.type));
}

void
NetClient::ensure_connected()
{
    if (conn_.valid()) return;
    connect_with_backoff();
    // A fresh TCP connection does not lose the session (the peer keys it
    // by token, not by conn), but registration state is only known-good
    // once one register round trip succeeded on *some* conn.
    if (!registered_) do_register();
}

ckks::serial::Bytes
NetClient::infer_raw(const std::vector<double>& input)
{
    const ckks::serial::Bytes request = crypto_.make_request(input);
    std::string last_msg = "no attempts made";
    ErrCode last_code = ErrCode::kInternal;
    bool saw_wire_error = false;
    for (int attempt = 0; attempt < opts_.max_attempts; ++attempt) {
        if (attempt > 0) backoff_sleep(attempt - 1);
        try {
            ensure_connected();
            Frame f = rpc(MsgType::kRequest, request);
            if (f.type == MsgType::kResponse) return std::move(f.payload);
            ORION_CHECK(f.type == MsgType::kError,
                        "unexpected reply to request: "
                            << to_string(f.type));
            const WireError we = decode_error(f.payload);
            last_msg = we.message;
            last_code = we.code;
            saw_wire_error = true;
            if (needs_reregister(we.code)) {
                // Failover: this peer has no keys for the token (the
                // router re-placed the session). Re-send the bundle and
                // retry the same request without burning a backoff.
                registered_ = false;
                do_register();
                ++rstats_.reregisters;
                ++rstats_.retries;
                continue;
            }
            if (retryable(we.code)) {
                ++rstats_.retries;
                continue;
            }
            throw serve::RequestError(
                to_error_kind(we.code),
                std::string("request failed (") + to_string(we.code) +
                    "): " + we.message);
        } catch (const TimeoutError& e) {
            conn_.close();
            last_msg = e.what();
            saw_wire_error = false;
        } catch (const DisconnectError& e) {
            conn_.close();
            last_msg = e.what();
            saw_wire_error = false;
        }
    }
    const serve::ErrorKind kind = saw_wire_error
                                      ? to_error_kind(last_code)
                                      : serve::ErrorKind::kOverloaded;
    std::ostringstream oss;
    oss << "request gave up after " << opts_.max_attempts
        << " attempts (last: " << last_msg << ")";
    throw serve::RequestError(kind, oss.str());
}

std::vector<double>
NetClient::infer(const std::vector<double>& input)
{
    const ckks::serial::Bytes response = infer_raw(input);
    return crypto_.decrypt_response(response);
}

Pong
NetClient::ping()
{
    ensure_connected();
    Frame f = rpc(MsgType::kPing, {});
    ORION_CHECK(f.type == MsgType::kPong,
                "unexpected reply to ping: " << to_string(f.type));
    return decode_pong(f.payload);
}

std::string
NetClient::fetch_metrics()
{
    ensure_connected();
    Frame f = rpc(MsgType::kMetrics, {});
    ORION_CHECK(f.type == MsgType::kMetricsText,
                "unexpected reply to metrics: " << to_string(f.type));
    return decode_text(f.payload);
}

void
NetClient::close()
{
    if (conn_.valid() && registered_) {
        try {
            (void)rpc(MsgType::kUnregister, encode_u64(token_));
        } catch (...) {
            // Best effort; the server's session GC handles the rest.
        }
    }
    registered_ = false;
    conn_.close();
}

}  // namespace orion::net
