#ifndef ORION_SRC_NET_NET_H_
#define ORION_SRC_NET_NET_H_

/**
 * @file
 * Umbrella header for the Orion-Net subsystem (ISSUE 9): TCP framing over
 * the transport-agnostic serve::wire records, standalone serving
 * endpoints, the sharded front-end router, and the retrying socket
 * client. See DESIGN.md "Networking & sharding".
 */

#include "src/net/client.h"
#include "src/net/endpoint.h"
#include "src/net/frame.h"
#include "src/net/frame_loop.h"
#include "src/net/router.h"
#include "src/net/socket.h"

#endif  // ORION_SRC_NET_NET_H_
