#include "src/net/endpoint.h"

namespace orion::net {

namespace {

ErrCode
to_err_code(serve::ErrorKind kind)
{
    switch (kind) {
    case serve::ErrorKind::kBadSession: return ErrCode::kBadSession;
    case serve::ErrorKind::kDecodeError: return ErrCode::kDecodeError;
    case serve::ErrorKind::kExecError: return ErrCode::kExecError;
    case serve::ErrorKind::kOverloaded: return ErrCode::kOverloaded;
    case serve::ErrorKind::kNone: break;
    }
    return ErrCode::kInternal;
}

}  // namespace

ServeEndpoint::ServeEndpoint(serve::InferenceServer& server,
                             Listener listener, EndpointOptions opts)
    : server_(server),
      fs_(std::move(listener), opts.net,
          [this](u64 id, Frame&& f) { on_frame(id, std::move(f)); })
{
    const int threads = opts.completion_threads > 0
                            ? opts.completion_threads
                            : server_.max_inflight();
    completion_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
        completion_.emplace_back([this] { completion_loop(); });
    }
    fs_.start();
}

ServeEndpoint::~ServeEndpoint() { stop(); }

void
ServeEndpoint::stop()
{
    fs_.stop();
    {
        std::lock_guard<std::mutex> lk(done_mu_);
        if (stop_) return;
        stop_ = true;
        // Abandon undrained futures: their conns are gone with the loop;
        // the server still completes the work against live promises.
        done_.clear();
    }
    done_cv_.notify_all();
    for (std::thread& t : completion_) t.join();
}

void
ServeEndpoint::send_error(u64 conn_id, u64 corr, ErrCode code,
                          const std::string& message)
{
    (void)fs_.send(conn_id, MsgType::kError, corr,
                   encode_error(code, message));
}

void
ServeEndpoint::on_frame(u64 conn_id, Frame&& f)
{
    try {
        switch (f.type) {
        case MsgType::kRegister: handle_register(conn_id, f); return;
        case MsgType::kRequest: handle_request(conn_id, std::move(f));
            return;
        case MsgType::kUnregister: {
            const u64 token = decode_u64(f.payload);
            bool known = false;
            {
                std::lock_guard<std::mutex> lk(mu_);
                auto it = token_to_local_.find(token);
                if (it != token_to_local_.end()) {
                    known = server_.unregister_session(it->second);
                    token_to_local_.erase(it);
                }
            }
            ckks::serial::ByteWriter w;
            w.put_u64(token);
            w.put_u8(known ? 1 : 0);
            (void)fs_.send(conn_id, MsgType::kUnregisterOk, f.corr,
                           w.take());
            return;
        }
        case MsgType::kPing: {
            const serve::ServerStats s = server_.stats();
            Pong pong;
            pong.inflight = s.inflight;
            const u64 settled = s.completed + s.failed + s.rejected +
                                s.inflight;
            pong.queue_depth = s.submitted > settled ? s.submitted - settled
                                                     : 0;
            pong.sessions = server_.session_count();
            pong.completed = s.completed;
            (void)fs_.send(conn_id, MsgType::kPong, f.corr,
                           encode_pong(pong));
            return;
        }
        case MsgType::kMetrics:
            (void)fs_.send(conn_id, MsgType::kMetricsText, f.corr,
                           encode_text(server_.metrics_text()));
            return;
        default:
            send_error(conn_id, f.corr, ErrCode::kBadFrame,
                       std::string("unexpected frame type '") +
                           to_string(f.type) + "' at a serving endpoint");
            return;
        }
    } catch (const std::exception& e) {
        // Payload-level decode failures: the frame itself was sound, so
        // the connection survives; only this message fails.
        send_error(conn_id, f.corr, ErrCode::kDecodeError, e.what());
    }
}

void
ServeEndpoint::handle_register(u64 conn_id, const Frame& f)
{
    const u64 token = decode_register_token(f.payload);
    if (token == 0) {
        send_error(conn_id, f.corr, ErrCode::kDecodeError,
                   "session token 0 is reserved");
        return;
    }
    u64 local = 0;
    try {
        local = server_.register_session(register_bundle(f.payload));
    } catch (const std::exception& e) {
        send_error(conn_id, f.corr, ErrCode::kDecodeError, e.what());
        return;
    }
    u64 stale = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = token_to_local_.find(token);
        if (it != token_to_local_.end()) {
            // Re-registration (client retry or post-failover churn): the
            // fresh bundle wins, the stale local session is dropped.
            stale = it->second;
        }
        token_to_local_[token] = local;
    }
    if (stale != 0) (void)server_.unregister_session(stale);
    (void)fs_.send(conn_id, MsgType::kRegisterOk, f.corr,
                   encode_u64(token));
}

void
ServeEndpoint::handle_request(u64 conn_id, Frame&& f)
{
    u64 token = 0;
    try {
        token = serve::peek_request_session(f.payload);
    } catch (const std::exception& e) {
        send_error(conn_id, f.corr, ErrCode::kDecodeError, e.what());
        return;
    }
    u64 local = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = token_to_local_.find(token);
        if (it == token_to_local_.end()) {
            // The failover path: a router just moved this session here.
            // The typed code tells the client to re-send its bundle.
            std::ostringstream oss;
            oss << "session token " << token << " is not registered on "
                << "this endpoint; re-register the key bundle";
            send_error(conn_id, f.corr, ErrCode::kUnknownSession,
                       oss.str());
            return;
        }
        local = it->second;
    }
    serve::rewrite_request_session(f.payload, local);
    std::optional<std::future<serve::ServeReply>> fut =
        server_.try_submit(std::move(f.payload));
    if (!fut.has_value()) {
        // Satellite contract: backpressure is a *typed retryable* error
        // on the wire, not a generic failure.
        send_error(conn_id, f.corr, ErrCode::kOverloaded,
                   "submission queue is full; back off and retry");
        return;
    }
    {
        std::lock_guard<std::mutex> lk(done_mu_);
        if (stop_) return;  // reply has nowhere to go
        done_.push_back(Done{conn_id, f.corr, std::move(*fut)});
    }
    done_cv_.notify_one();
}

void
ServeEndpoint::completion_loop()
{
    for (;;) {
        Done d;
        {
            std::unique_lock<std::mutex> lk(done_mu_);
            done_cv_.wait(lk, [this] { return stop_ || !done_.empty(); });
            if (stop_) return;
            d = std::move(done_.front());
            done_.pop_front();
        }
        try {
            serve::ServeReply reply = d.fut.get();
            (void)fs_.send(d.conn_id, MsgType::kResponse, d.corr,
                           reply.response);
        } catch (const serve::RequestError& e) {
            send_error(d.conn_id, d.corr, to_err_code(e.kind()), e.what());
        } catch (const std::exception& e) {
            send_error(d.conn_id, d.corr, ErrCode::kInternal, e.what());
        }
    }
}

}  // namespace orion::net
