#ifndef ORION_SRC_CKKS_SPECIAL_FFT_H_
#define ORION_SRC_CKKS_SPECIAL_FFT_H_

/**
 * @file
 * The "special FFT" of CKKS encoding — the canonical embedding restricted
 * to the orbit of 5 modulo 2N — factored into its radix-2 butterfly
 * stages, with each stage available in two forms:
 *
 *  - an in-place cleartext butterfly pass (what the Encoder runs), and
 *  - a ComplexDiagMatrix of the same linear map (what the bootstrap
 *    circuit encodes as plaintext diagonals for homomorphic evaluation).
 *
 * Sharing one stage description between the cleartext and homomorphic
 * paths is what keeps CoeffToSlot/SlotToCoeff consistent with the encoder
 * by construction: the bootstrap's collapsed stage matrices are numeric
 * products of exactly the butterflies decode/encode execute.
 *
 * Both stage factorizations deliberately exclude the bit-reversal
 * permutation (which is diagonal-dense): the homomorphic pipeline applies
 * the inverse stages for CoeffToSlot and the forward stages for
 * SlotToCoeff, so the two bit reversals cancel and only the slot-wise
 * EvalMod sits between them, in bit-reversed slot order it never observes.
 */

#include <complex>
#include <map>
#include <span>
#include <vector>

#include "src/common.h"

namespace orion::ckks {

/**
 * A square complex matrix stored by its nonzero generalized diagonals
 * (diag_k[r] = M[r, (r + k) mod dim]) — the complex sibling of
 * lin::DiagonalMatrix, used for the bootstrap's DFT stage matrices.
 */
class ComplexDiagMatrix {
  public:
    explicit ComplexDiagMatrix(u64 dim) : dim_(dim)
    {
        ORION_CHECK(dim > 0, "matrix dimension must be positive");
    }

    static ComplexDiagMatrix
    identity(u64 dim)
    {
        ComplexDiagMatrix m(dim);
        std::vector<std::complex<double>>& d = m.mutable_diagonal(0);
        for (u64 r = 0; r < dim; ++r) d[r] = 1.0;
        return m;
    }

    u64 dim() const { return dim_; }

    void
    add(u64 r, u64 c, std::complex<double> v)
    {
        if (v == std::complex<double>(0.0, 0.0)) return;
        ORION_ASSERT(r < dim_ && c < dim_);
        mutable_diagonal((c + dim_ - r) % dim_)[r] += v;
    }

    std::complex<double>
    get(u64 r, u64 c) const
    {
        const auto it = diags_.find((c + dim_ - r) % dim_);
        return it == diags_.end() ? std::complex<double>(0.0)
                                  : it->second[r];
    }

    const std::vector<std::complex<double>>*
    diagonal(u64 k) const
    {
        const auto it = diags_.find(k);
        return it == diags_.end() ? nullptr : &it->second;
    }

    std::vector<std::complex<double>>&
    mutable_diagonal(u64 k)
    {
        auto it = diags_.find(k);
        if (it == diags_.end()) {
            it = diags_
                     .emplace(k, std::vector<std::complex<double>>(
                                     dim_, std::complex<double>(0.0)))
                     .first;
        }
        return it->second;
    }

    std::vector<u64> diagonal_indices() const;
    u64 num_diagonals() const { return diags_.size(); }

    /** Multiplies every entry by s. */
    void scale_inplace(std::complex<double> s);

    /**
     * Matrix product this * rhs (rhs is the map applied first). The
     * diagonal representation composes diagonal-wise: diag p of *this
     * times diag q of rhs lands on diag (p + q) mod dim.
     */
    ComplexDiagMatrix compose(const ComplexDiagMatrix& rhs) const;

    /** Drops diagonals whose largest entry magnitude is below tol. */
    void prune(double tol = 1e-12);

    /** Cleartext matvec, for validation: y = M x. */
    std::vector<std::complex<double>> apply(
        std::span<const std::complex<double>> x) const;

  private:
    u64 dim_;
    std::map<u64, std::vector<std::complex<double>>> diags_;
};

/**
 * The special FFT over n = N/2 slots: cleartext butterfly passes plus
 * per-stage matrix extraction. Stateless apart from precomputed twiddles
 * (powers of the 2N-th root of unity) and the rot-group slot ordering.
 */
class SpecialFft {
  public:
    /** degree = the ring degree N; the transform acts on N/2 slots. */
    explicit SpecialFft(u64 degree);

    u64 slots() const { return slots_; }
    /** Number of radix-2 butterfly stages (log2 of the slot count). */
    int num_stages() const { return num_stages_; }

    /** Forward transform in place: bit reversal, then all forward stages
     *  (decode side: coefficients-as-slots -> embedding slots). */
    void forward(std::complex<double>* vals) const;

    /** Inverse transform in place: all inverse stages, bit reversal, and
     *  the 1/n normalization (encode side). */
    void inverse(std::complex<double>* vals) const;

    /**
     * Matrix of forward stage s in application order (s = 0 is the first
     * stage run after the bit reversal, with butterfly half-length 1).
     * The product F_{S-1} * ... * F_0 equals the forward transform
     * without its bit reversal.
     */
    ComplexDiagMatrix forward_stage_matrix(int s) const;

    /**
     * Matrix of inverse stage s in application order (s = 0 is the first
     * inverse stage, with butterfly half-length n/2). The product
     * G_{S-1} * ... * G_0 equals n * P * inverse-transform, i.e. the
     * inverse stages without bit reversal or normalization.
     */
    ComplexDiagMatrix inverse_stage_matrix(int s) const;

  private:
    void forward_stage(std::complex<double>* vals, u64 len) const;
    void inverse_stage(std::complex<double>* vals, u64 len) const;

    u64 slots_ = 0;
    u64 m_ = 0;  ///< 2N, the order of the root-of-unity group
    int num_stages_ = 0;
    std::vector<std::complex<double>> ksi_pows_;  ///< exp(2*pi*i*k / 2N)
    std::vector<u64> rot_group_;                  ///< 5^j mod 2N
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_SPECIAL_FFT_H_
