#include "src/ckks/serial.h"

#include <cmath>
#include <cstring>

namespace orion::ckks::serial {

namespace {

constexpr std::size_t kFrameBytes = 4 + 1 + 1 + 8;  // magic, ver, kind, len

}  // namespace

// ---------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------

void
ByteWriter::put_u32(u32 v)
{
    u8 b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<u8>(v >> (8 * i));
    put_raw(b, sizeof(b));
}

void
ByteWriter::put_u64(u64 v)
{
    u8 b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<u8>(v >> (8 * i));
    put_raw(b, sizeof(b));
}

void
ByteWriter::put_f64(double v)
{
    static_assert(sizeof(double) == sizeof(u64));
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
}

void
ByteWriter::put_raw(const void* data, std::size_t bytes)
{
    const u8* p = static_cast<const u8*>(data);
    buf_.insert(buf_.end(), p, p + bytes);
}

u8
ByteReader::read_u8()
{
    u8 v;
    read_raw(&v, sizeof(v));
    return v;
}

u32
ByteReader::read_u32()
{
    u8 b[4];
    read_raw(b, sizeof(b));
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(b[i]) << (8 * i);
    return v;
}

u64
ByteReader::read_u64()
{
    u8 b[8];
    read_raw(b, sizeof(b));
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(b[i]) << (8 * i);
    return v;
}

double
ByteReader::read_f64()
{
    const u64 bits = read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
ByteReader::read_raw(void* dst, std::size_t bytes)
{
    ORION_CHECK(bytes <= remaining(),
                "truncated wire payload: need " << bytes << " bytes, have "
                                                << remaining());
    if (src_ != nullptr) {
        src_->read_at(pos_, dst, bytes);
    } else {
        std::memcpy(dst, data_.data() + pos_, bytes);
    }
    pos_ += bytes;
}

u64
ByteReader::read_count(std::size_t elem_bytes, const char* what)
{
    const u64 count = read_u64();
    ORION_CHECK(elem_bytes == 0 ||
                    count <= remaining() / std::max<std::size_t>(elem_bytes, 1),
                "wire count for " << what << " (" << count
                                  << ") exceeds the remaining payload");
    return count;
}

void
ByteReader::expect_done(const char* what) const
{
    ORION_CHECK(done(), remaining()
                            << " trailing bytes after " << what
                            << " payload (corrupt or mismatched length)");
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

Bytes
finish_record(RecordKind kind, ByteWriter payload, u8 version)
{
    ORION_CHECK(version >= kMinWireVersion && version <= kWireVersion,
                "cannot write wire version " << int(version));
    const Bytes body = payload.take();
    ByteWriter w;
    w.put_raw(kMagic, sizeof(kMagic));
    w.put_u8(version);
    w.put_u8(static_cast<u8>(kind));
    w.put_u64(body.size());
    w.put_raw(body.data(), body.size());
    return w.take();
}

namespace {

/** Frame validation shared by open_record and peek_kind. */
RecordKind
check_frame(std::span<const u8> bytes, u8* version_out = nullptr)
{
    ORION_CHECK(bytes.size() >= kFrameBytes,
                "wire record too short for its header ("
                    << bytes.size() << " bytes)");
    ByteReader r(bytes);
    u8 magic[sizeof(kMagic)];
    r.read_raw(magic, sizeof(magic));
    ORION_CHECK(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "bad wire magic (not an Orion record)");
    const u8 version = r.read_u8();
    ORION_CHECK(version >= kMinWireVersion && version <= kWireVersion,
                "unsupported wire version "
                    << int(version) << " (supported: "
                    << int(kMinWireVersion) << ".." << int(kWireVersion)
                    << ")");
    if (version_out != nullptr) *version_out = version;
    const u8 kind = r.read_u8();
    const u64 payload_len = r.read_u64();
    ORION_CHECK(payload_len == r.remaining(),
                "wire length prefix (" << payload_len
                                       << ") does not match payload size ("
                                       << r.remaining() << ")");
    return static_cast<RecordKind>(kind);
}

}  // namespace

ByteReader
open_record(std::span<const u8> bytes, RecordKind expected)
{
    u8 version = kWireVersion;
    const RecordKind kind = check_frame(bytes, &version);
    ORION_CHECK(kind == expected,
                "wire record kind " << int(static_cast<u8>(kind))
                                    << " where kind "
                                    << int(static_cast<u8>(expected))
                                    << " was expected");
    return ByteReader(bytes.subspan(kFrameBytes), version);
}

ByteReader
open_record(ByteSource& src, RecordKind expected)
{
    // Pull just the frame header; the payload stays on the source and is
    // streamed by the returned reader.
    u8 head[kFrameBytes];
    ORION_CHECK(src.size() >= kFrameBytes,
                "wire record too short for its header (" << src.size()
                                                         << " bytes)");
    src.read_at(0, head, sizeof(head));
    ORION_CHECK(std::memcmp(head, kMagic, sizeof(kMagic)) == 0,
                "bad wire magic (not an Orion record)");
    const u8 version = head[4];
    ORION_CHECK(version >= kMinWireVersion && version <= kWireVersion,
                "unsupported wire version "
                    << int(version) << " (supported: "
                    << int(kMinWireVersion) << ".." << int(kWireVersion)
                    << ")");
    const RecordKind kind = static_cast<RecordKind>(head[5]);
    ORION_CHECK(kind == expected,
                "wire record kind " << int(static_cast<u8>(kind))
                                    << " where kind "
                                    << int(static_cast<u8>(expected))
                                    << " was expected");
    u64 payload_len = 0;
    for (int i = 0; i < 8; ++i) {
        payload_len |= static_cast<u64>(head[6 + i]) << (8 * i);
    }
    ORION_CHECK(payload_len == src.size() - kFrameBytes,
                "wire length prefix (" << payload_len
                                       << ") does not match payload size ("
                                       << src.size() - kFrameBytes << ")");
    return ByteReader(src, kFrameBytes, version);
}

RecordKind
peek_kind(std::span<const u8> bytes)
{
    return check_frame(bytes);
}

// ---------------------------------------------------------------------
// CkksParams
// ---------------------------------------------------------------------

void
write_params(ByteWriter& w, const CkksParams& p)
{
    w.put_u64(p.poly_degree);
    w.put_u32(static_cast<u32>(p.log_scale));
    w.put_u32(static_cast<u32>(p.first_prime_bits));
    w.put_u32(static_cast<u32>(p.num_scale_primes));
    w.put_u32(static_cast<u32>(p.special_prime_bits));
    w.put_u32(static_cast<u32>(p.digit_size));
    w.put_u64(p.seed);
    w.put_u32(static_cast<u32>(p.secret_weight));
}

CkksParams
read_params(ByteReader& r)
{
    CkksParams p;
    p.poly_degree = r.read_u64();
    p.log_scale = static_cast<int>(r.read_u32());
    p.first_prime_bits = static_cast<int>(r.read_u32());
    p.num_scale_primes = static_cast<int>(r.read_u32());
    p.special_prime_bits = static_cast<int>(r.read_u32());
    p.digit_size = static_cast<int>(r.read_u32());
    p.seed = r.read_u64();
    p.secret_weight = static_cast<int>(r.read_u32());
    ORION_CHECK(p.secret_weight >= 0 &&
                    static_cast<u64>(p.secret_weight) <= p.poly_degree,
                "wire params: secret_weight out of range");
    ORION_CHECK(is_power_of_two(p.poly_degree),
                "wire params: poly_degree " << p.poly_degree
                                            << " is not a power of two");
    ORION_CHECK(p.log_scale > 0 && p.log_scale < 64 &&
                    p.first_prime_bits > 0 && p.first_prime_bits < 64 &&
                    p.special_prime_bits > 0 && p.special_prime_bits < 64,
                "wire params: bit sizes out of range");
    ORION_CHECK(p.num_scale_primes >= 1 && p.digit_size >= 1,
                "wire params: chain shape out of range");
    return p;
}

bool
params_compatible(const CkksParams& a, const CkksParams& b)
{
    // secret_weight does not change the ring, but it does change the
    // bootstrap circuit's EvalMod range bound (and hence the rotation-key
    // set a serving client must provide), so it is part of compatibility.
    return a.poly_degree == b.poly_degree && a.log_scale == b.log_scale &&
           a.first_prime_bits == b.first_prime_bits &&
           a.num_scale_primes == b.num_scale_primes &&
           a.special_prime_bits == b.special_prime_bits &&
           a.digit_size == b.digit_size &&
           a.secret_weight == b.secret_weight;
}

// ---------------------------------------------------------------------
// RnsPoly
// ---------------------------------------------------------------------

void
write_poly(ByteWriter& w, const RnsPoly& p)
{
    ORION_CHECK(p.valid(), "cannot serialize an empty polynomial");
    // A partially mod-downed poly (special limbs already shrunk) is
    // transient key-switch state; the wire format only carries the full
    // extended basis or none of it.
    ORION_CHECK(!p.extended() ||
                    p.num_limbs() ==
                        p.num_coeff_limbs() + p.context().special_count(),
                "cannot serialize a partially mod-downed polynomial");
    w.put_u8(p.is_ntt() ? 1 : 0);
    w.put_u8(p.extended() ? 1 : 0);
    w.put_u32(static_cast<u32>(p.level()));
    w.put_u64(p.degree());
    const u64 n = p.degree();
    for (int i = 0; i < p.num_limbs(); ++i) {
        // Raw little-endian u64 residues, like the DiskStore payloads.
        w.put_raw(p.limb(i), n * sizeof(u64));
    }
}

RnsPoly
read_poly(ByteReader& r, const Context& ctx)
{
    const u8 ntt_flag = r.read_u8();
    const u8 ext_flag = r.read_u8();
    ORION_CHECK(ntt_flag <= 1 && ext_flag <= 1,
                "wire poly: corrupt form flags");
    const u32 level = r.read_u32();
    ORION_CHECK(level <= static_cast<u32>(ctx.max_level()),
                "wire poly: level " << level << " above the context maximum "
                                    << ctx.max_level());
    const u64 degree = r.read_u64();
    ORION_CHECK(degree == ctx.degree(),
                "wire poly: degree " << degree << " does not match context "
                                     << ctx.degree());
    RnsPoly p(ctx, static_cast<int>(level), ext_flag != 0, ntt_flag != 0);
    const u64 n = ctx.degree();
    ORION_CHECK(static_cast<u64>(p.num_limbs()) * n * sizeof(u64) <=
                    r.remaining(),
                "wire poly: truncated residue data (need "
                    << p.num_limbs() << " limbs of " << n << " residues)");
    for (int i = 0; i < p.num_limbs(); ++i) {
        u64* limb = p.limb(i);
        r.read_raw(limb, n * sizeof(u64));
        const u64 q = p.limb_modulus(i).value();
        u64 max = 0;
        for (u64 j = 0; j < n; ++j) max = std::max(max, limb[j]);
        ORION_CHECK(max < q, "wire poly: residue " << max << " in limb " << i
                                                   << " is >= its modulus "
                                                   << q);
    }
    return p;
}

// ---------------------------------------------------------------------
// Plaintext / Ciphertext
// ---------------------------------------------------------------------

namespace {

double
read_scale(ByteReader& r, const char* what)
{
    const double scale = r.read_f64();
    ORION_CHECK(std::isfinite(scale) && scale > 0.0,
                "wire " << what << ": scale " << scale
                        << " is not a positive finite number");
    return scale;
}

}  // namespace

void
write_plaintext(ByteWriter& w, const Plaintext& pt)
{
    w.put_f64(pt.scale);
    write_poly(w, pt.poly);
}

Plaintext
read_plaintext(ByteReader& r, const Context& ctx)
{
    Plaintext pt;
    pt.scale = read_scale(r, "plaintext");
    pt.poly = read_poly(r, ctx);
    return pt;
}

void
write_ciphertext(ByteWriter& w, const Ciphertext& ct)
{
    ORION_CHECK(ct.valid(), "cannot serialize an empty ciphertext");
    w.put_f64(ct.scale);
    write_poly(w, ct.c0);
    write_poly(w, ct.c1);
}

Ciphertext
read_ciphertext(ByteReader& r, const Context& ctx)
{
    Ciphertext ct;
    ct.scale = read_scale(r, "ciphertext");
    ct.c0 = read_poly(r, ctx);
    ct.c1 = read_poly(r, ctx);
    ORION_CHECK(ct.c0.level() == ct.c1.level() &&
                    ct.c0.is_ntt() == ct.c1.is_ntt() &&
                    ct.c0.extended() == ct.c1.extended(),
                "wire ciphertext: mismatched component polynomials");
    ORION_CHECK(!ct.c0.extended(),
                "wire ciphertext: extended-basis ciphertexts are internal "
                "key-switch state and cannot travel");
    return ct;
}

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

void
write_public_key(ByteWriter& w, const PublicKey& pk)
{
    write_poly(w, pk.b);
    write_poly(w, pk.a);
}

PublicKey
read_public_key(ByteReader& r, const Context& ctx)
{
    PublicKey pk;
    pk.b = read_poly(r, ctx);
    pk.a = read_poly(r, ctx);
    ORION_CHECK(pk.b.level() == pk.a.level() &&
                    pk.b.extended() == pk.a.extended(),
                "wire public key: mismatched component polynomials");
    return pk;
}

void
write_kswitch_key(ByteWriter& w, const KswitchKey& k, u8 version)
{
    ORION_CHECK(k.valid(), "cannot serialize an empty key-switching key");
    w.put_u64(static_cast<u64>(k.num_digits()));
    const bool compact = version >= 3 && k.seeded;
    if (version >= 3) w.put_u8(compact ? 1 : 0);
    if (compact) {
        // Seed-compressed form: the uniform a digits are a pure function
        // of (a_seed, level), so only b travels — half the key bytes.
        w.put_u64(k.a_seed);
        w.put_u32(static_cast<u32>(k.level()));
        for (int d = 0; d < k.num_digits(); ++d) {
            write_poly(w, k.b[static_cast<std::size_t>(d)]);
        }
        return;
    }
    for (int d = 0; d < k.num_digits(); ++d) {
        write_poly(w, k.b[static_cast<std::size_t>(d)]);
        write_poly(w, k.a[static_cast<std::size_t>(d)]);
    }
}

KswitchKey
read_kswitch_key(ByteReader& r, const Context& ctx)
{
    const u64 max_digits =
        static_cast<u64>(ctx.num_digits(ctx.max_level()));
    const u64 digits = r.read_u64();
    ORION_CHECK(digits >= 1 && digits <= max_digits,
                "wire key-switching key: digit count "
                    << digits << " outside [1, " << max_digits << "]");
    KswitchKey k;
    // v2 records predate the seed flag: always explicit (b, a) pairs.
    const bool compact = r.version() >= 3 && r.read_u8() != 0;
    if (compact) {
        k.a_seed = r.read_u64();
        k.seeded = true;
        const u32 level = r.read_u32();
        ORION_CHECK(level <= static_cast<u32>(ctx.max_level()),
                    "wire key-switching key: level " << level
                        << " above the context maximum " << ctx.max_level());
        ORION_CHECK(static_cast<int>(digits) ==
                        ctx.num_digits(static_cast<int>(level)),
                    "wire key-switching key: " << digits
                        << " digits do not cover level " << level
                        << " (expected "
                        << ctx.num_digits(static_cast<int>(level)) << ")");
        k.b.reserve(digits);
        for (u64 d = 0; d < digits; ++d) {
            RnsPoly b = read_poly(r, ctx);
            ORION_CHECK(b.extended() && b.is_ntt() &&
                            b.level() == static_cast<int>(level),
                        "wire key-switching key: digit " << d
                            << " must be extended NTT form at the key's "
                            << "level " << level);
            k.b.push_back(std::move(b));
        }
        // Cold-path expansion: regenerate the uniform digits limb by limb
        // from the 8-byte seed (the other half of the key's bytes).
        k.a = expand_kswitch_a(ctx, k.a_seed, static_cast<int>(level));
        return k;
    }
    k.b.reserve(digits);
    k.a.reserve(digits);
    for (u64 d = 0; d < digits; ++d) {
        RnsPoly b = read_poly(r, ctx);
        RnsPoly a = read_poly(r, ctx);
        ORION_CHECK(b.extended() && a.extended() && b.is_ntt() && a.is_ntt(),
                    "wire key-switching key: digit " << d
                        << " polynomials must be extended NTT form");
        // Keys may be level-pruned, but a key must be internally
        // consistent: every digit at one shared level, and the digit
        // count must cover exactly that level. The key switcher then
        // range-checks the key's level against each use, so a hostile
        // short key can never be read out of bounds.
        ORION_CHECK(b.level() == a.level() &&
                        (d == 0 || b.level() == k.b.front().level()),
                    "wire key-switching key: digit " << d << " level "
                        << b.level() << " disagrees with the key's level");
        k.b.push_back(std::move(b));
        k.a.push_back(std::move(a));
    }
    ORION_CHECK(static_cast<int>(digits) == ctx.num_digits(k.level()),
                "wire key-switching key: " << digits
                    << " digits do not cover level " << k.level()
                    << " (expected " << ctx.num_digits(k.level()) << ")");
    return k;
}

void
write_galois_keys(ByteWriter& w, const GaloisKeys& g, u8 version)
{
    w.put_u64(g.keys.size());
    for (const auto& [elt, key] : g.keys) {
        w.put_u64(elt);
        write_kswitch_key(w, key, version);
    }
}

GaloisKeys
read_galois_keys(ByteReader& r, const Context& ctx)
{
    // Each entry is at least an element id plus one digit of two polys.
    const u64 count = r.read_count(8, "Galois key set");
    GaloisKeys g;
    for (u64 i = 0; i < count; ++i) {
        const u64 elt = r.read_u64();
        ORION_CHECK(elt % 2 == 1 && elt < 2 * ctx.degree(),
                    "wire Galois keys: element " << elt
                        << " is not a valid automorphism of this ring");
        ORION_CHECK(g.keys.count(elt) == 0,
                    "wire Galois keys: duplicate element " << elt);
        g.keys.emplace(elt, read_kswitch_key(r, ctx));
    }
    return g;
}

// ---------------------------------------------------------------------
// Top-level records
// ---------------------------------------------------------------------

namespace {

template <typename WriteFn>
Bytes
make_record(RecordKind kind, WriteFn&& fn)
{
    ByteWriter w;
    fn(w);
    return finish_record(kind, std::move(w));
}

}  // namespace

Bytes
serialize(const CkksParams& p)
{
    return make_record(RecordKind::kParams,
                       [&](ByteWriter& w) { write_params(w, p); });
}

CkksParams
deserialize_params(std::span<const u8> bytes)
{
    ByteReader r = open_record(bytes, RecordKind::kParams);
    const CkksParams p = read_params(r);
    r.expect_done("params");
    return p;
}

Bytes
serialize(const RnsPoly& p)
{
    return make_record(RecordKind::kPoly,
                       [&](ByteWriter& w) { write_poly(w, p); });
}

RnsPoly
deserialize_poly(std::span<const u8> bytes, const Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kPoly);
    RnsPoly p = read_poly(r, ctx);
    r.expect_done("poly");
    return p;
}

Bytes
serialize(const Plaintext& pt)
{
    return make_record(RecordKind::kPlaintext,
                       [&](ByteWriter& w) { write_plaintext(w, pt); });
}

Plaintext
deserialize_plaintext(std::span<const u8> bytes, const Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kPlaintext);
    Plaintext pt = read_plaintext(r, ctx);
    r.expect_done("plaintext");
    return pt;
}

Bytes
serialize(const Ciphertext& ct)
{
    return make_record(RecordKind::kCiphertext,
                       [&](ByteWriter& w) { write_ciphertext(w, ct); });
}

Ciphertext
deserialize_ciphertext(std::span<const u8> bytes, const Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kCiphertext);
    Ciphertext ct = read_ciphertext(r, ctx);
    r.expect_done("ciphertext");
    return ct;
}

Bytes
serialize(const PublicKey& pk)
{
    return make_record(RecordKind::kPublicKey,
                       [&](ByteWriter& w) { write_public_key(w, pk); });
}

PublicKey
deserialize_public_key(std::span<const u8> bytes, const Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kPublicKey);
    PublicKey pk = read_public_key(r, ctx);
    r.expect_done("public key");
    return pk;
}

Bytes
serialize(const KswitchKey& k)
{
    return make_record(RecordKind::kKswitchKey,
                       [&](ByteWriter& w) { write_kswitch_key(w, k); });
}

KswitchKey
deserialize_kswitch_key(std::span<const u8> bytes, const Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kKswitchKey);
    KswitchKey k = read_kswitch_key(r, ctx);
    r.expect_done("key-switching key");
    return k;
}

KswitchKey
deserialize_kswitch_key(ByteSource& src, const Context& ctx)
{
    ByteReader r = open_record(src, RecordKind::kKswitchKey);
    KswitchKey k = read_kswitch_key(r, ctx);
    r.expect_done("key-switching key");
    return k;
}

Bytes
serialize(const GaloisKeys& g)
{
    return make_record(RecordKind::kGaloisKeys,
                       [&](ByteWriter& w) { write_galois_keys(w, g); });
}

GaloisKeys
deserialize_galois_keys(std::span<const u8> bytes, const Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kGaloisKeys);
    GaloisKeys g = read_galois_keys(r, ctx);
    r.expect_done("Galois key set");
    return g;
}

GaloisKeys
deserialize_galois_keys(ByteSource& src, const Context& ctx)
{
    ByteReader r = open_record(src, RecordKind::kGaloisKeys);
    GaloisKeys g = read_galois_keys(r, ctx);
    r.expect_done("Galois key set");
    return g;
}

}  // namespace orion::ckks::serial
