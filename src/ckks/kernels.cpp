#include "src/ckks/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ORION_SIMD_X86 1
#include <immintrin.h>
#else
#define ORION_SIMD_X86 0
#endif

namespace orion::ckks::kernels {

// =====================================================================
// Scalar reference kernels
//
// These are the PR-2 lazy-reduction loops, moved here verbatim from
// ntt.cpp / poly.cpp / keyswitch.cpp. They are the correctness oracle:
// every vector kernel below must produce bit-identical output
// (tests/test_kernels_simd.cpp enforces it on adversarial inputs).
// =====================================================================

namespace scalar {

void
ntt_forward(const NttView& v, u64* a)
{
    // Cooley-Tukey, decimation in time, with merged psi twiddles. After the
    // pass with span t, block b holds the residues mod (X^t - roots[m+b]).
    //
    // Harvey lazy butterflies: every stage takes inputs in [0, 4q) and
    // produces outputs in [0, 4q) — the top input is pre-reduced to
    // [0, 2q), the Shoup product of the bottom input lands in [0, 2q),
    // and their lazy sum/difference stays below 4q. One vector
    // normalization pass at the end restores canonical [0, q) residues,
    // bit-identical to reducing inside every butterfly.
    const Modulus& q = v.q;
    const u64 two_q = 2 * q.value();
    u64 t = v.n;
    for (u64 m = 1; m < v.n; m <<= 1) {
        t >>= 1;
        for (u64 i = 0; i < m; ++i) {
            const u64 w = v.roots[m + i];
            const u64 ws = v.roots_shoup[m + i];
            u64* x = a + 2 * i * t;
            u64* y = x + t;
            for (u64 j = 0; j < t; ++j) {
                u64 u = x[j];
                if (u >= two_q) u -= two_q;  // [0, 2q)
                const u64 vv = mul_mod_shoup_lazy(y[j], w, ws, q);  // [0, 2q)
                x[j] = u + vv;               // [0, 4q)
                y[j] = u + two_q - vv;       // [0, 4q)
            }
        }
    }
    normalize_lazy(a, v.n, q);
}

void
ntt_inverse(const NttView& v, u64* a)
{
    // Gentleman-Sande, decimation in frequency, inverse twiddles.
    //
    // Lazy variant: stage inputs and outputs stay in [0, 2q) (the sum is
    // conditionally reduced from [0, 4q), the difference goes through a
    // lazy Shoup product). The final stage (m == 1) folds the 1/N scaling
    // into its twiddles — n_inv on the sum side, inv_roots[1] * n_inv on
    // the difference side — replacing the separate scaling pass, and the
    // closing normalization is a single conditional subtraction.
    const Modulus& q = v.q;
    const u64 two_q = 2 * q.value();
    u64 t = 1;
    for (u64 m = v.n >> 1; m > 1; m >>= 1) {
        for (u64 i = 0; i < m; ++i) {
            const u64 w = v.inv_roots[m + i];
            const u64 ws = v.inv_roots_shoup[m + i];
            u64* x = a + 2 * i * t;
            u64* y = x + t;
            for (u64 j = 0; j < t; ++j) {
                const u64 u = x[j];
                const u64 vv = y[j];
                u64 s = u + vv;              // [0, 4q)
                if (s >= two_q) s -= two_q;  // [0, 2q)
                x[j] = s;
                y[j] = mul_mod_shoup_lazy(u + two_q - vv, w, ws, q);
            }
        }
        t <<= 1;
    }
    if (v.n >= 2) {
        // Last stage (m == 1, span t == n/2) with the fused 1/N scaling.
        u64* x = a;
        u64* y = a + t;
        for (u64 j = 0; j < t; ++j) {
            const u64 u = x[j];
            const u64 vv = y[j];
            x[j] = mul_mod_shoup_lazy(u + vv, v.n_inv, v.n_inv_shoup, q);
            y[j] = mul_mod_shoup_lazy(u + two_q - vv, v.inv_root_last_scaled,
                                      v.inv_root_last_scaled_shoup, q);
        }
    }
    for (u64 j = 0; j < v.n; ++j) {
        if (a[j] >= q.value()) a[j] -= q.value();
    }
}

void
add_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    for (u64 j = 0; j < n; ++j) a[j] = add_mod(a[j], b[j], q);
}

void
sub_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    for (u64 j = 0; j < n; ++j) a[j] = sub_mod(a[j], b[j], q);
}

void
mul_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    for (u64 j = 0; j < n; ++j) a[j] = mul_mod(a[j], b[j], q);
}

void
add_product_n(u64* a, const u64* x, const u64* y, u64 n, const Modulus& q)
{
    for (u64 j = 0; j < n; ++j) {
        // Lazy: one Barrett reduction for the whole a + x*y term
        // (x*y < 2^122 and a < 2^61, so the u128 sum cannot overflow);
        // same canonical residue as mul_mod followed by add_mod.
        a[j] = q.reduce_128(u128(a[j]) + u128(x[j]) * y[j]);
    }
}

void
mul_scalar_shoup_n(u64* a, const u64* src, u64 n, u64 w, u64 w_shoup,
                   const Modulus& q)
{
    for (u64 j = 0; j < n; ++j) {
        a[j] = mul_mod_shoup(src[j], w, w_shoup, q);
    }
}

void
normalize_lazy_n(u64* a, u64 n, const Modulus& q)
{
    normalize_lazy(a, n, q);
}

void
ks_inner_product(u64* o0, u64* o1, const u64* const* xs, const u64* const* bs,
                 const u64* const* as, u64 num_digits, u64 n, const Modulus& q)
{
    // Lazy reduction: the digit sum accumulates per coefficient in a u128
    // and pays ONE Barrett reduce_128 per output instead of a mul_mod +
    // add_mod per term. With q < 2^61 each product is below 2^122, so
    // chunks of up to 16 terms (plus the carried-in partial sum, < q)
    // stay below 2^127 — reduced between chunks to keep deeper digit
    // counts overflow-free.
    constexpr u64 kChunk = 16;
    for (u64 j = 0; j < n; ++j) {
        u128 s0 = o0[j];  // carried-in partial sums (double-hoisting)
        u128 s1 = o1[j];
        u64 d = 0;
        while (d < num_digits) {
            const u64 end = std::min(d + kChunk, num_digits);
            for (; d < end; ++d) {
                const u128 x = xs[d][j];
                s0 += x * bs[d][j];
                s1 += x * as[d][j];
            }
            if (d < num_digits) {
                s0 = q.reduce_128(s0);
                s1 = q.reduce_128(s1);
            }
        }
        o0[j] = q.reduce_128(s0);
        o1[j] = q.reduce_128(s1);
    }
}

void
base_conv_acc(u64* dst, const u64* const* lams, const u64* hats, int len,
              u64 n, const Modulus& q)
{
    // len is a key-switch digit width (<= alpha, always far below 32);
    // 32 products below 2^122 sum to < 2^127, no u128 overflow.
    ORION_ASSERT(len >= 0 && len <= 32);
    for (u64 x = 0; x < n; ++x) {
        u128 acc = 0;
        for (int j = 0; j < len; ++j) {
            acc += u128(lams[j][x]) * hats[j];
        }
        dst[x] = q.reduce_128(acc);
    }
}

}  // namespace scalar

#if ORION_SIMD_X86

#define ORION_TARGET_AVX2 __attribute__((target("avx2")))
#define ORION_TARGET_AVX512 \
    __attribute__((target("avx512f,avx512dq,avx512vl,avx512bw")))

// =====================================================================
// AVX2 kernels (4 x u64 lanes)
//
// Per-lane range proofs: identical to the scalar kernels — the vector
// code executes the same mod-2^64 u64 operations per element, so the
// scalar bounds ([0, 2q) Shoup products, [0, 4q) butterfly values, sums
// below 8q < 2^64, 128-bit chunk accumulators below 2^127) carry over
// lane by lane. The only vector-specific construction is the 64x64->128
// multiply, decomposed into 32-bit partial products:
//   mid  = p_lh + (p_ll >> 32)          <= (2^32-1)^2 + (2^32-1) < 2^64
//   mid2 = p_hl + (mid & 0xffffffff)    <= (2^32-1)^2 + (2^32-1) < 2^64
//   hi   = p_hh + (mid >> 32) + (mid2 >> 32)
// — every intermediate fits a u64 lane with no carries lost, so the
// (hi, lo) pair equals the scalar u128 product exactly.
// =====================================================================

namespace avx2 {

ORION_TARGET_AVX2 static inline __m256i
mullo64(__m256i a, __m256i b)
{
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                           _mm256_mul_epu32(a_hi, b));
    return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                            _mm256_slli_epi64(cross, 32));
}

ORION_TARGET_AVX2 static inline __m256i
mulhi64(__m256i a, __m256i b)
{
    const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffLL);
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i p_ll = _mm256_mul_epu32(a, b);
    const __m256i p_lh = _mm256_mul_epu32(a, b_hi);
    const __m256i p_hl = _mm256_mul_epu32(a_hi, b);
    const __m256i p_hh = _mm256_mul_epu32(a_hi, b_hi);
    const __m256i mid = _mm256_add_epi64(p_lh, _mm256_srli_epi64(p_ll, 32));
    const __m256i mid2 =
        _mm256_add_epi64(p_hl, _mm256_and_si256(mid, lo_mask));
    return _mm256_add_epi64(
        p_hh, _mm256_add_epi64(_mm256_srli_epi64(mid, 32),
                               _mm256_srli_epi64(mid2, 32)));
}

/** Unsigned a > b per lane (all-ones where true). AVX2 only has signed
 *  64-bit compares; flipping the sign bit of both operands maps unsigned
 *  order onto signed order. */
ORION_TARGET_AVX2 static inline __m256i
cmpgt64u(__m256i a, __m256i b)
{
    const __m256i sign = _mm256_set1_epi64x(
        static_cast<i64>(0x8000000000000000ULL));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                              _mm256_xor_si256(b, sign));
}

/** a >= bound ? a - bound : a (the conditional subtraction). */
ORION_TARGET_AVX2 static inline __m256i
csub(__m256i a, __m256i bound)
{
    const __m256i keep = cmpgt64u(bound, a);  // bound > a -> keep
    return _mm256_sub_epi64(a, _mm256_andnot_si256(keep, bound));
}

/** Lane-wise mul_mod_shoup_lazy: a * w - ((a * ws) >> 64) * q, in [0, 2q). */
ORION_TARGET_AVX2 static inline __m256i
shoup_lazy(__m256i a, __m256i w, __m256i ws, __m256i qv)
{
    const __m256i hi = mulhi64(a, ws);
    return _mm256_sub_epi64(mullo64(a, w), mullo64(hi, qv));
}

/**
 * Lane-wise Modulus::reduce_128 of the 128-bit lane values (x0, x1):
 * mirrors the scalar word schedule exactly — t = ((x0*r0) >> 64) + x0*r1
 * + x1*r0 tracked as a (lo, hi) pair with explicit carries, q_hat =
 * hi(t) + x1*r1 wrapping, r = x0 - q_hat*q wrapping, one csub.
 */
ORION_TARGET_AVX2 static inline __m256i
reduce128(__m256i x0, __m256i x1, __m256i r0, __m256i r1, __m256i qv)
{
    __m256i lo = mulhi64(x0, r0);
    __m256i hi = _mm256_setzero_si256();
    {
        const __m256i p_lo = mullo64(x0, r1);
        const __m256i p_hi = mulhi64(x0, r1);
        const __m256i sum = _mm256_add_epi64(lo, p_lo);
        const __m256i carry = cmpgt64u(lo, sum);  // sum < lo -> carried
        hi = _mm256_sub_epi64(_mm256_add_epi64(hi, p_hi), carry);
        lo = sum;
    }
    {
        const __m256i p_lo = mullo64(x1, r0);
        const __m256i p_hi = mulhi64(x1, r0);
        const __m256i sum = _mm256_add_epi64(lo, p_lo);
        const __m256i carry = cmpgt64u(lo, sum);
        hi = _mm256_sub_epi64(_mm256_add_epi64(hi, p_hi), carry);
        lo = sum;
    }
    const __m256i q_hat = _mm256_add_epi64(hi, mullo64(x1, r1));
    const __m256i r = _mm256_sub_epi64(x0, mullo64(q_hat, qv));
    return csub(r, qv);
}

ORION_TARGET_AVX2 void
add_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
        const __m256i s = csub(_mm256_add_epi64(av, bv), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), s);
    }
    for (; j < n; ++j) a[j] = add_mod(a[j], b[j], q);
}

ORION_TARGET_AVX2 void
sub_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
        // a - b, plus q where b > a (wraps exactly like the scalar branch).
        const __m256i borrow = cmpgt64u(bv, av);
        const __m256i d = _mm256_add_epi64(_mm256_sub_epi64(av, bv),
                                           _mm256_and_si256(borrow, qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), d);
    }
    for (; j < n; ++j) a[j] = sub_mod(a[j], b[j], q);
}

ORION_TARGET_AVX2 void
mul_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    const __m256i r0 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_lo()));
    const __m256i r1 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_hi()));
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
        const __m256i res =
            reduce128(mullo64(av, bv), mulhi64(av, bv), r0, r1, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), res);
    }
    for (; j < n; ++j) a[j] = mul_mod(a[j], b[j], q);
}

ORION_TARGET_AVX2 void
add_product_n(u64* a, const u64* x, const u64* y, u64 n, const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    const __m256i r0 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_lo()));
    const __m256i r1 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_hi()));
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + j));
        const __m256i yv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
        // 128-bit lane value a + x*y: x*y < 2^122, a < 2^61 — the carry
        // into the high word is the only interaction, tracked exactly.
        const __m256i p_lo = mullo64(xv, yv);
        const __m256i p_hi = mulhi64(xv, yv);
        const __m256i lo = _mm256_add_epi64(p_lo, av);
        const __m256i carry = cmpgt64u(p_lo, lo);
        const __m256i hi = _mm256_sub_epi64(p_hi, carry);
        const __m256i res = reduce128(lo, hi, r0, r1, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), res);
    }
    for (; j < n; ++j) {
        a[j] = q.reduce_128(u128(a[j]) + u128(x[j]) * y[j]);
    }
}

ORION_TARGET_AVX2 void
mul_scalar_shoup_n(u64* a, const u64* src, u64 n, u64 w, u64 w_shoup,
                   const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    const __m256i wv = _mm256_set1_epi64x(static_cast<i64>(w));
    const __m256i wsv = _mm256_set1_epi64x(static_cast<i64>(w_shoup));
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i sv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + j));
        const __m256i res = csub(shoup_lazy(sv, wv, wsv, qv), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), res);
    }
    for (; j < n; ++j) a[j] = mul_mod_shoup(src[j], w, w_shoup, q);
}

ORION_TARGET_AVX2 void
normalize_lazy_n(u64* a, u64 n, const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    const __m256i two_qv = _mm256_set1_epi64x(static_cast<i64>(2 * q.value()));
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        av = csub(csub(av, two_qv), qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), av);
    }
    for (; j < n; ++j) a[j] = normalize_lazy(a[j], q);
}

/**
 * Fused stages (span S in {2, 1}) work on a PAIR of vectors at a time:
 * the 8 elements are deinterleaved into the 4 block-top elements x and
 * the 4 block-bottom elements y, the butterfly runs once per pair on
 * full 4-wide lanes (one Shoup product per butterfly, same as the
 * wide-span stages), and the results are interleaved back. Every
 * per-element u64 operation matches the scalar stage exactly.
 */

/** Twiddles of the 4 butterflies in one pair, one lane per butterfly in
 *  deinterleaved order (butterfly k of the pair gets tab[m + blk + k/S]). */
template <int S>
ORION_TARGET_AVX2 static inline __m256i
load_twiddles(const u64* tab, u64 m, u64 blk)
{
    if constexpr (S == 2) {
        // Two blocks per pair: replicate each twiddle twice (w0 w0 w1 w1).
        const __m128i w2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(tab + m + blk));
        return _mm256_permute4x64_epi64(_mm256_castsi128_si256(w2), 0x50);
    } else {
        // Four blocks per pair: one twiddle per lane, contiguous.
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tab + m + blk));
    }
}

/** Splits the pair (va, vb) into block-top lanes x and block-bottom y. */
template <int S>
ORION_TARGET_AVX2 static inline void
deinterleave(__m256i va, __m256i vb, __m256i* x, __m256i* y)
{
    if constexpr (S == 2) {
        *x = _mm256_permute2x128_si256(va, vb, 0x20);  // e0 e1 | e4 e5
        *y = _mm256_permute2x128_si256(va, vb, 0x31);  // e2 e3 | e6 e7
    } else {
        const __m256i ta = _mm256_permute4x64_epi64(va, 0xD8);  // a0 a2 a1 a3
        const __m256i tb = _mm256_permute4x64_epi64(vb, 0xD8);
        *x = _mm256_permute2x128_si256(ta, tb, 0x20);  // e0 e2 e4 e6
        *y = _mm256_permute2x128_si256(ta, tb, 0x31);  // e1 e3 e5 e7
    }
}

/** Inverse of deinterleave: merges x / y lanes back into (va, vb). */
template <int S>
ORION_TARGET_AVX2 static inline void
interleave(__m256i x, __m256i y, __m256i* va, __m256i* vb)
{
    if constexpr (S == 2) {
        *va = _mm256_permute2x128_si256(x, y, 0x20);  // x0 x1 y0 y1
        *vb = _mm256_permute2x128_si256(x, y, 0x31);  // x2 x3 y2 y3
    } else {
        const __m256i u0 = _mm256_unpacklo_epi64(x, y);  // x0 y0 x2 y2
        const __m256i u1 = _mm256_unpackhi_epi64(x, y);  // x1 y1 x3 y3
        *va = _mm256_permute2x128_si256(u0, u1, 0x20);   // x0 y0 x1 y1
        *vb = _mm256_permute2x128_si256(u0, u1, 0x31);   // x2 y2 x3 y3
    }
}

template <int S>
ORION_TARGET_AVX2 static inline void
fwd_fused(const NttView& v, u64* a, u64 m, __m256i qv, __m256i two_qv)
{
    static_assert(S == 1 || S == 2);
    for (u64 off = 0; off < v.n; off += 8) {
        const u64 blk = off / (2 * S);
        const __m256i wv = load_twiddles<S>(v.roots, m, blk);
        const __m256i wsv = load_twiddles<S>(v.roots_shoup, m, blk);
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + off));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + off + 4));
        __m256i x, y;
        deinterleave<S>(va, vb, &x, &y);
        const __m256i u = csub(x, two_qv);
        const __m256i vv = shoup_lazy(y, wv, wsv, qv);
        const __m256i sum = _mm256_add_epi64(u, vv);
        const __m256i diff =
            _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), vv);
        __m256i ra, rb;
        interleave<S>(sum, diff, &ra, &rb);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + off), ra);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + off + 4), rb);
    }
}

/** Fused inverse stage for span S in {1, 2} (same lane maps as forward). */
template <int S>
ORION_TARGET_AVX2 static inline void
inv_fused(const NttView& v, u64* a, u64 m, __m256i qv, __m256i two_qv)
{
    static_assert(S == 1 || S == 2);
    for (u64 off = 0; off < v.n; off += 8) {
        const u64 blk = off / (2 * S);
        const __m256i wv = load_twiddles<S>(v.inv_roots, m, blk);
        const __m256i wsv = load_twiddles<S>(v.inv_roots_shoup, m, blk);
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + off));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + off + 4));
        __m256i u, vv;
        deinterleave<S>(va, vb, &u, &vv);
        const __m256i sum = csub(_mm256_add_epi64(u, vv), two_qv);
        const __m256i diff = shoup_lazy(
            _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), vv), wv, wsv, qv);
        __m256i ra, rb;
        interleave<S>(sum, diff, &ra, &rb);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + off), ra);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + off + 4), rb);
    }
}

ORION_TARGET_AVX2 void
ntt_forward(const NttView& v, u64* a)
{
    if (v.n < 8) {
        scalar::ntt_forward(v, a);
        return;
    }
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(v.q.value()));
    const __m256i two_qv =
        _mm256_set1_epi64x(static_cast<i64>(2 * v.q.value()));
    const u64 two_q = 2 * v.q.value();
    (void)two_q;
    u64 t = v.n;
    for (u64 m = 1; m < v.n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            // Broadcast-twiddle stages: span a multiple of the lane width,
            // one twiddle per block.
            for (u64 i = 0; i < m; ++i) {
                const __m256i wv =
                    _mm256_set1_epi64x(static_cast<i64>(v.roots[m + i]));
                const __m256i wsv = _mm256_set1_epi64x(
                    static_cast<i64>(v.roots_shoup[m + i]));
                u64* x = a + 2 * i * t;
                u64* y = x + t;
                for (u64 j = 0; j < t; j += 4) {
                    const __m256i u = csub(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(x + j)),
                        two_qv);
                    const __m256i vv = shoup_lazy(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(y + j)),
                        wv, wsv, qv);
                    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j),
                                        _mm256_add_epi64(u, vv));
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i*>(y + j),
                        _mm256_sub_epi64(_mm256_add_epi64(u, two_qv), vv));
                }
            }
        } else if (t == 2) {
            fwd_fused<2>(v, a, m, qv, two_qv);
        } else {
            fwd_fused<1>(v, a, m, qv, two_qv);
        }
    }
    normalize_lazy_n(a, v.n, v.q);
}

ORION_TARGET_AVX2 void
ntt_inverse(const NttView& v, u64* a)
{
    if (v.n < 8) {
        scalar::ntt_inverse(v, a);
        return;
    }
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(v.q.value()));
    const __m256i two_qv =
        _mm256_set1_epi64x(static_cast<i64>(2 * v.q.value()));
    u64 t = 1;
    for (u64 m = v.n >> 1; m > 1; m >>= 1) {
        if (t == 1) {
            inv_fused<1>(v, a, m, qv, two_qv);
        } else if (t == 2) {
            inv_fused<2>(v, a, m, qv, two_qv);
        } else {
            for (u64 i = 0; i < m; ++i) {
                const __m256i wv =
                    _mm256_set1_epi64x(static_cast<i64>(v.inv_roots[m + i]));
                const __m256i wsv = _mm256_set1_epi64x(
                    static_cast<i64>(v.inv_roots_shoup[m + i]));
                u64* x = a + 2 * i * t;
                u64* y = x + t;
                for (u64 j = 0; j < t; j += 4) {
                    const __m256i u = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(x + j));
                    const __m256i vv = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(y + j));
                    const __m256i s = csub(_mm256_add_epi64(u, vv), two_qv);
                    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j),
                                        s);
                    _mm256_storeu_si256(
                        reinterpret_cast<__m256i*>(y + j),
                        shoup_lazy(_mm256_sub_epi64(
                                       _mm256_add_epi64(u, two_qv), vv),
                                   wv, wsv, qv));
                }
            }
        }
        t <<= 1;
    }
    {
        // Final stage (m == 1, span t == n/2 >= 4) with fused 1/N scaling.
        const __m256i niv = _mm256_set1_epi64x(static_cast<i64>(v.n_inv));
        const __m256i nisv =
            _mm256_set1_epi64x(static_cast<i64>(v.n_inv_shoup));
        const __m256i lwv =
            _mm256_set1_epi64x(static_cast<i64>(v.inv_root_last_scaled));
        const __m256i lwsv = _mm256_set1_epi64x(
            static_cast<i64>(v.inv_root_last_scaled_shoup));
        u64* x = a;
        u64* y = a + t;
        for (u64 j = 0; j < t; j += 4) {
            const __m256i u =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + j));
            const __m256i vv =
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(x + j),
                shoup_lazy(_mm256_add_epi64(u, vv), niv, nisv, qv));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i*>(y + j),
                shoup_lazy(_mm256_sub_epi64(_mm256_add_epi64(u, two_qv), vv),
                           lwv, lwsv, qv));
        }
    }
    for (u64 j = 0; j < v.n; j += 4) {
        __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + j));
        av = csub(av, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), av);
    }
}

ORION_TARGET_AVX2 void
ks_inner_product(u64* o0, u64* o1, const u64* const* xs, const u64* const* bs,
                 const u64* const* as, u64 num_digits, u64 n, const Modulus& q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    const __m256i r0 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_lo()));
    const __m256i r1 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_hi()));
    constexpr u64 kChunk = 16;
    u64 j = 0;
    for (; j + 4 <= n; j += 4) {
        // 128-bit lane accumulators as (lo, hi) pairs with manual carries
        // — the exact decomposition of the scalar u128 sums.
        __m256i s0_lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o0 + j));
        __m256i s0_hi = _mm256_setzero_si256();
        __m256i s1_lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o1 + j));
        __m256i s1_hi = _mm256_setzero_si256();
        u64 d = 0;
        while (d < num_digits) {
            const u64 end = std::min(d + kChunk, num_digits);
            for (; d < end; ++d) {
                const __m256i x = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(xs[d] + j));
                {
                    const __m256i k = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(bs[d] + j));
                    const __m256i p_lo = mullo64(x, k);
                    const __m256i p_hi = mulhi64(x, k);
                    const __m256i sum = _mm256_add_epi64(s0_lo, p_lo);
                    const __m256i carry = cmpgt64u(s0_lo, sum);
                    s0_hi = _mm256_sub_epi64(_mm256_add_epi64(s0_hi, p_hi),
                                             carry);
                    s0_lo = sum;
                }
                {
                    const __m256i k = _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(as[d] + j));
                    const __m256i p_lo = mullo64(x, k);
                    const __m256i p_hi = mulhi64(x, k);
                    const __m256i sum = _mm256_add_epi64(s1_lo, p_lo);
                    const __m256i carry = cmpgt64u(s1_lo, sum);
                    s1_hi = _mm256_sub_epi64(_mm256_add_epi64(s1_hi, p_hi),
                                             carry);
                    s1_lo = sum;
                }
            }
            if (d < num_digits) {
                s0_lo = reduce128(s0_lo, s0_hi, r0, r1, qv);
                s0_hi = _mm256_setzero_si256();
                s1_lo = reduce128(s1_lo, s1_hi, r0, r1, qv);
                s1_hi = _mm256_setzero_si256();
            }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(o0 + j),
                            reduce128(s0_lo, s0_hi, r0, r1, qv));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(o1 + j),
                            reduce128(s1_lo, s1_hi, r0, r1, qv));
    }
    if (j < n) {
        // Scalar tail over the remaining coefficients.
        constexpr u64 kChunkTail = kChunk;
        for (; j < n; ++j) {
            u128 s0 = o0[j];
            u128 s1 = o1[j];
            u64 d = 0;
            while (d < num_digits) {
                const u64 end = std::min(d + kChunkTail, num_digits);
                for (; d < end; ++d) {
                    const u128 x = xs[d][j];
                    s0 += x * bs[d][j];
                    s1 += x * as[d][j];
                }
                if (d < num_digits) {
                    s0 = q.reduce_128(s0);
                    s1 = q.reduce_128(s1);
                }
            }
            o0[j] = q.reduce_128(s0);
            o1[j] = q.reduce_128(s1);
        }
    }
}

ORION_TARGET_AVX2 void
base_conv_acc(u64* dst, const u64* const* lams, const u64* hats, int len,
              u64 n, const Modulus& q)
{
    ORION_ASSERT(len >= 0 && len <= 32);
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q.value()));
    const __m256i r0 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_lo()));
    const __m256i r1 = _mm256_set1_epi64x(static_cast<i64>(q.ratio_hi()));
    u64 x = 0;
    for (; x + 4 <= n; x += 4) {
        __m256i lo = _mm256_setzero_si256();
        __m256i hi = _mm256_setzero_si256();
        for (int jj = 0; jj < len; ++jj) {
            const __m256i lam = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(lams[jj] + x));
            const __m256i hat =
                _mm256_set1_epi64x(static_cast<i64>(hats[jj]));
            const __m256i p_lo = mullo64(lam, hat);
            const __m256i p_hi = mulhi64(lam, hat);
            const __m256i sum = _mm256_add_epi64(lo, p_lo);
            const __m256i carry = cmpgt64u(lo, sum);
            hi = _mm256_sub_epi64(_mm256_add_epi64(hi, p_hi), carry);
            lo = sum;
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + x),
                            reduce128(lo, hi, r0, r1, qv));
    }
    for (; x < n; ++x) {
        u128 acc = 0;
        for (int jj = 0; jj < len; ++jj) {
            acc += u128(lams[jj][x]) * hats[jj];
        }
        dst[x] = q.reduce_128(acc);
    }
}

}  // namespace avx2

// =====================================================================
// AVX-512 kernels (8 x u64 lanes)
//
// Same word-exact constructions as AVX2 with three upgrades: native
// 64-bit low multiplies (VPMULLQ, AVX-512DQ), mask registers for the
// conditional subtractions and carries (no sign-flip compares), and
// fused in-register stages covering spans 4/2/1 so the entire NTT stays
// vectorized. Range proofs are unchanged — identical per-lane values.
// =====================================================================

namespace avx512 {

ORION_TARGET_AVX512 static inline __m512i
mulhi64(__m512i a, __m512i b)
{
    const __m512i lo_mask = _mm512_set1_epi64(0xffffffffLL);
    const __m512i a_hi = _mm512_srli_epi64(a, 32);
    const __m512i b_hi = _mm512_srli_epi64(b, 32);
    const __m512i p_ll = _mm512_mul_epu32(a, b);
    const __m512i p_lh = _mm512_mul_epu32(a, b_hi);
    const __m512i p_hl = _mm512_mul_epu32(a_hi, b);
    const __m512i p_hh = _mm512_mul_epu32(a_hi, b_hi);
    const __m512i mid = _mm512_add_epi64(p_lh, _mm512_srli_epi64(p_ll, 32));
    const __m512i mid2 =
        _mm512_add_epi64(p_hl, _mm512_and_epi64(mid, lo_mask));
    return _mm512_add_epi64(
        p_hh, _mm512_add_epi64(_mm512_srli_epi64(mid, 32),
                               _mm512_srli_epi64(mid2, 32)));
}

ORION_TARGET_AVX512 static inline __m512i
csub(__m512i a, __m512i bound)
{
    const __mmask8 ge = _mm512_cmpge_epu64_mask(a, bound);
    return _mm512_mask_sub_epi64(a, ge, a, bound);
}

ORION_TARGET_AVX512 static inline __m512i
shoup_lazy(__m512i a, __m512i w, __m512i ws, __m512i qv)
{
    const __m512i hi = mulhi64(a, ws);
    return _mm512_sub_epi64(_mm512_mullo_epi64(a, w),
                            _mm512_mullo_epi64(hi, qv));
}

ORION_TARGET_AVX512 static inline __m512i
reduce128(__m512i x0, __m512i x1, __m512i r0, __m512i r1, __m512i qv)
{
    __m512i lo = mulhi64(x0, r0);
    __m512i hi = _mm512_setzero_si512();
    {
        const __m512i p_lo = _mm512_mullo_epi64(x0, r1);
        const __m512i p_hi = mulhi64(x0, r1);
        const __m512i sum = _mm512_add_epi64(lo, p_lo);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(sum, lo);
        hi = _mm512_sub_epi64(_mm512_add_epi64(hi, p_hi),
                              _mm512_movm_epi64(carry));
        lo = sum;
    }
    {
        const __m512i p_lo = _mm512_mullo_epi64(x1, r0);
        const __m512i p_hi = mulhi64(x1, r0);
        const __m512i sum = _mm512_add_epi64(lo, p_lo);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(sum, lo);
        hi = _mm512_sub_epi64(_mm512_add_epi64(hi, p_hi),
                              _mm512_movm_epi64(carry));
        lo = sum;
    }
    const __m512i q_hat = _mm512_add_epi64(hi, _mm512_mullo_epi64(x1, r1));
    const __m512i r = _mm512_sub_epi64(x0, _mm512_mullo_epi64(q_hat, qv));
    return csub(r, qv);
}

ORION_TARGET_AVX512 void
add_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i av = _mm512_loadu_si512(a + j);
        const __m512i bv = _mm512_loadu_si512(b + j);
        _mm512_storeu_si512(a + j, csub(_mm512_add_epi64(av, bv), qv));
    }
    for (; j < n; ++j) a[j] = add_mod(a[j], b[j], q);
}

ORION_TARGET_AVX512 void
sub_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i av = _mm512_loadu_si512(a + j);
        const __m512i bv = _mm512_loadu_si512(b + j);
        const __mmask8 borrow = _mm512_cmplt_epu64_mask(av, bv);
        const __m512i d = _mm512_sub_epi64(av, bv);
        _mm512_storeu_si512(a + j, _mm512_mask_add_epi64(d, borrow, d, qv));
    }
    for (; j < n; ++j) a[j] = sub_mod(a[j], b[j], q);
}

ORION_TARGET_AVX512 void
mul_mod_n(u64* a, const u64* b, u64 n, const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    const __m512i r0 = _mm512_set1_epi64(static_cast<i64>(q.ratio_lo()));
    const __m512i r1 = _mm512_set1_epi64(static_cast<i64>(q.ratio_hi()));
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i av = _mm512_loadu_si512(a + j);
        const __m512i bv = _mm512_loadu_si512(b + j);
        _mm512_storeu_si512(
            a + j,
            reduce128(_mm512_mullo_epi64(av, bv), mulhi64(av, bv), r0, r1,
                      qv));
    }
    for (; j < n; ++j) a[j] = mul_mod(a[j], b[j], q);
}

ORION_TARGET_AVX512 void
add_product_n(u64* a, const u64* x, const u64* y, u64 n, const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    const __m512i r0 = _mm512_set1_epi64(static_cast<i64>(q.ratio_lo()));
    const __m512i r1 = _mm512_set1_epi64(static_cast<i64>(q.ratio_hi()));
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i av = _mm512_loadu_si512(a + j);
        const __m512i xv = _mm512_loadu_si512(x + j);
        const __m512i yv = _mm512_loadu_si512(y + j);
        const __m512i p_lo = _mm512_mullo_epi64(xv, yv);
        const __m512i p_hi = mulhi64(xv, yv);
        const __m512i lo = _mm512_add_epi64(p_lo, av);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(lo, p_lo);
        const __m512i hi =
            _mm512_sub_epi64(p_hi, _mm512_movm_epi64(carry));
        _mm512_storeu_si512(a + j, reduce128(lo, hi, r0, r1, qv));
    }
    for (; j < n; ++j) {
        a[j] = q.reduce_128(u128(a[j]) + u128(x[j]) * y[j]);
    }
}

ORION_TARGET_AVX512 void
mul_scalar_shoup_n(u64* a, const u64* src, u64 n, u64 w, u64 w_shoup,
                   const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    const __m512i wv = _mm512_set1_epi64(static_cast<i64>(w));
    const __m512i wsv = _mm512_set1_epi64(static_cast<i64>(w_shoup));
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i sv = _mm512_loadu_si512(src + j);
        _mm512_storeu_si512(a + j, csub(shoup_lazy(sv, wv, wsv, qv), qv));
    }
    for (; j < n; ++j) a[j] = mul_mod_shoup(src[j], w, w_shoup, q);
}

ORION_TARGET_AVX512 void
normalize_lazy_n(u64* a, u64 n, const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    const __m512i two_qv = _mm512_set1_epi64(static_cast<i64>(2 * q.value()));
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        __m512i av = _mm512_loadu_si512(a + j);
        av = csub(csub(av, two_qv), qv);
        _mm512_storeu_si512(a + j, av);
    }
    for (; j < n; ++j) a[j] = normalize_lazy(a[j], q);
}

/**
 * Fused stages (span S in {4, 2, 1}) work on a PAIR of vectors at a
 * time: the 16 elements are deinterleaved into the 8 block-top elements
 * x and the 8 block-bottom elements y, the butterfly runs once per pair
 * on full 8-wide lanes (one Shoup product per butterfly, matching the
 * wide-span stages), and the results are interleaved back. Every
 * per-element u64 operation matches the scalar stage exactly.
 */

/** Deinterleaved position of butterfly-top k in the 16-element pair. */
template <int S>
constexpr i64
deint_lane(int k)
{
    return 2 * S * (k / S) + k % S;
}

/** Source lane of output element p: x lanes are 0..7, y lanes 8..15. */
template <int S>
constexpr i64
inter_lane(int p)
{
    const int b = p / (2 * S);
    const int r = p % (2 * S);
    return r < S ? b * S + r : 8 + b * S + r - S;
}

template <int S>
ORION_TARGET_AVX512 static inline __m512i
deint_x_idx()
{
    return _mm512_set_epi64(deint_lane<S>(7), deint_lane<S>(6),
                            deint_lane<S>(5), deint_lane<S>(4),
                            deint_lane<S>(3), deint_lane<S>(2),
                            deint_lane<S>(1), deint_lane<S>(0));
}

template <int S, int Base>
ORION_TARGET_AVX512 static inline __m512i
inter_idx()
{
    return _mm512_set_epi64(inter_lane<S>(Base + 7), inter_lane<S>(Base + 6),
                            inter_lane<S>(Base + 5), inter_lane<S>(Base + 4),
                            inter_lane<S>(Base + 3), inter_lane<S>(Base + 2),
                            inter_lane<S>(Base + 1), inter_lane<S>(Base + 0));
}

/**
 * Twiddles of the 8 butterflies in one pair, one lane per butterfly in
 * deinterleaved order (butterfly k of the pair gets tab[m + blk + k/S]).
 * Reads only the blocks' own entries (the table slice [m, 2m) is exactly
 * as long as the stage needs).
 */
template <int S>
ORION_TARGET_AVX512 static inline __m512i
load_twiddles(const u64* tab, u64 m, u64 blk)
{
    if constexpr (S == 4) {
        const __m128i w2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(tab + m + blk));
        const __m512i idx = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
        return _mm512_permutexvar_epi64(idx, _mm512_castsi128_si512(w2));
    } else if constexpr (S == 2) {
        const __m256i w4 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tab + m + blk));
        const __m512i idx = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
        return _mm512_permutexvar_epi64(idx, _mm512_castsi256_si512(w4));
    } else {
        return _mm512_loadu_si512(tab + m + blk);
    }
}

template <int S>
ORION_TARGET_AVX512 static inline void
fwd_fused(const NttView& v, u64* a, u64 m, __m512i qv, __m512i two_qv)
{
    static_assert(S == 1 || S == 2 || S == 4);
    const __m512i xi = deint_x_idx<S>();
    const __m512i yi = _mm512_add_epi64(xi, _mm512_set1_epi64(S));
    const __m512i ia = inter_idx<S, 0>();
    const __m512i ib = inter_idx<S, 8>();
    for (u64 off = 0; off < v.n; off += 16) {
        const u64 blk = off / (2 * S);
        const __m512i wv = load_twiddles<S>(v.roots, m, blk);
        const __m512i wsv = load_twiddles<S>(v.roots_shoup, m, blk);
        const __m512i va = _mm512_loadu_si512(a + off);
        const __m512i vb = _mm512_loadu_si512(a + off + 8);
        const __m512i x = _mm512_permutex2var_epi64(va, xi, vb);
        const __m512i y = _mm512_permutex2var_epi64(va, yi, vb);
        const __m512i u = csub(x, two_qv);
        const __m512i vv = shoup_lazy(y, wv, wsv, qv);
        const __m512i sum = _mm512_add_epi64(u, vv);
        const __m512i diff =
            _mm512_sub_epi64(_mm512_add_epi64(u, two_qv), vv);
        _mm512_storeu_si512(a + off,
                            _mm512_permutex2var_epi64(sum, ia, diff));
        _mm512_storeu_si512(a + off + 8,
                            _mm512_permutex2var_epi64(sum, ib, diff));
    }
}

template <int S>
ORION_TARGET_AVX512 static inline void
inv_fused(const NttView& v, u64* a, u64 m, __m512i qv, __m512i two_qv)
{
    static_assert(S == 1 || S == 2 || S == 4);
    const __m512i xi = deint_x_idx<S>();
    const __m512i yi = _mm512_add_epi64(xi, _mm512_set1_epi64(S));
    const __m512i ia = inter_idx<S, 0>();
    const __m512i ib = inter_idx<S, 8>();
    for (u64 off = 0; off < v.n; off += 16) {
        const u64 blk = off / (2 * S);
        const __m512i wv = load_twiddles<S>(v.inv_roots, m, blk);
        const __m512i wsv = load_twiddles<S>(v.inv_roots_shoup, m, blk);
        const __m512i va = _mm512_loadu_si512(a + off);
        const __m512i vb = _mm512_loadu_si512(a + off + 8);
        const __m512i u = _mm512_permutex2var_epi64(va, xi, vb);
        const __m512i vv = _mm512_permutex2var_epi64(va, yi, vb);
        const __m512i sum = csub(_mm512_add_epi64(u, vv), two_qv);
        const __m512i diff = shoup_lazy(
            _mm512_sub_epi64(_mm512_add_epi64(u, two_qv), vv), wv, wsv, qv);
        _mm512_storeu_si512(a + off,
                            _mm512_permutex2var_epi64(sum, ia, diff));
        _mm512_storeu_si512(a + off + 8,
                            _mm512_permutex2var_epi64(sum, ib, diff));
    }
}

ORION_TARGET_AVX512 void
ntt_forward(const NttView& v, u64* a)
{
    if (v.n < 16) {
        scalar::ntt_forward(v, a);
        return;
    }
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(v.q.value()));
    const __m512i two_qv =
        _mm512_set1_epi64(static_cast<i64>(2 * v.q.value()));
    u64 t = v.n;
    for (u64 m = 1; m < v.n; m <<= 1) {
        t >>= 1;
        if (t >= 8) {
            for (u64 i = 0; i < m; ++i) {
                const __m512i wv =
                    _mm512_set1_epi64(static_cast<i64>(v.roots[m + i]));
                const __m512i wsv = _mm512_set1_epi64(
                    static_cast<i64>(v.roots_shoup[m + i]));
                u64* x = a + 2 * i * t;
                u64* y = x + t;
                for (u64 j = 0; j < t; j += 8) {
                    const __m512i u =
                        csub(_mm512_loadu_si512(x + j), two_qv);
                    const __m512i vv =
                        shoup_lazy(_mm512_loadu_si512(y + j), wv, wsv, qv);
                    _mm512_storeu_si512(x + j, _mm512_add_epi64(u, vv));
                    _mm512_storeu_si512(
                        y + j,
                        _mm512_sub_epi64(_mm512_add_epi64(u, two_qv), vv));
                }
            }
        } else if (t == 4) {
            fwd_fused<4>(v, a, m, qv, two_qv);
        } else if (t == 2) {
            fwd_fused<2>(v, a, m, qv, two_qv);
        } else {
            fwd_fused<1>(v, a, m, qv, two_qv);
        }
    }
    normalize_lazy_n(a, v.n, v.q);
}

ORION_TARGET_AVX512 void
ntt_inverse(const NttView& v, u64* a)
{
    if (v.n < 16) {
        scalar::ntt_inverse(v, a);
        return;
    }
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(v.q.value()));
    const __m512i two_qv =
        _mm512_set1_epi64(static_cast<i64>(2 * v.q.value()));
    u64 t = 1;
    for (u64 m = v.n >> 1; m > 1; m >>= 1) {
        if (t == 1) {
            inv_fused<1>(v, a, m, qv, two_qv);
        } else if (t == 2) {
            inv_fused<2>(v, a, m, qv, two_qv);
        } else if (t == 4) {
            inv_fused<4>(v, a, m, qv, two_qv);
        } else {
            for (u64 i = 0; i < m; ++i) {
                const __m512i wv =
                    _mm512_set1_epi64(static_cast<i64>(v.inv_roots[m + i]));
                const __m512i wsv = _mm512_set1_epi64(
                    static_cast<i64>(v.inv_roots_shoup[m + i]));
                u64* x = a + 2 * i * t;
                u64* y = x + t;
                for (u64 j = 0; j < t; j += 8) {
                    const __m512i u = _mm512_loadu_si512(x + j);
                    const __m512i vv = _mm512_loadu_si512(y + j);
                    _mm512_storeu_si512(
                        x + j, csub(_mm512_add_epi64(u, vv), two_qv));
                    _mm512_storeu_si512(
                        y + j,
                        shoup_lazy(_mm512_sub_epi64(
                                       _mm512_add_epi64(u, two_qv), vv),
                                   wv, wsv, qv));
                }
            }
        }
        t <<= 1;
    }
    {
        const __m512i niv = _mm512_set1_epi64(static_cast<i64>(v.n_inv));
        const __m512i nisv =
            _mm512_set1_epi64(static_cast<i64>(v.n_inv_shoup));
        const __m512i lwv =
            _mm512_set1_epi64(static_cast<i64>(v.inv_root_last_scaled));
        const __m512i lwsv = _mm512_set1_epi64(
            static_cast<i64>(v.inv_root_last_scaled_shoup));
        u64* x = a;
        u64* y = a + t;
        for (u64 j = 0; j < t; j += 8) {
            const __m512i u = _mm512_loadu_si512(x + j);
            const __m512i vv = _mm512_loadu_si512(y + j);
            _mm512_storeu_si512(
                x + j, shoup_lazy(_mm512_add_epi64(u, vv), niv, nisv, qv));
            _mm512_storeu_si512(
                y + j,
                shoup_lazy(_mm512_sub_epi64(_mm512_add_epi64(u, two_qv), vv),
                           lwv, lwsv, qv));
        }
    }
    for (u64 j = 0; j < v.n; j += 8) {
        _mm512_storeu_si512(a + j, csub(_mm512_loadu_si512(a + j), qv));
    }
}

ORION_TARGET_AVX512 void
ks_inner_product(u64* o0, u64* o1, const u64* const* xs, const u64* const* bs,
                 const u64* const* as, u64 num_digits, u64 n, const Modulus& q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    const __m512i r0 = _mm512_set1_epi64(static_cast<i64>(q.ratio_lo()));
    const __m512i r1 = _mm512_set1_epi64(static_cast<i64>(q.ratio_hi()));
    constexpr u64 kChunk = 16;
    u64 j = 0;
    for (; j + 8 <= n; j += 8) {
        __m512i s0_lo = _mm512_loadu_si512(o0 + j);
        __m512i s0_hi = _mm512_setzero_si512();
        __m512i s1_lo = _mm512_loadu_si512(o1 + j);
        __m512i s1_hi = _mm512_setzero_si512();
        u64 d = 0;
        while (d < num_digits) {
            const u64 end = std::min(d + kChunk, num_digits);
            for (; d < end; ++d) {
                const __m512i x = _mm512_loadu_si512(xs[d] + j);
                {
                    const __m512i k = _mm512_loadu_si512(bs[d] + j);
                    const __m512i p_lo = _mm512_mullo_epi64(x, k);
                    const __m512i p_hi = mulhi64(x, k);
                    const __m512i sum = _mm512_add_epi64(s0_lo, p_lo);
                    const __mmask8 carry =
                        _mm512_cmplt_epu64_mask(sum, s0_lo);
                    s0_hi = _mm512_sub_epi64(_mm512_add_epi64(s0_hi, p_hi),
                                             _mm512_movm_epi64(carry));
                    s0_lo = sum;
                }
                {
                    const __m512i k = _mm512_loadu_si512(as[d] + j);
                    const __m512i p_lo = _mm512_mullo_epi64(x, k);
                    const __m512i p_hi = mulhi64(x, k);
                    const __m512i sum = _mm512_add_epi64(s1_lo, p_lo);
                    const __mmask8 carry =
                        _mm512_cmplt_epu64_mask(sum, s1_lo);
                    s1_hi = _mm512_sub_epi64(_mm512_add_epi64(s1_hi, p_hi),
                                             _mm512_movm_epi64(carry));
                    s1_lo = sum;
                }
            }
            if (d < num_digits) {
                s0_lo = reduce128(s0_lo, s0_hi, r0, r1, qv);
                s0_hi = _mm512_setzero_si512();
                s1_lo = reduce128(s1_lo, s1_hi, r0, r1, qv);
                s1_hi = _mm512_setzero_si512();
            }
        }
        _mm512_storeu_si512(o0 + j, reduce128(s0_lo, s0_hi, r0, r1, qv));
        _mm512_storeu_si512(o1 + j, reduce128(s1_lo, s1_hi, r0, r1, qv));
    }
    // Scalar tail over the remaining coefficients (keeps the original
    // index j into every digit/key limb — delegating to the scalar kernel
    // with offset outputs would misalign the digit reads).
    for (; j < n; ++j) {
        u128 s0 = o0[j];
        u128 s1 = o1[j];
        u64 d = 0;
        while (d < num_digits) {
            const u64 end = std::min(d + kChunk, num_digits);
            for (; d < end; ++d) {
                const u128 x = xs[d][j];
                s0 += x * bs[d][j];
                s1 += x * as[d][j];
            }
            if (d < num_digits) {
                s0 = q.reduce_128(s0);
                s1 = q.reduce_128(s1);
            }
        }
        o0[j] = q.reduce_128(s0);
        o1[j] = q.reduce_128(s1);
    }
}

ORION_TARGET_AVX512 void
base_conv_acc(u64* dst, const u64* const* lams, const u64* hats, int len,
              u64 n, const Modulus& q)
{
    ORION_ASSERT(len >= 0 && len <= 32);
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q.value()));
    const __m512i r0 = _mm512_set1_epi64(static_cast<i64>(q.ratio_lo()));
    const __m512i r1 = _mm512_set1_epi64(static_cast<i64>(q.ratio_hi()));
    u64 x = 0;
    for (; x + 8 <= n; x += 8) {
        __m512i lo = _mm512_setzero_si512();
        __m512i hi = _mm512_setzero_si512();
        for (int jj = 0; jj < len; ++jj) {
            const __m512i lam = _mm512_loadu_si512(lams[jj] + x);
            const __m512i hat =
                _mm512_set1_epi64(static_cast<i64>(hats[jj]));
            const __m512i p_lo = _mm512_mullo_epi64(lam, hat);
            const __m512i p_hi = mulhi64(lam, hat);
            const __m512i sum = _mm512_add_epi64(lo, p_lo);
            const __mmask8 carry = _mm512_cmplt_epu64_mask(sum, lo);
            hi = _mm512_sub_epi64(_mm512_add_epi64(hi, p_hi),
                                  _mm512_movm_epi64(carry));
            lo = sum;
        }
        _mm512_storeu_si512(dst + x, reduce128(lo, hi, r0, r1, qv));
    }
    for (; x < n; ++x) {
        u128 acc = 0;
        for (int jj = 0; jj < len; ++jj) {
            acc += u128(lams[jj][x]) * hats[jj];
        }
        dst[x] = q.reduce_128(acc);
    }
}

}  // namespace avx512

#endif  // ORION_SIMD_X86

// =====================================================================
// Dispatch
// =====================================================================

namespace {

constexpr KernelTable kScalarTable = {
    scalar::ntt_forward,    scalar::ntt_inverse,
    scalar::add_mod_n,      scalar::sub_mod_n,
    scalar::mul_mod_n,      scalar::add_product_n,
    scalar::mul_scalar_shoup_n, scalar::normalize_lazy_n,
    scalar::ks_inner_product,   scalar::base_conv_acc,
};

#if ORION_SIMD_X86
constexpr KernelTable kAvx2Table = {
    avx2::ntt_forward,    avx2::ntt_inverse,
    avx2::add_mod_n,      avx2::sub_mod_n,
    avx2::mul_mod_n,      avx2::add_product_n,
    avx2::mul_scalar_shoup_n, avx2::normalize_lazy_n,
    avx2::ks_inner_product,   avx2::base_conv_acc,
};
constexpr KernelTable kAvx512Table = {
    avx512::ntt_forward,    avx512::ntt_inverse,
    avx512::add_mod_n,      avx512::sub_mod_n,
    avx512::mul_mod_n,      avx512::add_product_n,
    avx512::mul_scalar_shoup_n, avx512::normalize_lazy_n,
    avx512::ks_inner_product,   avx512::base_conv_acc,
};
#endif

std::atomic<int> g_active_isa{-1};  // -1 = not yet initialized
std::once_flag g_init_flag;

Isa
clamp_to_supported(Isa want)
{
    if (want == Isa::kAvx512 && isa_supported(Isa::kAvx512)) {
        return Isa::kAvx512;
    }
    if (want != Isa::kScalar && isa_supported(Isa::kAvx2)) {
        return Isa::kAvx2;
    }
    return Isa::kScalar;
}

void
init_dispatch()
{
    Isa pick = best_supported_isa();
    if (const char* env = std::getenv("ORION_SIMD");
        env != nullptr && *env != '\0') {
        if (std::strcmp(env, "scalar") == 0) {
            pick = Isa::kScalar;
        } else if (std::strcmp(env, "avx2") == 0) {
            pick = clamp_to_supported(Isa::kAvx2);
        } else if (std::strcmp(env, "avx512") == 0) {
            pick = clamp_to_supported(Isa::kAvx512);
        }
        // Unknown values keep the CPUID pick (no hard failure: benches
        // and tests set this knob on hosts of unknown capability).
    }
    g_active_isa.store(static_cast<int>(pick), std::memory_order_relaxed);
}

}  // namespace

bool
isa_supported(Isa isa)
{
    if (isa == Isa::kScalar) return true;
#if ORION_SIMD_X86
    __builtin_cpu_init();
    if (isa == Isa::kAvx2) return __builtin_cpu_supports("avx2") != 0;
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0;
#else
    return false;
#endif
}

Isa
best_supported_isa()
{
    if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
    if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
    return Isa::kScalar;
}

Isa
active_isa()
{
    std::call_once(g_init_flag, init_dispatch);
    return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

void
set_isa(Isa isa)
{
    ORION_CHECK(isa_supported(isa),
                "cannot select unsupported ISA " << isa_name(isa));
    std::call_once(g_init_flag, init_dispatch);
    g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

const char*
isa_name(Isa isa)
{
    switch (isa) {
        case Isa::kScalar: return "scalar";
        case Isa::kAvx2: return "avx2";
        case Isa::kAvx512: return "avx512";
    }
    return "unknown";
}

const KernelTable&
table(Isa isa)
{
#if ORION_SIMD_X86
    switch (isa) {
        case Isa::kAvx2: return kAvx2Table;
        case Isa::kAvx512: return kAvx512Table;
        default: return kScalarTable;
    }
#else
    (void)isa;
    return kScalarTable;
#endif
}

const KernelTable&
active()
{
    return table(active_isa());
}

}  // namespace orion::ckks::kernels
