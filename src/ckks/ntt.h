#ifndef ORION_SRC_CKKS_NTT_H_
#define ORION_SRC_CKKS_NTT_H_

/**
 * @file
 * Negacyclic Number Theoretic Transform over Z_q[X]/(X^N + 1).
 *
 * The NTT maps a polynomial to its evaluations at the primitive 2N-th roots
 * of unity, turning ring multiplication into a pointwise product (Section
 * 2.5 of the paper). We use the standard merged-twiddle formulation with
 * Shoup multiplication: root powers are stored in bit-reversed order so
 * both transforms access twiddles sequentially.
 *
 * Both transforms use Harvey-style lazy butterflies: intermediates stay in
 * the relaxed ranges [0, 4q) (forward) / [0, 2q) (inverse) and a single
 * normalization pass on exit restores the canonical [0, q) residues, so
 * outputs are bit-identical to the eager per-op-reduction formulation.
 * The inverse transform additionally folds the 1/N scaling into the last
 * Gentleman-Sande stage (precomputed n_inv and w*n_inv twiddles) instead
 * of a separate scaling pass.
 */

#include <vector>

#include "src/common.h"
#include "src/ckks/kernels.h"
#include "src/ckks/modarith.h"

namespace orion::ckks {

/** Precomputed twiddle tables for one (N, q) pair. */
class NttTables {
  public:
    NttTables() = default;

    /** Builds tables for ring degree n (power of two) and modulus q. */
    NttTables(u64 n, const Modulus& q);

    /** In-place forward negacyclic NTT (coefficient -> evaluation order). */
    void forward(u64* a) const;

    /** In-place inverse negacyclic NTT (evaluation -> coefficient order). */
    void inverse(u64* a) const;

    u64 degree() const { return n_; }
    const Modulus& modulus() const { return q_; }

    /** Borrowed kernel view of these tables (valid while *this lives). */
    kernels::NttView
    view() const
    {
        kernels::NttView v;
        v.n = n_;
        v.q = q_;
        v.roots = roots_.data();
        v.roots_shoup = roots_shoup_.data();
        v.inv_roots = inv_roots_.data();
        v.inv_roots_shoup = inv_roots_shoup_.data();
        v.n_inv = n_inv_;
        v.n_inv_shoup = n_inv_shoup_;
        v.inv_root_last_scaled = inv_root_last_scaled_;
        v.inv_root_last_scaled_shoup = inv_root_last_scaled_shoup_;
        return v;
    }

  private:
    u64 n_ = 0;
    int log_n_ = 0;
    Modulus q_;
    // psi powers in bit-reversed order: roots_[reverse_bits(i)] = psi^i.
    std::vector<u64> roots_;
    std::vector<u64> roots_shoup_;
    std::vector<u64> inv_roots_;
    std::vector<u64> inv_roots_shoup_;
    u64 n_inv_ = 0;
    u64 n_inv_shoup_ = 0;
    // Last inverse-stage twiddle with 1/N folded in: inv_roots_[1] * n_inv.
    u64 inv_root_last_scaled_ = 0;
    u64 inv_root_last_scaled_shoup_ = 0;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_NTT_H_
