#include "src/ckks/encryptor.h"

#include <algorithm>

namespace orion::ckks {

Encryptor::Encryptor(const Context& ctx, const PublicKey& pk, u64 seed)
    : ctx_(&ctx), pk_(&pk), sampler_(seed)
{
}

Encryptor::Encryptor(const Context& ctx, const SecretKey& sk, u64 seed)
    : ctx_(&ctx), sk_(&sk), sampler_(seed)
{
}

RnsPoly
Encryptor::sample_error_at(int level)
{
    const u64 n = ctx_->degree();
    const std::vector<i64> coeffs = sampler_.sample_gaussian(n);
    RnsPoly e(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    for (int i = 0; i <= level; ++i) {
        const Modulus& q = e.limb_modulus(i);
        u64* limb = e.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(coeffs[j], q);
    }
    e.to_ntt();
    return e;
}

Ciphertext
Encryptor::encrypt(const Plaintext& pt)
{
    ORION_CHECK(pt.poly.is_ntt(), "plaintext must be in NTT form");
    const int level = pt.level();
    const u64 n = ctx_->degree();
    Ciphertext ct;
    ct.scale = pt.scale;

    if (sk_ != nullptr) {
        // Symmetric: c1 = a uniform, c0 = -a*s + e + m.
        ct.c1 = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/true);
        for (int i = 0; i <= level; ++i) {
            const std::vector<u64> vals =
                sampler_.sample_uniform(n, ct.c1.limb_modulus(i));
            std::copy(vals.begin(), vals.end(), ct.c1.limb(i));
        }
        ct.c0 = ct.c1;
        ct.c0.mul_pointwise_inplace(sk_->at_level(level));
        ct.c0.negate_inplace();
        ct.c0.add_inplace(sample_error_at(level));
        ct.c0.add_inplace(pt.poly);
        return ct;
    }

    // Public-key: (c0, c1) = v*(pk.b, pk.a) + (e0 + m, e1).
    const std::vector<i64> v_coeffs = sampler_.sample_ternary(n);
    RnsPoly v(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    for (int i = 0; i <= level; ++i) {
        const Modulus& q = v.limb_modulus(i);
        u64* limb = v.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(v_coeffs[j], q);
    }
    v.to_ntt();

    RnsPoly pkb = pk_->b;
    RnsPoly pka = pk_->a;
    pkb.drop_to_level(level);
    pka.drop_to_level(level);

    ct.c0 = v;
    ct.c0.mul_pointwise_inplace(pkb);
    ct.c0.add_inplace(sample_error_at(level));
    ct.c0.add_inplace(pt.poly);
    ct.c1 = std::move(v);
    ct.c1.mul_pointwise_inplace(pka);
    ct.c1.add_inplace(sample_error_at(level));
    return ct;
}

Plaintext
Decryptor::decrypt(const Ciphertext& ct) const
{
    Plaintext pt;
    pt.scale = ct.scale;
    pt.poly = ct.c1;
    pt.poly.mul_pointwise_inplace(sk_->at_level(ct.level()));
    pt.poly.add_inplace(ct.c0);
    return pt;
}

}  // namespace orion::ckks
