#ifndef ORION_SRC_CKKS_POLY_H_
#define ORION_SRC_CKKS_POLY_H_

/**
 * @file
 * RNS polynomials: elements of R_{Q_l} (optionally extended by the special
 * primes) stored limb-major, in coefficient or NTT (evaluation) form.
 *
 * This is the (l+1) x N matrix view of Section 2.4 of the paper: row i is
 * the residue polynomial modulo q_i. The optional extended limbs (modulo
 * the special primes p_0..p_{k-1}) exist only transiently inside key
 * switching.
 */

#include <vector>

#include "src/common.h"
#include "src/ckks/context.h"
#include "src/core/arena.h"

namespace orion::ckks {

/** An element of R_{Q_l} (or R_{Q_l * P} when extended). */
class RnsPoly {
  public:
    RnsPoly() = default;

    /** Zero polynomial with limbs q_0..q_level (+ specials if extended). */
    RnsPoly(const Context& ctx, int level, bool extended = false,
            bool ntt_form = true);

    // Limb storage lives in the core::Arena pool, so copies and
    // constructions are counted (OpCounters::poly_alloc / poly_arena_hit)
    // and steady-state hot loops recycle blocks instead of reallocating.
    RnsPoly(const RnsPoly& o);
    RnsPoly& operator=(const RnsPoly& o);
    RnsPoly(RnsPoly&&) noexcept = default;
    RnsPoly& operator=(RnsPoly&&) noexcept = default;

    const Context& context() const { return *ctx_; }
    bool valid() const { return ctx_ != nullptr; }
    int level() const { return level_; }
    bool extended() const { return special_limbs_ > 0; }
    bool is_ntt() const { return ntt_; }
    u64 degree() const { return ctx_->degree(); }

    /** Total limb count: level+1 coefficient limbs plus any special limbs. */
    int
    num_limbs() const
    {
        return level_ + 1 + special_limbs_;
    }
    int num_coeff_limbs() const { return level_ + 1; }

    u64*
    limb(int i)
    {
        return data_.data() + static_cast<std::size_t>(i) * ctx_->degree();
    }
    const u64*
    limb(int i) const
    {
        return data_.data() + static_cast<std::size_t>(i) * ctx_->degree();
    }

    /**
     * Global modulus index of limb i (coefficient limbs map to 0..L,
     * special limbs to L+1..L+k).
     */
    int
    limb_global_index(int i) const
    {
        return i <= level_ ? i : ctx_->max_level() + 1 + (i - level_ - 1);
    }
    /** Modulus of limb i: q_i for i <= level, special primes after. */
    const Modulus&
    limb_modulus(int i) const
    {
        return ctx_->modulus_global(limb_global_index(i));
    }
    const NttTables&
    limb_tables(int i) const
    {
        return ctx_->tables_global(limb_global_index(i));
    }

    // ---- arithmetic (operands must share context, form, and limbs) ----

    void add_inplace(const RnsPoly& other);
    void sub_inplace(const RnsPoly& other);
    void negate_inplace();
    /** Pointwise product; both operands must be in NTT form. */
    void mul_pointwise_inplace(const RnsPoly& other);
    /** Fused a += b * c over matching limbs; all NTT form. */
    void add_product_inplace(const RnsPoly& b, const RnsPoly& c);
    /** Multiplies limb i by scalar_per_limb[i] (already reduced mod q_i). */
    void mul_scalar_inplace(const std::vector<u64>& scalar_per_limb);
    /** Multiplies every limb by the same small nonnegative integer. */
    void mul_small_scalar_inplace(u64 scalar);

    // ---- form conversions ----

    void to_ntt();
    void to_coeff();

    // ---- Galois automorphisms X -> X^elt (elt odd, < 2N) ----

    /** Automorphism applied in whatever form the polynomial is in. */
    RnsPoly galois(u64 elt) const;
    /** NTT-form automorphism with a precomputed permutation table. */
    RnsPoly galois_with_permutation(const std::vector<u32>& perm) const;

    // ---- modulus management ----

    /**
     * Rescale step: divides by the last coefficient modulus and drops that
     * limb (Section 2.5.2). Requires !extended() and level() >= 1.
     */
    void rescale_drop_last();

    /**
     * Divides by P (every special prime in turn) and drops the special
     * limbs, completing a key switch. Requires extended().
     */
    void mod_down_special();

    /** Drops limbs above new_level (level adjustment; value mod Q_{l'}). */
    void drop_to_level(int new_level);

    /**
     * ModRaise (bootstrap step 1): reinterprets a level-0 polynomial as an
     * element of R_{Q_{new_level}}. Each coefficient c in [0, q_0) is
     * centered to (-q_0/2, q_0/2] and reduced into every limb of the
     * larger basis, so the raised value equals m + q_0 * I for the small
     * integer polynomial I the bootstrap's EvalMod stage removes. The
     * result is returned in the same form (NTT or coefficient) as *this.
     */
    RnsPoly mod_raise(int new_level) const;

    /** All-zero check (either form). */
    bool is_zero() const;

  private:
    /**
     * Divides by the modulus of the last limb and drops it: centers the
     * last limb, subtracts it from every remaining limb, multiplies by the
     * dropped modulus' inverse.
     */
    void divide_and_drop_last();

    /** Books an ArenaVec acquisition into the context's counters. */
    void count_acquire(core::ArenaAcquire how) const;

    const Context* ctx_ = nullptr;
    int level_ = -1;
    bool ntt_ = false;
    int special_limbs_ = 0;  // present special limbs (shrinks in mod-down)
    core::ArenaVec<u64> data_;
};

/** Permutation table for a Galois automorphism in NTT form. */
std::vector<u32> make_galois_ntt_permutation(const Context& ctx, u64 elt);

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_POLY_H_
