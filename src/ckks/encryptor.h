#ifndef ORION_SRC_CKKS_ENCRYPTOR_H_
#define ORION_SRC_CKKS_ENCRYPTOR_H_

/**
 * @file
 * Encryption (Section 2.3) and decryption. Encryption supports both the
 * public-key path (used by a data owner) and the symmetric path (used by
 * tests and the bootstrapping oracle).
 */

#include "src/ckks/ciphertext.h"
#include "src/ckks/keys.h"
#include "src/ckks/sampler.h"

namespace orion::ckks {

/** Turns plaintexts into ciphertexts. */
class Encryptor {
  public:
    /** Public-key encryptor. */
    Encryptor(const Context& ctx, const PublicKey& pk, u64 seed = 11);
    /** Symmetric encryptor (holds the secret). */
    Encryptor(const Context& ctx, const SecretKey& sk, u64 seed = 11);

    Ciphertext encrypt(const Plaintext& pt);

  private:
    RnsPoly sample_error_at(int level);

    const Context* ctx_;
    const PublicKey* pk_ = nullptr;
    const SecretKey* sk_ = nullptr;
    Sampler sampler_;
};

/** Recovers plaintexts with the secret key. */
class Decryptor {
  public:
    Decryptor(const Context& ctx, const SecretKey& sk)
        : ctx_(&ctx), sk_(&sk)
    {
    }

    Plaintext decrypt(const Ciphertext& ct) const;

  private:
    const Context* ctx_;
    const SecretKey* sk_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_ENCRYPTOR_H_
