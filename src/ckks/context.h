#ifndef ORION_SRC_CKKS_CONTEXT_H_
#define ORION_SRC_CKKS_CONTEXT_H_

/**
 * @file
 * CKKS parameter sets and the shared Context object.
 *
 * A Context owns the moduli chain q_0..q_L plus the special key-switching
 * primes p_0..p_{k-1} (hybrid key switching with digit size alpha requires
 * P = prod p_i to dominate every digit product, so k = alpha), the
 * per-modulus NTT tables, and the cross-modulus constants used by
 * rescaling, mod-down, and hybrid key switching. Every other CKKS object
 * (polynomials, keys, evaluators) holds a pointer to its Context.
 *
 * Level convention (Table 1 of the paper): a ciphertext at level l has
 * coefficient limbs q_0..q_l; rescaling drops the last limb; level 0 means
 * the multiplicative budget is spent and a bootstrap is required.
 */

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common.h"
#include "src/ckks/modarith.h"
#include "src/ckks/ntt.h"

namespace orion::ckks {

/**
 * A relaxed atomic counter that still copies and compares like a plain u64,
 * so counters can be incremented from parallel kernels (thread_pool.h) and
 * snapshotted with `OpCounters before = ctx.counters();`.
 */
class OpCounter {
  public:
    OpCounter(u64 v = 0) : v_(v) {}
    OpCounter(const OpCounter& o) : v_(o.value()) {}
    OpCounter&
    operator=(const OpCounter& o)
    {
        v_.store(o.value(), std::memory_order_relaxed);
        return *this;
    }
    OpCounter&
    operator=(u64 v)
    {
        v_.store(v, std::memory_order_relaxed);
        return *this;
    }
    OpCounter&
    operator+=(u64 d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
        return *this;
    }
    operator u64() const { return value(); }
    u64 value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> v_;
};

/** Running counters of primitive FHE operations, for benches and tables. */
struct OpCounters {
    OpCounter pmult;        ///< plaintext-ciphertext products
    OpCounter hmult;        ///< ciphertext-ciphertext products
    OpCounter hadd;         ///< additions (either operand kind)
    OpCounter hrot;         ///< un-hoisted rotations
    OpCounter hrot_hoisted; ///< rotations served from a hoisted decomposition
    OpCounter keyswitch;    ///< key-switch inner products (relin + rotations)
    OpCounter rescale;
    OpCounter bootstrap;
    OpCounter ntt;          ///< individual limb-sized (I)NTT invocations
    OpCounter decompose;    ///< key-switch digit decompositions (hoist once,
                            ///  reuse across rotations)
    OpCounter poly_alloc;     ///< RnsPoly buffer acquisitions (pool or heap)
    OpCounter poly_arena_hit; ///< acquisitions served by the arena pool —
                              ///  poly_alloc == poly_arena_hit over a window
                              ///  means zero heap allocations in it

    void
    reset()
    {
        *this = OpCounters{};
    }
    u64 total_rotations() const { return hrot + hrot_hoisted; }
};

/** User-facing CKKS parameter description. */
struct CkksParams {
    u64 poly_degree = u64(1) << 12;  ///< ring degree N (power of two)
    int log_scale = 35;              ///< log2 of the scaling factor Delta
    int first_prime_bits = 50;       ///< bits of q_0 (message headroom)
    int num_scale_primes = 8;        ///< L: number of rescaling primes
    int special_prime_bits = 51;     ///< bits of each key-switch prime p_i
    int digit_size = 3;              ///< alpha: limbs per key-switch digit
                                     ///  (also the special prime count)
    u64 seed = 1;                    ///< deterministic RNG seed
    /**
     * Hamming weight of the ternary secret; 0 means dense (every
     * coefficient drawn from {-1, 0, 1}). Bootstrap-capable parameter
     * sets use a sparse secret: the EvalMod range bound K grows with
     * sqrt(weight), and a dense secret at these ring sizes would force a
     * very deep sine approximation (see bootstrap_circuit.h).
     */
    int secret_weight = 0;

    /** Tiny parameters for fast unit tests (NOT secure). */
    static CkksParams
    toy()
    {
        CkksParams p;
        p.poly_degree = u64(1) << 11;
        p.log_scale = 30;
        p.first_prime_bits = 40;
        p.num_scale_primes = 6;
        p.special_prime_bits = 41;
        p.digit_size = 3;
        return p;
    }

    /** Mid-size parameters for functional network runs (NOT secure). */
    static CkksParams
    network(u64 degree = u64(1) << 13, int levels = 14)
    {
        CkksParams p;
        p.poly_degree = degree;
        p.log_scale = 35;
        p.first_prime_bits = 45;
        p.num_scale_primes = levels;
        p.special_prime_bits = 46;
        p.digit_size = 4;
        return p;
    }

    /**
     * A bootstrap-capable parameter point (NOT secure): enough scale
     * primes for the full CtS -> EvalMod -> StC circuit above l_eff
     * effective levels, a q_0 / Delta message ratio of 2^10 (the
     * sine-linearization precision budget), and a sparse ternary secret
     * so the EvalMod range bound K stays small. The literal 13 is the
     * default-BootstrapParams plan depth (the paper's Table-1 shape) —
     * it cannot be computed here without a layering cycle, so
     * tests/test_bootstrap.cpp PlanShapeMatchesThePaper pins the
     * coupling (the measured BootstrapPlan::depth must fit this chain).
     */
    static CkksParams
    bootstrap_toy(int l_eff = 3, u64 degree = u64(1) << 11)
    {
        CkksParams p;
        p.poly_degree = degree;
        // 50-bit scale primes: the CtS/StC stage matrices and EvalMod run
        // near the word-size precision ceiling, which is what pushes the
        // round-trip past 15 bits (plaintext quantization error scales as
        // sqrt(N)/2^log_scale and is amplified by q_0/Delta at the end).
        p.log_scale = 50;
        p.first_prime_bits = 60;
        p.num_scale_primes = l_eff + 13;
        p.special_prime_bits = 60;
        p.digit_size = 3;
        p.secret_weight = 32;
        return p;
    }

    /**
     * The paper-scale bootstrap point (Table 2's ring degree, NOT secure —
     * primes are still generated by the toy search): N = 2^16 with the
     * same chain shape as bootstrap_toy. This is the parameter set behind
     * the BENCH_bootstrap.json full-bootstrap wall-clock row.
     */
    static CkksParams
    bootstrap_full(int l_eff = 4)
    {
        return bootstrap_toy(l_eff, u64(1) << 16);
    }
};

/** Immutable CKKS context: moduli chain, NTT tables, derived constants. */
class Context {
  public:
    explicit Context(const CkksParams& params);
    ~Context();

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    const CkksParams& params() const { return params_; }
    u64 degree() const { return n_; }
    int log_degree() const { return log_n_; }
    u64 slot_count() const { return n_ / 2; }
    /** Maximum multiplicative level L. */
    int max_level() const { return num_q_ - 1; }
    double scale() const { return scale_; }

    /** Coefficient modulus q_i, 0 <= i <= L. */
    const Modulus&
    q(int i) const
    {
        return moduli_[static_cast<std::size_t>(i)];
    }
    /** Special (key-switching) prime p_i, 0 <= i < special_count(). */
    const Modulus&
    special(int i) const
    {
        return moduli_[static_cast<std::size_t>(num_q_ + i)];
    }
    int special_count() const { return num_special_; }

    /**
     * Global modulus indexing: indices 0..L are q_0..q_L, indices
     * L+1..L+k are the special primes.
     */
    const Modulus&
    modulus_global(int g) const
    {
        return moduli_[static_cast<std::size_t>(g)];
    }
    const NttTables&
    tables_global(int g) const
    {
        return tables_[static_cast<std::size_t>(g)];
    }
    const NttTables&
    tables(int i) const
    {
        return tables_[static_cast<std::size_t>(i)];
    }
    int num_global() const { return num_q_ + num_special_; }

    /** alpha, the number of limbs per key-switching digit. */
    int digit_size() const { return params_.digit_size; }
    /** Number of key-switch digits covering limbs q_0..q_level. */
    int
    num_digits(int level) const
    {
        return static_cast<int>(ceil_div(static_cast<u64>(level) + 1,
                                         static_cast<u64>(digit_size())));
    }

    /** modulus_global(a)^{-1} mod modulus_global(b), a != b. */
    u64
    inv_mod_global(int a, int b) const
    {
        return inv_table_[static_cast<std::size_t>(a) *
                              static_cast<std::size_t>(num_global()) +
                          static_cast<std::size_t>(b)];
    }
    /** q_a^{-1} mod q_b (a != b). */
    u64
    q_inv_mod(int a, int b) const
    {
        return inv_mod_global(a, b);
    }
    /** P = prod of special primes, reduced mod q_j. */
    u64
    p_prod_mod_q(int j) const
    {
        return p_prod_mod_q_[static_cast<std::size_t>(j)];
    }

    /**
     * Precomputed fast-base-conversion constants of one key-switch digit
     * covering coefficient limbs q_lo..q_{lo+len-1} (lo = d * alpha). D
     * denotes the product of the digit's primes. Hoisting these out of
     * KeySwitcher::decompose removes an O(alpha^2) mul_mod chain per digit
     * limb per call from the rotation hot path.
     */
    struct DigitConsts {
        std::vector<u64> hat_inv;        ///< (D/q_j)^{-1} mod q_j per limb j
        std::vector<u64> hat_inv_shoup;  ///< Shoup companions of hat_inv
        /** hat_mod[g][j] = (D/q_j) mod modulus_global(g); empty for the
         *  digit's own limbs (those are copied, not converted). */
        std::vector<std::vector<u64>> hat_mod;
    };

    /**
     * Constants of digit d when it spans `len` limbs (len < alpha only for
     * the chain's last digit at a given level).
     */
    const DigitConsts&
    digit_consts(int d, int len) const
    {
        return digit_consts_[static_cast<std::size_t>(d)]
                            [static_cast<std::size_t>(len - 1)];
    }

    /**
     * Galois element for a cyclic rotation of the message slots by `step`
     * positions toward lower indices (the paper's "rotate up"), i.e.
     * slot i of the result holds slot i + step of the input.
     */
    u64 galois_elt(int step) const;
    /** Galois element of complex conjugation. */
    u64 galois_elt_conj() const { return 2 * n_ - 1; }

    /** Mutable operation counters (shared across all evaluators). */
    OpCounters& counters() const { return counters_; }

    /**
     * Cached NTT-form permutation table of the Galois automorphism
     * X -> X^elt. Building one is an O(N) pass with two bit reversals per
     * slot; every rotation by the same step across the whole bootstrap
     * circuit (and any BSGS matvec) shares one table. The reference stays
     * valid for the Context's lifetime (node-stable map under a mutex).
     */
    const std::vector<u32>& galois_permutation(u64 elt) const;

    /** Sum of bit sizes of q_0..q_level (the log Q_l of Table 1). */
    int log_q(int level) const;

  private:
    CkksParams params_;
    u64 n_ = 0;
    int log_n_ = 0;
    double scale_ = 0.0;
    int num_q_ = 0;
    int num_special_ = 0;
    std::vector<Modulus> moduli_;  // q_0..q_L, p_0..p_{k-1}
    std::vector<NttTables> tables_;
    std::vector<u64> inv_table_;
    std::vector<u64> p_prod_mod_q_;
    std::vector<std::vector<DigitConsts>> digit_consts_;  // [digit][len-1]
    mutable OpCounters counters_;
    mutable std::mutex galois_perm_mu_;
    mutable std::map<u64, std::vector<u32>> galois_perm_cache_;
    /** telemetry::Registry::global() collector handle (ckks.op.*). */
    u64 telem_collector_ = 0;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_CONTEXT_H_
