#ifndef ORION_SRC_CKKS_KEYSWITCH_H_
#define ORION_SRC_CKKS_KEYSWITCH_H_

/**
 * @file
 * Hybrid RNS key switching (Han-Ki / Bossuat et al. style).
 *
 * A key switch of polynomial c from secret s_old to s_new proceeds in three
 * stages, which are exposed separately because hoisting (Section 3.3 of the
 * paper) reuses stage 1 across many rotations:
 *
 *   1. decompose (ModUp): split c into digits of alpha limbs each and
 *      fast-base-convert every digit to the full basis {q_0..q_l, p_0..p_k}.
 *   2. inner product: multiply-accumulate the digits against the
 *      key-switching key, producing an extended-basis pair.
 *   3. mod down: divide by P and drop the special limbs.
 */

#include "src/ckks/keys.h"

namespace orion::ckks {

/** Stateless engine implementing the three key-switching stages. */
class KeySwitcher {
  public:
    explicit KeySwitcher(const Context& ctx) : ctx_(&ctx) {}

    /**
     * Stage 1 (the hoistable part): digit-decomposes a coefficient-limb
     * polynomial (NTT form) and extends each digit to the full basis.
     */
    std::vector<RnsPoly> decompose(const RnsPoly& c) const;

    /**
     * Stage 2: accumulates digits x ksk into (acc0, acc1), both extended
     * polynomials at the digits' level. Accumulators may carry previous
     * partial sums (double-hoisting defers stage 3 across many calls).
     */
    void inner_product(const std::vector<RnsPoly>& digits,
                       const KswitchKey& ksk, RnsPoly* acc0,
                       RnsPoly* acc1) const;

    /** Stages 1-3 fused: returns the switched pair at c's level. */
    void apply(const RnsPoly& c, const KswitchKey& ksk, RnsPoly* out0,
               RnsPoly* out1) const;

  private:
    const Context* ctx_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_KEYSWITCH_H_
