#ifndef ORION_SRC_CKKS_MODARITH_H_
#define ORION_SRC_CKKS_MODARITH_H_

/**
 * @file
 * 64-bit modular arithmetic for RNS-CKKS.
 *
 * All ring operations in the library reduce to arithmetic modulo word-sized
 * primes q < 2^61. Hot paths (NTT butterflies, pointwise products) use
 * Barrett reduction with a precomputed 128-bit reciprocal, and Shoup
 * multiplication when one operand is a known constant (NTT twiddles,
 * plaintext scalars).
 *
 * Lazy (deferred) reduction: the hottest kernels keep residues in the
 * relaxed ranges [0, 2q) (Shoup products) and [0, 4q) (Harvey NTT
 * butterfly intermediates), normalizing to the canonical [0, q) once per
 * kernel instead of once per op. The q < 2^61 bound makes every lazy
 * intermediate fit in a u64: sums of two [0, 4q) residues stay below
 * 8q < 2^64. All lazy results are exact mod q, so kernels that normalize
 * on exit are bit-identical to their eager counterparts.
 */

#include "src/common.h"

namespace orion::ckks {

/**
 * A word-sized modulus with its precomputed Barrett reciprocal.
 *
 * The reciprocal is floor(2^128 / value), stored as two 64-bit words
 * (ratio[0] low, ratio[1] high). Moduli must be odd primes below 2^61 so
 * that the lazy [0, 4q) arithmetic of the Harvey NTT kernels never
 * overflows a u64 (see the file comment; primes.cpp enforces the same
 * bound at generation time).
 */
class Modulus {
  public:
    Modulus() : value_(0), ratio_{0, 0} {}

    explicit Modulus(u64 value) : value_(value)
    {
        ORION_CHECK(value > 1 && value < (u64(1) << 61),
                    "modulus out of range: " << value);
        // floor(2^128 / value) via 128-bit long division in two steps.
        u128 numerator = ~u128(0);  // 2^128 - 1; floor((2^128-1)/v) ==
                                    // floor(2^128/v) when v does not divide
                                    // 2^128, true for odd v > 1.
        u128 quotient = numerator / value;
        ratio_[0] = static_cast<u64>(quotient);
        ratio_[1] = static_cast<u64>(quotient >> 64);
    }

    u64 value() const { return value_; }
    u64 ratio_lo() const { return ratio_[0]; }
    u64 ratio_hi() const { return ratio_[1]; }
    int bit_count() const
    {
        int b = 0;
        for (u64 v = value_; v != 0; v >>= 1) ++b;
        return b;
    }

    /** Reduces a 128-bit value modulo this modulus (Barrett). */
    u64
    reduce_128(u128 x) const
    {
        // q_hat = floor(x * ratio / 2^128), an approximation of
        // floor(x / value) that is off by at most 1.
        u64 x0 = static_cast<u64>(x);
        u64 x1 = static_cast<u64>(x >> 64);
        u128 t = (u128(x0) * ratio_[0]) >> 64;
        t += u128(x0) * ratio_[1];
        t += u128(x1) * ratio_[0];
        u64 q_hat = static_cast<u64>(t >> 64) + x1 * ratio_[1];
        u64 r = static_cast<u64>(x - u128(q_hat) * value_);
        return r >= value_ ? r - value_ : r;
    }

    /** Reduces a 64-bit value modulo this modulus. */
    u64
    reduce(u64 x) const
    {
        return reduce_128(u128(x));
    }

  private:
    u64 value_;
    u64 ratio_[2];
};

/** (a + b) mod q, for a, b already reduced. */
inline u64
add_mod(u64 a, u64 b, const Modulus& q)
{
    u64 s = a + b;
    return s >= q.value() ? s - q.value() : s;
}

/** (a - b) mod q, for a, b already reduced. */
inline u64
sub_mod(u64 a, u64 b, const Modulus& q)
{
    return a >= b ? a - b : a + q.value() - b;
}

/** (-a) mod q, for a already reduced. */
inline u64
neg_mod(u64 a, const Modulus& q)
{
    return a == 0 ? 0 : q.value() - a;
}

/** (a * b) mod q via Barrett reduction. */
inline u64
mul_mod(u64 a, u64 b, const Modulus& q)
{
    return q.reduce_128(u128(a) * b);
}

/**
 * Precomputes the Shoup representation floor(w * 2^64 / q) of a constant
 * multiplicand w (already reduced mod q).
 */
inline u64
shoup_precompute(u64 w, const Modulus& q)
{
    return static_cast<u64>((u128(w) << 64) / q.value());
}

/**
 * (a * w) mod q where w_shoup = shoup_precompute(w, q). Roughly 2x faster
 * than Barrett for constant w; the workhorse of the NTT.
 */
inline u64
mul_mod_shoup(u64 a, u64 w, u64 w_shoup, const Modulus& q)
{
    u64 hi = static_cast<u64>((u128(a) * w_shoup) >> 64);
    u64 r = a * w - hi * q.value();
    return r >= q.value() ? r - q.value() : r;
}

// ---- lazy (deferred-reduction) variants ----
//
// These trade the canonical [0, q) output range for fewer conditional
// subtractions; callers track the relaxed range invariants ([0, 2q) for
// lazy Shoup products, [0, 4q) for lazy sums/differences) and normalize
// once per kernel. Exactness mod q is preserved throughout.

/**
 * (a * w) mod q in [0, 2q), for any a < 2^64 and reduced constant w.
 * Skipping the final correction halves the dependent-op chain of the NTT
 * butterfly (Harvey, "Faster arithmetic for number-theoretic transforms").
 */
inline u64
mul_mod_shoup_lazy(u64 a, u64 w, u64 w_shoup, const Modulus& q)
{
    const u64 hi = static_cast<u64>((u128(a) * w_shoup) >> 64);
    return a * w - hi * q.value();
}

/**
 * a + b for lazy residues a, b in [0, 4q), result in [0, 4q). Needs
 * q < 2^61 so the intermediate sum (< 8q) fits in a u64.
 */
inline u64
add_lazy(u64 a, u64 b, const Modulus& q)
{
    const u64 four_q = 4 * q.value();
    const u64 s = a + b;
    return s >= four_q ? s - four_q : s;
}

/** a - b for lazy residues a, b in [0, 4q), result in [0, 4q). */
inline u64
sub_lazy(u64 a, u64 b, const Modulus& q)
{
    const u64 four_q = 4 * q.value();
    const u64 d = a + four_q - b;
    return d >= four_q ? d - four_q : d;
}

/** Normalizes one lazy residue from [0, 4q) to the canonical [0, q). */
inline u64
normalize_lazy(u64 a, const Modulus& q)
{
    const u64 two_q = 2 * q.value();
    if (a >= two_q) a -= two_q;
    if (a >= q.value()) a -= q.value();
    return a;
}

/** Vector normalization pass: maps n lazy residues in [0, 4q) to [0, q). */
inline void
normalize_lazy(u64* a, u64 n, const Modulus& q)
{
    for (u64 j = 0; j < n; ++j) a[j] = normalize_lazy(a[j], q);
}

/** a^e mod q by square-and-multiply. */
inline u64
pow_mod(u64 a, u64 e, const Modulus& q)
{
    u64 result = 1;
    u64 base = q.reduce(a);
    while (e > 0) {
        if (e & 1) result = mul_mod(result, base, q);
        base = mul_mod(base, base, q);
        e >>= 1;
    }
    return result;
}

/** a^{-1} mod q for prime q (Fermat). Requires a != 0 mod q. */
inline u64
inv_mod(u64 a, const Modulus& q)
{
    u64 r = q.reduce(a);
    ORION_CHECK(r != 0, "inverse of zero mod " << q.value());
    return pow_mod(r, q.value() - 2, q);
}

/** Reduces a signed 64-bit value into [0, q). */
inline u64
reduce_signed(i64 x, const Modulus& q)
{
    if (x >= 0) return q.reduce(static_cast<u64>(x));
    u64 r = q.reduce(static_cast<u64>(-(x + 1)) + 1);
    return neg_mod(r, q);
}

/** Reduces a signed 128-bit value into [0, q). */
inline u64
reduce_signed_128(i128 x, const Modulus& q)
{
    if (x >= 0) return q.reduce_128(static_cast<u128>(x));
    u64 r = q.reduce_128(static_cast<u128>(-(x + 1)) + 1);
    return neg_mod(r, q);
}

/** Maps a residue in [0, q) to its centered representative in (-q/2, q/2]. */
inline i64
to_centered(u64 x, const Modulus& q)
{
    return x > q.value() / 2 ? static_cast<i64>(x) - static_cast<i64>(q.value())
                             : static_cast<i64>(x);
}

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_MODARITH_H_
