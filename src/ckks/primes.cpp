#include "src/ckks/primes.h"

#include <algorithm>

namespace orion::ckks {

namespace {

/** Miller-Rabin witness check: returns true if `a` proves n composite. */
bool
witness_composite(u64 a, u64 d, int r, const Modulus& n)
{
    u64 x = pow_mod(a, d, n);
    if (x == 1 || x == n.value() - 1) return false;
    for (int i = 1; i < r; ++i) {
        x = mul_mod(x, x, n);
        if (x == n.value() - 1) return false;
    }
    return true;
}

}  // namespace

bool
is_prime(u64 n)
{
    if (n < 2) return false;
    for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                  29ull, 31ull, 37ull}) {
        if (n == p) return true;
        if (n % p == 0) return false;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    Modulus m(n);
    // This witness set is deterministic for all n < 2^64
    // (Sinclair, 2011: https://miller-rabin.appspot.com).
    for (u64 a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull,
                  1795265022ull}) {
        if (a % n == 0) continue;
        if (witness_composite(a % n, d, r, m)) return false;
    }
    return true;
}

std::vector<u64>
generate_ntt_primes(int bit_size, int count, u64 poly_degree,
                    const std::vector<u64>& skip)
{
    ORION_CHECK(bit_size >= 20 && bit_size <= 61,
                "prime bit size out of supported range: " << bit_size);
    ORION_CHECK(is_power_of_two(poly_degree), "N must be a power of two");
    const u64 group = 2 * poly_degree;
    std::vector<u64> primes;
    // Largest candidate = 1 (mod 2N) strictly below 2^bit_size.
    u64 candidate = ((u64(1) << bit_size) - 1) / group * group + 1;
    while (static_cast<int>(primes.size()) < count) {
        ORION_CHECK(candidate > (u64(1) << (bit_size - 1)),
                    "ran out of " << bit_size << "-bit NTT primes");
        if (is_prime(candidate) &&
            std::find(skip.begin(), skip.end(), candidate) == skip.end()) {
            primes.push_back(candidate);
        }
        candidate -= group;
    }
    return primes;
}

u64
find_primitive_root(u64 poly_degree, const Modulus& q)
{
    const u64 group = 2 * poly_degree;
    ORION_CHECK((q.value() - 1) % group == 0,
                "modulus " << q.value() << " is not NTT-friendly for N="
                           << poly_degree);
    const u64 exponent = (q.value() - 1) / group;
    // For x uniform, psi = x^((q-1)/2N) has order dividing 2N; because 2N is
    // a power of two, psi^N == -1 certifies the order is exactly 2N.
    for (u64 x = 2;; ++x) {
        u64 psi = pow_mod(x, exponent, q);
        if (pow_mod(psi, poly_degree, q) == q.value() - 1) return psi;
        ORION_CHECK(x < 1000, "failed to find primitive root");
    }
}

}  // namespace orion::ckks
