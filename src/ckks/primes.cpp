#include "src/ckks/primes.h"

#include <algorithm>

namespace orion::ckks {

namespace {

// The primality test is a cold path that must accept ANY u64 candidate, so
// it uses plain u128 modular arithmetic here instead of the CKKS Modulus
// class (whose Barrett/Shoup machinery requires q < 2^61 for the lazy
// [0, 4q) kernels — see modarith.h).

u64
mul_mod_u128(u64 a, u64 b, u64 n)
{
    return static_cast<u64>(u128(a) * b % n);
}

u64
pow_mod_u128(u64 a, u64 e, u64 n)
{
    u64 result = 1;
    u64 base = a % n;
    while (e > 0) {
        if (e & 1) result = mul_mod_u128(result, base, n);
        base = mul_mod_u128(base, base, n);
        e >>= 1;
    }
    return result;
}

/** Miller-Rabin witness check: returns true if `a` proves n composite. */
bool
witness_composite(u64 a, u64 d, int r, u64 n)
{
    u64 x = pow_mod_u128(a, d, n);
    if (x == 1 || x == n - 1) return false;
    for (int i = 1; i < r; ++i) {
        x = mul_mod_u128(x, x, n);
        if (x == n - 1) return false;
    }
    return true;
}

}  // namespace

bool
is_prime(u64 n)
{
    if (n < 2) return false;
    for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                  29ull, 31ull, 37ull}) {
        if (n == p) return true;
        if (n % p == 0) return false;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This witness set is deterministic for all n < 2^64
    // (Sinclair, 2011: https://miller-rabin.appspot.com).
    for (u64 a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull,
                  1795265022ull}) {
        if (a % n == 0) continue;
        if (witness_composite(a % n, d, r, n)) return false;
    }
    return true;
}

std::vector<u64>
generate_ntt_primes(int bit_size, int count, u64 poly_degree,
                    const std::vector<u64>& skip)
{
    // The 61-bit ceiling is a hard invariant of the arithmetic core, not a
    // soft limit: every generated prime becomes a Modulus, and the lazy
    // [0, 4q) kernels (Harvey NTT butterflies, deferred key-switch sums;
    // modarith.h) need q < 2^61 so that sums of two lazy residues fit in
    // a u64. A candidate below 2^bit_size <= 2^61 satisfies it by
    // construction.
    ORION_CHECK(bit_size >= 20 && bit_size <= 61,
                "prime bit size out of supported range: " << bit_size);
    ORION_CHECK(is_power_of_two(poly_degree), "N must be a power of two");
    const u64 group = 2 * poly_degree;
    std::vector<u64> primes;
    // Largest candidate = 1 (mod 2N) strictly below 2^bit_size.
    u64 candidate = ((u64(1) << bit_size) - 1) / group * group + 1;
    while (static_cast<int>(primes.size()) < count) {
        ORION_CHECK(candidate > (u64(1) << (bit_size - 1)),
                    "ran out of " << bit_size << "-bit NTT primes");
        if (is_prime(candidate) &&
            std::find(skip.begin(), skip.end(), candidate) == skip.end()) {
            primes.push_back(candidate);
        }
        candidate -= group;
    }
    return primes;
}

u64
find_primitive_root(u64 poly_degree, const Modulus& q)
{
    const u64 group = 2 * poly_degree;
    ORION_CHECK((q.value() - 1) % group == 0,
                "modulus " << q.value() << " is not NTT-friendly for N="
                           << poly_degree);
    const u64 exponent = (q.value() - 1) / group;
    // For x uniform, psi = x^((q-1)/2N) has order dividing 2N; because 2N is
    // a power of two, psi^N == -1 certifies the order is exactly 2N.
    for (u64 x = 2;; ++x) {
        u64 psi = pow_mod(x, exponent, q);
        if (pow_mod(psi, poly_degree, q) == q.value() - 1) return psi;
        ORION_CHECK(x < 1000, "failed to find primitive root");
    }
}

}  // namespace orion::ckks
