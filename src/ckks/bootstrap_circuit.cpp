#include "src/ckks/bootstrap_circuit.h"

#include <chrono>
#include <cmath>
#include <mutex>
#include <numbers>
#include <set>

#include "src/core/telemetry.h"
#include "src/core/thread_pool.h"
#include "src/linalg/bsgs_detail.h"

namespace orion::ckks {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Splits `total` stages into `groups` contiguous runs, front-loaded. */
std::vector<int>
group_sizes(int total, int groups)
{
    ORION_CHECK(groups >= 1 && groups <= total,
                "cannot collapse " << total << " FFT stages into " << groups
                                   << " levels");
    std::vector<int> sizes(static_cast<std::size_t>(groups), total / groups);
    for (int i = 0; i < total % groups; ++i) sizes[static_cast<size_t>(i)]++;
    return sizes;
}

/**
 * Collapses consecutive stage matrices (application order) into one
 * product per group. `stage_of` maps the application-order index to its
 * matrix.
 */
std::vector<ComplexDiagMatrix>
collapse_stages(u64 dim, int total, const std::vector<int>& sizes,
                const std::function<ComplexDiagMatrix(int)>& stage_of)
{
    std::vector<ComplexDiagMatrix> out;
    out.reserve(sizes.size());
    int next = 0;
    for (int size : sizes) {
        ComplexDiagMatrix acc = ComplexDiagMatrix::identity(dim);
        for (int k = 0; k < size; ++k) {
            // Combined map = stage ∘ acc (acc was applied first).
            acc = stage_of(next++).compose(acc);
            acc.prune(1e-9);
        }
        out.push_back(std::move(acc));
    }
    ORION_ASSERT(next == total);
    return out;
}

}  // namespace

// ---------------------------------------------------------------------
// BootstrapPlan
// ---------------------------------------------------------------------

BootstrapPlan
BootstrapPlan::build(const CkksParams& params, const BootstrapParams& opts)
{
    BootstrapPlan plan;
    plan.slots = params.poly_degree / 2;
    plan.params = opts;
    ORION_CHECK(plan.slots >= 4, "bootstrap needs at least 4 slots");
    ORION_CHECK(opts.double_angle >= 0 && opts.double_angle <= 8,
                "double_angle out of range");

    // Range bound K on the ModRaise integer part. The phase c0 + c1*s is
    // a sum of |s|_1 + 1 roughly-uniform residues, so I = round(./q_0) is
    // heuristically Gaussian with sigma = sqrt((h+1)/12); seven sigmas
    // make an overflow vanishingly unlikely per coefficient.
    plan.secret_weight =
        params.secret_weight > 0
            ? params.secret_weight
            : static_cast<int>(2 * params.poly_degree / 3);
    if (opts.k_range > 0) {
        plan.params.k_range = opts.k_range;
    } else {
        const double sigma =
            std::sqrt((static_cast<double>(plan.secret_weight) + 1.0) / 12.0);
        plan.params.k_range =
            std::max(6, static_cast<int>(std::ceil(7.0 * sigma)));
    }
    const double k_edge = static_cast<double>(plan.params.k_range) + 0.5;

    // EvalMod base function: cos(2*pi*(x - 1/4) / 2^r) on [-K-1/2, K+1/2].
    // After r double-angle steps this becomes cos(2*pi*x - pi/2) =
    // sin(2*pi*x), the scaled-sine approximation of x mod q_0.
    const double pow_r = std::pow(2.0, opts.double_angle);
    const auto base = [&](double x) {
        return std::cos(2.0 * std::numbers::pi * (x - 0.25) / pow_r);
    };
    if (opts.sine_degree > 0) {
        plan.sine = approx::ChebyshevPoly::fit(base, -k_edge, k_edge,
                                               opts.sine_degree);
    } else {
        // Grow the degree until the interpolation error clears the
        // tolerance: convergence is superexponential once the degree
        // passes the argument range (in radians), so start just above it.
        const double range_rad =
            2.0 * std::numbers::pi * k_edge / pow_r;
        int degree = static_cast<int>(std::ceil(range_rad)) + 8;
        for (;; degree += 4) {
            ORION_CHECK(degree <= 1022,
                        "EvalMod degree diverged; the secret is too dense "
                        "to bootstrap (set CkksParams::secret_weight)");
            plan.sine = approx::ChebyshevPoly::fit(base, -k_edge, k_edge,
                                                   degree);
            if (plan.sine.max_error(base) < opts.fit_tolerance) break;
        }
    }
    plan.sine.truncate(1e-13);
    plan.eval_degree = plan.sine.degree();
    plan.eval_depth = approx::HePolyEvaluator::poly_depth(plan.sine) +
                      opts.double_angle;

    // Collapse the encoder's special-FFT stages into per-level matrices:
    // inverse stages for CoeffToSlot, forward stages for SlotToCoeff.
    const SpecialFft fft(params.poly_degree);
    const int total = fft.num_stages();
    plan.cts_stages = collapse_stages(
        plan.slots, total, group_sizes(total, opts.cts_levels),
        [&](int s) { return fft.inverse_stage_matrix(s); });
    plan.stc_stages = collapse_stages(
        plan.slots, total, group_sizes(total, opts.stc_levels),
        [&](int s) { return fft.forward_stage_matrix(s); });
    for (const ComplexDiagMatrix& m : plan.cts_stages) {
        plan.cts_bsgs.push_back(
            lin::BsgsPlan::build_from_indices(plan.slots,
                                              m.diagonal_indices()));
    }
    for (const ComplexDiagMatrix& m : plan.stc_stages) {
        plan.stc_bsgs.push_back(
            lin::BsgsPlan::build_from_indices(plan.slots,
                                              m.diagonal_indices()));
    }

    plan.depth = opts.cts_levels + plan.eval_depth + opts.stc_levels;
    return plan;
}

std::shared_ptr<const BootstrapPlan>
BootstrapPlan::cached(const CkksParams& params)
{
    // The default-options plan depends only on the ring degree and the
    // secret weight; memoize on that pair (tiny: one entry per distinct
    // parameter point ever seen in the process).
    static std::mutex mu;
    static std::vector<
        std::pair<std::pair<u64, int>, std::shared_ptr<const BootstrapPlan>>>
        memo;
    const std::pair<u64, int> key = {params.poly_degree,
                                     params.secret_weight};
    {
        std::lock_guard<std::mutex> lk(mu);
        for (const auto& [k, plan] : memo) {
            if (k == key) return plan;
        }
    }
    // Build outside the lock (seconds at large N); a racing duplicate
    // build is wasteful but harmless — first registration wins.
    auto plan = std::make_shared<const BootstrapPlan>(build(params));
    std::lock_guard<std::mutex> lk(mu);
    for (const auto& [k, existing] : memo) {
        if (k == key) return existing;
    }
    memo.emplace_back(key, plan);
    return plan;
}

std::vector<GaloisKeyRequest>
BootstrapPlan::galois_requests(int l_eff) const
{
    std::vector<GaloisKeyRequest> out;
    const int l_top = l_eff + depth;
    for (std::size_t i = 0; i < cts_bsgs.size(); ++i) {
        const int level = l_top - static_cast<int>(i);
        for (int s : cts_bsgs[i].required_steps()) out.push_back({s, level});
    }
    const int l_mid = l_top - params.cts_levels - eval_depth;
    for (std::size_t j = 0; j < stc_bsgs.size(); ++j) {
        const int level = l_mid - static_cast<int>(j);
        for (int s : stc_bsgs[j].required_steps()) out.push_back({s, level});
    }
    return out;
}

// ---------------------------------------------------------------------
// HeComplexMatrix
// ---------------------------------------------------------------------

HeComplexMatrix::HeComplexMatrix(const Context& ctx, const Encoder& encoder,
                                 const ComplexDiagMatrix& m,
                                 const lin::BsgsPlan& plan, int level,
                                 double encode_scale, double pre_factor)
    : ctx_(&ctx), plan_(plan), level_(level), scale_(encode_scale)
{
    ORION_CHECK(m.dim() == ctx.slot_count(),
                "homomorphic matrices must match the slot count ("
                    << m.dim() << " vs " << ctx.slot_count() << ")");
    const u64 dim = m.dim();
    // Encode diag_{g+b} rotated down by the giant amount g (Equation 1),
    // exactly like HeDiagonalMatrix but with complex diagonals. Every
    // (group, term) encode is independent; fan them out.
    struct Slot {
        const std::vector<std::complex<double>>* diag;
        u64 g;
        Plaintext* out;
    };
    std::vector<Slot> slots;
    for (const auto& [g, terms] : plan_.groups) {
        std::vector<Plaintext>& row = encoded_[g];
        row.resize(terms.size());
        for (std::size_t t = 0; t < terms.size(); ++t) {
            const std::vector<std::complex<double>>* diag =
                m.diagonal(terms[t].diag);
            ORION_ASSERT(diag != nullptr);
            slots.push_back({diag, g, &row[t]});
        }
    }
    core::parallel_for(0, static_cast<i64>(slots.size()), [&](i64 si) {
        const Slot& s = slots[static_cast<std::size_t>(si)];
        std::vector<std::complex<double>> rotated(dim);
        for (u64 t = 0; t < dim; ++t) {
            rotated[t] = pre_factor * (*s.diag)[(t + dim - s.g) % dim];
        }
        *s.out = encoder.encode_complex(rotated, level, encode_scale);
    });
}

Ciphertext
HeComplexMatrix::apply(const Evaluator& eval, const Ciphertext& ct) const
{
    ORION_CHECK(ct.level() == level_,
                "matrix encoded at level " << level_ << ", input at level "
                                           << ct.level());
    // Identical shape to HeDiagonalMatrix::apply: one hoisted
    // decomposition serves every baby rotation, giant groups accumulate
    // with the deferred mod-down, all on the shared lin:: fan-out
    // machinery (bit-identical at any thread count).
    std::map<u64, const Ciphertext*> babies;
    const std::vector<Ciphertext> baby_cts =
        lin::detail::hoisted_baby_rotations(eval, ct, plan_.baby_steps,
                                            &babies);

    std::vector<lin::detail::GroupTask> tasks;
    tasks.reserve(plan_.groups.size());
    for (const auto& [g, terms] : plan_.groups) {
        tasks.push_back({0, g, &terms, &encoded_.at(g)});
    }
    std::vector<Evaluator::RotationAccumulator> accs;
    accs.push_back(eval.make_accumulator(level_, ct.scale * scale_));
    lin::detail::accumulate_group_sums(eval, tasks, babies, accs);
    Ciphertext out = eval.finalize_accumulator(accs[0]);
    eval.rescale_inplace(out);
    return out;
}

// ---------------------------------------------------------------------
// BootstrapCircuit
// ---------------------------------------------------------------------

BootstrapCircuit::BootstrapCircuit(const Context& ctx, const Encoder& encoder,
                                   std::shared_ptr<const BootstrapPlan> plan,
                                   int l_eff, double input_scale)
    : ctx_(&ctx), plan_(std::move(plan)), l_eff_(l_eff),
      input_scale_(input_scale > 0.0 ? input_scale : ctx.scale())
{
    ORION_CHECK(plan_ != nullptr, "bootstrap circuit needs a plan");
    ORION_CHECK(plan_->slots == ctx.slot_count(),
                "bootstrap plan built for " << plan_->slots
                                            << " slots, context has "
                                            << ctx.slot_count());
    ORION_CHECK(l_eff_ >= 1, "l_eff must be at least 1");
    ORION_CHECK(supported(ctx, *plan_, l_eff_),
                "bootstrap circuit needs " << l_eff_ + plan_->depth
                    << " levels (l_eff " << l_eff_ << " + l_boot "
                    << plan_->depth << "), context has only "
                    << ctx.max_level());
    ORION_CHECK(scales_match(input_scale_, ctx.scale()) ||
                    (input_scale_ > 0.25 * ctx.scale() &&
                     input_scale_ < 4.0 * ctx.scale()),
                "bootstrap input scale implausible: " << input_scale_);

    const double delta = ctx.scale();
    const double q0 = static_cast<double>(ctx.q(0).value());
    const double n = static_cast<double>(plan_->slots);
    const int l_top = top_level();

    // CoeffToSlot: fold s_in / (2 n q_0) evenly across the stages (one
    // lopsided stage would either quantize tiny plaintext entries badly
    // or blow up intermediate magnitudes).
    const int g_cts = plan_->params.cts_levels;
    const double cts_factor =
        std::pow(input_scale_ / (2.0 * n * q0), 1.0 / g_cts);
    for (int i = 0; i < g_cts; ++i) {
        const int level = l_top - i;
        const double in_scale = i == 0 ? input_scale_ : delta;
        const double encode_scale =
            delta * static_cast<double>(ctx.q(level).value()) / in_scale;
        cts_.emplace_back(ctx, encoder, plan_->cts_stages[static_cast<std::size_t>(i)],
                          plan_->cts_bsgs[static_cast<std::size_t>(i)], level,
                          encode_scale, cts_factor);
    }

    // EvalMod's symbolic output scale: the Chebyshev stage lands exactly
    // at Delta, then each double-angle step squares and rescales. Mirror
    // the evaluator's double arithmetic so the StC encode scale is exact.
    const int l_eval_in = l_top - g_cts;
    int level = l_eval_in - approx::HePolyEvaluator::poly_depth(plan_->sine);
    double s = delta;
    for (int k = 0; k < plan_->params.double_angle; ++k) {
        s = (s * s) / static_cast<double>(ctx.q(level).value());
        --level;
    }
    post_eval_scale_ = s;
    ORION_ASSERT(level == l_eval_in - plan_->eval_depth);

    // SlotToCoeff: fold q_0 / (2 pi s_in) evenly across the stages. The
    // last stage lands at exactly Delta and level l_eff.
    const int g_stc = plan_->params.stc_levels;
    const double stc_factor = std::pow(
        q0 / (2.0 * std::numbers::pi * input_scale_), 1.0 / g_stc);
    for (int j = 0; j < g_stc; ++j) {
        const int stage_level = level - j;
        const double in_scale = j == 0 ? post_eval_scale_ : delta;
        const double encode_scale =
            delta * static_cast<double>(ctx.q(stage_level).value()) /
            in_scale;
        stc_.emplace_back(ctx, encoder,
                          plan_->stc_stages[static_cast<std::size_t>(j)],
                          plan_->stc_bsgs[static_cast<std::size_t>(j)],
                          stage_level, encode_scale, stc_factor);
    }
}

Ciphertext
BootstrapCircuit::eval_mod(const Evaluator& eval, const Ciphertext& ct) const
{
    const approx::HePolyEvaluator polyeval(eval);
    Ciphertext c = polyeval.evaluate(plan_->sine, ct, ctx_->scale());
    for (int k = 0; k < plan_->params.double_angle; ++k) {
        // cos(2x) = 2 cos(x)^2 - 1: square, double (free), subtract one.
        c = eval.square(c);
        eval.rescale_inplace(c);
        c.c0.mul_small_scalar_inplace(2);
        c.c1.mul_small_scalar_inplace(2);
        const Plaintext one =
            eval.encoder().encode_constant(1.0, c.level(), c.scale);
        eval.sub_plain_inplace(c, one);
    }
    return c;
}

Ciphertext
BootstrapCircuit::bootstrap(const Evaluator& eval, const Ciphertext& ct,
                            BootstrapStats* stats) const
{
    TELEM_SPAN("boot.bootstrap");
    ORION_CHECK(ct.valid(), "cannot bootstrap an empty ciphertext");
    ORION_CHECK(scales_match(ct.scale, input_scale_),
                "bootstrap circuit prepared for input scale "
                    << input_scale_ << ", got " << ct.scale);
    const double delta = ctx_->scale();

    // Per-stage wall clocks always run (they cost four clock reads per
    // bootstrap) and feed the process-wide stage histograms; `stats`
    // keeps the caller-visible split of BootstrapStats.
    static telemetry::Histogram& h_mod_raise =
        telemetry::Registry::global().histogram("boot.mod_raise.seconds");
    static telemetry::Histogram& h_cts =
        telemetry::Registry::global().histogram("boot.cts.seconds");
    static telemetry::Histogram& h_eval_mod =
        telemetry::Registry::global().histogram("boot.eval_mod.seconds");
    static telemetry::Histogram& h_stc =
        telemetry::Registry::global().histogram("boot.stc.seconds");

    // ModRaise: everything the ciphertext knows lives mod q_0.
    auto t0 = std::chrono::steady_clock::now();
    Ciphertext cur;
    {
        TELEM_SPAN("boot.mod_raise");
        Ciphertext low = ct;
        if (low.level() > 0) eval.drop_to_level_inplace(low, 0);
        cur.scale = input_scale_;
        cur.c0 = low.c0.mod_raise(top_level());
        cur.c1 = low.c1.mod_raise(top_level());
    }
    const double mod_raise_s = seconds_since(t0);
    h_mod_raise.observe(mod_raise_s);
    if (stats != nullptr) stats->mod_raise_s = mod_raise_s;

    // CoeffToSlot, then one conjugation to split real/imaginary halves
    // (the matrices already carry the 1/2).
    t0 = std::chrono::steady_clock::now();
    Ciphertext re, im;
    {
        TELEM_SPAN("boot.cts");
        for (const HeComplexMatrix& stage : cts_) {
            cur = stage.apply(eval, cur);
            ORION_ASSERT(scales_match(cur.scale, delta));
            cur.scale = delta;
        }
        const Ciphertext conj = eval.conjugate(cur);
        re = eval.add(cur, conj);
        im = std::move(cur);
        eval.sub_inplace(im, conj);
        eval.mul_by_i_inplace(im, /*negative=*/true);
    }
    const double cts_s = seconds_since(t0);
    h_cts.observe(cts_s);
    if (stats != nullptr) stats->coeff_to_slot_s = cts_s;

    // EvalMod on both halves, then recombine re + i * im.
    t0 = std::chrono::steady_clock::now();
    {
        TELEM_SPAN("boot.eval_mod");
        re = eval_mod(eval, re);
        im = eval_mod(eval, im);
        ORION_ASSERT(scales_match(re.scale, post_eval_scale_));
        eval.mul_by_i_inplace(im);
        re.scale = post_eval_scale_;
        im.scale = post_eval_scale_;
        eval.add_inplace(re, im);
    }
    const double eval_mod_s = seconds_since(t0);
    h_eval_mod.observe(eval_mod_s);
    if (stats != nullptr) stats->eval_mod_s = eval_mod_s;

    // SlotToCoeff back to coefficient packing.
    t0 = std::chrono::steady_clock::now();
    {
        TELEM_SPAN("boot.stc");
        for (const HeComplexMatrix& stage : stc_) {
            re = stage.apply(eval, re);
            ORION_ASSERT(scales_match(re.scale, delta));
            re.scale = delta;
        }
    }
    const double stc_s = seconds_since(t0);
    h_stc.observe(stc_s);
    if (stats != nullptr) stats->slot_to_coeff_s = stc_s;

    ORION_ASSERT(re.level() == l_eff_);
    ctx_->counters().bootstrap += 1;
    return re;
}

}  // namespace orion::ckks
