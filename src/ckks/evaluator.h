#ifndef ORION_SRC_CKKS_EVALUATOR_H_
#define ORION_SRC_CKKS_EVALUATOR_H_

/**
 * @file
 * The homomorphic evaluator: the CKKS operations of Section 2.5 (PAdd,
 * HAdd, PMult, HMult, HRot, rescaling, level adjustment) plus the hoisting
 * machinery of Section 3.3.
 *
 * Hoisting splits a rotation into a hoistable digit decomposition (done
 * once per ciphertext) and a cheap per-rotation permutation + key inner
 * product. The RotationAccumulator additionally defers the final mod-down
 * across many rotations, the double-hoisting idea of Bossuat et al. used
 * by every BSGS matrix-vector product in Orion.
 */

#include "src/ckks/ciphertext.h"
#include "src/ckks/encoder.h"
#include "src/ckks/keyswitch.h"

namespace orion::ckks {

/** Homomorphic operations over ciphertexts. */
class Evaluator {
  public:
    Evaluator(const Context& ctx, const Encoder& encoder)
        : ctx_(&ctx), encoder_(&encoder), switcher_(ctx)
    {
    }

    /** Registers the relinearization key (required by mul / square). */
    void set_relin_key(const KswitchKey* key) { relin_ = key; }
    /** Registers rotation keys (required by rotate / conjugate). */
    void set_galois_keys(const GaloisKeys* keys) { galois_ = keys; }

    const Context& context() const { return *ctx_; }
    const Encoder& encoder() const { return *encoder_; }

    // ---- additive ops (equal level and scale required) ----

    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    void add_inplace(Ciphertext& a, const Ciphertext& b) const;
    void sub_inplace(Ciphertext& a, const Ciphertext& b) const;
    void add_plain_inplace(Ciphertext& a, const Plaintext& p) const;
    void sub_plain_inplace(Ciphertext& a, const Plaintext& p) const;
    void negate_inplace(Ciphertext& a) const;
    /** Adds constant v to every slot (encodes at a's level and scale). */
    void add_constant_inplace(Ciphertext& a, double v) const;

    // ---- multiplicative ops (no implicit rescale) ----

    /** PMult: plaintext-ciphertext product; output scale is the product. */
    Ciphertext mul_plain(const Ciphertext& a, const Plaintext& p) const;
    void mul_plain_inplace(Ciphertext& a, const Plaintext& p) const;
    /** HMult with relinearization; output scale is the product. */
    Ciphertext mul(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext square(const Ciphertext& a) const;
    /**
     * Multiplies by constant v encoded at the given scale (consumes one
     * level after the caller rescales).
     */
    void mul_constant_inplace(Ciphertext& a, double v, double scale) const;

    // ---- scale and level management ----

    /** Rescale: divides by q_l and drops one level (Section 2.5.2). */
    void rescale_inplace(Ciphertext& a) const;
    /** Level adjustment: drops limbs without changing the scale. */
    void drop_to_level_inplace(Ciphertext& a, int level) const;

    // ---- rotations ----

    /** HRot_k: cyclic rotation of slots by k (un-hoisted). */
    Ciphertext rotate(const Ciphertext& a, int step) const;
    /** Complex conjugation of all slots. */
    Ciphertext conjugate(const Ciphertext& a) const;

    /**
     * Multiplies every slot by the imaginary unit i (or -i): the exact
     * monomial product X^{N/2} (resp. -X^{N/2}), which is free of noise,
     * scale, and level cost. Used by the bootstrap's real/imaginary
     * split and recombination around EvalMod.
     */
    void mul_by_i_inplace(Ciphertext& a, bool negative = false) const;

    /** A ciphertext with its digit decomposition precomputed (hoisted). */
    struct Hoisted {
        Ciphertext ct;
        std::vector<RnsPoly> digits;
    };

    /** Performs the hoistable decomposition once. */
    Hoisted hoist(const Ciphertext& a) const;
    /** Rotation served from a hoisted decomposition (cheaper key switch). */
    Ciphertext rotate_hoisted(const Hoisted& h, int step) const;

    /**
     * Accumulates sums of rotated ciphertexts while deferring the key-switch
     * mod-down to a single finalize (the double-hoisting pattern): the
     * result equals sum_i HRot_{k_i}(ct_i).
     */
    class RotationAccumulator {
      public:
        int level() const { return level_; }
        double scale() const { return scale_; }

      private:
        friend class Evaluator;
        RnsPoly base0_, base1_;  // plain-basis parts (step-0 and phi(c0))
        RnsPoly ext0_, ext1_;    // extended-basis key-switch partial sums
        double scale_ = 0.0;
        int level_ = -1;
        bool any_ext_ = false;
    };

    RotationAccumulator make_accumulator(int level, double scale) const;
    void accumulate_rotation(RotationAccumulator& acc, const Ciphertext& ct,
                             int step) const;
    /**
     * Folds `from` into `into` (exact modular adds of the plain-basis and
     * extended-basis partial sums). Parallel BSGS giant-step fan-outs give
     * each worker chunk a private accumulator and merge them in fixed
     * chunk order at the end; because the sums are exact, the result is
     * bit-identical to serial accumulation at any thread count.
     */
    void merge_accumulator(RotationAccumulator& into,
                           const RotationAccumulator& from) const;
    Ciphertext finalize_accumulator(RotationAccumulator& acc) const;

    /** The Galois key lookup used internally; public for diagnostics. */
    const KswitchKey& galois_key_for_step(int step) const;

  private:
    void check_additive_compat(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext rotate_internal(const Ciphertext& a, u64 elt) const;

    const Context* ctx_;
    const Encoder* encoder_;
    KeySwitcher switcher_;
    const KswitchKey* relin_ = nullptr;
    const GaloisKeys* galois_ = nullptr;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_EVALUATOR_H_
