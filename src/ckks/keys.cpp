#include "src/ckks/keys.h"

#include <algorithm>

namespace orion::ckks {

RnsPoly
SecretKey::at_level(int level) const
{
    const Context& ctx = s.context();
    RnsPoly out(ctx, level, /*extended=*/false, /*ntt_form=*/true);
    const u64 n = ctx.degree();
    for (int i = 0; i <= level; ++i) {
        std::copy(s.limb(i), s.limb(i) + n, out.limb(i));
    }
    return out;
}

std::size_t
GaloisKeys::byte_size() const
{
    std::size_t total = 0;
    for (const auto& [elt, ksk] : keys) {
        (void)elt;
        for (const RnsPoly& p : ksk.b) {
            total += static_cast<std::size_t>(p.num_limbs()) * p.degree() * 8;
        }
        for (const RnsPoly& p : ksk.a) {
            total += static_cast<std::size_t>(p.num_limbs()) * p.degree() * 8;
        }
    }
    return total;
}

KeyGenerator::KeyGenerator(const Context& ctx, u64 seed)
    : ctx_(&ctx), sampler_(seed)
{
    // Ternary secret, expressed over the full extended basis.
    const u64 n = ctx.degree();
    const std::vector<i64> coeffs = sampler_.sample_ternary(n);
    sk_.s = RnsPoly(ctx, ctx.max_level(), /*extended=*/true,
                    /*ntt_form=*/false);
    for (int i = 0; i < sk_.s.num_limbs(); ++i) {
        const Modulus& q = sk_.s.limb_modulus(i);
        u64* limb = sk_.s.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(coeffs[j], q);
    }
    sk_.s.to_ntt();
}

RnsPoly
KeyGenerator::sample_uniform_extended()
{
    RnsPoly a(*ctx_, ctx_->max_level(), /*extended=*/true, /*ntt_form=*/true);
    const u64 n = ctx_->degree();
    for (int i = 0; i < a.num_limbs(); ++i) {
        const std::vector<u64> vals =
            sampler_.sample_uniform(n, a.limb_modulus(i));
        std::copy(vals.begin(), vals.end(), a.limb(i));
    }
    return a;
}

RnsPoly
KeyGenerator::sample_error_extended()
{
    const u64 n = ctx_->degree();
    const std::vector<i64> coeffs = sampler_.sample_gaussian(n);
    RnsPoly e(*ctx_, ctx_->max_level(), /*extended=*/true,
              /*ntt_form=*/false);
    for (int i = 0; i < e.num_limbs(); ++i) {
        const Modulus& q = e.limb_modulus(i);
        u64* limb = e.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(coeffs[j], q);
    }
    e.to_ntt();
    return e;
}

PublicKey
KeyGenerator::make_public_key()
{
    const int level = ctx_->max_level();
    const u64 n = ctx_->degree();
    PublicKey pk;
    pk.a = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/true);
    for (int i = 0; i <= level; ++i) {
        const std::vector<u64> vals =
            sampler_.sample_uniform(n, pk.a.limb_modulus(i));
        std::copy(vals.begin(), vals.end(), pk.a.limb(i));
    }
    const std::vector<i64> e_coeffs = sampler_.sample_gaussian(n);
    RnsPoly e(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    for (int i = 0; i <= level; ++i) {
        const Modulus& q = e.limb_modulus(i);
        u64* limb = e.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(e_coeffs[j], q);
    }
    e.to_ntt();

    // b = -a*s + e over Q_L.
    pk.b = pk.a;
    pk.b.mul_pointwise_inplace(sk_.at_level(level));
    pk.b.negate_inplace();
    pk.b.add_inplace(e);
    return pk;
}

KswitchKey
KeyGenerator::make_kswitch_key(const RnsPoly& s_old)
{
    ORION_ASSERT(s_old.is_ntt() && s_old.extended());
    const int max_level = ctx_->max_level();
    const int digits = ctx_->num_digits(max_level);
    const int alpha = ctx_->digit_size();
    const u64 n = ctx_->degree();

    KswitchKey ksk;
    ksk.b.reserve(static_cast<std::size_t>(digits));
    ksk.a.reserve(static_cast<std::size_t>(digits));
    for (int d = 0; d < digits; ++d) {
        RnsPoly a = sample_uniform_extended();
        RnsPoly b = sample_error_extended();
        // b += W_d * s_old on the digit's own limbs: W_d = P mod q_j there.
        const int lo = d * alpha;
        const int hi = std::min((d + 1) * alpha - 1, max_level);
        for (int j = lo; j <= hi; ++j) {
            const Modulus& q = ctx_->q(j);
            const u64 w = ctx_->p_prod_mod_q(j);
            const u64 w_shoup = shoup_precompute(w, q);
            const u64* s_limb = s_old.limb(j);
            u64* b_limb = b.limb(j);
            for (u64 x = 0; x < n; ++x) {
                b_limb[x] = add_mod(
                    b_limb[x], mul_mod_shoup(s_limb[x], w, w_shoup, q), q);
            }
        }
        // b -= a * s_new.
        RnsPoly as = a;
        as.mul_pointwise_inplace(sk_.s);
        b.sub_inplace(as);
        ksk.b.push_back(std::move(b));
        ksk.a.push_back(std::move(a));
    }
    return ksk;
}

KswitchKey
KeyGenerator::make_relin_key()
{
    RnsPoly s2 = sk_.s;
    s2.mul_pointwise_inplace(sk_.s);
    return make_kswitch_key(s2);
}

KswitchKey
KeyGenerator::make_galois_key(u64 elt)
{
    return make_kswitch_key(sk_.s.galois(elt));
}

GaloisKeys
KeyGenerator::make_galois_keys(std::span<const int> steps,
                               bool include_conjugation)
{
    GaloisKeys out;
    for (int step : steps) {
        const u64 elt = ctx_->galois_elt(step);
        if (!out.has(elt)) out.keys.emplace(elt, make_galois_key(elt));
    }
    if (include_conjugation) {
        const u64 elt = ctx_->galois_elt_conj();
        if (!out.has(elt)) out.keys.emplace(elt, make_galois_key(elt));
    }
    return out;
}

void
KeyGenerator::add_galois_keys(GaloisKeys& bundle, std::span<const int> steps)
{
    for (int step : steps) {
        const u64 elt = ctx_->galois_elt(step);
        if (!bundle.has(elt)) bundle.keys.emplace(elt, make_galois_key(elt));
    }
}

}  // namespace orion::ckks
