#include "src/ckks/keys.h"

#include <algorithm>

namespace orion::ckks {

RnsPoly
SecretKey::at_level(int level) const
{
    const Context& ctx = s.context();
    RnsPoly out(ctx, level, /*extended=*/false, /*ntt_form=*/true);
    const u64 n = ctx.degree();
    for (int i = 0; i <= level; ++i) {
        std::copy(s.limb(i), s.limb(i) + n, out.limb(i));
    }
    return out;
}

std::size_t
KswitchKey::byte_size() const
{
    std::size_t total = 0;
    for (const RnsPoly& p : b) {
        total += static_cast<std::size_t>(p.num_limbs()) * p.degree() * 8;
    }
    for (const RnsPoly& p : a) {
        total += static_cast<std::size_t>(p.num_limbs()) * p.degree() * 8;
    }
    return total;
}

std::size_t
GaloisKeys::byte_size() const
{
    std::size_t total = 0;
    for (const auto& [elt, ksk] : keys) {
        (void)elt;
        total += ksk.byte_size();
    }
    return total;
}

std::vector<RnsPoly>
expand_kswitch_a(const Context& ctx, u64 seed, int level)
{
    ORION_CHECK(level >= 0 && level <= ctx.max_level(),
                "key-switch expansion level " << level
                                              << " outside the chain");
    const int digits = ctx.num_digits(level);
    const u64 n = ctx.degree();
    Sampler sampler(seed);
    std::vector<RnsPoly> out;
    out.reserve(static_cast<std::size_t>(digits));
    for (int d = 0; d < digits; ++d) {
        RnsPoly a(ctx, level, /*extended=*/true, /*ntt_form=*/true);
        for (int i = 0; i < a.num_limbs(); ++i) {
            sampler.sample_uniform_into(a.limb(i), n, a.limb_modulus(i));
        }
        out.push_back(std::move(a));
    }
    return out;
}

namespace {

/**
 * Restricts an extended full-chain polynomial (NTT form) to coefficient
 * limbs q_0..q_level plus the special limbs — the basis of a level-pruned
 * key-switching key.
 */
RnsPoly
restrict_extended(const RnsPoly& s, int level)
{
    const Context& ctx = s.context();
    ORION_ASSERT(s.extended() && s.level() == ctx.max_level());
    if (level == ctx.max_level()) return s;
    const u64 n = ctx.degree();
    RnsPoly out(ctx, level, /*extended=*/true, /*ntt_form=*/true);
    for (int i = 0; i <= level; ++i) {
        std::copy(s.limb(i), s.limb(i) + n, out.limb(i));
    }
    for (int j = 0; j < ctx.special_count(); ++j) {
        const u64* src = s.limb(ctx.max_level() + 1 + j);
        std::copy(src, src + n, out.limb(level + 1 + j));
    }
    return out;
}

}  // namespace

namespace {

/** Domain separator for the published-a_seed chain ("orion.ks"). */
constexpr u64 kKswitchSeedDomain = 0x6f72696f6e2e6b73ULL;

}  // namespace

KeyGenerator::KeyGenerator(const Context& ctx, u64 seed)
    : ctx_(&ctx),
      sampler_(seed),
      kswitch_seed_state_(splitmix64(seed ^ kKswitchSeedDomain))
{
    // Ternary secret (dense, or sparse with the configured Hamming
    // weight), expressed over the full extended basis.
    const u64 n = ctx.degree();
    const int weight = ctx.params().secret_weight;
    const std::vector<i64> coeffs =
        weight > 0 ? sampler_.sample_ternary_sparse(n, weight)
                   : sampler_.sample_ternary(n);
    sk_.s = RnsPoly(ctx, ctx.max_level(), /*extended=*/true,
                    /*ntt_form=*/false);
    for (int i = 0; i < sk_.s.num_limbs(); ++i) {
        const Modulus& q = sk_.s.limb_modulus(i);
        u64* limb = sk_.s.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(coeffs[j], q);
    }
    sk_.s.to_ntt();
}

RnsPoly
KeyGenerator::sample_error_extended(int level)
{
    const u64 n = ctx_->degree();
    const std::vector<i64> coeffs = sampler_.sample_gaussian(n);
    RnsPoly e(*ctx_, level, /*extended=*/true, /*ntt_form=*/false);
    for (int i = 0; i < e.num_limbs(); ++i) {
        const Modulus& q = e.limb_modulus(i);
        u64* limb = e.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(coeffs[j], q);
    }
    e.to_ntt();
    return e;
}

PublicKey
KeyGenerator::make_public_key()
{
    const int level = ctx_->max_level();
    const u64 n = ctx_->degree();
    PublicKey pk;
    pk.a = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/true);
    for (int i = 0; i <= level; ++i) {
        const std::vector<u64> vals =
            sampler_.sample_uniform(n, pk.a.limb_modulus(i));
        std::copy(vals.begin(), vals.end(), pk.a.limb(i));
    }
    const std::vector<i64> e_coeffs = sampler_.sample_gaussian(n);
    RnsPoly e(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    for (int i = 0; i <= level; ++i) {
        const Modulus& q = e.limb_modulus(i);
        u64* limb = e.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = reduce_signed(e_coeffs[j], q);
    }
    e.to_ntt();

    // b = -a*s + e over Q_L.
    pk.b = pk.a;
    pk.b.mul_pointwise_inplace(sk_.at_level(level));
    pk.b.negate_inplace();
    pk.b.add_inplace(e);
    return pk;
}

KswitchKey
KeyGenerator::make_kswitch_key(const RnsPoly& s_old, int level)
{
    ORION_ASSERT(s_old.is_ntt() && s_old.extended());
    if (level < 0) level = ctx_->max_level();
    ORION_CHECK(level <= ctx_->max_level(),
                "key-switch key level " << level << " above the chain");
    const int digits = ctx_->num_digits(level);
    const int alpha = ctx_->digit_size();
    const u64 n = ctx_->degree();
    const RnsPoly s_old_r = restrict_extended(s_old, level);
    const RnsPoly s_new_r = restrict_extended(sk_.s, level);

    KswitchKey ksk;
    // The uniform digits come from a dedicated per-key seed (not the main
    // sampler stream), so the a-component is reproducible from 8 bytes:
    // serial v3 ships {a_seed, b digits} and re-expands on decode. The
    // seed itself is published, so it comes from the domain-separated
    // splitmix64 chain — never a raw output of the generator that samples
    // the secret and errors, whose state those outputs would expose.
    ksk.a_seed = splitmix64(kswitch_seed_state_++);
    ksk.seeded = true;
    ksk.a = expand_kswitch_a(*ctx_, ksk.a_seed, level);
    ksk.b.reserve(static_cast<std::size_t>(digits));
    for (int d = 0; d < digits; ++d) {
        const RnsPoly& a = ksk.a[static_cast<std::size_t>(d)];
        RnsPoly b = sample_error_extended(level);
        // b += W_d * s_old on the digit's own limbs: W_d = P mod q_j there.
        const int lo = d * alpha;
        const int hi = std::min((d + 1) * alpha - 1, level);
        for (int j = lo; j <= hi; ++j) {
            const Modulus& q = ctx_->q(j);
            const u64 w = ctx_->p_prod_mod_q(j);
            const u64 w_shoup = shoup_precompute(w, q);
            const u64* s_limb = s_old_r.limb(j);
            u64* b_limb = b.limb(j);
            for (u64 x = 0; x < n; ++x) {
                b_limb[x] = add_mod(
                    b_limb[x], mul_mod_shoup(s_limb[x], w, w_shoup, q), q);
            }
        }
        // b -= a * s_new.
        RnsPoly as = a;
        as.mul_pointwise_inplace(s_new_r);
        b.sub_inplace(as);
        ksk.b.push_back(std::move(b));
    }
    return ksk;
}

KswitchKey
KeyGenerator::make_relin_key()
{
    RnsPoly s2 = sk_.s;
    s2.mul_pointwise_inplace(sk_.s);
    return make_kswitch_key(s2);
}

KswitchKey
KeyGenerator::make_galois_key(u64 elt, int level)
{
    return make_kswitch_key(sk_.s.galois(elt), level);
}

GaloisKeys
KeyGenerator::make_galois_keys(std::span<const int> steps,
                               bool include_conjugation)
{
    GaloisKeys out;
    for (int step : steps) {
        const u64 elt = ctx_->galois_elt(step);
        if (!out.has(elt)) out.keys.emplace(elt, make_galois_key(elt));
    }
    if (include_conjugation) {
        const u64 elt = ctx_->galois_elt_conj();
        if (!out.has(elt)) out.keys.emplace(elt, make_galois_key(elt));
    }
    return out;
}

GaloisKeys
KeyGenerator::make_galois_keys(std::span<const GaloisKeyRequest> requests,
                               bool include_conjugation,
                               int conjugation_level)
{
    // One key per distinct Galois element, pruned to the highest level
    // any request needs it at (-1 = full chain wins).
    std::map<u64, int> level_of;
    auto raise = [&](u64 elt, int level) {
        auto [it, inserted] = level_of.emplace(elt, level);
        if (!inserted && it->second >= 0 &&
            (level < 0 || level > it->second)) {
            it->second = level;
        }
    };
    for (const GaloisKeyRequest& r : requests) {
        raise(ctx_->galois_elt(r.step), r.level);
    }
    if (include_conjugation) {
        raise(ctx_->galois_elt_conj(), conjugation_level);
    }
    GaloisKeys out;
    for (const auto& [elt, level] : level_of) {
        out.keys.emplace(elt, make_galois_key(elt, level));
    }
    return out;
}

void
KeyGenerator::add_galois_keys(GaloisKeys& bundle, std::span<const int> steps)
{
    for (int step : steps) {
        const u64 elt = ctx_->galois_elt(step);
        if (!bundle.has(elt)) bundle.keys.emplace(elt, make_galois_key(elt));
    }
}

}  // namespace orion::ckks
