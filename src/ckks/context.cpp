#include "src/ckks/context.h"

#include <algorithm>
#include <cmath>

#include "src/ckks/poly.h"
#include "src/ckks/primes.h"
#include "src/core/telemetry.h"

namespace orion::ckks {

Context::Context(const CkksParams& params) : params_(params)
{
    ORION_CHECK(is_power_of_two(params.poly_degree),
                "poly_degree must be a power of two");
    ORION_CHECK(params.poly_degree >= 8, "poly_degree too small");
    ORION_CHECK(params.num_scale_primes >= 1, "need at least one scale prime");
    ORION_CHECK(params.digit_size >= 1, "digit_size must be positive");
    // Each key-switch digit multiplies up to alpha scale primes; P must
    // dominate the digit product for the key-switch noise P^{-1}*sum(d_i e_i)
    // to stay small, hence alpha special primes of >= scale-prime size.
    ORION_CHECK(params.special_prime_bits >= params.log_scale,
                "special primes must be at least as large as scale primes");
    ORION_CHECK(params.secret_weight >= 0 &&
                    static_cast<u64>(params.secret_weight) <=
                        params.poly_degree,
                "secret_weight must lie in [0, N]");
    n_ = params.poly_degree;
    log_n_ = log2_exact(n_);
    scale_ = std::ldexp(1.0, params.log_scale);
    num_q_ = params.num_scale_primes + 1;
    num_special_ = params.digit_size;

    // Moduli chain: q_0 (first prime), then L scale primes near Delta,
    // then the special primes. All distinct, all = 1 (mod 2N).
    std::vector<u64> taken;
    auto take = [&taken](const std::vector<u64>& v) {
        for (u64 x : v) taken.push_back(x);
    };
    const std::vector<u64> first =
        generate_ntt_primes(params.first_prime_bits, 1, n_, taken);
    take(first);
    const std::vector<u64> scales = generate_ntt_primes(
        params.log_scale, params.num_scale_primes, n_, taken);
    take(scales);
    const std::vector<u64> specials = generate_ntt_primes(
        params.special_prime_bits, num_special_, n_, taken);

    moduli_.emplace_back(first[0]);
    for (u64 v : scales) moduli_.emplace_back(v);
    for (u64 v : specials) moduli_.emplace_back(v);

    tables_.reserve(moduli_.size());
    for (const Modulus& m : moduli_) tables_.emplace_back(n_, m);

    // Cross-modulus inverses used by rescale, mod-down, and base conversion.
    const std::size_t k = moduli_.size();
    inv_table_.assign(k * k, 0);
    for (std::size_t a = 0; a < k; ++a) {
        for (std::size_t b = 0; b < k; ++b) {
            if (a == b) continue;
            inv_table_[a * k + b] = inv_mod(moduli_[a].value(), moduli_[b]);
        }
    }
    p_prod_mod_q_.resize(static_cast<std::size_t>(num_q_));
    for (int j = 0; j < num_q_; ++j) {
        u64 prod = 1;
        for (int i = 0; i < num_special_; ++i) {
            prod = mul_mod(prod, special(i).value(), q(j));
        }
        p_prod_mod_q_[static_cast<std::size_t>(j)] = prod;
    }

    // Fast-base-conversion constants for every (digit, length) pair a key
    // switch can encounter: digit d spans limbs lo..lo+len-1; len runs to
    // alpha except when the chain ends first. Tiny tables (O(L * alpha *
    // num_global) words), computed once so decompose never rebuilds them.
    const int alpha = params_.digit_size;
    const int max_digits = num_digits(max_level());
    digit_consts_.resize(static_cast<std::size_t>(max_digits));
    for (int d = 0; d < max_digits; ++d) {
        const int lo = d * alpha;
        const int max_len = std::min(alpha, num_q_ - lo);
        auto& per_len = digit_consts_[static_cast<std::size_t>(d)];
        per_len.resize(static_cast<std::size_t>(max_len));
        for (int len = 1; len <= max_len; ++len) {
            const int hi = lo + len - 1;
            DigitConsts& dc = per_len[static_cast<std::size_t>(len - 1)];
            dc.hat_inv.resize(static_cast<std::size_t>(len));
            dc.hat_inv_shoup.resize(static_cast<std::size_t>(len));
            for (int j = lo; j <= hi; ++j) {
                const Modulus& qj = q(j);
                u64 hat_inv = 1;  // (D/q_j)^{-1} mod q_j
                for (int j2 = lo; j2 <= hi; ++j2) {
                    if (j2 == j) continue;
                    hat_inv = mul_mod(hat_inv, inv_mod_global(j2, j), qj);
                }
                dc.hat_inv[static_cast<std::size_t>(j - lo)] = hat_inv;
                dc.hat_inv_shoup[static_cast<std::size_t>(j - lo)] =
                    shoup_precompute(hat_inv, qj);
            }
            dc.hat_mod.resize(static_cast<std::size_t>(num_global()));
            for (int g = 0; g < num_global(); ++g) {
                if (g >= lo && g <= hi) continue;  // own limbs copy directly
                const Modulus& mt = modulus_global(g);
                std::vector<u64>& row =
                    dc.hat_mod[static_cast<std::size_t>(g)];
                row.resize(static_cast<std::size_t>(len));
                for (int j = lo; j <= hi; ++j) {
                    u64 h = 1;  // (D/q_j) mod m_t
                    for (int j2 = lo; j2 <= hi; ++j2) {
                        if (j2 == j) continue;
                        h = mul_mod(h, mt.reduce(q(j2).value()), mt);
                    }
                    row[static_cast<std::size_t>(j - lo)] = h;
                }
            }
        }
    }

    // Publish this Context's op counters into the process registry. The
    // hot loops keep bumping the per-Context relaxed atomics (snapshot /
    // delta semantics for benches and tests are unchanged); the registry
    // reads them only at scrape time and sums across live Contexts.
    telem_collector_ = telemetry::Registry::global().add_collector(
        [this](std::vector<telemetry::Sample>& out) {
            const OpCounters& c = counters_;
            const auto counter = [&out](const char* name, u64 v) {
                out.push_back({name, static_cast<double>(v),
                               telemetry::Sample::Kind::kCounter});
            };
            counter("ckks.op.pmult", c.pmult);
            counter("ckks.op.hmult", c.hmult);
            counter("ckks.op.hadd", c.hadd);
            counter("ckks.op.hrot", c.hrot);
            counter("ckks.op.hrot_hoisted", c.hrot_hoisted);
            counter("ckks.op.keyswitch", c.keyswitch);
            counter("ckks.op.rescale", c.rescale);
            counter("ckks.op.bootstrap", c.bootstrap);
            counter("ckks.op.ntt", c.ntt);
            counter("ckks.op.decompose", c.decompose);
            counter("ckks.op.poly_alloc", c.poly_alloc);
            counter("ckks.op.poly_arena_hit", c.poly_arena_hit);
        });
}

Context::~Context()
{
    telemetry::Registry::global().remove_collector(telem_collector_);
}

u64
Context::galois_elt(int step) const
{
    const u64 m = 2 * n_;          // order of the cyclotomic group
    const u64 slots = n_ / 2;
    // Rotation by `step` slots toward lower indices corresponds to the
    // automorphism X -> X^{5^step mod 2N} under the rot-group slot
    // ordering used by the encoder (validated by EncoderTest.Rotation).
    i64 s = step % static_cast<i64>(slots);
    if (s < 0) s += static_cast<i64>(slots);
    u64 elt = 1;
    for (i64 i = 0; i < s; ++i) elt = (elt * 5) % m;
    return elt;
}

const std::vector<u32>&
Context::galois_permutation(u64 elt) const
{
    std::lock_guard<std::mutex> lk(galois_perm_mu_);
    auto it = galois_perm_cache_.find(elt);
    if (it == galois_perm_cache_.end()) {
        it = galois_perm_cache_
                 .emplace(elt, make_galois_ntt_permutation(*this, elt))
                 .first;
    }
    return it->second;
}

int
Context::log_q(int level) const
{
    int bits = 0;
    for (int i = 0; i <= level; ++i) bits += q(i).bit_count();
    return bits;
}

}  // namespace orion::ckks
