#ifndef ORION_SRC_CKKS_SERIAL_H_
#define ORION_SRC_CKKS_SERIAL_H_

/**
 * @file
 * Wire (de)serialization for CKKS artifacts: the byte format a client and
 * an untrusted inference server exchange (Section 6's deployment model:
 * encrypt locally, ship ciphertexts and evaluation keys, get encrypted
 * logits back).
 *
 * Every top-level record is framed the same way as the DiskStore container
 * (magic + explicit lengths, little-endian payloads):
 *
 *   [4]  magic   "ORN1"
 *   [1]  version (kWireVersion)
 *   [1]  kind    (RecordKind)
 *   [8]  payload byte count (must equal the remaining bytes exactly)
 *   [..] payload
 *
 * Deserialization is strict: every read is bounds-checked, lengths are
 * validated against the target Context (degree, level range, digit count)
 * BEFORE any allocation sized from untrusted input, and RNS residues are
 * range-checked against their moduli. Malformed bytes always produce an
 * orion::Error with a descriptive message, never UB or a partial object.
 */

#include <span>
#include <vector>

#include "src/ckks/ciphertext.h"
#include "src/ckks/context.h"
#include "src/ckks/keys.h"
#include "src/ckks/poly.h"

namespace orion::ckks::serial {

using Bytes = std::vector<u8>;

// v2: params carry secret_weight; key-switching keys may be level-pruned.
// v3: key-switching keys may be seed-compressed — a seeded key travels as
//     {a_seed, b digits} and the decoder re-expands the uniform a digits
//     via expand_kswitch_a, roughly halving key bundle bytes. Decoders
//     accept v2 records unchanged (explicit a digits, no seed flag).
// v4: serve Requests carry a batch_count (slot-batched inference: one
//     program execution covers batch_count samples packed across lanes).
//     v2/v3 Requests decode with batch_count = 1.
inline constexpr u8 kWireVersion = 4;
inline constexpr u8 kMinWireVersion = 2;
inline constexpr u8 kMagic[4] = {'O', 'R', 'N', '1'};

/** Top-level record discriminator (also used by the serve wire layer). */
enum class RecordKind : u8 {
    kParams = 1,
    kPoly = 2,
    kPlaintext = 3,
    kCiphertext = 4,
    kPublicKey = 5,
    kKswitchKey = 6,
    kGaloisKeys = 7,
    // Serve-layer messages (src/serve) share the framing.
    kKeyBundle = 16,
    kRequest = 17,
    kResponse = 18,
};

/** Appends little-endian primitives to a growing byte buffer. */
class ByteWriter {
  public:
    void put_u8(u8 v) { buf_.push_back(v); }
    void put_u32(u32 v);
    void put_u64(u64 v);
    void put_f64(double v);
    void put_raw(const void* data, std::size_t bytes);

    std::size_t size() const { return buf_.size(); }
    const Bytes& buffer() const { return buf_; }
    Bytes take() { return std::move(buf_); }

  private:
    Bytes buf_;
};

/**
 * Pull interface over record bytes that are NOT resident in memory (e.g. a
 * DiskStore record). A ByteReader over a ByteSource streams payload chunks
 * straight into their destination buffers (RnsPoly limbs), so decoding a
 * multi-gigabyte key set never holds the raw record alongside the decoded
 * keys — the cold-load path stays at ~1x the key bytes instead of 2x.
 */
class ByteSource {
  public:
    virtual ~ByteSource() = default;
    /** Copies `bytes` starting at `offset` into dst (bounds pre-checked). */
    virtual void read_at(u64 offset, void* dst, std::size_t bytes) = 0;
    /** Total byte count of the record. */
    virtual u64 size() const = 0;
};

/** Bounds-checked reads over a byte span (or a streaming ByteSource);
 *  throws orion::Error on overrun. */
class ByteReader {
  public:
    /**
     * `version` is the wire version the payload was written at (stamped
     * by open_record from the record frame); nested decoders branch on it
     * for backward-compatible layouts.
     */
    explicit ByteReader(std::span<const u8> data, u8 version = kWireVersion)
        : data_(data), size_(data.size()), version_(version)
    {
    }

    /** Streaming reader over src, starting at byte `start` of the record. */
    ByteReader(ByteSource& src, std::size_t start, u8 version)
        : src_(&src), pos_(start),
          size_(static_cast<std::size_t>(src.size())), version_(version)
    {
    }

    u8 version() const { return version_; }

    u8 read_u8();
    u32 read_u32();
    u64 read_u64();
    double read_f64();
    void read_raw(void* dst, std::size_t bytes);

    /**
     * Reads a u64 element count and validates that `count * elem_bytes`
     * does not exceed the remaining payload, so a hostile length prefix
     * cannot trigger an oversized allocation.
     */
    u64 read_count(std::size_t elem_bytes, const char* what);

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }
    /** Fails unless every payload byte was consumed. */
    void expect_done(const char* what) const;

  private:
    std::span<const u8> data_;
    ByteSource* src_ = nullptr;
    std::size_t pos_ = 0;
    std::size_t size_ = 0;
    u8 version_ = kWireVersion;
};

// ---- record framing (shared with the serve layer) ----

/**
 * Wraps a finished payload in the magic/version/kind/length frame.
 * `version` defaults to the current writer version; passing an older
 * supported version is how tests (and migration tooling) produce
 * backward-compatibility fixtures — the payload must of course have been
 * written in that version's layout.
 */
Bytes finish_record(RecordKind kind, ByteWriter payload,
                    u8 version = kWireVersion);
/**
 * Validates the frame (magic, supported version, kind, exact payload
 * length) and returns a reader positioned at the payload, carrying the
 * record's version for nested decoders.
 */
ByteReader open_record(std::span<const u8> bytes, RecordKind expected);
/** Streaming open_record: validates the frame from the source's head and
 *  returns a reader positioned at the payload that pulls on demand. */
ByteReader open_record(ByteSource& src, RecordKind expected);
/** The kind of a framed record (validates magic/version/length only). */
RecordKind peek_kind(std::span<const u8> bytes);

// ---- nested payload building blocks ----

void write_params(ByteWriter& w, const CkksParams& p);
CkksParams read_params(ByteReader& r);

void write_poly(ByteWriter& w, const RnsPoly& p);
RnsPoly read_poly(ByteReader& r, const Context& ctx);

void write_plaintext(ByteWriter& w, const Plaintext& pt);
Plaintext read_plaintext(ByteReader& r, const Context& ctx);

void write_ciphertext(ByteWriter& w, const Ciphertext& ct);
Ciphertext read_ciphertext(ByteReader& r, const Context& ctx);

void write_public_key(ByteWriter& w, const PublicKey& pk);
PublicKey read_public_key(ByteReader& r, const Context& ctx);

/**
 * v3 layout: digit count, a seed flag byte, then — seeded — the a seed,
 * the key level, and only the b digits; or — explicit — interleaved
 * (b, a) digit pairs as in v2. `version` = 2 forces the legacy explicit
 * layout (the record frame must then also be finished at version 2).
 */
void write_kswitch_key(ByteWriter& w, const KswitchKey& k,
                       u8 version = kWireVersion);
/** Decodes either layout (branching on r.version()); seeded keys are
 *  re-expanded to the full (b, a) pair via expand_kswitch_a. */
KswitchKey read_kswitch_key(ByteReader& r, const Context& ctx);

void write_galois_keys(ByteWriter& w, const GaloisKeys& g,
                       u8 version = kWireVersion);
GaloisKeys read_galois_keys(ByteReader& r, const Context& ctx);

// ---- top-level records ----

Bytes serialize(const CkksParams& p);
CkksParams deserialize_params(std::span<const u8> bytes);

Bytes serialize(const RnsPoly& p);
RnsPoly deserialize_poly(std::span<const u8> bytes, const Context& ctx);

Bytes serialize(const Plaintext& pt);
Plaintext deserialize_plaintext(std::span<const u8> bytes, const Context& ctx);

Bytes serialize(const Ciphertext& ct);
Ciphertext deserialize_ciphertext(std::span<const u8> bytes,
                                  const Context& ctx);

Bytes serialize(const PublicKey& pk);
PublicKey deserialize_public_key(std::span<const u8> bytes,
                                 const Context& ctx);

Bytes serialize(const KswitchKey& k);
KswitchKey deserialize_kswitch_key(std::span<const u8> bytes,
                                   const Context& ctx);
/** Streaming variant: limbs are pulled straight into the key's polys. */
KswitchKey deserialize_kswitch_key(ByteSource& src, const Context& ctx);

Bytes serialize(const GaloisKeys& g);
GaloisKeys deserialize_galois_keys(std::span<const u8> bytes,
                                   const Context& ctx);
/** Streaming variant: limbs are pulled straight into the keys' polys. */
GaloisKeys deserialize_galois_keys(ByteSource& src, const Context& ctx);

/**
 * True when two parameter sets derive the same moduli chain (and hence
 * compatible Contexts). The RNG seed is excluded: it only affects key and
 * encryption randomness, not the ring.
 */
bool params_compatible(const CkksParams& a, const CkksParams& b);

}  // namespace orion::ckks::serial

#endif  // ORION_SRC_CKKS_SERIAL_H_
