#include "src/ckks/ntt.h"

#include "src/ckks/primes.h"

namespace orion::ckks {

NttTables::NttTables(u64 n, const Modulus& q) : n_(n), q_(q)
{
    ORION_CHECK(is_power_of_two(n), "NTT size must be a power of two");
    log_n_ = log2_exact(n);
    const u64 psi = find_primitive_root(n, q);
    const u64 psi_inv = inv_mod(psi, q);

    roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_.resize(n);
    inv_roots_shoup_.resize(n);

    u64 power = 1;
    u64 inv_power = 1;
    for (u64 i = 0; i < n; ++i) {
        const u32 rev = reverse_bits(static_cast<u32>(i), log_n_);
        roots_[rev] = power;
        roots_shoup_[rev] = shoup_precompute(power, q);
        inv_roots_[rev] = inv_power;
        inv_roots_shoup_[rev] = shoup_precompute(inv_power, q);
        power = mul_mod(power, psi, q);
        inv_power = mul_mod(inv_power, psi_inv, q);
    }
    n_inv_ = inv_mod(n, q);
    n_inv_shoup_ = shoup_precompute(n_inv_, q);
    if (n >= 2) {
        inv_root_last_scaled_ = mul_mod(inv_roots_[1], n_inv_, q);
        inv_root_last_scaled_shoup_ = shoup_precompute(inv_root_last_scaled_, q);
    }
}

void
NttTables::forward(u64* a) const
{
    // Cooley-Tukey, decimation in time, with merged psi twiddles. After the
    // pass with span t, block b holds the residues mod (X^t - roots_[m+b]).
    //
    // Harvey lazy butterflies: every stage takes inputs in [0, 4q) and
    // produces outputs in [0, 4q) — the top input is pre-reduced to
    // [0, 2q), the Shoup product of the bottom input lands in [0, 2q),
    // and their lazy sum/difference stays below 4q. One vector
    // normalization pass at the end restores canonical [0, q) residues,
    // bit-identical to reducing inside every butterfly.
    const u64 two_q = 2 * q_.value();
    u64 t = n_;
    for (u64 m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (u64 i = 0; i < m; ++i) {
            const u64 w = roots_[m + i];
            const u64 ws = roots_shoup_[m + i];
            u64* x = a + 2 * i * t;
            u64* y = x + t;
            for (u64 j = 0; j < t; ++j) {
                u64 u = x[j];
                if (u >= two_q) u -= two_q;  // [0, 2q)
                const u64 v = mul_mod_shoup_lazy(y[j], w, ws, q_);  // [0, 2q)
                x[j] = u + v;                // [0, 4q)
                y[j] = u + two_q - v;        // [0, 4q)
            }
        }
    }
    normalize_lazy(a, n_, q_);
}

void
NttTables::inverse(u64* a) const
{
    // Gentleman-Sande, decimation in frequency, inverse twiddles.
    //
    // Lazy variant: stage inputs and outputs stay in [0, 2q) (the sum is
    // conditionally reduced from [0, 4q), the difference goes through a
    // lazy Shoup product). The final stage (m == 1) folds the 1/N scaling
    // into its twiddles — n_inv on the sum side, inv_roots_[1] * n_inv on
    // the difference side — replacing the separate scaling pass, and the
    // closing normalization is a single conditional subtraction.
    const u64 two_q = 2 * q_.value();
    u64 t = 1;
    for (u64 m = n_ >> 1; m > 1; m >>= 1) {
        for (u64 i = 0; i < m; ++i) {
            const u64 w = inv_roots_[m + i];
            const u64 ws = inv_roots_shoup_[m + i];
            u64* x = a + 2 * i * t;
            u64* y = x + t;
            for (u64 j = 0; j < t; ++j) {
                const u64 u = x[j];
                const u64 v = y[j];
                u64 s = u + v;               // [0, 4q)
                if (s >= two_q) s -= two_q;  // [0, 2q)
                x[j] = s;
                y[j] = mul_mod_shoup_lazy(u + two_q - v, w, ws, q_);
            }
        }
        t <<= 1;
    }
    if (n_ >= 2) {
        // Last stage (m == 1, span t == n/2) with the fused 1/N scaling.
        u64* x = a;
        u64* y = a + t;
        for (u64 j = 0; j < t; ++j) {
            const u64 u = x[j];
            const u64 v = y[j];
            x[j] = mul_mod_shoup_lazy(u + v, n_inv_, n_inv_shoup_, q_);
            y[j] = mul_mod_shoup_lazy(u + two_q - v, inv_root_last_scaled_,
                                      inv_root_last_scaled_shoup_, q_);
        }
    }
    for (u64 j = 0; j < n_; ++j) {
        if (a[j] >= q_.value()) a[j] -= q_.value();
    }
}

}  // namespace orion::ckks
