#include "src/ckks/ntt.h"

#include "src/ckks/primes.h"

namespace orion::ckks {

NttTables::NttTables(u64 n, const Modulus& q) : n_(n), q_(q)
{
    ORION_CHECK(is_power_of_two(n), "NTT size must be a power of two");
    log_n_ = log2_exact(n);
    const u64 psi = find_primitive_root(n, q);
    const u64 psi_inv = inv_mod(psi, q);

    roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_.resize(n);
    inv_roots_shoup_.resize(n);

    u64 power = 1;
    u64 inv_power = 1;
    for (u64 i = 0; i < n; ++i) {
        const u32 rev = reverse_bits(static_cast<u32>(i), log_n_);
        roots_[rev] = power;
        roots_shoup_[rev] = shoup_precompute(power, q);
        inv_roots_[rev] = inv_power;
        inv_roots_shoup_[rev] = shoup_precompute(inv_power, q);
        power = mul_mod(power, psi, q);
        inv_power = mul_mod(inv_power, psi_inv, q);
    }
    n_inv_ = inv_mod(n, q);
    n_inv_shoup_ = shoup_precompute(n_inv_, q);
}

void
NttTables::forward(u64* a) const
{
    // Cooley-Tukey, decimation in time, with merged psi twiddles. After the
    // pass with span t, block b holds the residues mod (X^t - roots_[m+b]).
    u64 t = n_;
    for (u64 m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (u64 i = 0; i < m; ++i) {
            const u64 w = roots_[m + i];
            const u64 ws = roots_shoup_[m + i];
            u64* x = a + 2 * i * t;
            u64* y = x + t;
            for (u64 j = 0; j < t; ++j) {
                const u64 u = x[j];
                const u64 v = mul_mod_shoup(y[j], w, ws, q_);
                x[j] = add_mod(u, v, q_);
                y[j] = sub_mod(u, v, q_);
            }
        }
    }
}

void
NttTables::inverse(u64* a) const
{
    // Gentleman-Sande, decimation in frequency, inverse twiddles.
    u64 t = 1;
    for (u64 m = n_ >> 1; m >= 1; m >>= 1) {
        for (u64 i = 0; i < m; ++i) {
            const u64 w = inv_roots_[m + i];
            const u64 ws = inv_roots_shoup_[m + i];
            u64* x = a + 2 * i * t;
            u64* y = x + t;
            for (u64 j = 0; j < t; ++j) {
                const u64 u = x[j];
                const u64 v = y[j];
                x[j] = add_mod(u, v, q_);
                y[j] = mul_mod_shoup(sub_mod(u, v, q_), w, ws, q_);
            }
        }
        t <<= 1;
    }
    for (u64 j = 0; j < n_; ++j) {
        a[j] = mul_mod_shoup(a[j], n_inv_, n_inv_shoup_, q_);
    }
}

}  // namespace orion::ckks
