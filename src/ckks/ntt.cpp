#include "src/ckks/ntt.h"

#include "src/ckks/primes.h"

namespace orion::ckks {

NttTables::NttTables(u64 n, const Modulus& q) : n_(n), q_(q)
{
    ORION_CHECK(is_power_of_two(n), "NTT size must be a power of two");
    log_n_ = log2_exact(n);
    const u64 psi = find_primitive_root(n, q);
    const u64 psi_inv = inv_mod(psi, q);

    roots_.resize(n);
    roots_shoup_.resize(n);
    inv_roots_.resize(n);
    inv_roots_shoup_.resize(n);

    u64 power = 1;
    u64 inv_power = 1;
    for (u64 i = 0; i < n; ++i) {
        const u32 rev = reverse_bits(static_cast<u32>(i), log_n_);
        roots_[rev] = power;
        roots_shoup_[rev] = shoup_precompute(power, q);
        inv_roots_[rev] = inv_power;
        inv_roots_shoup_[rev] = shoup_precompute(inv_power, q);
        power = mul_mod(power, psi, q);
        inv_power = mul_mod(inv_power, psi_inv, q);
    }
    n_inv_ = inv_mod(n, q);
    n_inv_shoup_ = shoup_precompute(n_inv_, q);
    if (n >= 2) {
        inv_root_last_scaled_ = mul_mod(inv_roots_[1], n_inv_, q);
        inv_root_last_scaled_shoup_ = shoup_precompute(inv_root_last_scaled_, q);
    }
}

void
NttTables::forward(u64* a) const
{
    // Butterfly loops live in kernels.cpp (scalar reference + AVX2/AVX-512
    // variants, all bit-identical); dispatch picks the ISA once at startup.
    kernels::active().ntt_forward(view(), a);
}

void
NttTables::inverse(u64* a) const
{
    kernels::active().ntt_inverse(view(), a);
}

}  // namespace orion::ckks
