#ifndef ORION_SRC_CKKS_KEYS_H_
#define ORION_SRC_CKKS_KEYS_H_

/**
 * @file
 * CKKS key material: secret, public, relinearization, and Galois keys,
 * plus the deterministic KeyGenerator.
 *
 * Key-switching keys follow the hybrid (digit-decomposition) construction:
 * for each digit i of the moduli chain, the key holds an encryption of
 * W_i * s_old under s_new over the extended modulus Q_L * P, where W_i is
 * the RNS gadget that equals P on the digit's own limbs and 0 elsewhere.
 */

#include <map>
#include <span>
#include <vector>

#include "src/ckks/poly.h"
#include "src/ckks/sampler.h"

namespace orion::ckks {

/** The RLWE secret s (ternary), stored NTT-form over the full basis Q*P. */
struct SecretKey {
    RnsPoly s;  ///< level L, extended, NTT form

    /** The secret restricted to coefficient limbs q_0..q_level. */
    RnsPoly at_level(int level) const;
};

/** Encryption key (b, a) with b + a*s = e over Q_L. */
struct PublicKey {
    RnsPoly b;
    RnsPoly a;
};

/**
 * One key-switching key (digit-decomposed). Keys may be *level-pruned*:
 * generated over q_0..q_level plus the special primes rather than the
 * full chain, when every use of the key happens at or below `level`.
 * Pruning is what keeps per-session Galois bundles small — most rotation
 * keys of a compiled program are only ever used at the program's (low)
 * execution levels, while bootstrap-circuit keys span almost the whole
 * chain.
 *
 * Seed compression: the a-components are uniform, so KeyGenerator derives
 * them from a per-key PRNG seed (expand_kswitch_a). A seeded key travels
 * as {seed, b-digits} on the wire and on disk (serial format v3) —
 * roughly half the bytes of the explicit form — and is re-expanded into
 * the full (b, a) pair on decode. `a` is always materialized in memory;
 * `seeded`/`a_seed` only record that it CAN be regenerated.
 */
struct KswitchKey {
    std::vector<RnsPoly> b;  ///< per digit: -a_i*s_new + e_i + W_i*s_old
    std::vector<RnsPoly> a;  ///< per digit: uniform
    u64 a_seed = 0;          ///< PRNG seed the a digits expand from
    bool seeded = false;     ///< true when expand_kswitch_a(a_seed) == a

    int num_digits() const { return static_cast<int>(b.size()); }
    bool valid() const { return !b.empty(); }
    /** Highest coefficient level this key can switch at. */
    int level() const { return b.empty() ? -1 : b.front().level(); }
    /** Resident bytes of the expanded key (both components). */
    std::size_t byte_size() const;
};

/**
 * Deterministically expands the uniform a-component of a key-switching
 * key over coefficient limbs q_0..q_level plus the special primes: one
 * extended NTT-form polynomial per digit, drawn from a Sampler seeded
 * with `seed`. A pure function of (ctx basis, seed, level) — KeyGenerator
 * and the serial v3 decoder both call it, which is what lets the wire
 * format carry the seed instead of half the key's residues.
 */
std::vector<RnsPoly> expand_kswitch_a(const Context& ctx, u64 seed,
                                      int level);

/** Rotation (and conjugation) keys indexed by Galois element. */
struct GaloisKeys {
    std::map<u64, KswitchKey> keys;

    bool
    has(u64 elt) const
    {
        return keys.count(elt) != 0;
    }
    const KswitchKey&
    at(u64 elt) const
    {
        auto it = keys.find(elt);
        ORION_CHECK(it != keys.end(), "missing Galois key for element " << elt);
        return it->second;
    }
    /** Approximate memory footprint in bytes (for Table-4-style reporting). */
    std::size_t byte_size() const;
};

/**
 * One rotation-key requirement: the step and the highest level at which
 * the compiled program (or bootstrap circuit) rotates by it. Keygen
 * prunes each key to that level; -1 means "full chain".
 */
struct GaloisKeyRequest {
    int step = 0;
    int level = -1;
};

/** Generates all key material from a seeded sampler. */
class KeyGenerator {
  public:
    explicit KeyGenerator(const Context& ctx, u64 seed = 7);

    const SecretKey& secret_key() const { return sk_; }

    PublicKey make_public_key();
    /** Relinearization key: switches s^2 -> s (always full chain). */
    KswitchKey make_relin_key();
    /** Galois key for X -> X^elt, pruned to `level` (-1 = full chain). */
    KswitchKey make_galois_key(u64 elt, int level = -1);
    /** Galois keys for a set of rotation steps (plus conjugation if asked). */
    GaloisKeys make_galois_keys(std::span<const int> steps,
                                bool include_conjugation = false);
    /**
     * Level-pruned bundle: one key per distinct Galois element, each at
     * the highest level requested for it. Conjugation (when asked) is
     * pruned to conjugation_level.
     */
    GaloisKeys make_galois_keys(std::span<const GaloisKeyRequest> requests,
                                bool include_conjugation = false,
                                int conjugation_level = -1);
    /** Adds any missing step keys to an existing bundle. */
    void add_galois_keys(GaloisKeys& bundle, std::span<const int> steps);

  private:
    /**
     * KSK encrypting W_i * s_old under the main secret, covering
     * coefficient limbs q_0..q_level (-1 = full chain). The a digits are
     * expanded from a per-key seed drawn here, so the returned key is
     * seed-compressible (KswitchKey::seeded).
     */
    KswitchKey make_kswitch_key(const RnsPoly& s_old, int level = -1);

    /** Small (Gaussian) polynomial over q_0..q_level + specials, NTT. */
    RnsPoly sample_error_extended(int level);

    const Context* ctx_;
    Sampler sampler_;
    SecretKey sk_;
    /**
     * Private counter behind the published a_seeds: each key-switch key
     * gets splitmix64(state++), a chain domain-separated from (and never
     * exposing outputs of) the mt19937_64 stream that samples the secret
     * and the RLWE errors.
     */
    u64 kswitch_seed_state_ = 0;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_KEYS_H_
