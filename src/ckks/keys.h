#ifndef ORION_SRC_CKKS_KEYS_H_
#define ORION_SRC_CKKS_KEYS_H_

/**
 * @file
 * CKKS key material: secret, public, relinearization, and Galois keys,
 * plus the deterministic KeyGenerator.
 *
 * Key-switching keys follow the hybrid (digit-decomposition) construction:
 * for each digit i of the moduli chain, the key holds an encryption of
 * W_i * s_old under s_new over the extended modulus Q_L * P, where W_i is
 * the RNS gadget that equals P on the digit's own limbs and 0 elsewhere.
 */

#include <map>
#include <span>
#include <vector>

#include "src/ckks/poly.h"
#include "src/ckks/sampler.h"

namespace orion::ckks {

/** The RLWE secret s (ternary), stored NTT-form over the full basis Q*P. */
struct SecretKey {
    RnsPoly s;  ///< level L, extended, NTT form

    /** The secret restricted to coefficient limbs q_0..q_level. */
    RnsPoly at_level(int level) const;
};

/** Encryption key (b, a) with b + a*s = e over Q_L. */
struct PublicKey {
    RnsPoly b;
    RnsPoly a;
};

/** One key-switching key (digit-decomposed). */
struct KswitchKey {
    std::vector<RnsPoly> b;  ///< per digit: -a_i*s_new + e_i + W_i*s_old
    std::vector<RnsPoly> a;  ///< per digit: uniform

    int num_digits() const { return static_cast<int>(b.size()); }
    bool valid() const { return !b.empty(); }
};

/** Rotation (and conjugation) keys indexed by Galois element. */
struct GaloisKeys {
    std::map<u64, KswitchKey> keys;

    bool
    has(u64 elt) const
    {
        return keys.count(elt) != 0;
    }
    const KswitchKey&
    at(u64 elt) const
    {
        auto it = keys.find(elt);
        ORION_CHECK(it != keys.end(), "missing Galois key for element " << elt);
        return it->second;
    }
    /** Approximate memory footprint in bytes (for Table-4-style reporting). */
    std::size_t byte_size() const;
};

/** Generates all key material from a seeded sampler. */
class KeyGenerator {
  public:
    explicit KeyGenerator(const Context& ctx, u64 seed = 7);

    const SecretKey& secret_key() const { return sk_; }

    PublicKey make_public_key();
    /** Relinearization key: switches s^2 -> s. */
    KswitchKey make_relin_key();
    /** Galois key for the automorphism X -> X^elt. */
    KswitchKey make_galois_key(u64 elt);
    /** Galois keys for a set of rotation steps (plus conjugation if asked). */
    GaloisKeys make_galois_keys(std::span<const int> steps,
                                bool include_conjugation = false);
    /** Adds any missing step keys to an existing bundle. */
    void add_galois_keys(GaloisKeys& bundle, std::span<const int> steps);

  private:
    /** KSK encrypting W_i * s_old under the main secret, for all digits. */
    KswitchKey make_kswitch_key(const RnsPoly& s_old);

    /** Uniform polynomial over the full extended basis, NTT form. */
    RnsPoly sample_uniform_extended();
    /** Small (Gaussian) polynomial over the full extended basis, NTT form. */
    RnsPoly sample_error_extended();

    const Context* ctx_;
    Sampler sampler_;
    SecretKey sk_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_KEYS_H_
