#ifndef ORION_SRC_CKKS_CKKS_H_
#define ORION_SRC_CKKS_CKKS_H_

/**
 * @file
 * Umbrella header for the RNS-CKKS substrate.
 */

#include "src/ckks/bootstrap.h"
#include "src/ckks/bootstrap_circuit.h"
#include "src/ckks/ciphertext.h"
#include "src/ckks/context.h"
#include "src/ckks/encoder.h"
#include "src/ckks/encryptor.h"
#include "src/ckks/evaluator.h"
#include "src/ckks/keys.h"
#include "src/ckks/keyswitch.h"
#include "src/ckks/modarith.h"
#include "src/ckks/ntt.h"
#include "src/ckks/poly.h"
#include "src/ckks/primes.h"
#include "src/ckks/sampler.h"

#endif  // ORION_SRC_CKKS_CKKS_H_
