#include "src/ckks/keyswitch.h"

#include <algorithm>

#include "src/core/thread_pool.h"

namespace orion::ckks {

std::vector<RnsPoly>
KeySwitcher::decompose(const RnsPoly& c) const
{
    ORION_CHECK(!c.extended(), "decompose expects coefficient limbs only");
    const Context& ctx = *ctx_;
    const int level = c.level();
    const int alpha = ctx.digit_size();
    const int digits = ctx.num_digits(level);
    const u64 n = ctx.degree();

    // Work from the coefficient representation of c.
    RnsPoly c_coeff = c;
    if (c_coeff.is_ntt()) c_coeff.to_coeff();

    std::vector<RnsPoly> out;
    out.reserve(static_cast<std::size_t>(digits));
    for (int d = 0; d < digits; ++d) {
        const int lo = d * alpha;
        const int hi = std::min((d + 1) * alpha - 1, level);
        const int digit_len = hi - lo + 1;

        RnsPoly ext(ctx, level, /*extended=*/true, /*ntt_form=*/false);

        // lambda_j = c_j * (D/q_j)^{-1} mod q_j for each digit limb j,
        // where D is the product of the digit's primes.
        std::vector<std::vector<u64>> lambdas(
            static_cast<std::size_t>(digit_len));
        for (int j = lo; j <= hi; ++j) {
            const Modulus& qj = ctx.q(j);
            u64 hat_inv = 1;  // (D/q_j)^{-1} mod q_j
            for (int j2 = lo; j2 <= hi; ++j2) {
                if (j2 == j) continue;
                hat_inv = mul_mod(hat_inv, ctx.inv_mod_global(j2, j), qj);
            }
            const u64 hat_inv_shoup = shoup_precompute(hat_inv, qj);
            std::vector<u64>& lam =
                lambdas[static_cast<std::size_t>(j - lo)];
            lam.resize(n);
            const u64* src = c_coeff.limb(j);
            for (u64 x = 0; x < n; ++x) {
                lam[x] = mul_mod_shoup(src[x], hat_inv, hat_inv_shoup, qj);
            }
        }

        // Fill every target limb: digit limbs copy c directly; other limbs
        // get the fast base conversion sum_j lambda_j * (D/q_j mod m_t).
        // Target limbs are independent, so this hoistable decomposition
        // parallelizes cleanly across the RNS base.
        core::parallel_for(0, ext.num_limbs(), [&](i64 ti) {
            const int t = static_cast<int>(ti);
            const int tg = ext.limb_global_index(t);
            u64* dst = ext.limb(t);
            if (tg >= lo && tg <= hi) {
                std::copy(c_coeff.limb(tg), c_coeff.limb(tg) + n, dst);
                return;
            }
            const Modulus& mt = ext.limb_modulus(t);
            // hat_mod_t[j] = (D/q_j) mod m_t.
            std::vector<u64> hat_mod_t(static_cast<std::size_t>(digit_len));
            for (int j = lo; j <= hi; ++j) {
                u64 h = 1;
                for (int j2 = lo; j2 <= hi; ++j2) {
                    if (j2 == j) continue;
                    h = mul_mod(h, mt.reduce(ctx.q(j2).value()), mt);
                }
                hat_mod_t[static_cast<std::size_t>(j - lo)] = h;
            }
            for (u64 x = 0; x < n; ++x) {
                u128 acc = 0;
                for (int j = 0; j < digit_len; ++j) {
                    acc += u128(lambdas[static_cast<std::size_t>(j)][x]) *
                           hat_mod_t[static_cast<std::size_t>(j)];
                }
                dst[x] = mt.reduce_128(acc);
            }
        });
        ext.to_ntt();
        out.push_back(std::move(ext));
    }
    return out;
}

void
KeySwitcher::inner_product(const std::vector<RnsPoly>& digits,
                           const KswitchKey& ksk, RnsPoly* acc0,
                           RnsPoly* acc1) const
{
    ORION_CHECK(static_cast<int>(digits.size()) <= ksk.num_digits(),
                "key-switching key has too few digits");
    const Context& ctx = *ctx_;
    const u64 n = ctx.degree();
    ORION_ASSERT(acc0->extended() && acc1->extended());

    for (std::size_t d = 0; d < digits.size(); ++d) {
        ORION_ASSERT(digits[d].is_ntt() && ksk.b[d].is_ntt() &&
                     ksk.a[d].is_ntt());
    }
    // Limb-major loop order so every (t, j) lane is owned by one task:
    // the digit sum runs serially per limb, keeping results independent of
    // the thread count. The key lives at max level; pick only the limbs
    // present in the accumulator (coefficient limbs 0..level plus the
    // special limbs).
    core::parallel_for(0, acc0->num_limbs(), [&](i64 ti) {
        const int t = static_cast<int>(ti);
        const int tg = acc0->limb_global_index(t);
        // Global index within the full-level key polynomial: coefficient
        // limbs match 1:1; special limbs sit after q_0..q_L.
        const int key_t = tg;
        const Modulus& q = acc0->limb_modulus(t);
        u64* o0 = acc0->limb(t);
        u64* o1 = acc1->limb(t);
        for (std::size_t d = 0; d < digits.size(); ++d) {
            const u64* x = digits[d].limb(t);
            const u64* b = ksk.b[d].limb(key_t);
            const u64* a = ksk.a[d].limb(key_t);
            for (u64 j = 0; j < n; ++j) {
                o0[j] = add_mod(o0[j], mul_mod(x[j], b[j], q), q);
                o1[j] = add_mod(o1[j], mul_mod(x[j], a[j], q), q);
            }
        }
    });
    ctx.counters().keyswitch += 1;
}

void
KeySwitcher::apply(const RnsPoly& c, const KswitchKey& ksk, RnsPoly* out0,
                   RnsPoly* out1) const
{
    const std::vector<RnsPoly> digits = decompose(c);
    RnsPoly acc0(*ctx_, c.level(), /*extended=*/true, /*ntt_form=*/true);
    RnsPoly acc1(*ctx_, c.level(), /*extended=*/true, /*ntt_form=*/true);
    inner_product(digits, ksk, &acc0, &acc1);
    acc0.mod_down_special();
    acc1.mod_down_special();
    *out0 = std::move(acc0);
    *out1 = std::move(acc1);
}

}  // namespace orion::ckks
