#include "src/ckks/keyswitch.h"

#include <algorithm>

#include "src/ckks/kernels.h"
#include "src/core/arena.h"
#include "src/core/telemetry.h"
#include "src/core/thread_pool.h"

namespace orion::ckks {

std::vector<RnsPoly>
KeySwitcher::decompose(const RnsPoly& c) const
{
    TELEM_SPAN("keyswitch.decompose");
    ORION_CHECK(!c.extended(), "decompose expects coefficient limbs only");
    const Context& ctx = *ctx_;
    const int level = c.level();
    const int alpha = ctx.digit_size();
    const int digits = ctx.num_digits(level);
    const u64 n = ctx.degree();

    // Work from the coefficient representation of c.
    RnsPoly c_coeff = c;
    if (c_coeff.is_ntt()) c_coeff.to_coeff();
    ctx.counters().decompose += 1;

    std::vector<RnsPoly> out;
    out.reserve(static_cast<std::size_t>(digits));
    for (int d = 0; d < digits; ++d) {
        const int lo = d * alpha;
        const int hi = std::min((d + 1) * alpha - 1, level);
        const int digit_len = hi - lo + 1;

        RnsPoly ext(ctx, level, /*extended=*/true, /*ntt_form=*/false);

        // lambda_j = c_j * (D/q_j)^{-1} mod q_j for each digit limb j,
        // where D is the product of the digit's primes. The (D/q_j)^{-1}
        // and (D/q_j mod m_t) constants live in precomputed Context tables
        // (digit_consts), so this stage is pure Shoup multiplications.
        const Context::DigitConsts& dc = ctx.digit_consts(d, digit_len);
        // One contiguous arena block for all digit_len lambda rows (row j
        // at lambda_block[j * n]) instead of digit_len vector allocations.
        core::ScratchVec<u64> lambda_block(static_cast<std::size_t>(digit_len) *
                                           n);
        core::ScratchVec<const u64*> lam_ptrs(
            static_cast<std::size_t>(digit_len));
        for (int j = 0; j < digit_len; ++j) {
            lam_ptrs[static_cast<std::size_t>(j)] =
                lambda_block.data() + static_cast<std::size_t>(j) * n;
        }
        core::parallel_for(0, digit_len, [&](i64 ji) {
            const int j = lo + static_cast<int>(ji);
            const Modulus& qj = ctx.q(j);
            const u64 hat_inv = dc.hat_inv[static_cast<std::size_t>(ji)];
            const u64 hat_inv_shoup =
                dc.hat_inv_shoup[static_cast<std::size_t>(ji)];
            kernels::active().mul_scalar_shoup_n(
                lambda_block.data() + static_cast<std::size_t>(ji) * n,
                c_coeff.limb(j), n, hat_inv, hat_inv_shoup, qj);
        });

        // Fill every target limb: digit limbs copy c directly; other limbs
        // get the fast base conversion sum_j lambda_j * (D/q_j mod m_t).
        // Target limbs are independent, so this hoistable decomposition
        // parallelizes cleanly across the RNS base.
        core::parallel_for(0, ext.num_limbs(), [&](i64 ti) {
            const int t = static_cast<int>(ti);
            const int tg = ext.limb_global_index(t);
            u64* dst = ext.limb(t);
            if (tg >= lo && tg <= hi) {
                std::copy(c_coeff.limb(tg), c_coeff.limb(tg) + n, dst);
                return;
            }
            const Modulus& mt = ext.limb_modulus(t);
            const std::vector<u64>& hat_mod_t =
                dc.hat_mod[static_cast<std::size_t>(tg)];
            kernels::active().base_conv_acc(dst, lam_ptrs.data(),
                                            hat_mod_t.data(), digit_len, n,
                                            mt);
        });
        ext.to_ntt();
        out.push_back(std::move(ext));
    }
    return out;
}

void
KeySwitcher::inner_product(const std::vector<RnsPoly>& digits,
                           const KswitchKey& ksk, RnsPoly* acc0,
                           RnsPoly* acc1) const
{
    TELEM_SPAN("keyswitch.inner_product");
    const Context& ctx = *ctx_;
    const u64 n = ctx.degree();
    ORION_ASSERT(acc0->extended() && acc1->extended());
    // Keys may be level-pruned: they must cover at least the operand's
    // coefficient limbs (plus the specials, which every key carries).
    const int key_level = ksk.level();
    const int acc_level = acc0->level();
    ORION_CHECK(key_level >= acc_level,
                "key-switching key pruned to level "
                    << key_level << " cannot switch at level " << acc_level
                    << " (regenerate the key with a higher level)");
    ORION_CHECK(static_cast<int>(digits.size()) <= ksk.num_digits(),
                "key-switching key has too few digits");

    for (std::size_t d = 0; d < digits.size(); ++d) {
        ORION_ASSERT(digits[d].is_ntt() && ksk.b[d].is_ntt() &&
                     ksk.a[d].is_ntt());
    }
    // Limb-major loop order so every (t, j) lane is owned by one task:
    // the digit sum runs serially per limb, keeping results independent of
    // the thread count. The key lives at max level; pick only the limbs
    // present in the accumulator (coefficient limbs 0..level plus the
    // special limbs).
    //
    // Lazy reduction: the digit sum sum_d x_d * k_d accumulates per
    // coefficient in a u128 and pays ONE Barrett reduce_128 per output
    // instead of a mul_mod + add_mod per term. With q < 2^61 each product
    // is below 2^122, so chunks of up to 16 terms (plus the carried-in
    // partial sum, < q) stay below 2^127 — reduced between chunks to keep
    // deeper digit counts overflow-free. The result is the same residue
    // the eager loop produces, bit for bit.
    const std::size_t num_digits = digits.size();
    core::parallel_for(0, acc0->num_limbs(), [&](i64 ti) {
        const int t = static_cast<int>(ti);
        // Limb index within the (possibly level-pruned) key polynomial:
        // coefficient limbs match 1:1, special limbs sit right after the
        // key's own coefficient limbs q_0..q_key_level.
        const int key_t =
            t <= acc_level ? t : key_level + 1 + (t - acc_level - 1);
        const Modulus& q = acc0->limb_modulus(t);
        // Gather the per-digit limb pointers once.
        core::ScratchVec<const u64*> xs(num_digits), bs(num_digits),
            as(num_digits);
        for (std::size_t d = 0; d < num_digits; ++d) {
            xs[d] = digits[d].limb(t);
            bs[d] = ksk.b[d].limb(key_t);
            as[d] = ksk.a[d].limb(key_t);
        }
        kernels::active().ks_inner_product(acc0->limb(t), acc1->limb(t),
                                           xs.data(), bs.data(), as.data(),
                                           num_digits, n, q);
    });
    ctx.counters().keyswitch += 1;
}

void
KeySwitcher::apply(const RnsPoly& c, const KswitchKey& ksk, RnsPoly* out0,
                   RnsPoly* out1) const
{
    TELEM_SPAN("ckks.keyswitch");
    const std::vector<RnsPoly> digits = decompose(c);
    RnsPoly acc0(*ctx_, c.level(), /*extended=*/true, /*ntt_form=*/true);
    RnsPoly acc1(*ctx_, c.level(), /*extended=*/true, /*ntt_form=*/true);
    inner_product(digits, ksk, &acc0, &acc1);
    acc0.mod_down_special();
    acc1.mod_down_special();
    *out0 = std::move(acc0);
    *out1 = std::move(acc1);
}

}  // namespace orion::ckks
