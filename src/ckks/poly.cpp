#include "src/ckks/poly.h"

#include <algorithm>
#include <cstring>

#include "src/ckks/kernels.h"
#include "src/core/thread_pool.h"

namespace orion::ckks {

void
RnsPoly::count_acquire(core::ArenaAcquire how) const
{
    // Capacity reuse touches no allocator at all, so it counts as neither
    // an allocation nor a pool hit.
    if (how == core::ArenaAcquire::kReused) return;
    ctx_->counters().poly_alloc += 1;
    if (how == core::ArenaAcquire::kPool) {
        ctx_->counters().poly_arena_hit += 1;
    }
}

RnsPoly::RnsPoly(const Context& ctx, int level, bool extended, bool ntt_form)
    : ctx_(&ctx), level_(level), ntt_(ntt_form),
      special_limbs_(extended ? ctx.special_count() : 0)
{
    ORION_CHECK(level >= 0 && level <= ctx.max_level(),
                "level out of range: " << level);
    count_acquire(data_.acquire_zero(
        static_cast<std::size_t>(num_limbs()) * ctx.degree()));
}

RnsPoly::RnsPoly(const RnsPoly& o)
    : ctx_(o.ctx_), level_(o.level_), ntt_(o.ntt_),
      special_limbs_(o.special_limbs_)
{
    if (o.data_.empty()) return;  // invalid/default polys own no storage
    count_acquire(data_.copy_from(o.data_));
}

RnsPoly&
RnsPoly::operator=(const RnsPoly& o)
{
    if (this == &o) return *this;
    ctx_ = o.ctx_;
    level_ = o.level_;
    ntt_ = o.ntt_;
    special_limbs_ = o.special_limbs_;
    if (o.data_.empty()) {
        data_.release();
    } else {
        count_acquire(data_.copy_from(o.data_));
    }
    return *this;
}

void
RnsPoly::add_inplace(const RnsPoly& other)
{
    ORION_ASSERT(ctx_ == other.ctx_ && level_ == other.level_ &&
                 special_limbs_ == other.special_limbs_ &&
                 ntt_ == other.ntt_);
    const u64 n = degree();
    const kernels::KernelTable& k = kernels::active();
    for (int i = 0; i < num_limbs(); ++i) {
        k.add_mod_n(limb(i), other.limb(i), n, limb_modulus(i));
    }
}

void
RnsPoly::sub_inplace(const RnsPoly& other)
{
    ORION_ASSERT(ctx_ == other.ctx_ && level_ == other.level_ &&
                 special_limbs_ == other.special_limbs_ &&
                 ntt_ == other.ntt_);
    const u64 n = degree();
    const kernels::KernelTable& k = kernels::active();
    for (int i = 0; i < num_limbs(); ++i) {
        k.sub_mod_n(limb(i), other.limb(i), n, limb_modulus(i));
    }
}

void
RnsPoly::negate_inplace()
{
    const u64 n = degree();
    for (int i = 0; i < num_limbs(); ++i) {
        const Modulus& q = limb_modulus(i);
        u64* a = limb(i);
        for (u64 j = 0; j < n; ++j) a[j] = neg_mod(a[j], q);
    }
}

void
RnsPoly::mul_pointwise_inplace(const RnsPoly& other)
{
    ORION_ASSERT(ntt_ && other.ntt_);
    ORION_ASSERT(ctx_ == other.ctx_ && level_ == other.level_ &&
                 special_limbs_ == other.special_limbs_);
    const u64 n = degree();
    const kernels::KernelTable& k = kernels::active();
    for (int i = 0; i < num_limbs(); ++i) {
        k.mul_mod_n(limb(i), other.limb(i), n, limb_modulus(i));
    }
}

void
RnsPoly::add_product_inplace(const RnsPoly& b, const RnsPoly& c)
{
    ORION_ASSERT(ntt_ && b.ntt_ && c.ntt_);
    ORION_ASSERT(level_ == b.level_ && level_ == c.level_ &&
                 special_limbs_ == b.special_limbs_ &&
                 special_limbs_ == c.special_limbs_);
    const u64 n = degree();
    const kernels::KernelTable& k = kernels::active();
    for (int i = 0; i < num_limbs(); ++i) {
        k.add_product_n(limb(i), b.limb(i), c.limb(i), n, limb_modulus(i));
    }
}

void
RnsPoly::mul_scalar_inplace(const std::vector<u64>& scalar_per_limb)
{
    ORION_ASSERT(scalar_per_limb.size() >=
                 static_cast<std::size_t>(num_limbs()));
    const u64 n = degree();
    const kernels::KernelTable& k = kernels::active();
    for (int i = 0; i < num_limbs(); ++i) {
        const Modulus& q = limb_modulus(i);
        const u64 s = scalar_per_limb[static_cast<std::size_t>(i)];
        k.mul_scalar_shoup_n(limb(i), limb(i), n, s, shoup_precompute(s, q),
                             q);
    }
}

void
RnsPoly::mul_small_scalar_inplace(u64 scalar)
{
    std::vector<u64> per_limb(static_cast<std::size_t>(num_limbs()));
    for (int i = 0; i < num_limbs(); ++i) {
        per_limb[static_cast<std::size_t>(i)] =
            limb_modulus(i).reduce(scalar);
    }
    mul_scalar_inplace(per_limb);
}

void
RnsPoly::to_ntt()
{
    ORION_ASSERT(!ntt_);
    core::parallel_for(0, num_limbs(), [this](i64 i) {
        const int limb_idx = static_cast<int>(i);
        limb_tables(limb_idx).forward(limb(limb_idx));
    });
    ctx_->counters().ntt += static_cast<u64>(num_limbs());
    ntt_ = true;
}

void
RnsPoly::to_coeff()
{
    ORION_ASSERT(ntt_);
    core::parallel_for(0, num_limbs(), [this](i64 i) {
        const int limb_idx = static_cast<int>(i);
        limb_tables(limb_idx).inverse(limb(limb_idx));
    });
    ctx_->counters().ntt += static_cast<u64>(num_limbs());
    ntt_ = false;
}

std::vector<u32>
make_galois_ntt_permutation(const Context& ctx, u64 elt)
{
    // In NTT form, slot i stores the evaluation at psi^{2*rev(i)+1}. The
    // automorphism X -> X^elt maps the evaluation at root r to the
    // evaluation at r^elt, which is a pure permutation of the N points.
    const u64 n = ctx.degree();
    const int log_n = ctx.log_degree();
    const u64 m_mask = 2 * n - 1;
    std::vector<u32> perm(n);
    for (u64 i = 0; i < n; ++i) {
        const u64 rev = reverse_bits(static_cast<u32>(i), log_n);
        const u64 index_raw = (elt * (2 * rev + 1)) & m_mask;
        const u64 index =
            reverse_bits(static_cast<u32>((index_raw - 1) >> 1), log_n);
        perm[i] = static_cast<u32>(index);
    }
    return perm;
}

RnsPoly
RnsPoly::galois_with_permutation(const std::vector<u32>& perm) const
{
    ORION_ASSERT(ntt_);
    const u64 n = degree();
    RnsPoly out(*ctx_, level_, extended(), /*ntt_form=*/true);
    core::parallel_for(0, num_limbs(), [&](i64 i) {
        const u64* src = limb(static_cast<int>(i));
        u64* dst = out.limb(static_cast<int>(i));
        for (u64 j = 0; j < n; ++j) dst[j] = src[perm[j]];
    });
    return out;
}

RnsPoly
RnsPoly::galois(u64 elt) const
{
    const u64 n = degree();
    if (ntt_) {
        return galois_with_permutation(ctx_->galois_permutation(elt));
    }
    RnsPoly out(*ctx_, level_, extended(), /*ntt_form=*/false);
    const u64 m_mask = 2 * n - 1;
    for (int i = 0; i < num_limbs(); ++i) {
        const Modulus& q = limb_modulus(i);
        const u64* src = limb(i);
        u64* dst = out.limb(i);
        for (u64 j = 0; j < n; ++j) {
            // X^j -> X^{j*elt} = (+/-) X^{j*elt mod N}.
            const u64 raw = (j * elt) & m_mask;
            if (raw < n) {
                dst[raw] = src[j];
            } else {
                dst[raw - n] = neg_mod(src[j], q);
            }
        }
    }
    return out;
}

void
RnsPoly::divide_and_drop_last()
{
    const u64 n = degree();
    const int last = num_limbs() - 1;
    const Modulus& q_last = limb_modulus(last);
    const int last_global = limb_global_index(last);

    // Bring the last limb to coefficient form for cross-modulus reduction.
    core::ScratchVec<u64> last_coeffs(n);
    std::memcpy(last_coeffs.data(), limb(last), n * sizeof(u64));
    if (ntt_) {
        limb_tables(last).inverse(last_coeffs.data());
        ctx_->counters().ntt += 1;
    }
    // Center so the rounding error is at most q_last/2 per coefficient.
    core::ScratchVec<i64> centered(n);
    for (u64 j = 0; j < n; ++j) {
        centered[j] = to_centered(last_coeffs[j], q_last);
    }

    const int remaining = last;  // limbs 0..last-1 survive
    core::parallel_for(0, remaining, [&](i64 li) {
        const int i = static_cast<int>(li);
        const Modulus& q = limb_modulus(i);
        core::ScratchVec<u64> tmp(n);
        for (u64 j = 0; j < n; ++j) {
            tmp[j] = reduce_signed(centered[j], q);
        }
        if (ntt_) {
            limb_tables(i).forward(tmp.data());
        }
        const u64 inv = ctx_->inv_mod_global(last_global, limb_global_index(i));
        const u64 inv_shoup = shoup_precompute(inv, q);
        // Two whole-limb kernel passes; per element this is the same op
        // sequence as the fused mul_mod_shoup(sub_mod(...)) loop.
        const kernels::KernelTable& k = kernels::active();
        u64* a = limb(i);
        k.sub_mod_n(a, tmp.data(), n, q);
        k.mul_scalar_shoup_n(a, a, n, inv, inv_shoup, q);
    });
    if (ntt_) ctx_->counters().ntt += static_cast<u64>(remaining);

    data_.resize_down(static_cast<std::size_t>(remaining) * n);
    if (special_limbs_ > 0) {
        --special_limbs_;
    } else {
        --level_;
    }
}

void
RnsPoly::rescale_drop_last()
{
    ORION_CHECK(!extended(), "cannot rescale an extended polynomial");
    ORION_CHECK(level_ >= 1, "cannot rescale at level 0");
    divide_and_drop_last();
}

void
RnsPoly::mod_down_special()
{
    ORION_CHECK(extended(), "mod_down_special requires special limbs");
    while (special_limbs_ > 0) divide_and_drop_last();
}

void
RnsPoly::drop_to_level(int new_level)
{
    ORION_CHECK(!extended(), "cannot drop levels on an extended polynomial");
    ORION_CHECK(new_level >= 0 && new_level <= level_,
                "invalid target level " << new_level << " from " << level_);
    data_.resize_down(static_cast<std::size_t>(new_level + 1) * degree());
    level_ = new_level;
}

RnsPoly
RnsPoly::mod_raise(int new_level) const
{
    ORION_CHECK(!extended(), "cannot mod-raise an extended polynomial");
    ORION_CHECK(level_ == 0,
                "mod_raise expects a level-0 polynomial (drop first), got "
                    << level_);
    ORION_CHECK(new_level >= 1 && new_level <= ctx_->max_level(),
                "invalid mod-raise target level " << new_level);
    const u64 n = degree();

    RnsPoly base = *this;
    if (base.is_ntt()) base.to_coeff();
    const Modulus& q0 = ctx_->q(0);
    core::ScratchVec<i64> centered(n);
    const u64* src = base.limb(0);
    for (u64 j = 0; j < n; ++j) centered[j] = to_centered(src[j], q0);

    RnsPoly out(*ctx_, new_level, /*extended=*/false, /*ntt_form=*/false);
    // Each target limb is an independent signed reduction of the centered
    // coefficients; fan them out across the pool (bit-identical at any
    // thread count: no cross-limb reads).
    core::parallel_for(0, out.num_limbs(), [&](i64 li) {
        const int i = static_cast<int>(li);
        const Modulus& q = out.limb_modulus(i);
        u64* dst = out.limb(i);
        for (u64 j = 0; j < n; ++j) dst[j] = reduce_signed(centered[j], q);
    });
    if (is_ntt()) out.to_ntt();
    return out;
}

bool
RnsPoly::is_zero() const
{
    const u64* p = data_.data();
    return std::all_of(p, p + data_.size(), [](u64 v) { return v == 0; });
}

}  // namespace orion::ckks
