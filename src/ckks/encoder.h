#ifndef ORION_SRC_CKKS_ENCODER_H_
#define ORION_SRC_CKKS_ENCODER_H_

/**
 * @file
 * CKKS encoding (Section 2.2): cleartext vectors of N/2 complex (or real)
 * numbers <-> plaintext polynomials, via the canonical embedding restricted
 * to the orbit of 5 modulo 2N ("rot-group" ordering). Under this ordering a
 * cyclic rotation of the slots corresponds to the automorphism X -> X^{5^k}
 * and complex conjugation to X -> X^{2N-1}.
 */

#include <complex>
#include <span>
#include <vector>

#include "src/ckks/ciphertext.h"
#include "src/ckks/context.h"
#include "src/ckks/special_fft.h"

namespace orion::ckks {

/** Converts cleartext vectors to plaintext polynomials and back. */
class Encoder {
  public:
    explicit Encoder(const Context& ctx);

    u64 slot_count() const { return slots_; }

    /**
     * Encodes up to slot_count() real values (zero-padded) into a plaintext
     * at the given level and scale.
     */
    Plaintext encode(std::span<const double> values, int level,
                     double scale) const;

    /** Complex-valued variant of encode(). */
    Plaintext encode_complex(std::span<const std::complex<double>> values,
                             int level, double scale) const;

    /** Encodes the same real constant into every slot (O(N) fast path). */
    Plaintext encode_constant(double value, int level, double scale) const;

    /** Decodes the real parts of all slots. */
    std::vector<double> decode(const Plaintext& pt) const;

    /** Decodes all slots as complex numbers. */
    std::vector<std::complex<double>> decode_complex(const Plaintext& pt) const;

    /**
     * The shared special-FFT stage machinery. The bootstrap circuit builds
     * its CoeffToSlot/SlotToCoeff matrices from the same stages the
     * encoder's cleartext butterflies run, so the two paths cannot drift.
     */
    const SpecialFft& fft() const { return fft_; }

  private:
    /** Builds a plaintext from scaled slot values. */
    Plaintext from_slots(std::vector<std::complex<double>> slots, int level,
                         double scale) const;
    /** CRT-composes centered coefficients (up to two limbs) for decode. */
    std::vector<double> to_coefficients(const Plaintext& pt) const;

    const Context* ctx_;
    u64 slots_;
    SpecialFft fft_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_ENCODER_H_
