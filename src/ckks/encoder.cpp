#include "src/ckks/encoder.h"

#include <algorithm>
#include <cmath>

#include "src/core/arena.h"
#include "src/core/thread_pool.h"

namespace orion::ckks {

namespace {

/** Elementwise fan-out; see SpecialFft for the bit-identity contract. */
template <typename F>
void
parallel_elementwise(u64 count, F&& fn)
{
    core::parallel_for_chunked(static_cast<i64>(count),
                               [&](i64 k) { fn(static_cast<u64>(k)); });
}

/**
 * Rounds value * scale to an i128. llroundl alone overflows past 2^63,
 * which deep-circuit scales reach (the bootstrap's EvalMod works at
 * Delta^2 before its rescale); beyond that range the long double mantissa
 * already quantizes the product, so floor(x + 0.5) loses nothing more.
 */
i128
round_scaled(long double value, double scale)
{
    const long double x = value * static_cast<long double>(scale);
    if (x >= -9.0e18L && x <= 9.0e18L) {
        return static_cast<i128>(std::llroundl(x));
    }
    return static_cast<i128>(std::floor(x + 0.5L));
}

}  // namespace

Encoder::Encoder(const Context& ctx)
    : ctx_(&ctx), slots_(ctx.degree() / 2), fft_(ctx.degree())
{
}

Plaintext
Encoder::from_slots(std::vector<std::complex<double>> slots, int level,
                    double scale) const
{
    ORION_CHECK(scale > 0, "scale must be positive");
    fft_.inverse(slots.data());

    const u64 n = ctx_->degree();
    const u64 nh = slots_;
    Plaintext pt;
    pt.scale = scale;
    pt.poly = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    // Coefficient j holds the real part, coefficient j + N/2 the imaginary
    // part of embedding slot j; round to integers at the target scale.
    core::ScratchVec<i128> coeffs(n);
    for (u64 j = 0; j < nh; ++j) {
        coeffs[j] = round_scaled(
            static_cast<long double>(slots[j].real()), scale);
        coeffs[j + nh] = round_scaled(
            static_cast<long double>(slots[j].imag()), scale);
    }
    // Independent per limb: fan the signed reductions out across the pool.
    core::parallel_for(0, pt.poly.num_limbs(), [&](i64 i) {
        const int limb_idx = static_cast<int>(i);
        const Modulus& q = pt.poly.limb_modulus(limb_idx);
        u64* limb = pt.poly.limb(limb_idx);
        for (u64 j = 0; j < n; ++j) {
            limb[j] = reduce_signed_128(coeffs[j], q);
        }
    });
    pt.poly.to_ntt();
    return pt;
}

Plaintext
Encoder::encode_complex(std::span<const std::complex<double>> values,
                        int level, double scale) const
{
    ORION_CHECK(values.size() <= slots_,
                "too many values: " << values.size() << " > " << slots_);
    std::vector<std::complex<double>> slots(slots_, {0.0, 0.0});
    std::copy(values.begin(), values.end(), slots.begin());
    return from_slots(std::move(slots), level, scale);
}

Plaintext
Encoder::encode(std::span<const double> values, int level, double scale) const
{
    ORION_CHECK(values.size() <= slots_,
                "too many values: " << values.size() << " > " << slots_);
    std::vector<std::complex<double>> slots(slots_, {0.0, 0.0});
    for (std::size_t i = 0; i < values.size(); ++i) {
        slots[i] = {values[i], 0.0};
    }
    return from_slots(std::move(slots), level, scale);
}

Plaintext
Encoder::encode_constant(double value, int level, double scale) const
{
    // A constant across all slots embeds to the constant polynomial, so the
    // special FFT can be skipped entirely.
    Plaintext pt;
    pt.scale = scale;
    pt.poly = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    const i128 c = round_scaled(static_cast<long double>(value), scale);
    const u64 n = ctx_->degree();
    for (int i = 0; i < pt.poly.num_limbs(); ++i) {
        const Modulus& q = pt.poly.limb_modulus(i);
        const u64 r = reduce_signed_128(c, q);
        u64* limb = pt.poly.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = (j == 0) ? r : 0;
        // Constant polynomial: only coefficient 0 is set.
        limb[0] = r;
    }
    pt.poly.to_ntt();
    return pt;
}

std::vector<double>
Encoder::to_coefficients(const Plaintext& pt) const
{
    // CRT-compose the centered coefficient value from at most two limbs:
    // one limb covers |c| < q_0/2, two limbs cover |c| < q_0*q_1/2, enough
    // for any sensibly-scaled message in this library.
    RnsPoly poly = pt.poly;
    if (poly.is_ntt()) poly.to_coeff();
    const u64 n = ctx_->degree();
    std::vector<double> out(n);
    if (poly.level() == 0) {
        const Modulus& q0 = poly.limb_modulus(0);
        const u64* a = poly.limb(0);
        for (u64 j = 0; j < n; ++j) {
            out[j] = static_cast<double>(to_centered(a[j], q0));
        }
        return out;
    }
    const Modulus& q0 = poly.limb_modulus(0);
    const Modulus& q1 = poly.limb_modulus(1);
    const u128 q01 = u128(q0.value()) * q1.value();
    // Garner: x = x0 + q0 * ((x1 - x0) * q0^{-1} mod q1), centered mod q0*q1.
    const u64 q0_inv_q1 = ctx_->q_inv_mod(0, 1);
    const u64* a0 = poly.limb(0);
    const u64* a1 = poly.limb(1);
    parallel_elementwise(n, [&](u64 j) {
        const u64 diff = sub_mod(a1[j], q1.reduce(a0[j]), q1);
        const u64 t = mul_mod(diff, q0_inv_q1, q1);
        u128 x = u128(a0[j]) + u128(q0.value()) * t;
        // Center modulo q0*q1.
        long double v;
        if (x > q01 / 2) {
            v = -static_cast<long double>(q01 - x);
        } else {
            v = static_cast<long double>(x);
        }
        out[j] = static_cast<double>(v);
    });
    return out;
}

std::vector<std::complex<double>>
Encoder::decode_complex(const Plaintext& pt) const
{
    ORION_CHECK(pt.scale > 0, "plaintext has no scale");
    const std::vector<double> coeffs = to_coefficients(pt);
    const u64 nh = slots_;
    std::vector<std::complex<double>> slots(nh);
    const double inv_scale = 1.0 / pt.scale;
    for (u64 j = 0; j < nh; ++j) {
        slots[j] = {coeffs[j] * inv_scale, coeffs[j + nh] * inv_scale};
    }
    fft_.forward(slots.data());
    return slots;
}

std::vector<double>
Encoder::decode(const Plaintext& pt) const
{
    const std::vector<std::complex<double>> slots = decode_complex(pt);
    std::vector<double> out(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) out[i] = slots[i].real();
    return out;
}

}  // namespace orion::ckks
