#include "src/ckks/encoder.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/core/thread_pool.h"

namespace orion::ckks {

namespace {

/** In-place bit-reversal permutation. */
void
bit_reverse(std::complex<double>* vals, u64 n)
{
    const int log_n = log2_exact(n);
    for (u64 i = 0; i < n; ++i) {
        const u64 j = reverse_bits(static_cast<u32>(i), log_n);
        if (i < j) std::swap(vals[i], vals[j]);
    }
}

/**
 * Chunked elementwise fan-out (core::parallel_for_chunked) over u64
 * indices. Each index must be elementwise-independent (no cross-index
 * reads or reductions), which makes the floating-point results
 * bit-identical for any chunking and thread count. This is the op-level
 * parallelism of the special FFT — the clear-text analogue of the
 * CoeffToSlot/SlotToCoeff stages a full bootstrap evaluates, and the
 * dominant cost of the bootstrap oracle's decode/encode round trip.
 */
template <typename F>
void
parallel_elementwise(u64 count, F&& fn)
{
    core::parallel_for_chunked(static_cast<i64>(count),
                               [&](i64 k) { fn(static_cast<u64>(k)); });
}

}  // namespace

Encoder::Encoder(const Context& ctx) : ctx_(&ctx), slots_(ctx.degree() / 2)
{
    const u64 m = 2 * ctx.degree();
    ksi_pows_.resize(m + 1);
    for (u64 k = 0; k <= m; ++k) {
        const double angle =
            2.0 * std::numbers::pi * static_cast<double>(k) /
            static_cast<double>(m);
        ksi_pows_[k] = {std::cos(angle), std::sin(angle)};
    }
    rot_group_.resize(slots_);
    u64 power = 1;
    for (u64 j = 0; j < slots_; ++j) {
        rot_group_[j] = power;
        power = (power * 5) % m;
    }
}

void
Encoder::fft_special(std::complex<double>* vals) const
{
    const u64 n = slots_;
    const u64 m = 2 * ctx_->degree();
    bit_reverse(vals, n);
    for (u64 len = 2; len <= n; len <<= 1) {
        const u64 lenh = len >> 1;
        const u64 lenq = len << 2;
        const int log_lenh = log2_exact(lenh);
        // Butterflies within a stage touch disjoint pairs; fan them out.
        // lenh is a power of two, so butterfly k decomposes by shift/mask
        // (a hardware division here would rival the complex multiply).
        parallel_elementwise(n >> 1, [&](u64 k) {
            const u64 j = k & (lenh - 1);
            const u64 top = ((k >> log_lenh) << 1 | 1) << log_lenh;
            const u64 bot = top - lenh;
            const u64 idx = (rot_group_[j] % lenq) * (m / lenq);
            const std::complex<double> u = vals[bot + j];
            const std::complex<double> v = vals[top + j] * ksi_pows_[idx];
            vals[bot + j] = u + v;
            vals[top + j] = u - v;
        });
    }
}

void
Encoder::fft_special_inv(std::complex<double>* vals) const
{
    const u64 n = slots_;
    const u64 m = 2 * ctx_->degree();
    for (u64 len = n; len >= 2; len >>= 1) {
        const u64 lenh = len >> 1;
        const u64 lenq = len << 2;
        const int log_lenh = log2_exact(lenh);
        parallel_elementwise(n >> 1, [&](u64 k) {
            const u64 j = k & (lenh - 1);
            const u64 top = ((k >> log_lenh) << 1 | 1) << log_lenh;
            const u64 bot = top - lenh;
            const u64 idx = (lenq - (rot_group_[j] % lenq)) * (m / lenq);
            const std::complex<double> u = vals[bot + j] + vals[top + j];
            const std::complex<double> v =
                (vals[bot + j] - vals[top + j]) * ksi_pows_[idx];
            vals[bot + j] = u;
            vals[top + j] = v;
        });
    }
    bit_reverse(vals, n);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (u64 i = 0; i < n; ++i) vals[i] *= inv_n;
}

Plaintext
Encoder::from_slots(std::vector<std::complex<double>> slots, int level,
                    double scale) const
{
    ORION_CHECK(scale > 0, "scale must be positive");
    fft_special_inv(slots.data());

    const u64 n = ctx_->degree();
    const u64 nh = slots_;
    Plaintext pt;
    pt.scale = scale;
    pt.poly = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    // Coefficient j holds the real part, coefficient j + N/2 the imaginary
    // part of embedding slot j; round to integers at the target scale.
    std::vector<i128> coeffs(n);
    for (u64 j = 0; j < nh; ++j) {
        coeffs[j] = static_cast<i128>(std::llroundl(
            static_cast<long double>(slots[j].real()) * scale));
        coeffs[j + nh] = static_cast<i128>(std::llroundl(
            static_cast<long double>(slots[j].imag()) * scale));
    }
    // Independent per limb: fan the signed reductions out across the pool.
    core::parallel_for(0, pt.poly.num_limbs(), [&](i64 i) {
        const int limb_idx = static_cast<int>(i);
        const Modulus& q = pt.poly.limb_modulus(limb_idx);
        u64* limb = pt.poly.limb(limb_idx);
        for (u64 j = 0; j < n; ++j) {
            limb[j] = reduce_signed_128(coeffs[j], q);
        }
    });
    pt.poly.to_ntt();
    return pt;
}

Plaintext
Encoder::encode_complex(std::span<const std::complex<double>> values,
                        int level, double scale) const
{
    ORION_CHECK(values.size() <= slots_,
                "too many values: " << values.size() << " > " << slots_);
    std::vector<std::complex<double>> slots(slots_, {0.0, 0.0});
    std::copy(values.begin(), values.end(), slots.begin());
    return from_slots(std::move(slots), level, scale);
}

Plaintext
Encoder::encode(std::span<const double> values, int level, double scale) const
{
    ORION_CHECK(values.size() <= slots_,
                "too many values: " << values.size() << " > " << slots_);
    std::vector<std::complex<double>> slots(slots_, {0.0, 0.0});
    for (std::size_t i = 0; i < values.size(); ++i) {
        slots[i] = {values[i], 0.0};
    }
    return from_slots(std::move(slots), level, scale);
}

Plaintext
Encoder::encode_constant(double value, int level, double scale) const
{
    // A constant across all slots embeds to the constant polynomial, so the
    // special FFT can be skipped entirely.
    Plaintext pt;
    pt.scale = scale;
    pt.poly = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/false);
    const i128 c = static_cast<i128>(
        std::llroundl(static_cast<long double>(value) * scale));
    const u64 n = ctx_->degree();
    for (int i = 0; i < pt.poly.num_limbs(); ++i) {
        const Modulus& q = pt.poly.limb_modulus(i);
        const u64 r = reduce_signed_128(c, q);
        u64* limb = pt.poly.limb(i);
        for (u64 j = 0; j < n; ++j) limb[j] = (j == 0) ? r : 0;
        // Constant polynomial: only coefficient 0 is set.
        limb[0] = r;
    }
    pt.poly.to_ntt();
    return pt;
}

std::vector<double>
Encoder::to_coefficients(const Plaintext& pt) const
{
    // CRT-compose the centered coefficient value from at most two limbs:
    // one limb covers |c| < q_0/2, two limbs cover |c| < q_0*q_1/2, enough
    // for any sensibly-scaled message in this library.
    RnsPoly poly = pt.poly;
    if (poly.is_ntt()) poly.to_coeff();
    const u64 n = ctx_->degree();
    std::vector<double> out(n);
    if (poly.level() == 0) {
        const Modulus& q0 = poly.limb_modulus(0);
        const u64* a = poly.limb(0);
        for (u64 j = 0; j < n; ++j) {
            out[j] = static_cast<double>(to_centered(a[j], q0));
        }
        return out;
    }
    const Modulus& q0 = poly.limb_modulus(0);
    const Modulus& q1 = poly.limb_modulus(1);
    const u128 q01 = u128(q0.value()) * q1.value();
    // Garner: x = x0 + q0 * ((x1 - x0) * q0^{-1} mod q1), centered mod q0*q1.
    const u64 q0_inv_q1 = ctx_->q_inv_mod(0, 1);
    const u64* a0 = poly.limb(0);
    const u64* a1 = poly.limb(1);
    parallel_elementwise(n, [&](u64 j) {
        const u64 diff = sub_mod(a1[j], q1.reduce(a0[j]), q1);
        const u64 t = mul_mod(diff, q0_inv_q1, q1);
        u128 x = u128(a0[j]) + u128(q0.value()) * t;
        // Center modulo q0*q1.
        long double v;
        if (x > q01 / 2) {
            v = -static_cast<long double>(q01 - x);
        } else {
            v = static_cast<long double>(x);
        }
        out[j] = static_cast<double>(v);
    });
    return out;
}

std::vector<std::complex<double>>
Encoder::decode_complex(const Plaintext& pt) const
{
    ORION_CHECK(pt.scale > 0, "plaintext has no scale");
    const std::vector<double> coeffs = to_coefficients(pt);
    const u64 nh = slots_;
    std::vector<std::complex<double>> slots(nh);
    const double inv_scale = 1.0 / pt.scale;
    for (u64 j = 0; j < nh; ++j) {
        slots[j] = {coeffs[j] * inv_scale, coeffs[j + nh] * inv_scale};
    }
    fft_special(slots.data());
    return slots;
}

std::vector<double>
Encoder::decode(const Plaintext& pt) const
{
    const std::vector<std::complex<double>> slots = decode_complex(pt);
    std::vector<double> out(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) out[i] = slots[i].real();
    return out;
}

}  // namespace orion::ckks
