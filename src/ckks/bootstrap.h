#ifndef ORION_SRC_CKKS_BOOTSTRAP_H_
#define ORION_SRC_CKKS_BOOTSTRAP_H_

/**
 * @file
 * Bootstrapping (Section 2.5.4): raises a level-exhausted ciphertext back
 * to the effective level L_eff = L - L_boot.
 *
 * The paper relies on Lattigo's full CKKS bootstrap (CoeffToSlot, EvalMod,
 * SlotToCoeff). Those subroutines are not the paper's contribution, and the
 * Orion compiler observes only their *semantics* (level reset, a fixed
 * L_boot, bounded added noise, inputs in [-1, 1]) and their *latency*.
 * This module therefore implements a functional re-encryption bootstrap:
 * a trusted oracle holding the secret key decrypts, injects noise matching
 * a configurable bootstrap precision, and re-encrypts at L_eff. The
 * latency of a real bootstrap is modeled analytically in core/cost_model
 * from the op counts of CtS + EvalMod + StC (reproducing the superlinear
 * shape of Figure 1c). See DESIGN.md, "Substitutions".
 */

#include "src/ckks/encoder.h"
#include "src/ckks/encryptor.h"

namespace orion::ckks {

/** Bootstrap behaviour knobs. */
struct BootstrapConfig {
    /** Levels consumed by the bootstrap circuit itself (paper: 13-15). */
    int l_boot = 3;
    /**
     * Standard deviation of the noise the bootstrap adds to each slot,
     * relative to a unit-scaled message (about 20 bits of precision, in
     * line with production CKKS bootstrappers).
     */
    double noise_std = 1e-6;
    /** Inputs must lie in [-range, range] (Section 6, range estimation). */
    double input_range = 1.0;
};

/**
 * Functional bootstrap oracle. Holds the secret key; see file comment for
 * why this substitution preserves the compiler-visible behaviour.
 */
class Bootstrapper {
  public:
    Bootstrapper(const Context& ctx, const Encoder& encoder,
                 const SecretKey& sk, const BootstrapConfig& config = {});

    /** Maximum achievable level after bootstrapping (Table 1's L_eff). */
    int l_eff() const { return ctx_->max_level() - config_.l_boot; }
    const BootstrapConfig& config() const { return config_; }

    /**
     * Bootstraps ct to level l_eff at the canonical scale Delta. The input
     * may be at any level; its scale must be (approximately) Delta.
     */
    Ciphertext bootstrap(const Ciphertext& ct);

  private:
    const Context* ctx_;
    const Encoder* encoder_;
    BootstrapConfig config_;
    Decryptor decryptor_;
    Encryptor encryptor_;
    Sampler noise_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_BOOTSTRAP_H_
