#ifndef ORION_SRC_CKKS_BOOTSTRAP_H_
#define ORION_SRC_CKKS_BOOTSTRAP_H_

/**
 * @file
 * Bootstrapping (Section 2.5.4): raises a level-exhausted ciphertext back
 * to the effective level L_eff = L - L_boot.
 *
 * The default Bootstrapper is a *real* public-key bootstrap: the
 * CoeffToSlot -> EvalMod -> SlotToCoeff circuit of
 * src/ckks/bootstrap_circuit.h, evaluated under Galois and
 * relinearization keys only. It is what the serving path runs on an
 * untrusted server.
 *
 * The decrypt/re-encrypt oracle that earlier revisions used as a
 * stand-in survives as OracleBootstrapper, an explicit test fixture: it
 * holds the secret key and reproduces the compiler-visible semantics of
 * a bootstrap (level reset, canonical output scale, bounded added noise,
 * inputs in [-1, 1]) without the circuit's level budget, which is what
 * lets toy parameter sets (6-level chains) exercise bootstrap-bearing
 * programs in unit tests. See DESIGN.md, "Substitutions".
 */

#include "src/ckks/bootstrap_circuit.h"
#include "src/ckks/encoder.h"
#include "src/ckks/encryptor.h"

namespace orion::ckks {

/**
 * The real public-key bootstrapper: a BootstrapPlan bound to a Context,
 * with the caller's Evaluator supplying every key. Holds no secret.
 */
class Bootstrapper {
  public:
    /**
     * Builds the circuit for the context's parameters. `opts` tunes the
     * circuit; the context must have at least l_eff + plan depth levels.
     */
    Bootstrapper(const Context& ctx, const Encoder& encoder, int l_eff,
                 const BootstrapParams& opts = {});

    /** Maximum achievable level after bootstrapping (Table 1's L_eff). */
    int l_eff() const { return circuit_.l_eff(); }
    /** Levels the circuit itself consumes (Table 1's L_boot). */
    int l_boot() const { return circuit_.l_boot(); }
    const BootstrapCircuit& circuit() const { return circuit_; }
    const BootstrapPlan& plan() const { return circuit_.plan(); }

    /**
     * Rotation keys the evaluator must carry (level-pruned requests plus
     * conjugation at conjugation_level()).
     */
    std::vector<GaloisKeyRequest>
    galois_requests() const
    {
        return plan().galois_requests(l_eff());
    }
    int
    conjugation_level() const
    {
        return plan().conjugation_level(l_eff());
    }

    /**
     * Bootstraps ct to level l_eff at the canonical scale Delta using
     * eval's bound keys (Galois for every plan step + conjugation, relin
     * for EvalMod). The input may be at any level at scale ~Delta.
     */
    Ciphertext
    bootstrap(const Evaluator& eval, const Ciphertext& ct,
              BootstrapStats* stats = nullptr) const
    {
        return circuit_.bootstrap(eval, ct, stats);
    }

  private:
    BootstrapCircuit circuit_;
};

/** Oracle behaviour knobs. */
struct OracleBootstrapConfig {
    /** Levels consumed by the modeled bootstrap circuit (paper: 13-15). */
    int l_boot = 3;
    /**
     * Standard deviation of the noise the oracle adds to each slot,
     * relative to a unit-scaled message (about 20 bits of precision, in
     * line with production CKKS bootstrappers).
     */
    double noise_std = 1e-6;
    /** Inputs must lie in [-range, range] (Section 6, range estimation). */
    double input_range = 1.0;
};

/**
 * Functional bootstrap oracle — TEST FIXTURE ONLY. Decrypts with the
 * secret key, injects noise matching a configurable bootstrap precision,
 * and re-encrypts at L_eff. Kept so toy parameter sets too shallow for
 * the real circuit can still execute bootstrap-bearing programs in
 * single-party tests; the serving path never constructs one.
 */
class OracleBootstrapper {
  public:
    OracleBootstrapper(const Context& ctx, const Encoder& encoder,
                       const SecretKey& sk,
                       const OracleBootstrapConfig& config = {});

    /** Maximum achievable level after bootstrapping (Table 1's L_eff). */
    int l_eff() const { return ctx_->max_level() - config_.l_boot; }
    const OracleBootstrapConfig& config() const { return config_; }

    /**
     * Bootstraps ct to level l_eff at the canonical scale Delta. The input
     * may be at any level; its scale must be (approximately) Delta.
     */
    Ciphertext bootstrap(const Ciphertext& ct);

  private:
    const Context* ctx_;
    const Encoder* encoder_;
    OracleBootstrapConfig config_;
    Decryptor decryptor_;
    Encryptor encryptor_;
    Sampler noise_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_BOOTSTRAP_H_
