#include "src/ckks/evaluator.h"

#include <cmath>

#include "src/core/telemetry.h"
#include "src/core/thread_pool.h"

namespace orion::ckks {

void
Evaluator::check_additive_compat(const Ciphertext& a,
                                 const Ciphertext& b) const
{
    ORION_CHECK(a.level() == b.level(),
                "level mismatch: " << a.level() << " vs " << b.level());
    ORION_CHECK(scales_match(a.scale, b.scale),
                "scale mismatch: " << a.scale << " vs " << b.scale);
}

Ciphertext
Evaluator::add(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext out = a;
    add_inplace(out, b);
    return out;
}

void
Evaluator::add_inplace(Ciphertext& a, const Ciphertext& b) const
{
    check_additive_compat(a, b);
    a.c0.add_inplace(b.c0);
    a.c1.add_inplace(b.c1);
    ctx_->counters().hadd += 1;
}

void
Evaluator::sub_inplace(Ciphertext& a, const Ciphertext& b) const
{
    check_additive_compat(a, b);
    a.c0.sub_inplace(b.c0);
    a.c1.sub_inplace(b.c1);
    ctx_->counters().hadd += 1;
}

void
Evaluator::add_plain_inplace(Ciphertext& a, const Plaintext& p) const
{
    ORION_CHECK(a.level() == p.level(), "level mismatch in add_plain");
    ORION_CHECK(scales_match(a.scale, p.scale),
                "scale mismatch in add_plain: " << a.scale << " vs "
                                                << p.scale);
    a.c0.add_inplace(p.poly);
    ctx_->counters().hadd += 1;
}

void
Evaluator::sub_plain_inplace(Ciphertext& a, const Plaintext& p) const
{
    ORION_CHECK(a.level() == p.level(), "level mismatch in sub_plain");
    ORION_CHECK(scales_match(a.scale, p.scale), "scale mismatch in sub_plain");
    a.c0.sub_inplace(p.poly);
    ctx_->counters().hadd += 1;
}

void
Evaluator::negate_inplace(Ciphertext& a) const
{
    a.c0.negate_inplace();
    a.c1.negate_inplace();
}

void
Evaluator::add_constant_inplace(Ciphertext& a, double v) const
{
    const Plaintext p = encoder_->encode_constant(v, a.level(), a.scale);
    add_plain_inplace(a, p);
}

Ciphertext
Evaluator::mul_plain(const Ciphertext& a, const Plaintext& p) const
{
    Ciphertext out = a;
    mul_plain_inplace(out, p);
    return out;
}

void
Evaluator::mul_plain_inplace(Ciphertext& a, const Plaintext& p) const
{
    ORION_CHECK(a.level() == p.level(), "level mismatch in mul_plain");
    a.c0.mul_pointwise_inplace(p.poly);
    a.c1.mul_pointwise_inplace(p.poly);
    a.scale *= p.scale;
    ctx_->counters().pmult += 1;
}

Ciphertext
Evaluator::mul(const Ciphertext& a, const Ciphertext& b) const
{
    TELEM_SPAN("eval.mul");
    ORION_CHECK(relin_ != nullptr, "relinearization key not set");
    ORION_CHECK(a.level() == b.level(), "level mismatch in mul");

    // Tensor product: (c0, c1) x (c0', c1') = (d0, d1, d2).
    RnsPoly d0 = a.c0;
    d0.mul_pointwise_inplace(b.c0);
    RnsPoly d1 = a.c0;
    d1.mul_pointwise_inplace(b.c1);
    d1.add_product_inplace(a.c1, b.c0);
    RnsPoly d2 = a.c1;
    d2.mul_pointwise_inplace(b.c1);

    // Relinearize d2 (the s^2 component) back to (r0, r1).
    RnsPoly r0, r1;
    switcher_.apply(d2, *relin_, &r0, &r1);

    Ciphertext out;
    out.scale = a.scale * b.scale;
    out.c0 = std::move(d0);
    out.c0.add_inplace(r0);
    out.c1 = std::move(d1);
    out.c1.add_inplace(r1);
    ctx_->counters().hmult += 1;
    return out;
}

Ciphertext
Evaluator::square(const Ciphertext& a) const
{
    return mul(a, a);
}

void
Evaluator::mul_constant_inplace(Ciphertext& a, double v, double scale) const
{
    const Plaintext p = encoder_->encode_constant(v, a.level(), scale);
    mul_plain_inplace(a, p);
}

void
Evaluator::rescale_inplace(Ciphertext& a) const
{
    TELEM_SPAN("eval.rescale");
    const double q_last =
        static_cast<double>(ctx_->q(a.level()).value());
    a.c0.rescale_drop_last();
    a.c1.rescale_drop_last();
    a.scale /= q_last;
    ctx_->counters().rescale += 1;
}

void
Evaluator::drop_to_level_inplace(Ciphertext& a, int level) const
{
    a.c0.drop_to_level(level);
    a.c1.drop_to_level(level);
}

const KswitchKey&
Evaluator::galois_key_for_step(int step) const
{
    ORION_CHECK(galois_ != nullptr, "Galois keys not set");
    return galois_->at(ctx_->galois_elt(step));
}

Ciphertext
Evaluator::rotate_internal(const Ciphertext& a, u64 elt) const
{
    TELEM_SPAN("eval.rotate");
    ORION_CHECK(galois_ != nullptr, "Galois keys not set");
    const KswitchKey& key = galois_->at(elt);
    const std::vector<u32>& perm = ctx_->galois_permutation(elt);

    RnsPoly c1r = a.c1.galois_with_permutation(perm);
    RnsPoly ks0, ks1;
    switcher_.apply(c1r, key, &ks0, &ks1);

    Ciphertext out;
    out.scale = a.scale;
    out.c0 = a.c0.galois_with_permutation(perm);
    out.c0.add_inplace(ks0);
    out.c1 = std::move(ks1);
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext& a, int step) const
{
    const u64 slots = ctx_->slot_count();
    if (static_cast<u64>(((step % static_cast<i64>(slots)) + slots)) % slots ==
        0) {
        return a;
    }
    ctx_->counters().hrot += 1;
    return rotate_internal(a, ctx_->galois_elt(step));
}

Ciphertext
Evaluator::conjugate(const Ciphertext& a) const
{
    ctx_->counters().hrot += 1;
    return rotate_internal(a, ctx_->galois_elt_conj());
}

void
Evaluator::mul_by_i_inplace(Ciphertext& a, bool negative) const
{
    // X^{N/2} evaluates to i in every slot of the rot-group ordering
    // (5^j = 1 mod 4); -X^{N/2} = X^{3N/2} evaluates to -i. A monomial
    // with a +-1 coefficient is a unit of the ring, so this is an exact
    // integer operation: no noise growth, no scale change, no level cost.
    ORION_CHECK(a.c0.is_ntt() && a.c1.is_ntt(),
                "mul_by_i expects NTT-form ciphertexts");
    const u64 n = ctx_->degree();
    RnsPoly monomial(*ctx_, a.level(), /*extended=*/false,
                     /*ntt_form=*/false);
    for (int i = 0; i < monomial.num_limbs(); ++i) {
        const Modulus& q = monomial.limb_modulus(i);
        monomial.limb(i)[n / 2] = negative ? q.value() - 1 : 1;
    }
    monomial.to_ntt();
    a.c0.mul_pointwise_inplace(monomial);
    a.c1.mul_pointwise_inplace(monomial);
}

Evaluator::Hoisted
Evaluator::hoist(const Ciphertext& a) const
{
    TELEM_SPAN("eval.hoist");
    Hoisted h;
    h.ct = a;
    h.digits = switcher_.decompose(a.c1);
    return h;
}

Ciphertext
Evaluator::rotate_hoisted(const Hoisted& h, int step) const
{
    const u64 slots = ctx_->slot_count();
    if (static_cast<u64>(((step % static_cast<i64>(slots)) + slots)) % slots ==
        0) {
        return h.ct;
    }
    TELEM_SPAN("eval.rotate_hoisted");
    ORION_CHECK(galois_ != nullptr, "Galois keys not set");
    const u64 elt = ctx_->galois_elt(step);
    const KswitchKey& key = galois_->at(elt);
    const std::vector<u32>& perm = ctx_->galois_permutation(elt);

    // Permute the precomputed digits (decomposition commutes with the
    // automorphism coefficient-wise), then inner-product and mod-down.
    std::vector<RnsPoly> rotated(h.digits.size());
    core::parallel_for(0, static_cast<i64>(h.digits.size()), [&](i64 i) {
        rotated[static_cast<std::size_t>(i)] =
            h.digits[static_cast<std::size_t>(i)].galois_with_permutation(
                perm);
    });
    const int level = h.ct.level();
    RnsPoly acc0(*ctx_, level, /*extended=*/true, /*ntt_form=*/true);
    RnsPoly acc1(*ctx_, level, /*extended=*/true, /*ntt_form=*/true);
    switcher_.inner_product(rotated, key, &acc0, &acc1);
    acc0.mod_down_special();
    acc1.mod_down_special();

    Ciphertext out;
    out.scale = h.ct.scale;
    out.c0 = h.ct.c0.galois_with_permutation(perm);
    out.c0.add_inplace(acc0);
    out.c1 = std::move(acc1);
    ctx_->counters().hrot_hoisted += 1;
    return out;
}

Evaluator::RotationAccumulator
Evaluator::make_accumulator(int level, double scale) const
{
    RotationAccumulator acc;
    acc.level_ = level;
    acc.scale_ = scale;
    acc.base0_ = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/true);
    acc.base1_ = RnsPoly(*ctx_, level, /*extended=*/false, /*ntt_form=*/true);
    acc.ext0_ = RnsPoly(*ctx_, level, /*extended=*/true, /*ntt_form=*/true);
    acc.ext1_ = RnsPoly(*ctx_, level, /*extended=*/true, /*ntt_form=*/true);
    return acc;
}

void
Evaluator::accumulate_rotation(RotationAccumulator& acc, const Ciphertext& ct,
                               int step) const
{
    ORION_CHECK(ct.level() == acc.level_,
                "accumulator level mismatch: " << ct.level() << " vs "
                                               << acc.level_);
    ORION_CHECK(scales_match(ct.scale, acc.scale_),
                "accumulator scale mismatch");
    const u64 slots = ctx_->slot_count();
    const bool trivial =
        static_cast<u64>(((step % static_cast<i64>(slots)) + slots)) % slots ==
        0;
    if (trivial) {
        acc.base0_.add_inplace(ct.c0);
        acc.base1_.add_inplace(ct.c1);
        ctx_->counters().hadd += 1;
        return;
    }
    ORION_CHECK(galois_ != nullptr, "Galois keys not set");
    const u64 elt = ctx_->galois_elt(step);
    const KswitchKey& key = galois_->at(elt);
    const std::vector<u32>& perm = ctx_->galois_permutation(elt);

    std::vector<RnsPoly> digits = switcher_.decompose(ct.c1);
    core::parallel_for(0, static_cast<i64>(digits.size()), [&](i64 i) {
        RnsPoly& d = digits[static_cast<std::size_t>(i)];
        d = d.galois_with_permutation(perm);
    });
    switcher_.inner_product(digits, key, &acc.ext0_, &acc.ext1_);
    acc.base0_.add_inplace(ct.c0.galois_with_permutation(perm));
    acc.any_ext_ = true;
    ctx_->counters().hrot_hoisted += 1;
}

void
Evaluator::merge_accumulator(RotationAccumulator& into,
                             const RotationAccumulator& from) const
{
    ORION_CHECK(into.level_ == from.level_,
                "accumulator merge level mismatch: " << into.level_ << " vs "
                                                     << from.level_);
    ORION_CHECK(scales_match(into.scale_, from.scale_),
                "accumulator merge scale mismatch");
    into.base0_.add_inplace(from.base0_);
    into.base1_.add_inplace(from.base1_);
    into.ext0_.add_inplace(from.ext0_);
    into.ext1_.add_inplace(from.ext1_);
    into.any_ext_ = into.any_ext_ || from.any_ext_;
}

Ciphertext
Evaluator::finalize_accumulator(RotationAccumulator& acc) const
{
    TELEM_SPAN("eval.finalize_accumulator");
    Ciphertext out;
    out.scale = acc.scale_;
    out.c0 = std::move(acc.base0_);
    out.c1 = std::move(acc.base1_);
    if (acc.any_ext_) {
        acc.ext0_.mod_down_special();
        acc.ext1_.mod_down_special();
        out.c0.add_inplace(acc.ext0_);
        out.c1.add_inplace(acc.ext1_);
    }
    return out;
}

}  // namespace orion::ckks
