#include "src/ckks/special_fft.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/core/thread_pool.h"

namespace orion::ckks {

namespace {

/** In-place bit-reversal permutation. */
void
bit_reverse(std::complex<double>* vals, u64 n)
{
    const int log_n = log2_exact(n);
    for (u64 i = 0; i < n; ++i) {
        const u64 j = reverse_bits(static_cast<u32>(i), log_n);
        if (i < j) std::swap(vals[i], vals[j]);
    }
}

/**
 * Chunked elementwise fan-out (core::parallel_for_chunked) over u64
 * indices. Each index must be elementwise-independent (no cross-index
 * reads or reductions), which makes the floating-point results
 * bit-identical for any chunking and thread count. This is the op-level
 * parallelism of the special FFT — the clear-text twin of the
 * CoeffToSlot/SlotToCoeff stages the bootstrap circuit evaluates
 * homomorphically from the same stage description.
 */
template <typename F>
void
parallel_elementwise(u64 count, F&& fn)
{
    core::parallel_for_chunked(static_cast<i64>(count),
                               [&](i64 k) { fn(static_cast<u64>(k)); });
}

}  // namespace

std::vector<u64>
ComplexDiagMatrix::diagonal_indices() const
{
    std::vector<u64> out;
    out.reserve(diags_.size());
    for (const auto& [k, v] : diags_) {
        (void)v;
        out.push_back(k);
    }
    return out;
}

void
ComplexDiagMatrix::scale_inplace(std::complex<double> s)
{
    for (auto& [k, diag] : diags_) {
        (void)k;
        for (std::complex<double>& v : diag) v *= s;
    }
}

ComplexDiagMatrix
ComplexDiagMatrix::compose(const ComplexDiagMatrix& rhs) const
{
    ORION_CHECK(dim_ == rhs.dim_, "dimension mismatch in compose");
    ComplexDiagMatrix out(dim_);
    // C[r, r+p+q] += A[r, r+p] * B[r+p, r+p+q] for every diagonal pair.
    for (const auto& [p, a_diag] : diags_) {
        for (const auto& [q, b_diag] : rhs.diags_) {
            std::vector<std::complex<double>>& c_diag =
                out.mutable_diagonal((p + q) % dim_);
            for (u64 r = 0; r < dim_; ++r) {
                const std::complex<double> a = a_diag[r];
                if (a == std::complex<double>(0.0)) continue;
                c_diag[r] += a * b_diag[(r + p) % dim_];
            }
        }
    }
    return out;
}

void
ComplexDiagMatrix::prune(double tol)
{
    for (auto it = diags_.begin(); it != diags_.end();) {
        double peak = 0.0;
        for (const std::complex<double>& v : it->second) {
            peak = std::max(peak, std::abs(v));
        }
        if (peak <= tol) {
            it = diags_.erase(it);
        } else {
            ++it;
        }
    }
}

std::vector<std::complex<double>>
ComplexDiagMatrix::apply(std::span<const std::complex<double>> x) const
{
    ORION_CHECK(x.size() == dim_, "vector length mismatch in apply");
    std::vector<std::complex<double>> y(dim_, std::complex<double>(0.0));
    for (const auto& [k, diag] : diags_) {
        for (u64 r = 0; r < dim_; ++r) {
            y[r] += diag[r] * x[(r + k) % dim_];
        }
    }
    return y;
}

SpecialFft::SpecialFft(u64 degree)
    : slots_(degree / 2), m_(2 * degree),
      num_stages_(log2_exact(degree / 2))
{
    ksi_pows_.resize(m_ + 1);
    for (u64 k = 0; k <= m_; ++k) {
        const double angle = 2.0 * std::numbers::pi *
                             static_cast<double>(k) /
                             static_cast<double>(m_);
        ksi_pows_[k] = {std::cos(angle), std::sin(angle)};
    }
    rot_group_.resize(slots_);
    u64 power = 1;
    for (u64 j = 0; j < slots_; ++j) {
        rot_group_[j] = power;
        power = (power * 5) % m_;
    }
}

void
SpecialFft::forward_stage(std::complex<double>* vals, u64 len) const
{
    const u64 lenh = len >> 1;
    const u64 lenq = len << 2;
    const int log_lenh = log2_exact(lenh);
    // Butterflies within a stage touch disjoint pairs; fan them out.
    // lenh is a power of two, so butterfly k decomposes by shift/mask
    // (a hardware division here would rival the complex multiply).
    parallel_elementwise(slots_ >> 1, [&](u64 k) {
        const u64 j = k & (lenh - 1);
        const u64 top = ((k >> log_lenh) << 1 | 1) << log_lenh;
        const u64 bot = top - lenh;
        const u64 idx = (rot_group_[j] % lenq) * (m_ / lenq);
        const std::complex<double> u = vals[bot + j];
        const std::complex<double> v = vals[top + j] * ksi_pows_[idx];
        vals[bot + j] = u + v;
        vals[top + j] = u - v;
    });
}

void
SpecialFft::inverse_stage(std::complex<double>* vals, u64 len) const
{
    const u64 lenh = len >> 1;
    const u64 lenq = len << 2;
    const int log_lenh = log2_exact(lenh);
    parallel_elementwise(slots_ >> 1, [&](u64 k) {
        const u64 j = k & (lenh - 1);
        const u64 top = ((k >> log_lenh) << 1 | 1) << log_lenh;
        const u64 bot = top - lenh;
        const u64 idx = (lenq - (rot_group_[j] % lenq)) * (m_ / lenq);
        const std::complex<double> u = vals[bot + j] + vals[top + j];
        const std::complex<double> v =
            (vals[bot + j] - vals[top + j]) * ksi_pows_[idx];
        vals[bot + j] = u;
        vals[top + j] = v;
    });
}

void
SpecialFft::forward(std::complex<double>* vals) const
{
    bit_reverse(vals, slots_);
    for (u64 len = 2; len <= slots_; len <<= 1) {
        forward_stage(vals, len);
    }
}

void
SpecialFft::inverse(std::complex<double>* vals) const
{
    for (u64 len = slots_; len >= 2; len >>= 1) {
        inverse_stage(vals, len);
    }
    bit_reverse(vals, slots_);
    const double inv_n = 1.0 / static_cast<double>(slots_);
    for (u64 i = 0; i < slots_; ++i) vals[i] *= inv_n;
}

ComplexDiagMatrix
SpecialFft::forward_stage_matrix(int s) const
{
    ORION_CHECK(s >= 0 && s < num_stages_, "stage index out of range");
    const u64 len = u64(2) << s;  // stage s acts on butterflies of size len
    const u64 lenh = len >> 1;
    const u64 lenq = len << 2;
    const int log_lenh = log2_exact(lenh);
    ComplexDiagMatrix mat(slots_);
    for (u64 k = 0; k < (slots_ >> 1); ++k) {
        const u64 j = k & (lenh - 1);
        const u64 top = ((k >> log_lenh) << 1 | 1) << log_lenh;
        const u64 bot = top - lenh;
        const std::complex<double> w =
            ksi_pows_[(rot_group_[j] % lenq) * (m_ / lenq)];
        // vals'[bot+j] = vals[bot+j] + w * vals[top+j]
        // vals'[top+j] = vals[bot+j] - w * vals[top+j]
        mat.add(bot + j, bot + j, 1.0);
        mat.add(bot + j, top + j, w);
        mat.add(top + j, bot + j, 1.0);
        mat.add(top + j, top + j, -w);
    }
    return mat;
}

ComplexDiagMatrix
SpecialFft::inverse_stage_matrix(int s) const
{
    ORION_CHECK(s >= 0 && s < num_stages_, "stage index out of range");
    const u64 len = slots_ >> s;  // inverse stages run from len = n down
    const u64 lenh = len >> 1;
    const u64 lenq = len << 2;
    const int log_lenh = log2_exact(lenh);
    ComplexDiagMatrix mat(slots_);
    for (u64 k = 0; k < (slots_ >> 1); ++k) {
        const u64 j = k & (lenh - 1);
        const u64 top = ((k >> log_lenh) << 1 | 1) << log_lenh;
        const u64 bot = top - lenh;
        const std::complex<double> w =
            ksi_pows_[(lenq - (rot_group_[j] % lenq)) * (m_ / lenq)];
        // vals'[bot+j] = vals[bot+j] + vals[top+j]
        // vals'[top+j] = w * (vals[bot+j] - vals[top+j])
        mat.add(bot + j, bot + j, 1.0);
        mat.add(bot + j, top + j, 1.0);
        mat.add(top + j, bot + j, w);
        mat.add(top + j, top + j, -w);
    }
    return mat;
}

}  // namespace orion::ckks
