#ifndef ORION_SRC_CKKS_BOOTSTRAP_CIRCUIT_H_
#define ORION_SRC_CKKS_BOOTSTRAP_CIRCUIT_H_

/**
 * @file
 * The public-key CKKS bootstrap circuit: ModRaise, CoeffToSlot, EvalMod,
 * SlotToCoeff — evaluated entirely under Galois and relinearization keys.
 * No secret key appears anywhere in this pipeline; the decrypt/re-encrypt
 * oracle of earlier revisions survives only as ckks::OracleBootstrapper
 * (a test fixture; see bootstrap.h).
 *
 * Pipeline, in value terms (Delta = the canonical scale, q_0 = the first
 * prime, n = slot count, s_in = the input's exact symbolic scale):
 *
 *  1. ModRaise: drop to level 0, re-express the coefficients over
 *     q_0..q_{l_top}. The raised plaintext equals m + q_0 * I for a small
 *     integer polynomial I (|I| <= K, set by the secret's Hamming weight).
 *  2. CoeffToSlot: the encoder's *inverse* special-FFT stages, collapsed
 *     into cts_levels BSGS plaintext-matrix products (complex diagonals,
 *     hoisted baby steps, double-hoisted giants — the same lin:: machinery
 *     every linear layer uses). The constant s_in / (2 n q_0) is split
 *     evenly across the stages. The result holds the raised coefficients
 *     (in bit-reversed slot order, divided by q_0) in its slots; one
 *     conjugation splits real and imaginary halves.
 *  3. EvalMod: x mod q_0 as the scaled sine, evaluated as a Chebyshev
 *     approximation of cos(2*pi*(x - 1/4) / 2^r) followed by r
 *     double-angle steps (cos -> sin shift folded into the phase), using
 *     the errorless-scale BSGS polynomial evaluator. Runs once per half.
 *  4. SlotToCoeff: the *forward* special-FFT stages as stc_levels matrix
 *     products, with q_0 / (2*pi*s_in) folded in. The two bit reversals
 *     of steps 2 and 4 cancel; EvalMod never observes slot order.
 *
 * The output sits at level l_eff and exactly the canonical scale Delta.
 * Levels consumed: cts_levels + [1 + Chebyshev depth + r] + stc_levels
 * (= l_boot, 13 with the defaults — the paper's Table-1 shape).
 */

#include "src/approx/chebyshev.h"
#include "src/approx/polyeval.h"
#include "src/ckks/encoder.h"
#include "src/ckks/evaluator.h"
#include "src/ckks/special_fft.h"
#include "src/linalg/bsgs.h"

namespace orion::ckks {

/** Tunables of the bootstrap circuit (defaults match the paper's shape). */
struct BootstrapParams {
    /**
     * Bound K on the ModRaise integer part |I|; 0 derives it from the
     * secret's Hamming weight (about seven standard deviations of the
     * heuristic sqrt((h+1)/12) bound). Dense secrets produce large K and
     * hence a much deeper, slower EvalMod — bootstrap-capable parameter
     * sets should set CkksParams::secret_weight.
     */
    int k_range = 0;
    /** Double-angle steps r applied after the base cosine evaluation. */
    int double_angle = 2;
    /** Chebyshev degree of the base cosine; 0 = grow until fit_tolerance. */
    int sine_degree = 0;
    /** Levels (collapsed stage matrices) of CoeffToSlot / SlotToCoeff. */
    int cts_levels = 2;
    int stc_levels = 2;
    /** Target max fit error of the base cosine approximation. */
    double fit_tolerance = 1e-12;
};

/**
 * The compiled structure of a bootstrap circuit: collapsed stage
 * matrices, their BSGS rotation schedules, and the fitted EvalMod
 * polynomial. A pure, deterministic function of (CkksParams,
 * BootstrapParams) — both a serving client and a server derive the same
 * plan independently, which is how the client knows which rotation keys
 * the server will need.
 */
struct BootstrapPlan {
    u64 slots = 0;
    BootstrapParams params;  ///< resolved (k_range filled in)
    int secret_weight = 0;   ///< as derived from (dense = 2N/3 heuristic)

    approx::ChebyshevPoly sine;  ///< base cosine approximation
    int eval_degree = 0;
    int eval_depth = 0;  ///< domain scaling + Chebyshev depth + r
    int depth = 0;       ///< l_boot = cts_levels + eval_depth + stc_levels

    /** Collapsed stage matrices, in application order. */
    std::vector<ComplexDiagMatrix> cts_stages;
    std::vector<ComplexDiagMatrix> stc_stages;
    /** BSGS schedule of each stage, aligned with the stages above. */
    std::vector<lin::BsgsPlan> cts_bsgs;
    std::vector<lin::BsgsPlan> stc_bsgs;

    /**
     * Rotation-key requirements with the exact level each step is used
     * at, for level-pruned keygen (keys.h). The circuit raises to level
     * l_eff + depth, so its keys span most of the chain. Conjugation is
     * requested separately (conjugation_level()).
     */
    std::vector<GaloisKeyRequest> galois_requests(int l_eff) const;
    /** The level at which the CtS conjugation runs. */
    int conjugation_level(int l_eff) const
    {
        return l_eff + depth - params.cts_levels;
    }

    static BootstrapPlan build(const CkksParams& params,
                               const BootstrapParams& opts = {});

    /**
     * Process-wide memo of build() for the default BootstrapParams,
     * keyed by the fields the plan actually depends on (ring degree and
     * secret weight). The compiler, PreparedProgram, and every serving
     * client all need the same plan; at large ring sizes rebuilding it
     * per consumer costs seconds of redundant startup work.
     */
    static std::shared_ptr<const BootstrapPlan> cached(
        const CkksParams& params);
};

/**
 * A square complex matrix encoded as plaintext diagonals for BSGS
 * evaluation at one fixed level — the complex sibling of
 * lin::HeDiagonalMatrix, used for the bootstrap's DFT stage products.
 * Consumes exactly one level per apply().
 */
class HeComplexMatrix {
  public:
    /**
     * Encodes pre_factor * m's (pre-rotated) diagonals at `encode_scale`.
     * The post-rescale output scale of apply() is
     * input_scale * encode_scale / q_level.
     */
    HeComplexMatrix(const Context& ctx, const Encoder& encoder,
                    const ComplexDiagMatrix& m, const lin::BsgsPlan& plan,
                    int level, double encode_scale, double pre_factor);

    Ciphertext apply(const Evaluator& eval, const Ciphertext& ct) const;

    int level() const { return level_; }
    double encode_scale() const { return scale_; }

  private:
    const Context* ctx_;
    lin::BsgsPlan plan_;
    int level_;
    double scale_;
    /** encoded_[g][t] aligns with plan_.groups[g][t]. */
    std::map<u64, std::vector<Plaintext>> encoded_;
};

/** Wall-clock split of one bootstrap, for the microbench. */
struct BootstrapStats {
    double mod_raise_s = 0.0;
    double coeff_to_slot_s = 0.0;
    double eval_mod_s = 0.0;
    double slot_to_coeff_s = 0.0;
};

/**
 * A bootstrap plan bound to a Context: stage matrices encoded at their
 * levels and scales. Immutable after construction and safe to share
 * across concurrently running executors; all key material comes from the
 * Evaluator passed to bootstrap() (Galois keys for every plan step plus
 * conjugation, and the relinearization key for EvalMod).
 *
 * `input_scale` is the exact symbolic scale of the ciphertexts this
 * circuit will bootstrap (the compiler's scale resolution knows it per
 * instruction); the default 0 means the canonical scale Delta. Like the
 * retired oracle, the output is always at exactly Delta.
 */
class BootstrapCircuit {
  public:
    /** The plan is shared, not copied: its stage matrices are megabytes
     *  and several circuit variants (one per distinct input scale)
     *  typically hang off one plan. */
    BootstrapCircuit(const Context& ctx, const Encoder& encoder,
                     std::shared_ptr<const BootstrapPlan> plan, int l_eff,
                     double input_scale = 0.0);

    int l_eff() const { return l_eff_; }
    int l_boot() const { return plan_->depth; }
    int top_level() const { return l_eff_ + plan_->depth; }
    double input_scale() const { return input_scale_; }
    const BootstrapPlan& plan() const { return *plan_; }

    /** True when `ctx` has enough levels for the circuit above l_eff. */
    static bool supported(const Context& ctx, const BootstrapPlan& plan,
                          int l_eff)
    {
        return l_eff + plan.depth <= ctx.max_level();
    }

    /**
     * Bootstraps ct (any level, scale == input_scale) to level l_eff at
     * the canonical scale Delta, using only the evaluator's bound keys.
     */
    Ciphertext bootstrap(const Evaluator& eval, const Ciphertext& ct,
                         BootstrapStats* stats = nullptr) const;

  private:
    /** The scaled-sine stage on one real half (poly eval + doublings). */
    Ciphertext eval_mod(const Evaluator& eval, const Ciphertext& ct) const;

    const Context* ctx_;
    std::shared_ptr<const BootstrapPlan> plan_;
    int l_eff_ = 0;
    double input_scale_ = 0.0;
    double post_eval_scale_ = 0.0;  ///< symbolic scale after EvalMod
    std::vector<HeComplexMatrix> cts_;
    std::vector<HeComplexMatrix> stc_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_BOOTSTRAP_CIRCUIT_H_
