#ifndef ORION_SRC_CKKS_PRIMES_H_
#define ORION_SRC_CKKS_PRIMES_H_

/**
 * @file
 * NTT-friendly prime generation for RNS-CKKS moduli chains.
 *
 * RNS-CKKS needs primes q with q = 1 (mod 2N) so that the 2N-th roots of
 * unity exist in Z_q (Section 2.1 of the paper). The moduli chain consists
 * of a larger "first" prime (fresh-encryption headroom), a run of scaling
 * primes close to the scaling factor Delta, and one special prime for
 * hybrid key switching.
 */

#include <vector>

#include "src/common.h"
#include "src/ckks/modarith.h"

namespace orion::ckks {

/** Deterministic Miller-Rabin primality test, exact for all 64-bit inputs. */
bool is_prime(u64 n);

/**
 * Generates `count` distinct primes of exactly `bit_size` bits with
 * p = 1 (mod 2N), searching downward from 2^bit_size. `skip` lets callers
 * avoid primes already allocated to another part of the chain.
 */
std::vector<u64> generate_ntt_primes(int bit_size, int count, u64 poly_degree,
                                     const std::vector<u64>& skip = {});

/**
 * Finds psi, a primitive 2N-th root of unity mod q (so psi^N = -1).
 * Requires q = 1 (mod 2N).
 */
u64 find_primitive_root(u64 poly_degree, const Modulus& q);

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_PRIMES_H_
