#ifndef ORION_SRC_CKKS_SAMPLER_H_
#define ORION_SRC_CKKS_SAMPLER_H_

/**
 * @file
 * Randomness for key generation and encryption.
 *
 * The sampler is deterministic given its seed, which makes every test and
 * benchmark in the repository reproducible. This is a research artifact;
 * a production deployment would seed from a CSPRNG.
 */

#include <random>
#include <vector>

#include "src/common.h"
#include "src/ckks/modarith.h"

namespace orion::ckks {

/** Default standard deviation of the RLWE error distribution. */
inline constexpr double kErrorStdDev = 3.2;

/** Seeded source of the secret / error / uniform distributions of RLWE. */
class Sampler {
  public:
    explicit Sampler(u64 seed = 0x0123456789abcdefULL) : rng_(seed) {}

    /** Uniform ternary secret in {-1, 0, 1}^n, returned centered. */
    std::vector<i64>
    sample_ternary(std::size_t n)
    {
        std::uniform_int_distribution<int> dist(-1, 1);
        std::vector<i64> out(n);
        for (auto& x : out) x = dist(rng_);
        return out;
    }

    /**
     * Sparse ternary secret: exactly `weight` nonzero (+-1) coefficients
     * at positions drawn without replacement (Fisher-Yates over the index
     * set, so the draw count is deterministic in n and weight).
     */
    std::vector<i64>
    sample_ternary_sparse(std::size_t n, int weight)
    {
        ORION_CHECK(weight >= 1 && static_cast<std::size_t>(weight) <= n,
                    "sparse secret weight out of range: " << weight);
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i) idx[i] = i;
        std::vector<i64> out(n, 0);
        std::uniform_int_distribution<int> sign(0, 1);
        for (int k = 0; k < weight; ++k) {
            std::uniform_int_distribution<std::size_t> pick(
                static_cast<std::size_t>(k), n - 1);
            std::swap(idx[static_cast<std::size_t>(k)], idx[pick(rng_)]);
            out[idx[static_cast<std::size_t>(k)]] = sign(rng_) ? 1 : -1;
        }
        return out;
    }

    /** Rounded Gaussian error with standard deviation sigma. */
    std::vector<i64>
    sample_gaussian(std::size_t n, double sigma = kErrorStdDev)
    {
        std::normal_distribution<double> dist(0.0, sigma);
        std::vector<i64> out(n);
        for (auto& x : out) x = static_cast<i64>(std::llround(dist(rng_)));
        return out;
    }

    /** Uniform residues modulo q. */
    std::vector<u64>
    sample_uniform(std::size_t n, const Modulus& q)
    {
        std::vector<u64> out(n);
        sample_uniform_into(out.data(), n, q);
        return out;
    }

    /**
     * Uniform residues modulo q written straight into `dst` (no
     * allocation). This is the primitive behind seed-expanded
     * key-switching keys (keys.h expand_kswitch_a): the a-component of
     * every key digit is a pure function of (seed, basis), so the wire
     * format ships the seed instead of the residues and both ends expand
     * limb by limb through this call.
     */
    void
    sample_uniform_into(u64* dst, std::size_t n, const Modulus& q)
    {
        std::uniform_int_distribution<u64> dist(0, q.value() - 1);
        for (std::size_t i = 0; i < n; ++i) dst[i] = dist(rng_);
    }

    /** A single double drawn from N(0, sigma^2). */
    double
    sample_normal(double sigma)
    {
        std::normal_distribution<double> dist(0.0, sigma);
        return dist(rng_);
    }

    std::mt19937_64& rng() { return rng_; }

  private:
    std::mt19937_64 rng_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_SAMPLER_H_
