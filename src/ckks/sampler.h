#ifndef ORION_SRC_CKKS_SAMPLER_H_
#define ORION_SRC_CKKS_SAMPLER_H_

/**
 * @file
 * Randomness for key generation and encryption.
 *
 * The sampler is deterministic given its seed, which makes every test and
 * benchmark in the repository reproducible. This is a research artifact;
 * a production deployment would seed from a CSPRNG.
 */

#include <limits>
#include <random>
#include <vector>

#include "src/common.h"
#include "src/ckks/modarith.h"

namespace orion::ckks {

/** Default standard deviation of the RLWE error distribution. */
inline constexpr double kErrorStdDev = 3.2;

/**
 * SplitMix64: a fixed bijective finalizer over u64. Used to derive the
 * *published* per-key seeds (KswitchKey::a_seed) from a private,
 * domain-separated counter chain. Unlike raw mt19937_64 outputs — whose
 * untempered state is recoverable and whose stream also produces the
 * secret and the RLWE errors — these values carry no state of any
 * secret-bearing generator, so shipping them on the wire is safe.
 */
inline u64
splitmix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Seeded source of the secret / error / uniform distributions of RLWE. */
class Sampler {
  public:
    explicit Sampler(u64 seed = 0x0123456789abcdefULL) : rng_(seed) {}

    /** Uniform ternary secret in {-1, 0, 1}^n, returned centered. */
    std::vector<i64>
    sample_ternary(std::size_t n)
    {
        std::uniform_int_distribution<int> dist(-1, 1);
        std::vector<i64> out(n);
        for (auto& x : out) x = dist(rng_);
        return out;
    }

    /**
     * Sparse ternary secret: exactly `weight` nonzero (+-1) coefficients
     * at positions drawn without replacement (Fisher-Yates over the index
     * set, so the draw count is deterministic in n and weight).
     */
    std::vector<i64>
    sample_ternary_sparse(std::size_t n, int weight)
    {
        ORION_CHECK(weight >= 1 && static_cast<std::size_t>(weight) <= n,
                    "sparse secret weight out of range: " << weight);
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i) idx[i] = i;
        std::vector<i64> out(n, 0);
        std::uniform_int_distribution<int> sign(0, 1);
        for (int k = 0; k < weight; ++k) {
            std::uniform_int_distribution<std::size_t> pick(
                static_cast<std::size_t>(k), n - 1);
            std::swap(idx[static_cast<std::size_t>(k)], idx[pick(rng_)]);
            out[idx[static_cast<std::size_t>(k)]] = sign(rng_) ? 1 : -1;
        }
        return out;
    }

    /** Rounded Gaussian error with standard deviation sigma. */
    std::vector<i64>
    sample_gaussian(std::size_t n, double sigma = kErrorStdDev)
    {
        std::normal_distribution<double> dist(0.0, sigma);
        std::vector<i64> out(n);
        for (auto& x : out) x = static_cast<i64>(std::llround(dist(rng_)));
        return out;
    }

    /** Uniform residues modulo q. */
    std::vector<u64>
    sample_uniform(std::size_t n, const Modulus& q)
    {
        std::vector<u64> out(n);
        sample_uniform_into(out.data(), n, q);
        return out;
    }

    /**
     * Uniform residues modulo q written straight into `dst` (no
     * allocation). This is the primitive behind seed-expanded
     * key-switching keys (keys.h expand_kswitch_a): the a-component of
     * every key digit is a pure function of (seed, basis), so the wire
     * format ships the seed instead of the residues and both ends expand
     * limb by limb through this call.
     *
     * Because that seed-to-residue mapping is part of the serial-v3 wire
     * contract, it must be bit-identical across compilers and standard
     * libraries: mt19937_64 is fully specified by the C++ standard, but
     * std::uniform_int_distribution's algorithm is implementation-defined
     * (libstdc++ and libc++ disagree). So this rejection-samples raw
     * engine output instead — draw a u64, retry on the sliver above the
     * largest multiple of q, reduce — which every conforming stdlib
     * expands identically.
     */
    void
    sample_uniform_into(u64* dst, std::size_t n, const Modulus& q)
    {
        const u64 qv = q.value();
        // 2^64 mod q; accepting r <= 2^64 - rem - 1 leaves an exact
        // multiple of q outcomes, so r % q is unbiased.
        const u64 rem = (std::numeric_limits<u64>::max() % qv + 1) % qv;
        const u64 accept_max = std::numeric_limits<u64>::max() - rem;
        for (std::size_t i = 0; i < n; ++i) {
            u64 r = rng_();
            while (r > accept_max) r = rng_();
            dst[i] = r % qv;
        }
    }

    /** A single double drawn from N(0, sigma^2). */
    double
    sample_normal(double sigma)
    {
        std::normal_distribution<double> dist(0.0, sigma);
        return dist(rng_);
    }

    std::mt19937_64& rng() { return rng_; }

  private:
    std::mt19937_64 rng_;
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_SAMPLER_H_
