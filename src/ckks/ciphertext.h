#ifndef ORION_SRC_CKKS_CIPHERTEXT_H_
#define ORION_SRC_CKKS_CIPHERTEXT_H_

/**
 * @file
 * The three CKKS datatypes of Section 2.1: cleartexts are plain
 * std::vector<double> (or complex), plaintexts wrap one ring element, and
 * ciphertexts wrap two.
 */

#include <cmath>

#include "src/ckks/poly.h"

namespace orion::ckks {

/** Relative tolerance for matching operand scales. */
inline constexpr double kScaleRelTol = 1e-9;

/** True when two scales agree to within kScaleRelTol. */
inline bool
scales_match(double a, double b)
{
    return std::abs(a - b) <= kScaleRelTol * std::max(std::abs(a), std::abs(b));
}

/** An encoded (but unencrypted) message [m] with its scaling factor. */
struct Plaintext {
    RnsPoly poly;
    double scale = 0.0;

    int level() const { return poly.level(); }
};

/** An encrypted message [[m]]: the pair (c0, c1) with c0 + c1*s = m + e. */
struct Ciphertext {
    RnsPoly c0;
    RnsPoly c1;
    double scale = 0.0;

    int level() const { return c0.level(); }
    bool valid() const { return c0.valid(); }
};

}  // namespace orion::ckks

#endif  // ORION_SRC_CKKS_CIPHERTEXT_H_
