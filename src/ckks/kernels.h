#ifndef ORION_SRC_CKKS_KERNELS_H_
#define ORION_SRC_CKKS_KERNELS_H_

/**
 * @file
 * Runtime-dispatched SIMD kernels for the RNS-CKKS hot loops.
 *
 * Every limb-sized inner loop of the library — the Harvey lazy NTT
 * butterflies, the whole-limb lazy modarith passes, and the
 * u128-accumulated key-switch inner product — routes through the function
 * table returned by active(). Three implementations exist: portable
 * scalar (the PR-2 code, verbatim), AVX2, and AVX-512; the best one the
 * CPU supports is selected once at startup by CPUID, overridable with
 * ORION_SIMD=scalar|avx2|avx512 (requests above what the host supports
 * clamp down) or set_isa() from tests.
 *
 * Dispatch contract (see DESIGN.md "Vectorized kernels & memory arenas"):
 * every vector kernel is BIT-IDENTICAL to the scalar reference on every
 * input — not just congruent mod q. This falls out of two facts. First,
 * the vector code performs exactly the same u64 mod-2^64 operations per
 * element as the scalar code (the 128-bit intermediates of Barrett and
 * Shoup reduction are decomposed into explicit mulhi/mullo/carry words
 * whose values match the scalar u128 arithmetic word for word), and no
 * kernel has cross-element dependencies that could reorder. Second, the
 * lazy-range invariants chosen in PR 2 guarantee no lane ever overflows:
 * with q < 2^61, lazy residues live in [0, 2q) (Shoup products) or
 * [0, 4q) (butterfly sums), so every u64 addition of two lane values
 * stays below 2^63, and the 16-term chunks of the key-switch digit sum
 * keep the 128-bit lane accumulators below 2^127 — exactly the scalar
 * bounds, so wraparound behavior is identical too (there is none).
 */

#include "src/ckks/modarith.h"

namespace orion::ckks::kernels {

/** Instruction sets a kernel table can be built for, weakest first. */
enum class Isa : int {
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,  ///< requires F, DQ, VL, and BW
};

/**
 * Borrowed view of one NttTables instance — everything a kernel needs to
 * run the transform without depending on the ntt.h class layout.
 */
struct NttView {
    u64 n = 0;
    Modulus q;
    const u64* roots = nullptr;        ///< bit-reversed psi powers
    const u64* roots_shoup = nullptr;
    const u64* inv_roots = nullptr;
    const u64* inv_roots_shoup = nullptr;
    u64 n_inv = 0;
    u64 n_inv_shoup = 0;
    u64 inv_root_last_scaled = 0;  ///< inv_roots[1] * n_inv (fused stage)
    u64 inv_root_last_scaled_shoup = 0;
};

/**
 * One ISA's implementations. All array kernels accept arbitrary n
 * (vector bodies process full lanes, scalar tails finish the rest) and
 * allow dst == src aliasing where a src pointer exists; distinct arrays
 * must not otherwise overlap.
 */
struct KernelTable {
    /** In-place forward negacyclic NTT (lazy butterflies + normalize). */
    void (*ntt_forward)(const NttView& v, u64* a);
    /** In-place inverse negacyclic NTT (fused 1/N scaling). */
    void (*ntt_inverse)(const NttView& v, u64* a);

    /** a[j] = (a[j] + b[j]) mod q over n residues in [0, q). */
    void (*add_mod_n)(u64* a, const u64* b, u64 n, const Modulus& q);
    /** a[j] = (a[j] - b[j]) mod q over n residues in [0, q). */
    void (*sub_mod_n)(u64* a, const u64* b, u64 n, const Modulus& q);
    /** a[j] = a[j] * b[j] mod q (Barrett) over n residues. */
    void (*mul_mod_n)(u64* a, const u64* b, u64 n, const Modulus& q);
    /** a[j] = (a[j] + x[j] * y[j]) mod q — one Barrett per element. */
    void (*add_product_n)(u64* a, const u64* x, const u64* y, u64 n,
                          const Modulus& q);
    /**
     * a[j] = src[j] * w mod q via Shoup (w_shoup = shoup_precompute(w)).
     * a == src is allowed (the in-place scalar-multiply case).
     */
    void (*mul_scalar_shoup_n)(u64* a, const u64* src, u64 n, u64 w,
                               u64 w_shoup, const Modulus& q);
    /** Maps n lazy residues in [0, 4q) to canonical [0, q). */
    void (*normalize_lazy_n)(u64* a, u64 n, const Modulus& q);

    /**
     * The key-switch digit inner product over one limb:
     *   o0[j] = (o0[j] + sum_d xs[d][j] * bs[d][j]) mod q
     *   o1[j] = (o1[j] + sum_d xs[d][j] * as[d][j]) mod q
     * accumulated in 128 bits with a Barrett reduction between 16-term
     * chunks (and one at the end), exactly the PR-2 lazy schedule.
     */
    void (*ks_inner_product)(u64* o0, u64* o1, const u64* const* xs,
                             const u64* const* bs, const u64* const* as,
                             u64 num_digits, u64 n, const Modulus& q);
    /**
     * Fast-base-conversion accumulation for one target limb:
     *   dst[x] = (sum_j lams[j][x] * hats[j]) mod q,
     * len <= 32 terms summed in 128 bits, one Barrett per element.
     */
    void (*base_conv_acc)(u64* dst, const u64* const* lams, const u64* hats,
                          int len, u64 n, const Modulus& q);
};

/** True when this build and CPU can run the given ISA's table. */
bool isa_supported(Isa isa);
/** The strongest supported ISA (what dispatch picks sans override). */
Isa best_supported_isa();
/** The currently selected ISA. */
Isa active_isa();
/**
 * Forces dispatch to `isa` (test hook behind the ORION_SIMD env override).
 * The ISA must be supported on this host.
 */
void set_isa(Isa isa);
const char* isa_name(Isa isa);

/** The kernel table dispatch selected (what all hot paths call). */
const KernelTable& active();
/**
 * A specific ISA's table, for cross-checking kernels against each other.
 * Calling into an unsupported ISA's table is undefined (SIGILL); guard
 * with isa_supported().
 */
const KernelTable& table(Isa isa);

}  // namespace orion::ckks::kernels

#endif  // ORION_SRC_CKKS_KERNELS_H_
