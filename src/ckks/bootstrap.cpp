#include "src/ckks/bootstrap.h"

namespace orion::ckks {

namespace {

/** The memoized plan for default options; a private build otherwise. */
std::shared_ptr<const BootstrapPlan>
resolve_plan(const CkksParams& params, const BootstrapParams& opts)
{
    const BootstrapParams defaults;
    const bool is_default =
        opts.k_range == defaults.k_range &&
        opts.double_angle == defaults.double_angle &&
        opts.sine_degree == defaults.sine_degree &&
        opts.cts_levels == defaults.cts_levels &&
        opts.stc_levels == defaults.stc_levels &&
        opts.fit_tolerance == defaults.fit_tolerance;
    if (is_default) return BootstrapPlan::cached(params);
    return std::make_shared<const BootstrapPlan>(
        BootstrapPlan::build(params, opts));
}

}  // namespace

Bootstrapper::Bootstrapper(const Context& ctx, const Encoder& encoder,
                           int l_eff, const BootstrapParams& opts)
    : circuit_(ctx, encoder, resolve_plan(ctx.params(), opts), l_eff)
{
}

OracleBootstrapper::OracleBootstrapper(const Context& ctx,
                                       const Encoder& encoder,
                                       const SecretKey& sk,
                                       const OracleBootstrapConfig& config)
    : ctx_(&ctx), encoder_(&encoder), config_(config), decryptor_(ctx, sk),
      encryptor_(ctx, sk, /*seed=*/0x626f6f74ULL),
      noise_(/*seed=*/0x6e6f6973ULL)
{
    ORION_CHECK(config.l_boot >= 1 && config.l_boot < ctx.max_level(),
                "l_boot out of range: " << config.l_boot);
}

Ciphertext
OracleBootstrapper::bootstrap(const Ciphertext& ct)
{
    // Accept inputs whose scale drifted (e.g. after a square activation);
    // like a real bootstrapper, the output is always at the canonical
    // scale Delta.
    ORION_CHECK(ct.scale > 0.25 * ctx_->scale() &&
                    ct.scale < 4.0 * ctx_->scale(),
                "bootstrap input scale implausible: " << ct.scale);
    // The oracle's heavy ops all run on the parallel kernel substrate:
    // decrypt and encrypt fan out per RNS limb, and decode/encode run the
    // special FFT — the clear-text twin of the real circuit's
    // CoeffToSlot/SlotToCoeff stages — with its butterflies fanned out
    // per stage (see special_fft.cpp). Only the noise loop below is
    // serial.
    const Plaintext pt = decryptor_.decrypt(ct);
    std::vector<std::complex<double>> slots = encoder_->decode_complex(pt);

    // A real EvalMod only approximates the modular reduction well inside
    // [-input_range, input_range]; emulate the same contract. This loop
    // must stay serial: the noise samples come from one sequential RNG
    // stream, and the output has to be bit-identical at any thread count.
    for (std::complex<double>& v : slots) {
        ORION_CHECK(std::abs(v.real()) <= config_.input_range * 1.05,
                    "bootstrap input out of range: " << v.real()
                        << " (range estimation should have prevented this)");
        v += std::complex<double>(noise_.sample_normal(config_.noise_std),
                                  noise_.sample_normal(config_.noise_std));
    }

    const Plaintext fresh = encoder_->encode_complex(
        slots, l_eff(), ctx_->scale());
    Ciphertext out = encryptor_.encrypt(fresh);
    ctx_->counters().bootstrap += 1;
    return out;
}

}  // namespace orion::ckks
