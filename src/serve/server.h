#ifndef ORION_SRC_SERVE_SERVER_H_
#define ORION_SRC_SERVE_SERVER_H_

/**
 * @file
 * The multi-session FHE inference server (the deployment model of Section
 * 6: clients encrypt locally, the untrusted server computes on
 * ciphertexts it cannot read).
 *
 * Architecture:
 *  - One compiled network + one shared PreparedProgram (the expensive
 *    key-independent encodings, built once).
 *  - A pool of `max_inflight` worker threads, each owning one
 *    external-key CkksExecutor. Per request, the worker takes a pinned
 *    lease on the session's evaluation keys (loading them from the spill
 *    file if the LRU key cache evicted them; see key_store.h), binds them
 *    into its executor, runs the encrypted program, and unbinds on every
 *    exit path; an executor therefore serves every session in turn, which
 *    is why CkksExecutor must be safely re-runnable.
 *  - A bounded submission queue (`queue_capacity` waiting requests).
 *    submit() applies backpressure by blocking; try_submit() rejects
 *    immediately when the queue is full.
 *  - Per-request statistics (queue wait, execute wall, rotations,
 *    bootstraps) are returned with each reply and aggregated into
 *    server-level counters.
 *
 * Threading: submit()/try_submit()/stats()/register_session() are safe to
 * call from any thread. Worker kernels default to one thread per request
 * (throughput via request-level parallelism); ServeOptions::
 * threads_per_request widens individual requests instead.
 */

#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/executor.h"
#include "src/core/telemetry.h"
#include "src/serve/session.h"

namespace orion::serve {

/** Server construction knobs (0 = take the core config's default). */
struct ServeOptions {
    /** Requests executing concurrently (workers in the executor pool). */
    int max_inflight = 0;
    /** Submitted-but-not-executing requests held before backpressure. */
    int queue_capacity = 0;
    /**
     * Kernel threads per executing request: 1 serializes each request's
     * kernels (default; throughput comes from request parallelism), > 1
     * pins a per-request pool of that size, 0 inherits the ambient
     * setting at run time.
     */
    int threads_per_request = 1;
    /**
     * Start with the worker pool idle; requests queue (and the capacity
     * limit applies) until resume(). Lets tests and benches stage a
     * backlog deterministically.
     */
    bool start_paused = false;
    /**
     * Cap (MiB) on evaluation-key bytes kept resident across sessions;
     * least-recently-used sessions beyond it spill to disk and reload on
     * demand (see key_store.h). 0 = unbounded (all keys stay resident);
     * -1 = take the core config's default ($ORION_KEY_CACHE_MB).
     */
    int key_cache_mb = -1;
    /** Spill directory for evicted keys (empty = private temp dir). */
    std::string key_spill_dir;
};

/** Failure classification of one request (ledger + RequestStats). */
enum class ErrorKind {
    kNone = 0,
    kBadSession,   ///< unknown / unregistered session id
    kDecodeError,  ///< malformed request bytes
    kExecError,    ///< execution failure under valid keys
    /**
     * Backpressure: the submission queue was full (a try_submit
     * rejection). Distinct from the kinds above because it is
     * *retryable* — the transport layer (net::ServeEndpoint) surfaces it
     * as a typed wire error so routers and clients back off and resend
     * instead of treating it as a permanent failure. Never appears in
     * the worker-loop ledger (rejected requests never execute).
     */
    kOverloaded,
};
const char* to_string(ErrorKind kind);

/**
 * The exception a failed request resolves to: an orion::Error carrying
 * its ErrorKind so the server ledger (and callers) can attribute the
 * failure instead of collapsing everything into one opaque bucket.
 */
class RequestError : public Error {
  public:
    RequestError(ErrorKind kind, const std::string& msg)
        : Error(msg), kind_(kind)
    {
    }
    ErrorKind kind() const { return kind_; }

  private:
    ErrorKind kind_;
};

/** Per-request statistics (also echoed to the client in the Response). */
struct RequestStats {
    u64 session_id = 0;
    u64 request_id = 0;
    double queue_wait_s = 0.0;  ///< submit -> worker pickup
    double execute_s = 0.0;     ///< encrypted program wall time
    u64 rotations = 0;
    u64 bootstraps = 0;
    /** Samples served by this request (its batch lanes); 1 when unbatched. */
    u64 batch_count = 1;
    /** kNone on success; failed requests carry theirs in RequestError. */
    ErrorKind error_kind = ErrorKind::kNone;
    /** Table-4-style per-layer wall-clock split of execute_s. */
    std::vector<core::LayerTiming> layer_times;
};

/** One finished request: the serialized Response plus its statistics. */
struct ServeReply {
    ckks::serial::Bytes response;
    RequestStats stats;
};

/**
 * Aggregate server counters (snapshot via InferenceServer::stats()).
 * Every submit()/try_submit() call bumps `submitted`, so once the server
 * is idle the ledger balances: completed + failed + rejected == submitted.
 */
struct ServerStats {
    u64 submitted = 0;
    u64 completed = 0;
    /** Samples served across completed requests (sum of batch counts). */
    u64 images = 0;
    u64 failed = 0;    ///< sum of the three failed_* kinds below
    u64 rejected = 0;  ///< try_submit refusals on a full queue
    // Failure attribution: failed == failed_bad_session + failed_decode +
    // failed_exec once the server is idle.
    u64 failed_bad_session = 0;
    u64 failed_decode = 0;
    u64 failed_exec = 0;
    u64 inflight = 0;  ///< executing right now (snapshot gauge)
    double total_queue_wait_s = 0.0;
    double total_execute_s = 0.0;
    u64 total_rotations = 0;
    u64 total_bootstraps = 0;
    u64 peak_inflight = 0;
    u64 peak_queue_depth = 0;
    // Evaluation-key cache counters (see KeyStoreStats).
    u64 key_cache_hits = 0;
    u64 key_cache_misses = 0;
    u64 key_cache_evictions = 0;
    u64 key_cache_prefetches = 0;
    u64 key_resident_bytes = 0;
    u64 key_resident_sessions = 0;
    u64 key_disk_bytes = 0;
    /** Bytes of unregistered-but-still-leased keys (in-flight requests). */
    u64 key_zombie_bytes = 0;
};

/** A multi-session encrypted-inference server over one compiled network. */
class InferenceServer {
  public:
    /**
     * Builds (or adopts) the shared PreparedProgram and starts the worker
     * pool. The network must be bootstrap-free (the repo's bootstrapper
     * is a secret-key oracle; see ROADMAP) and compiled with matrices.
     */
    InferenceServer(const core::CompiledNetwork& cn,
                    const ckks::Context& ctx, ServeOptions opts = {},
                    std::shared_ptr<const core::PreparedProgram> prepared =
                        nullptr);
    /** Fails pending requests, drains workers, joins. */
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /** Registers a client's serialized KeyBundle; returns the session id. */
    u64 register_session(std::span<const u8> key_bundle);
    /** Idempotent; false when the id is unknown (never an error). */
    bool unregister_session(u64 id);
    std::size_t session_count() const { return sessions_.session_count(); }
    /**
     * Requests completed under one session; nullopt for unknown ids (a
     * live session that has served nothing yet reports 0, not nullopt).
     */
    std::optional<u64> session_requests(u64 id) const;

    /**
     * Enqueues a serialized Request. Blocks while the queue is at
     * capacity (backpressure). The future resolves to the reply, or to an
     * exception for unknown sessions / malformed bytes / execution
     * failures.
     */
    std::future<ServeReply> submit(ckks::serial::Bytes request);

    /** Non-blocking submit: nullopt (and stats().rejected++) when full. */
    std::optional<std::future<ServeReply>> try_submit(
        ckks::serial::Bytes request);

    /** Releases a start_paused worker pool; no-op when already running. */
    void resume();

    ServerStats stats() const;
    /**
     * Prometheus-style text exposition: this server's ledger counters,
     * queue/key-cache gauges, and request-latency histograms, followed by
     * the process-wide registry (ckks.op.*, arena.*, boot.* stage
     * histograms). One scrape surface for everything stats() reports.
     */
    std::string metrics_text() const;
    /** This server's private registry (request metrics only). */
    const telemetry::Registry& metrics() const { return metrics_; }
    int max_inflight() const { return max_inflight_; }
    int queue_capacity() const { return queue_capacity_; }
    const ckks::Context& context() const { return *ctx_; }
    const core::CompiledNetwork& network() const { return *cn_; }
    std::shared_ptr<const core::PreparedProgram> prepared() const
    {
        return prepared_;
    }

  private:
    struct Pending {
        ckks::serial::Bytes bytes;
        std::promise<ServeReply> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    std::future<ServeReply> enqueue(ckks::serial::Bytes request,
                                    bool blocking, bool& accepted);
    void worker_loop(std::size_t worker_index);
    ServeReply execute(Pending& p,
                       std::chrono::steady_clock::time_point picked_up,
                       std::size_t worker_index);

    const core::CompiledNetwork* cn_;
    const ckks::Context* ctx_;
    int max_inflight_ = 0;
    int queue_capacity_ = 0;
    std::shared_ptr<const core::PreparedProgram> prepared_;
    SessionManager sessions_;
    // One external-key executor per worker; index == worker index.
    std::vector<std::unique_ptr<core::CkksExecutor>> executors_;

    mutable std::mutex mu_;
    std::condition_variable queue_cv_;  ///< workers wait for work
    std::condition_variable space_cv_;  ///< submitters wait for space
    std::deque<Pending> queue_;
    bool stop_ = false;
    bool paused_ = false;
    u64 inflight_ = 0;
    ServerStats stats_;

    // Per-server registry: the ledger and latency histograms live here so
    // one server's scrape is not polluted by another's requests. The
    // instrument references are captured once (registry lookups lock) and
    // mirrored by the same code paths that maintain stats_.
    telemetry::Registry metrics_;
    telemetry::Counter& m_submitted_ = metrics_.counter("serve.submitted");
    telemetry::Counter& m_completed_ = metrics_.counter("serve.completed");
    telemetry::Counter& m_failed_ = metrics_.counter("serve.failed");
    telemetry::Counter& m_rejected_ = metrics_.counter("serve.rejected");
    telemetry::Counter& m_failed_bad_session_ =
        metrics_.counter("serve.failed.bad_session");
    telemetry::Counter& m_failed_decode_ =
        metrics_.counter("serve.failed.decode_error");
    telemetry::Counter& m_failed_exec_ =
        metrics_.counter("serve.failed.exec_error");
    telemetry::Histogram& m_queue_wait_ =
        metrics_.histogram("serve.queue_wait.seconds");
    telemetry::Histogram& m_execute_ =
        metrics_.histogram("serve.execute.seconds");
    telemetry::Counter& m_images_ = metrics_.counter("serve.images");
    telemetry::Histogram& m_batch_size_ =
        metrics_.histogram("serve.batch_size");

    std::vector<std::thread> workers_;
};

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_SERVER_H_
