#ifndef ORION_SRC_SERVE_SERVER_H_
#define ORION_SRC_SERVE_SERVER_H_

/**
 * @file
 * The multi-session FHE inference server (the deployment model of Section
 * 6: clients encrypt locally, the untrusted server computes on
 * ciphertexts it cannot read).
 *
 * Architecture:
 *  - One compiled network + one shared PreparedProgram (the expensive
 *    key-independent encodings, built once).
 *  - A pool of `max_inflight` worker threads, each owning one
 *    external-key CkksExecutor. Per request, the worker takes a pinned
 *    lease on the session's evaluation keys (loading them from the spill
 *    file if the LRU key cache evicted them; see key_store.h), binds them
 *    into its executor, runs the encrypted program, and unbinds on every
 *    exit path; an executor therefore serves every session in turn, which
 *    is why CkksExecutor must be safely re-runnable.
 *  - A bounded submission queue (`queue_capacity` waiting requests).
 *    submit() applies backpressure by blocking; try_submit() rejects
 *    immediately when the queue is full.
 *  - Per-request statistics (queue wait, execute wall, rotations,
 *    bootstraps) are returned with each reply and aggregated into
 *    server-level counters.
 *
 * Threading: submit()/try_submit()/stats()/register_session() are safe to
 * call from any thread. Worker kernels default to one thread per request
 * (throughput via request-level parallelism); ServeOptions::
 * threads_per_request widens individual requests instead.
 */

#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/executor.h"
#include "src/serve/session.h"

namespace orion::serve {

/** Server construction knobs (0 = take the core config's default). */
struct ServeOptions {
    /** Requests executing concurrently (workers in the executor pool). */
    int max_inflight = 0;
    /** Submitted-but-not-executing requests held before backpressure. */
    int queue_capacity = 0;
    /**
     * Kernel threads per executing request: 1 serializes each request's
     * kernels (default; throughput comes from request parallelism), > 1
     * pins a per-request pool of that size, 0 inherits the ambient
     * setting at run time.
     */
    int threads_per_request = 1;
    /**
     * Start with the worker pool idle; requests queue (and the capacity
     * limit applies) until resume(). Lets tests and benches stage a
     * backlog deterministically.
     */
    bool start_paused = false;
    /**
     * Cap (MiB) on evaluation-key bytes kept resident across sessions;
     * least-recently-used sessions beyond it spill to disk and reload on
     * demand (see key_store.h). 0 = unbounded (all keys stay resident);
     * -1 = take the core config's default ($ORION_KEY_CACHE_MB).
     */
    int key_cache_mb = -1;
    /** Spill directory for evicted keys (empty = private temp dir). */
    std::string key_spill_dir;
};

/** Per-request statistics (also echoed to the client in the Response). */
struct RequestStats {
    u64 session_id = 0;
    u64 request_id = 0;
    double queue_wait_s = 0.0;  ///< submit -> worker pickup
    double execute_s = 0.0;     ///< encrypted program wall time
    u64 rotations = 0;
    u64 bootstraps = 0;
};

/** One finished request: the serialized Response plus its statistics. */
struct ServeReply {
    ckks::serial::Bytes response;
    RequestStats stats;
};

/**
 * Aggregate server counters (snapshot via InferenceServer::stats()).
 * Every submit()/try_submit() call bumps `submitted`, so once the server
 * is idle the ledger balances: completed + failed + rejected == submitted.
 */
struct ServerStats {
    u64 submitted = 0;
    u64 completed = 0;
    u64 failed = 0;    ///< bad session / malformed request / exec error
    u64 rejected = 0;  ///< try_submit refusals on a full queue
    u64 inflight = 0;  ///< executing right now (snapshot gauge)
    double total_queue_wait_s = 0.0;
    double total_execute_s = 0.0;
    u64 total_rotations = 0;
    u64 total_bootstraps = 0;
    u64 peak_inflight = 0;
    u64 peak_queue_depth = 0;
    // Evaluation-key cache counters (see KeyStoreStats).
    u64 key_cache_hits = 0;
    u64 key_cache_misses = 0;
    u64 key_cache_evictions = 0;
    u64 key_cache_prefetches = 0;
    u64 key_resident_bytes = 0;
    u64 key_resident_sessions = 0;
    u64 key_disk_bytes = 0;
    /** Bytes of unregistered-but-still-leased keys (in-flight requests). */
    u64 key_zombie_bytes = 0;
};

/** A multi-session encrypted-inference server over one compiled network. */
class InferenceServer {
  public:
    /**
     * Builds (or adopts) the shared PreparedProgram and starts the worker
     * pool. The network must be bootstrap-free (the repo's bootstrapper
     * is a secret-key oracle; see ROADMAP) and compiled with matrices.
     */
    InferenceServer(const core::CompiledNetwork& cn,
                    const ckks::Context& ctx, ServeOptions opts = {},
                    std::shared_ptr<const core::PreparedProgram> prepared =
                        nullptr);
    /** Fails pending requests, drains workers, joins. */
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /** Registers a client's serialized KeyBundle; returns the session id. */
    u64 register_session(std::span<const u8> key_bundle);
    /** Idempotent; false when the id is unknown (never an error). */
    bool unregister_session(u64 id);
    std::size_t session_count() const { return sessions_.session_count(); }
    /**
     * Requests completed under one session; nullopt for unknown ids (a
     * live session that has served nothing yet reports 0, not nullopt).
     */
    std::optional<u64> session_requests(u64 id) const;

    /**
     * Enqueues a serialized Request. Blocks while the queue is at
     * capacity (backpressure). The future resolves to the reply, or to an
     * exception for unknown sessions / malformed bytes / execution
     * failures.
     */
    std::future<ServeReply> submit(ckks::serial::Bytes request);

    /** Non-blocking submit: nullopt (and stats().rejected++) when full. */
    std::optional<std::future<ServeReply>> try_submit(
        ckks::serial::Bytes request);

    /** Releases a start_paused worker pool; no-op when already running. */
    void resume();

    ServerStats stats() const;
    int max_inflight() const { return max_inflight_; }
    int queue_capacity() const { return queue_capacity_; }
    const ckks::Context& context() const { return *ctx_; }
    const core::CompiledNetwork& network() const { return *cn_; }
    std::shared_ptr<const core::PreparedProgram> prepared() const
    {
        return prepared_;
    }

  private:
    struct Pending {
        ckks::serial::Bytes bytes;
        std::promise<ServeReply> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    std::future<ServeReply> enqueue(ckks::serial::Bytes request,
                                    bool blocking, bool& accepted);
    void worker_loop(std::size_t worker_index);
    ServeReply execute(Pending& p,
                       std::chrono::steady_clock::time_point picked_up,
                       std::size_t worker_index);

    const core::CompiledNetwork* cn_;
    const ckks::Context* ctx_;
    int max_inflight_ = 0;
    int queue_capacity_ = 0;
    std::shared_ptr<const core::PreparedProgram> prepared_;
    SessionManager sessions_;
    // One external-key executor per worker; index == worker index.
    std::vector<std::unique_ptr<core::CkksExecutor>> executors_;

    mutable std::mutex mu_;
    std::condition_variable queue_cv_;  ///< workers wait for work
    std::condition_variable space_cv_;  ///< submitters wait for space
    std::deque<Pending> queue_;
    bool stop_ = false;
    bool paused_ = false;
    u64 inflight_ = 0;
    ServerStats stats_;

    std::vector<std::thread> workers_;
};

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_SERVER_H_
