#include "src/serve/client.h"

namespace orion::serve {

namespace {

/**
 * Exactly the Galois keys serving this program needs — the program's
 * level-pruned rotation steps plus the bootstrap circuit's (and its
 * conjugation) when the program bootstraps. The server validates the
 * registered bundle against the same derivation.
 */
ckks::GaloisKeys
make_serving_galois(ckks::KeyGenerator& keygen,
                    const core::CompiledNetwork& cn,
                    const ckks::Context& ctx)
{
    const core::GaloisRequirements req = core::required_galois(cn, ctx);
    return keygen.make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(req.requests),
        req.conjugation, req.conjugation_level);
}

}  // namespace

ServeClient::ServeClient(const core::CompiledNetwork& cn,
                         const ckks::Context& ctx, u64 seed)
    : cn_(&cn), ctx_(&ctx), encoder_(ctx), keygen_(ctx, seed),
      pk_(keygen_.make_public_key()), relin_(keygen_.make_relin_key()),
      galois_(make_serving_galois(keygen_, cn, ctx)),
      encryptor_(ctx, pk_), decryptor_(ctx, keygen_.secret_key())
{
}

ckks::serial::Bytes
ServeClient::key_bundle() const
{
    // Serialize straight from the members: a KeyBundle temporary would
    // deep-copy the (potentially hundreds of MB of) Galois keys.
    ckks::serial::ByteWriter w;
    ckks::serial::write_params(w, ctx_->params());
    ckks::serial::write_kswitch_key(w, relin_);
    ckks::serial::write_galois_keys(w, galois_);
    return finish_record(ckks::serial::RecordKind::kKeyBundle,
                         std::move(w));
}

ckks::serial::Bytes
ServeClient::make_request(const std::vector<double>& input)
{
    ORION_CHECK(session_id_ != 0,
                "no session id: register the key bundle and call "
                "set_session_id first");
    Request req;
    req.session_id = session_id_;
    req.request_id = next_request_id_++;
    req.inputs =
        core::encrypt_network_input(*cn_, *ctx_, encoder_, encryptor_, input);
    return encode_request(req);
}

ckks::serial::Bytes
ServeClient::make_request_batch(const std::vector<std::vector<double>>& inputs)
{
    ORION_CHECK(session_id_ != 0,
                "no session id: register the key bundle and call "
                "set_session_id first");
    Request req;
    req.session_id = session_id_;
    req.request_id = next_request_id_++;
    req.batch_count = inputs.size();
    req.inputs = core::encrypt_network_input_batch(*cn_, *ctx_, encoder_,
                                                   encryptor_, inputs);
    return encode_request(req);
}

std::vector<double>
ServeClient::decrypt_response(std::span<const u8> response)
{
    const Response resp = decode_response(response, *ctx_);
    return core::decrypt_network_output(*cn_, encoder_, decryptor_,
                                        resp.outputs);
}

std::vector<std::vector<double>>
ServeClient::decrypt_response_batch(std::span<const u8> response,
                                    int batch_count)
{
    const Response resp = decode_response(response, *ctx_);
    return core::decrypt_network_output_batch(*cn_, encoder_, decryptor_,
                                              resp.outputs, batch_count);
}

Response
ServeClient::parse_response(std::span<const u8> response) const
{
    return decode_response(response, *ctx_);
}

}  // namespace orion::serve
