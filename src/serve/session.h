#ifndef ORION_SRC_SERVE_SESSION_H_
#define ORION_SRC_SERVE_SESSION_H_

/**
 * @file
 * Per-client session state. Each client registers a KeyBundle once; the
 * decoded evaluation keys live in a KeyStore (disk-backed, LRU-bounded)
 * and are handed to request execution as pinned leases, so neither an
 * unregister nor a cache eviction can pull keys out from under an
 * in-flight request.
 */

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "src/serve/key_store.h"
#include "src/serve/wire.h"

namespace orion::serve {

/** One client's server-side state (keys live in the KeyStore). */
struct Session {
    u64 id = 0;

    /** Requests completed under this session (relaxed; informational). */
    ckks::OpCounter requests_served;
};

/**
 * What a request executes against: the session record plus a pinned
 * lease on its evaluation keys. Both stay valid for the lease's lifetime
 * even if the session is unregistered or its keys evicted concurrently.
 */
struct SessionLease {
    std::shared_ptr<Session> session;
    KeyStore::Lease keys;

    explicit operator bool() const
    {
        return session != nullptr && static_cast<bool>(keys);
    }
};

/** Thread-safe registry of sessions, keyed by server-assigned id. */
class SessionManager {
  public:
    /**
     * `key_cache_bytes` bounds resident evaluation-key bytes across all
     * sessions (0 = unbounded, keys never spill); `key_spill_dir` is
     * forwarded to the KeyStore (empty = private temp directory).
     */
    explicit SessionManager(const ckks::Context& ctx,
                            std::size_t key_cache_bytes = 0,
                            std::string key_spill_dir = {})
        : ctx_(&ctx), keys_(ctx, key_cache_bytes, std::move(key_spill_dir))
    {
    }

    /**
     * Decodes and validates a serialized KeyBundle (parameters must be
     * ring-compatible with the server context) and registers it under a
     * fresh session id. `validate`, when given, runs on the decoded
     * bundle before registration (the server checks key coverage against
     * the compiled program there); a throw propagates and nothing is
     * registered.
     */
    u64 register_session(
        std::span<const u8> key_bundle,
        const std::function<void(const KeyBundle&)>& validate = {});

    /**
     * Removes a session; in-flight requests keep their leases. Idempotent:
     * false when the id is unknown (never registered or already removed).
     */
    bool unregister(u64 id);

    /**
     * The session plus a pinned key lease, or an empty lease when the id
     * is unknown. Blocks while evicted keys reload from the spill file.
     */
    SessionLease find(u64 id) const;

    /** The session record only — never touches the key cache. */
    std::shared_ptr<Session> peek(u64 id) const;

    /** Hints the key cache to pre-load a session's keys. Never blocks. */
    void prefetch(u64 id) const { keys_.prefetch(id); }

    std::size_t session_count() const;
    KeyStoreStats key_stats() const { return keys_.stats(); }
    const KeyStore& key_store() const { return keys_; }

  private:
    const ckks::Context* ctx_;
    mutable KeyStore keys_;  ///< find() loads on miss, hence mutable
    mutable std::mutex mu_;
    u64 next_id_ = 1;
    std::map<u64, std::shared_ptr<Session>> sessions_;
};

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_SESSION_H_
