#ifndef ORION_SRC_SERVE_SESSION_H_
#define ORION_SRC_SERVE_SESSION_H_

/**
 * @file
 * Per-client session state. Each client registers a KeyBundle once; the
 * server keeps the deserialized evaluation keys alive for the lifetime of
 * the session and binds them into a pooled executor per request. Sessions
 * are handed out as shared_ptr so an unregister cannot pull keys out from
 * under an in-flight request.
 */

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "src/serve/wire.h"

namespace orion::serve {

/** One client's server-side state: evaluation keys + counters. */
struct Session {
    u64 id = 0;
    ckks::KswitchKey relin;
    ckks::GaloisKeys galois;

    /** Requests completed under this session (relaxed; informational). */
    ckks::OpCounter requests_served;
};

/** Thread-safe registry of sessions, keyed by server-assigned id. */
class SessionManager {
  public:
    explicit SessionManager(const ckks::Context& ctx) : ctx_(&ctx) {}

    /**
     * Decodes and validates a serialized KeyBundle (parameters must be
     * ring-compatible with the server context) and registers it under a
     * fresh session id. `validate`, when given, runs on the decoded
     * bundle before registration (the server checks key coverage against
     * the compiled program there); a throw propagates and nothing is
     * registered.
     */
    u64 register_session(
        std::span<const u8> key_bundle,
        const std::function<void(const KeyBundle&)>& validate = {});

    /** Removes a session; in-flight requests keep their shared_ptr. */
    void unregister(u64 id);

    /** The session, or nullptr when the id is unknown. */
    std::shared_ptr<Session> find(u64 id) const;

    std::size_t session_count() const;

  private:
    const ckks::Context* ctx_;
    mutable std::mutex mu_;
    u64 next_id_ = 1;
    std::map<u64, std::shared_ptr<Session>> sessions_;
};

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_SESSION_H_
