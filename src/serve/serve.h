#ifndef ORION_SRC_SERVE_SERVE_H_
#define ORION_SRC_SERVE_SERVE_H_

/**
 * @file
 * Umbrella header for the serving subsystem: wire messages, session
 * registry, the multi-session inference server, and the client helper.
 * See README's "Serving" section for the protocol and threading model.
 */

#include "src/serve/client.h"
#include "src/serve/key_store.h"
#include "src/serve/server.h"
#include "src/serve/session.h"
#include "src/serve/wire.h"

#endif  // ORION_SRC_SERVE_SERVE_H_
