#include "src/serve/server.h"

namespace orion::serve {

namespace {

double
seconds_between(std::chrono::steady_clock::time_point a,
                std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

}  // namespace

namespace {

std::size_t
resolved_key_cache_bytes(const ServeOptions& opts,
                         const core::OrionConfig& defaults)
{
    const int mb =
        opts.key_cache_mb >= 0 ? opts.key_cache_mb : defaults.key_cache_mb;
    return static_cast<std::size_t>(mb) * (std::size_t{1} << 20);
}

}  // namespace

const char*
to_string(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kBadSession: return "bad_session";
    case ErrorKind::kDecodeError: return "decode_error";
    case ErrorKind::kExecError: return "exec_error";
    case ErrorKind::kOverloaded: return "overloaded";
    }
    return "unknown";
}

InferenceServer::InferenceServer(
    const core::CompiledNetwork& cn, const ckks::Context& ctx,
    ServeOptions opts, std::shared_ptr<const core::PreparedProgram> prepared)
    : cn_(&cn),
      ctx_(&ctx),
      sessions_(ctx, resolved_key_cache_bytes(opts, core::config()),
                opts.key_spill_dir),
      paused_(opts.start_paused)
{
    const core::OrionConfig defaults = core::config();
    core::OrionConfig resolved = defaults;
    if (opts.max_inflight > 0) resolved.max_inflight = opts.max_inflight;
    max_inflight_ = resolved.resolved_max_inflight();
    queue_capacity_ = opts.queue_capacity > 0 ? opts.queue_capacity
                                              : defaults.queue_capacity;
    ORION_CHECK(max_inflight_ >= 1 && queue_capacity_ >= 1,
                "server needs at least one worker and one queue slot");

    // Bootstrap-bearing programs are served through the public-key
    // CoeffToSlot -> EvalMod -> SlotToCoeff circuit prepared here; the
    // external-key executor constructor rejects programs the context
    // cannot support, naming the offending instruction.
    prepared_ = prepared ? std::move(prepared)
                         : std::make_shared<const core::PreparedProgram>(
                               cn, ctx);

    // Per-request kernel threading: a pinned config when > 0, ambient
    // inheritance when 0.
    std::optional<core::OrionConfig> exec_cfg;
    if (opts.threads_per_request > 0) {
        core::OrionConfig cfg = defaults;
        cfg.num_threads = opts.threads_per_request;
        exec_cfg = cfg;
    }
    executors_.reserve(static_cast<std::size_t>(max_inflight_));
    for (int i = 0; i < max_inflight_; ++i) {
        executors_.push_back(std::make_unique<core::CkksExecutor>(
            cn, ctx, prepared_, exec_cfg));
    }
    // Scrape-time gauges: queue/inflight snapshots and the key cache.
    // Lock order is registry -> mu_ (nothing under mu_ touches the
    // registry by name; the instrument references are cached members).
    metrics_.add_collector([this](std::vector<telemetry::Sample>& out) {
        using Kind = telemetry::Sample::Kind;
        {
            std::lock_guard<std::mutex> lk(mu_);
            out.push_back({"serve.queue_depth",
                           static_cast<double>(queue_.size()),
                           Kind::kGauge});
            out.push_back({"serve.inflight",
                           static_cast<double>(inflight_), Kind::kGauge});
            out.push_back({"serve.peak_queue_depth",
                           static_cast<double>(stats_.peak_queue_depth),
                           Kind::kGauge});
            out.push_back({"serve.peak_inflight",
                           static_cast<double>(stats_.peak_inflight),
                           Kind::kGauge});
        }
        const KeyStoreStats ks = sessions_.key_stats();
        out.push_back({"serve.key_cache.hits",
                       static_cast<double>(ks.hits), Kind::kCounter});
        out.push_back({"serve.key_cache.misses",
                       static_cast<double>(ks.misses), Kind::kCounter});
        out.push_back({"serve.key_cache.evictions",
                       static_cast<double>(ks.evictions), Kind::kCounter});
        out.push_back({"serve.key_cache.prefetches",
                       static_cast<double>(ks.prefetches),
                       Kind::kCounter});
        out.push_back({"serve.key_cache.resident_bytes",
                       static_cast<double>(ks.resident_bytes),
                       Kind::kGauge});
        out.push_back({"serve.key_cache.resident_sessions",
                       static_cast<double>(ks.resident_sessions),
                       Kind::kGauge});
        out.push_back({"serve.key_cache.disk_bytes",
                       static_cast<double>(ks.disk_bytes), Kind::kGauge});
        out.push_back({"serve.key_cache.zombie_bytes",
                       static_cast<double>(ks.zombie_bytes), Kind::kGauge});
        out.push_back({"serve.sessions",
                       static_cast<double>(sessions_.session_count()),
                       Kind::kGauge});
    });

    workers_.reserve(static_cast<std::size_t>(max_inflight_));
    for (int i = 0; i < max_inflight_; ++i) {
        workers_.emplace_back(
            [this, i] { worker_loop(static_cast<std::size_t>(i)); });
    }
}

InferenceServer::~InferenceServer()
{
    std::deque<Pending> orphaned;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        orphaned.swap(queue_);
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
    for (Pending& p : orphaned) {
        p.promise.set_exception(std::make_exception_ptr(
            Error("inference server shut down before the request ran")));
    }
    for (std::thread& t : workers_) t.join();
}

u64
InferenceServer::register_session(std::span<const u8> key_bundle)
{
    // Reject incomplete bundles at registration (with the exact missing
    // step) rather than mid-request: the client derives the same
    // requirement set from the compiled program + bootstrap plan, so a
    // well-behaved client never trips this.
    const auto validate = [this](const KeyBundle& bundle) {
        ORION_CHECK(bundle.relin.valid() &&
                        bundle.relin.level() == ctx_->max_level(),
                    "key bundle: relinearization key missing or pruned "
                    "below the full chain");
        for (const ckks::GaloisKeyRequest& req :
             prepared_->galois_requests()) {
            const u64 elt = ctx_->galois_elt(req.step);
            ORION_CHECK(bundle.galois.has(elt),
                        "key bundle: missing Galois key for rotation step "
                            << req.step << " (element " << elt << ")");
            ORION_CHECK(bundle.galois.at(elt).level() >= req.level,
                        "key bundle: Galois key for step "
                            << req.step << " pruned to level "
                            << bundle.galois.at(elt).level()
                            << " but the program rotates at level "
                            << req.level);
        }
        if (prepared_->needs_conjugation()) {
            const u64 conj = ctx_->galois_elt_conj();
            ORION_CHECK(bundle.galois.has(conj),
                        "key bundle: missing conjugation key (element "
                            << conj << "), required by the bootstrap "
                            << "circuit's real/imaginary split");
            ORION_CHECK(bundle.galois.at(conj).level() >=
                            prepared_->conjugation_level(),
                        "key bundle: conjugation key pruned below the "
                        "bootstrap circuit's CoeffToSlot level "
                            << prepared_->conjugation_level());
        }
    };
    return sessions_.register_session(key_bundle, validate);
}

bool
InferenceServer::unregister_session(u64 id)
{
    return sessions_.unregister(id);
}

std::optional<u64>
InferenceServer::session_requests(u64 id) const
{
    const std::shared_ptr<Session> session = sessions_.peek(id);
    if (session == nullptr) return std::nullopt;
    return session->requests_served.value();
}

std::future<ServeReply>
InferenceServer::enqueue(ckks::serial::Bytes request, bool blocking,
                         bool& accepted)
{
    Pending p;
    p.bytes = std::move(request);
    std::future<ServeReply> fut = p.promise.get_future();
    // Peek the session id (frame check + one u64, no ciphertext decode)
    // so the key cache can warm while the request waits in the queue.
    // Malformed bytes are not an error here — they fail properly, with a
    // descriptive exception, when execute() decodes the full request.
    u64 prefetch_id = 0;
    bool have_prefetch_id = false;
    try {
        prefetch_id = peek_request_session(p.bytes);
        have_prefetch_id = true;
    } catch (...) {
    }
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (blocking) {
            space_cv_.wait(lk, [this] {
                return stop_ ||
                       queue_.size() <
                           static_cast<std::size_t>(queue_capacity_);
            });
        }
        ORION_CHECK(!stop_, "inference server is shutting down");
        // Every submission attempt counts, so the ledger balances:
        // completed + failed + rejected == submitted once idle.
        stats_.submitted += 1;
        m_submitted_.add();
        if (queue_.size() >= static_cast<std::size_t>(queue_capacity_)) {
            stats_.rejected += 1;
            m_rejected_.add();
            accepted = false;
            return fut;
        }
        p.enqueued = std::chrono::steady_clock::now();
        queue_.push_back(std::move(p));
        stats_.peak_queue_depth =
            std::max<u64>(stats_.peak_queue_depth, queue_.size());
        accepted = true;
    }
    queue_cv_.notify_one();
    // Only warm keys for requests that actually entered the queue — a
    // rejected submission has no upcoming execution to warm for.
    if (accepted && have_prefetch_id) sessions_.prefetch(prefetch_id);
    return fut;
}

std::future<ServeReply>
InferenceServer::submit(ckks::serial::Bytes request)
{
    bool accepted = false;
    std::future<ServeReply> fut = enqueue(std::move(request),
                                          /*blocking=*/true, accepted);
    ORION_ASSERT(accepted);
    return fut;
}

std::optional<std::future<ServeReply>>
InferenceServer::try_submit(ckks::serial::Bytes request)
{
    bool accepted = false;
    std::future<ServeReply> fut = enqueue(std::move(request),
                                          /*blocking=*/false, accepted);
    if (!accepted) return std::nullopt;
    return fut;
}

ServeReply
InferenceServer::execute(Pending& p,
                         std::chrono::steady_clock::time_point picked_up,
                         std::size_t worker_index)
{
    Request req;
    try {
        TELEM_SPAN("serve.decode");
        req = decode_request(p.bytes, *ctx_);
    } catch (const std::exception& e) {
        throw RequestError(ErrorKind::kDecodeError, e.what());
    }
    // A pinned lease: the keys cannot be evicted (or freed by a racing
    // unregister) until it goes out of scope, and acquiring it reloads
    // them from the spill file if they were evicted.
    const SessionLease session = sessions_.find(req.session_id);
    if (!session) {
        std::ostringstream oss;
        oss << "unknown session id " << req.session_id
            << " (register a key bundle first)";
        throw RequestError(ErrorKind::kBadSession, oss.str());
    }

    // Over-capacity batches are request errors, not execution errors:
    // name the limit and the layer whose span set it (the PR 5
    // describe-the-instruction convention).
    if (req.batch_count > static_cast<u64>(cn_->batch)) {
        std::ostringstream oss;
        oss << "batch_count " << req.batch_count << " > program capacity "
            << cn_->batch << " for layer " << cn_->batch_limit_layer;
        throw RequestError(ErrorKind::kExecError, oss.str());
    }

    core::CkksExecutor& exec = *executors_[worker_index];
    // Unbind on every exit path (including throw): the executor outlives
    // the lease, and a later request must never see stale key pointers.
    struct BindGuard {
        core::CkksExecutor* exec;
        ~BindGuard() { exec->bind_session_keys(nullptr, nullptr); }
    } unbind{&exec};
    exec.bind_session_keys(&session.keys.relin(), &session.keys.galois());
    core::EncryptedResult er;
    try {
        TELEM_SPAN_ID("serve.execute", req.request_id);
        er = exec.run_encrypted(req.inputs);
    } catch (const std::exception& e) {
        throw RequestError(ErrorKind::kExecError, e.what());
    }
    session.session->requests_served += 1;

    ServeReply reply;
    reply.stats.session_id = req.session_id;
    reply.stats.request_id = req.request_id;
    reply.stats.queue_wait_s = seconds_between(p.enqueued, picked_up);
    reply.stats.execute_s = er.wall_seconds;
    reply.stats.rotations = er.rotations;
    reply.stats.bootstraps = er.bootstraps;
    reply.stats.batch_count = req.batch_count;
    reply.stats.layer_times = std::move(er.layer_times);

    Response resp;
    resp.request_id = req.request_id;
    resp.outputs = std::move(er.outputs);
    resp.rotations = er.rotations;
    resp.bootstraps = er.bootstraps;
    resp.queue_wait_s = reply.stats.queue_wait_s;
    resp.execute_s = reply.stats.execute_s;
    reply.response = encode_response(resp);
    return reply;
}

void
InferenceServer::worker_loop(std::size_t worker_index)
{
    while (true) {
        Pending p;
        {
            std::unique_lock<std::mutex> lk(mu_);
            queue_cv_.wait(lk, [this] {
                return stop_ || (!paused_ && !queue_.empty());
            });
            if (stop_ && queue_.empty()) return;
            p = std::move(queue_.front());
            queue_.pop_front();
            inflight_ += 1;
            stats_.peak_inflight =
                std::max<u64>(stats_.peak_inflight, inflight_);
        }
        space_cv_.notify_one();

        const auto picked_up = std::chrono::steady_clock::now();
        try {
            ServeReply reply = execute(p, picked_up, worker_index);
            {
                std::lock_guard<std::mutex> lk(mu_);
                inflight_ -= 1;
                stats_.completed += 1;
                stats_.images += reply.stats.batch_count;
                stats_.total_queue_wait_s += reply.stats.queue_wait_s;
                stats_.total_execute_s += reply.stats.execute_s;
                stats_.total_rotations += reply.stats.rotations;
                stats_.total_bootstraps += reply.stats.bootstraps;
            }
            m_completed_.add();
            m_images_.add(reply.stats.batch_count);
            m_batch_size_.observe(
                static_cast<double>(reply.stats.batch_count));
            m_queue_wait_.observe(reply.stats.queue_wait_s);
            m_execute_.observe(reply.stats.execute_s);
            p.promise.set_value(std::move(reply));
        } catch (...) {
            // Unclassified exceptions (never thrown by execute() today)
            // count as execution errors so the per-kind split still sums
            // to `failed`.
            ErrorKind kind = ErrorKind::kExecError;
            try {
                throw;
            } catch (const RequestError& e) {
                kind = e.kind();
            } catch (...) {
            }
            {
                std::lock_guard<std::mutex> lk(mu_);
                inflight_ -= 1;
                stats_.failed += 1;
                switch (kind) {
                case ErrorKind::kBadSession:
                    stats_.failed_bad_session += 1;
                    break;
                case ErrorKind::kDecodeError:
                    stats_.failed_decode += 1;
                    break;
                default: stats_.failed_exec += 1; break;
                }
            }
            m_failed_.add();
            switch (kind) {
            case ErrorKind::kBadSession: m_failed_bad_session_.add(); break;
            case ErrorKind::kDecodeError: m_failed_decode_.add(); break;
            default: m_failed_exec_.add(); break;
            }
            p.promise.set_exception(std::current_exception());
        }
    }
}

void
InferenceServer::resume()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        paused_ = false;
    }
    queue_cv_.notify_all();
}

ServerStats
InferenceServer::stats() const
{
    ServerStats s;
    {
        std::lock_guard<std::mutex> lk(mu_);
        s = stats_;
        s.inflight = inflight_;
    }
    const KeyStoreStats ks = sessions_.key_stats();
    s.key_cache_hits = ks.hits;
    s.key_cache_misses = ks.misses;
    s.key_cache_evictions = ks.evictions;
    s.key_cache_prefetches = ks.prefetches;
    s.key_resident_bytes = ks.resident_bytes;
    s.key_resident_sessions = ks.resident_sessions;
    s.key_disk_bytes = ks.disk_bytes;
    s.key_zombie_bytes = ks.zombie_bytes;
    return s;
}

std::string
InferenceServer::metrics_text() const
{
    // This server's request metrics first, then the process-wide registry
    // (ckks.op.* summed over live Contexts, arena.*, boot.* histograms).
    return metrics_.text() + telemetry::Registry::global().text();
}

}  // namespace orion::serve
