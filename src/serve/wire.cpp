#include "src/serve/wire.h"

namespace orion::serve {

using ckks::serial::ByteReader;
using ckks::serial::Bytes;
using ckks::serial::ByteWriter;
using ckks::serial::RecordKind;

Bytes
encode_key_bundle(const KeyBundle& b)
{
    ByteWriter w;
    ckks::serial::write_params(w, b.params);
    ckks::serial::write_kswitch_key(w, b.relin);
    ckks::serial::write_galois_keys(w, b.galois);
    return finish_record(RecordKind::kKeyBundle, std::move(w));
}

KeyBundle
decode_key_bundle(std::span<const u8> bytes, const ckks::Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kKeyBundle);
    KeyBundle b;
    b.params = ckks::serial::read_params(r);
    ORION_CHECK(ckks::serial::params_compatible(b.params, ctx.params()),
                "key bundle was generated for different CKKS parameters "
                "than this server's context (degree "
                    << b.params.poly_degree << " vs " << ctx.degree()
                    << ", levels " << b.params.num_scale_primes << " vs "
                    << ctx.params().num_scale_primes << ")");
    b.relin = ckks::serial::read_kswitch_key(r, ctx);
    b.galois = ckks::serial::read_galois_keys(r, ctx);
    r.expect_done("key bundle");
    return b;
}

Bytes
encode_request(const Request& r)
{
    ByteWriter w;
    // The session id must stay the first payload u64: peek/rewrite index
    // it at a fixed offset behind the frame.
    w.put_u64(r.session_id);
    w.put_u64(r.request_id);
    w.put_u64(r.batch_count);
    w.put_u64(r.inputs.size());
    for (const ckks::Ciphertext& ct : r.inputs) {
        ckks::serial::write_ciphertext(w, ct);
    }
    return finish_record(RecordKind::kRequest, std::move(w));
}

Request
decode_request(std::span<const u8> bytes, const ckks::Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kRequest);
    Request req;
    req.session_id = r.read_u64();
    req.request_id = r.read_u64();
    // batch_count joined the record in wire v4; older requests are
    // single-sample.
    req.batch_count = r.version() >= 4 ? r.read_u64() : 1;
    ORION_CHECK(req.batch_count >= 1, "request batch_count must be >= 1");
    // A ciphertext is at least two one-limb polynomials plus a scale.
    const u64 count = r.read_count(2 * ctx.degree() * sizeof(u64),
                                   "request ciphertexts");
    req.inputs.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        req.inputs.push_back(ckks::serial::read_ciphertext(r, ctx));
    }
    r.expect_done("request");
    return req;
}

u64
peek_request_session(std::span<const u8> bytes)
{
    ByteReader r = open_record(bytes, RecordKind::kRequest);
    return r.read_u64();
}

void
rewrite_request_session(std::span<u8> bytes, u64 session_id)
{
    // Validates magic/version/kind/length and that a session id exists.
    (void)peek_request_session(bytes);
    // The payload begins right after the frame (magic 4 + version 1 +
    // kind 1 + length 8) with the session id as its first u64.
    constexpr std::size_t kFrameBytes = 4 + 1 + 1 + 8;
    for (std::size_t i = 0; i < sizeof(u64); ++i) {
        bytes[kFrameBytes + i] = static_cast<u8>(session_id >> (8 * i));
    }
}

Bytes
encode_response(const Response& resp)
{
    ByteWriter w;
    w.put_u64(resp.request_id);
    w.put_u64(resp.rotations);
    w.put_u64(resp.bootstraps);
    w.put_f64(resp.queue_wait_s);
    w.put_f64(resp.execute_s);
    w.put_u64(resp.outputs.size());
    for (const ckks::Ciphertext& ct : resp.outputs) {
        ckks::serial::write_ciphertext(w, ct);
    }
    return finish_record(RecordKind::kResponse, std::move(w));
}

Response
decode_response(std::span<const u8> bytes, const ckks::Context& ctx)
{
    ByteReader r = open_record(bytes, RecordKind::kResponse);
    Response resp;
    resp.request_id = r.read_u64();
    resp.rotations = r.read_u64();
    resp.bootstraps = r.read_u64();
    resp.queue_wait_s = r.read_f64();
    resp.execute_s = r.read_f64();
    const u64 count = r.read_count(2 * ctx.degree() * sizeof(u64),
                                   "response ciphertexts");
    resp.outputs.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        resp.outputs.push_back(ckks::serial::read_ciphertext(r, ctx));
    }
    r.expect_done("response");
    return resp;
}

}  // namespace orion::serve
