#ifndef ORION_SRC_SERVE_CLIENT_H_
#define ORION_SRC_SERVE_CLIENT_H_

/**
 * @file
 * The data owner's side of the serving protocol: generates its own key
 * material (the secret never leaves this object), exports an evaluation
 * KeyBundle for the server, encrypts inputs into serialized Requests, and
 * decrypts serialized Responses back to logits.
 */

#include "src/core/executor.h"
#include "src/serve/wire.h"

namespace orion::serve {

/** Encrypt -> serialize -> (transport) -> deserialize -> decrypt helper. */
class ServeClient {
  public:
    /**
     * Generates fresh keys for the compiled network's rotation steps.
     * Distinct seeds give distinct secrets, so two clients' sessions are
     * cryptographically isolated.
     */
    ServeClient(const core::CompiledNetwork& cn, const ckks::Context& ctx,
                u64 seed = 21);

    /** The serialized evaluation-key bundle to register with a server. */
    ckks::serial::Bytes key_bundle() const;

    /** Stores the server-assigned session id used by make_request. */
    void set_session_id(u64 id) { session_id_ = id; }
    u64 session_id() const { return session_id_; }

    /**
     * Packs, encrypts, and serializes one inference request (request ids
     * are assigned sequentially).
     */
    ckks::serial::Bytes make_request(const std::vector<double>& input);

    /**
     * Packs `inputs.size()` samples into the program's batch lanes and
     * serializes one batched request (wire v4). The sample count must not
     * exceed the compiled network's batch capacity.
     */
    ckks::serial::Bytes make_request_batch(
        const std::vector<std::vector<double>>& inputs);

    /** Decrypts a serialized Response to the logical network output. */
    std::vector<double> decrypt_response(std::span<const u8> response);

    /** Decrypts the first `batch_count` lanes of a batched Response. */
    std::vector<std::vector<double>> decrypt_response_batch(
        std::span<const u8> response, int batch_count);

    /** Decodes a Response without decrypting (stats inspection). */
    Response parse_response(std::span<const u8> response) const;

  private:
    const core::CompiledNetwork* cn_;
    const ckks::Context* ctx_;
    ckks::Encoder encoder_;
    ckks::KeyGenerator keygen_;
    ckks::PublicKey pk_;
    ckks::KswitchKey relin_;
    ckks::GaloisKeys galois_;
    ckks::Encryptor encryptor_;
    ckks::Decryptor decryptor_;
    u64 session_id_ = 0;
    u64 next_request_id_ = 1;
};

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_CLIENT_H_
