#ifndef ORION_SRC_SERVE_WIRE_H_
#define ORION_SRC_SERVE_WIRE_H_

/**
 * @file
 * The three messages of the serving protocol, built on the ckks::serial
 * record framing. A transport (today: in-process byte buffers; a future
 * socket/RPC layer per ROADMAP) moves these opaque byte strings around:
 *
 *   KeyBundle  client -> server, once per session: the client's CKKS
 *              parameters (validated against the server context) plus its
 *              evaluation keys (relinearization + Galois). No secret key
 *              ever appears on the wire.
 *   Request    client -> server: session + request ids and the encrypted
 *              input ciphertexts.
 *   Response   server -> client: the still-encrypted output ciphertexts
 *              plus per-request execution statistics.
 */

#include "src/ckks/serial.h"

namespace orion::serve {

/** Per-session evaluation key material (client -> server, once). */
struct KeyBundle {
    ckks::CkksParams params;    ///< must be compatible with the server's
    ckks::KswitchKey relin;
    ckks::GaloisKeys galois;
};

/** One encrypted inference request (client -> server). */
struct Request {
    u64 session_id = 0;
    u64 request_id = 0;
    /**
     * Samples packed into the input's batch lanes (wire v4; earlier
     * records decode as 1). Must not exceed the served program's
     * compiled batch.
     */
    u64 batch_count = 1;
    std::vector<ckks::Ciphertext> inputs;
};

/** One encrypted inference response (server -> client). */
struct Response {
    u64 request_id = 0;
    std::vector<ckks::Ciphertext> outputs;
    // Execution statistics echoed to the client.
    u64 rotations = 0;
    u64 bootstraps = 0;
    double queue_wait_s = 0.0;
    double execute_s = 0.0;
};

ckks::serial::Bytes encode_key_bundle(const KeyBundle& b);
/** Validates the bundle's parameters against `ctx` (ring compatibility). */
KeyBundle decode_key_bundle(std::span<const u8> bytes,
                            const ckks::Context& ctx);

ckks::serial::Bytes encode_request(const Request& r);
Request decode_request(std::span<const u8> bytes, const ckks::Context& ctx);
/**
 * The session id of a framed Request without decoding its ciphertexts —
 * cheap enough to call at submit time (the server uses it to prefetch the
 * session's keys while the request waits in the queue). Validates the
 * frame only; the payload beyond the id may still be malformed.
 */
u64 peek_request_session(std::span<const u8> bytes);
/**
 * Overwrites the session id of a framed Request in place (the id sits at
 * a fixed offset right after the record frame). The transport layer uses
 * this to translate a client's globally unique session *token* into the
 * receiving server's local session id without re-encoding the (large)
 * ciphertext payload. Validates the frame first; throws on non-Request
 * bytes.
 */
void rewrite_request_session(std::span<u8> bytes, u64 session_id);

ckks::serial::Bytes encode_response(const Response& r);
Response decode_response(std::span<const u8> bytes, const ckks::Context& ctx);

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_WIRE_H_
