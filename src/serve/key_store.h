#ifndef ORION_SRC_SERVE_KEY_STORE_H_
#define ORION_SRC_SERVE_KEY_STORE_H_

/**
 * @file
 * Byte-bounded evaluation-key cache behind the session registry.
 *
 * The paper's deployment model registers one evaluation-key bundle per
 * client; keeping every bundle's expanded keys resident makes server RSS
 * grow linearly with registered sessions, which is what limits
 * registration count in practice. The KeyStore fixes that: every bundle
 * is spilled once to a per-session DiskStore file (seed-compressed serial
 * v3 records, so disk holds roughly half the expanded bytes), and only a
 * least-recently-used working set bounded by `cache_bytes` stays in
 * memory. Requests acquire keys through pin-counted leases: a pinned
 * entry is never evicted, and a missing entry is reloaded from its spill
 * file (re-expanding seeded a-digits limb by limb) before the executor
 * binds it. A background thread serves prefetch hints so a request
 * decoded at submit time usually finds its keys already resident.
 *
 * `cache_bytes` = 0 disables spilling entirely: keys stay resident for
 * the lifetime of the session, the behavior servers had before the cache
 * existed (and the default).
 */

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "src/ckks/context.h"
#include "src/ckks/keys.h"

namespace orion::serve {

/** Cache counters (monotonic except the resident/disk gauges). */
struct KeyStoreStats {
    u64 hits = 0;         ///< acquires served from resident keys
    u64 misses = 0;       ///< acquires that had to load the spill file
    u64 evictions = 0;    ///< resident entries dropped by the LRU bound
    u64 prefetches = 0;   ///< background loads from prefetch hints
    u64 resident_bytes = 0;     ///< expanded key bytes currently in memory
    u64 resident_sessions = 0;  ///< registered sessions with resident keys
    u64 disk_bytes = 0;         ///< serialized bytes across spill files
    /**
     * Expanded bytes of erased-but-still-pinned entries, kept alive only
     * for in-flight leases. Counted here — not in resident_bytes — so an
     * unregister leaves both resident gauges consistent immediately and
     * zombie bytes never push the LRU into evicting live sessions.
     */
    u64 zombie_bytes = 0;
};

/** LRU-bounded, disk-backed store of per-session evaluation keys. */
class KeyStore {
  public:
    /**
     * `cache_bytes` bounds resident expanded-key bytes (0 = unbounded, no
     * spilling). `spill_dir` receives the per-session store files; empty
     * means a fresh private directory under the system temp path, removed
     * by the destructor.
     */
    KeyStore(const ckks::Context& ctx, std::size_t cache_bytes,
             std::string spill_dir = {});
    ~KeyStore();

    KeyStore(const KeyStore&) = delete;
    KeyStore& operator=(const KeyStore&) = delete;

  private:
    struct Entry;

  public:
    /**
     * A pinned reference to one session's resident keys. While any lease
     * on an entry is alive the entry cannot be evicted, and the key
     * references stay valid even if the session is erased concurrently
     * (the in-flight-request guarantee). Move-only; unpins on destruction.
     */
    class Lease {
      public:
        Lease() = default;
        Lease(Lease&& o) noexcept
            : store_(o.store_), entry_(std::move(o.entry_))
        {
            o.store_ = nullptr;
        }
        Lease&
        operator=(Lease&& o) noexcept
        {
            if (this != &o) {
                reset();
                store_ = o.store_;
                entry_ = std::move(o.entry_);
                o.store_ = nullptr;
            }
            return *this;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        ~Lease() { reset(); }

        /** False for the empty lease (unknown id). */
        explicit operator bool() const { return entry_ != nullptr; }
        const ckks::KswitchKey& relin() const;
        const ckks::GaloisKeys& galois() const;
        /** Unpins early (also done by the destructor). */
        void reset();

      private:
        friend class KeyStore;
        Lease(KeyStore* store, std::shared_ptr<Entry> entry)
            : store_(store), entry_(std::move(entry))
        {
        }

        KeyStore* store_ = nullptr;
        std::shared_ptr<Entry> entry_;
    };

    /**
     * Registers keys under `id` (must be fresh): spills them to disk
     * (when bounded) and installs them resident, evicting older unpinned
     * entries if the cache bound is now exceeded.
     */
    void put(u64 id, ckks::KswitchKey relin, ckks::GaloisKeys galois);

    /**
     * Removes an entry and its spill file. Idempotent: false when the id
     * is unknown (already erased or never registered). Outstanding leases
     * keep the expanded keys alive until the last one releases.
     */
    bool erase(u64 id);

    /**
     * Pins and returns the entry's keys, loading them from the spill file
     * first when not resident (blocking; concurrent acquires of the same
     * entry share one load). Empty lease when the id is unknown.
     */
    Lease acquire(u64 id);

    /**
     * Hints the background loader to make `id` resident. Never blocks.
     * Best-effort: hints for unknown/resident/already-queued ids are
     * dropped, and the hint queue is bounded, so a burst of cold
     * submissions cannot pile up loads that outlive their requests.
     */
    void prefetch(u64 id);

    /** True when the entry exists and its keys are in memory (test hook). */
    bool resident(u64 id) const;

    KeyStoreStats stats() const;
    std::size_t cache_bytes() const { return cache_bytes_; }
    const std::string& spill_dir() const { return spill_dir_; }

  private:
    std::shared_ptr<Entry> acquire_impl(u64 id, bool pin, bool is_prefetch);
    void load_from_disk(const Entry& e, ckks::KswitchKey& relin,
                        ckks::GaloisKeys& galois) const;
    /** Drops LRU unpinned entries until the resident bound holds. */
    void evict_locked();
    void release(Entry* e);
    std::string entry_path(u64 id) const;
    void prefetch_loop();

    const ckks::Context* ctx_;
    std::size_t cache_bytes_ = 0;
    std::string spill_dir_;
    bool own_dir_ = false;
    bool spill_enabled_ = false;

    mutable std::mutex mu_;
    std::condition_variable load_cv_;  ///< waiters on an in-progress load
    std::map<u64, std::shared_ptr<Entry>> entries_;
    u64 tick_ = 0;  ///< LRU clock
    KeyStoreStats stats_;

    std::condition_variable prefetch_cv_;
    std::deque<u64> prefetch_queue_;
    std::unordered_set<u64> prefetch_pending_;  ///< dedup of queued hints
    bool stop_ = false;
    std::thread prefetch_thread_;
};

}  // namespace orion::serve

#endif  // ORION_SRC_SERVE_KEY_STORE_H_
