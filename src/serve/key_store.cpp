#include "src/serve/key_store.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "src/ckks/serial.h"
#include "src/core/disk_store.h"

namespace orion::serve {

namespace {

/** Cap on queued prefetch hints; overflow hints are dropped (best-effort). */
constexpr std::size_t kPrefetchQueueCap = 1024;

}  // namespace

/**
 * One session's cache slot. The struct outlives its map entry: erase()
 * removes it from the index but outstanding leases hold the shared_ptr,
 * so an in-flight request keeps valid key references. `counted` tracks
 * whether `bytes` is currently included in stats_.resident_bytes, and
 * `zombie_counted` whether it is in stats_.zombie_bytes instead (erased
 * while pinned) — each flag is updated together with its gauge under mu_,
 * and at most one is set at a time.
 */
struct KeyStore::Entry {
    u64 id = 0;
    ckks::KswitchKey relin;
    ckks::GaloisKeys galois;
    std::size_t bytes = 0;       ///< expanded in-memory size (put-time)
    std::size_t disk_bytes = 0;  ///< serialized spill-file payload size
    u64 lru_tick = 0;
    int pins = 0;
    bool resident = false;
    bool counted = false;
    bool zombie_counted = false;
    bool loading = false;
    bool erased = false;
};

const ckks::KswitchKey&
KeyStore::Lease::relin() const
{
    ORION_CHECK(entry_ != nullptr, "dereferencing an empty key lease");
    return entry_->relin;
}

const ckks::GaloisKeys&
KeyStore::Lease::galois() const
{
    ORION_CHECK(entry_ != nullptr, "dereferencing an empty key lease");
    return entry_->galois;
}

void
KeyStore::Lease::reset()
{
    if (store_ != nullptr && entry_ != nullptr) store_->release(entry_.get());
    store_ = nullptr;
    entry_.reset();
}

KeyStore::KeyStore(const ckks::Context& ctx, std::size_t cache_bytes,
                   std::string spill_dir)
    : ctx_(&ctx), cache_bytes_(cache_bytes), spill_dir_(std::move(spill_dir))
{
    spill_enabled_ = cache_bytes_ > 0;
    if (!spill_enabled_) return;
    if (spill_dir_.empty()) {
        // Unique per store instance so concurrent servers (and concurrent
        // test binaries) never share spill files.
        static std::atomic<u64> counter{0};
        spill_dir_ =
            (std::filesystem::temp_directory_path() /
             ("orion-keys-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter.fetch_add(1))))
                .string();
        own_dir_ = true;
    }
    std::filesystem::create_directories(spill_dir_);
    prefetch_thread_ = std::thread([this] { prefetch_loop(); });
}

KeyStore::~KeyStore()
{
    if (prefetch_thread_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        prefetch_cv_.notify_all();
        prefetch_thread_.join();
    }
    if (!spill_enabled_) return;
    std::error_code ec;
    if (own_dir_) {
        std::filesystem::remove_all(spill_dir_, ec);
    } else {
        for (const auto& [id, e] : entries_) {
            (void)e;
            std::filesystem::remove(entry_path(id), ec);
        }
    }
}

std::string
KeyStore::entry_path(u64 id) const
{
    return spill_dir_ + "/session-" + std::to_string(id) + ".keys";
}

void
KeyStore::put(u64 id, ckks::KswitchKey relin, ckks::GaloisKeys galois)
{
    const std::size_t bytes = relin.byte_size() + galois.byte_size();
    std::size_t disk_bytes = 0;
    if (spill_enabled_) {
        // Write-once spill: eviction later just drops the memory. The v3
        // records carry {seed, b digits} for seeded keys, so the file is
        // roughly half the expanded size.
        const ckks::serial::Bytes rb = ckks::serial::serialize(relin);
        const ckks::serial::Bytes gb = ckks::serial::serialize(galois);
        core::DiskStoreWriter w(entry_path(id));
        w.put_bytes("relin", rb);
        w.put_bytes("galois", gb);
        w.close();
        disk_bytes = rb.size() + gb.size();
    }
    auto e = std::make_shared<Entry>();
    e->id = id;
    e->relin = std::move(relin);
    e->galois = std::move(galois);
    e->bytes = bytes;
    e->disk_bytes = disk_bytes;
    e->resident = true;
    e->counted = true;

    std::lock_guard<std::mutex> lk(mu_);
    ORION_CHECK(entries_.emplace(id, e).second,
                "key store already holds session " << id);
    e->lru_tick = ++tick_;
    stats_.resident_bytes += bytes;
    stats_.resident_sessions += 1;
    stats_.disk_bytes += disk_bytes;
    evict_locked();
}

bool
KeyStore::erase(u64 id)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = entries_.find(id);
        if (it == entries_.end()) return false;
        const std::shared_ptr<Entry> e = it->second;
        entries_.erase(it);
        e->erased = true;
        if (e->resident) stats_.resident_sessions -= 1;
        stats_.disk_bytes -= e->disk_bytes;
        if (e->counted) {
            // The entry leaves both resident gauges (and the eviction
            // budget) together. With no lease outstanding the expanded
            // keys are freed now; a pinned entry's bytes move to the
            // zombie gauge until the last lease releases, so they can
            // neither be mistaken for live working set nor push the LRU
            // into evicting sessions that still exist.
            stats_.resident_bytes -= e->bytes;
            e->counted = false;
            if (e->pins == 0) {
                e->resident = false;
                e->relin = ckks::KswitchKey{};
                e->galois = ckks::GaloisKeys{};
            } else {
                stats_.zombie_bytes += e->bytes;
                e->zombie_counted = true;
            }
        }
    }
    if (spill_enabled_) {
        std::error_code ec;
        std::filesystem::remove(entry_path(id), ec);
    }
    return true;
}

KeyStore::Lease
KeyStore::acquire(u64 id)
{
    std::shared_ptr<Entry> e =
        acquire_impl(id, /*pin=*/true, /*is_prefetch=*/false);
    if (e == nullptr) return Lease();
    return Lease(this, std::move(e));
}

void
KeyStore::prefetch(u64 id)
{
    if (!spill_enabled_) return;  // always resident; nothing to warm
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_) return;
        // A hint only helps for a known, cold, not-yet-queued entry;
        // everything else is dropped here so the single loader thread
        // never re-loads spill files nobody is waiting for. The bound
        // keeps a burst of cold submissions from piling up work that
        // outlives the requests that asked for it.
        const auto it = entries_.find(id);
        if (it == entries_.end() || it->second->resident ||
            it->second->loading) {
            return;
        }
        if (prefetch_queue_.size() >= kPrefetchQueueCap) return;
        if (!prefetch_pending_.insert(id).second) return;  // already queued
        prefetch_queue_.push_back(id);
    }
    prefetch_cv_.notify_one();
}

bool
KeyStore::resident(u64 id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(id);
    return it != entries_.end() && it->second->resident;
}

KeyStoreStats
KeyStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::shared_ptr<KeyStore::Entry>
KeyStore::acquire_impl(u64 id, bool pin, bool is_prefetch)
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        const auto it = entries_.find(id);
        if (it == entries_.end()) return nullptr;
        std::shared_ptr<Entry> e = it->second;
        if (e->resident) {
            if (!is_prefetch) stats_.hits += 1;
            if (pin) e->pins += 1;
            e->lru_tick = ++tick_;
            return e;
        }
        if (e->loading) {
            // A prefetch finding a load in progress has nothing to add.
            if (is_prefetch) return nullptr;
            load_cv_.wait(lk, [&] { return !e->loading; });
            // Re-resolve from scratch: the load may have failed, the
            // entry may have been evicted again, or erased.
            continue;
        }
        // This thread loads. Mark the slot so concurrent acquires wait
        // (and eviction skips it), then read the spill file unlocked.
        e->loading = true;
        lk.unlock();
        ckks::KswitchKey relin;
        ckks::GaloisKeys galois;
        std::exception_ptr err;
        try {
            load_from_disk(*e, relin, galois);
        } catch (...) {
            err = std::current_exception();
        }
        lk.lock();
        e->loading = false;
        if (err) {
            load_cv_.notify_all();
            // An erase that raced the load deleted the spill file out
            // from under us; report "unknown id", not a disk error.
            if (e->erased) return nullptr;
            std::rethrow_exception(err);
        }
        e->relin = std::move(relin);
        e->galois = std::move(galois);
        e->resident = true;
        e->lru_tick = ++tick_;
        if (!e->erased) {
            e->counted = true;
            stats_.resident_bytes += e->bytes;
            stats_.resident_sessions += 1;
        } else if (pin) {
            // An erase raced the load: the keys exist only for this
            // lease, so they are zombie bytes from the start.
            stats_.zombie_bytes += e->bytes;
            e->zombie_counted = true;
        }
        if (is_prefetch) {
            stats_.prefetches += 1;
        } else {
            stats_.misses += 1;
        }
        if (pin) e->pins += 1;
        load_cv_.notify_all();
        evict_locked();
        return e;
    }
}

namespace {

/** Streams one spill record's bytes straight off disk, so deserialization
 *  never holds the raw record alongside the decoded keys. */
class SpillRecordSource final : public ckks::serial::ByteSource {
  public:
    SpillRecordSource(core::DiskStoreReader& reader, std::string name)
        : reader_(&reader), name_(std::move(name)),
          size_(reader.bytes_size(name_))
    {
    }

    void read_at(u64 offset, void* dst, std::size_t bytes) override
    {
        reader_->get_bytes_at(name_, offset, dst, bytes);
    }

    u64 size() const override { return size_; }

  private:
    core::DiskStoreReader* reader_;
    std::string name_;
    u64 size_;
};

}  // namespace

void
KeyStore::load_from_disk(const Entry& e, ckks::KswitchKey& relin,
                         ckks::GaloisKeys& galois) const
{
    // Deserialization re-expands seeded a-digits limb by limb via
    // expand_kswitch_a, so the loaded keys are bit-identical to the
    // originally registered ones. Limbs stream straight from the spill
    // file into the decoded polys: a cold Galois-key load peaks at ~1x
    // the key bytes instead of transiently doubling resident memory.
    core::DiskStoreReader reader(entry_path(e.id));
    SpillRecordSource relin_src(reader, "relin");
    relin = ckks::serial::deserialize_kswitch_key(relin_src, *ctx_);
    SpillRecordSource galois_src(reader, "galois");
    galois = ckks::serial::deserialize_galois_keys(galois_src, *ctx_);
}

void
KeyStore::evict_locked()
{
    if (cache_bytes_ == 0) return;
    while (stats_.resident_bytes > cache_bytes_) {
        Entry* victim = nullptr;
        for (const auto& [id, e] : entries_) {
            (void)id;
            if (!e->resident || e->loading || e->pins > 0) continue;
            if (victim == nullptr || e->lru_tick < victim->lru_tick) {
                victim = e.get();
            }
        }
        // Everything resident is pinned (or loading): over-budget is the
        // price of the no-eviction-while-pinned guarantee.
        if (victim == nullptr) return;
        victim->relin = ckks::KswitchKey{};
        victim->galois = ckks::GaloisKeys{};
        victim->resident = false;
        victim->counted = false;
        stats_.resident_bytes -= victim->bytes;
        stats_.resident_sessions -= 1;
        stats_.evictions += 1;
    }
}

void
KeyStore::release(Entry* e)
{
    std::lock_guard<std::mutex> lk(mu_);
    ORION_ASSERT(e->pins > 0);
    e->pins -= 1;
    if (e->pins > 0) return;
    if (e->erased) {
        // Last lease on an erased entry: its zombie bytes are done.
        if (e->zombie_counted) {
            stats_.zombie_bytes -= e->bytes;
            e->zombie_counted = false;
        }
        e->resident = false;
        e->relin = ckks::KswitchKey{};
        e->galois = ckks::GaloisKeys{};
    }
    evict_locked();
}

void
KeyStore::prefetch_loop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
        prefetch_cv_.wait(lk,
                          [&] { return stop_ || !prefetch_queue_.empty(); });
        if (stop_) return;
        const u64 id = prefetch_queue_.front();
        prefetch_queue_.pop_front();
        prefetch_pending_.erase(id);
        lk.unlock();
        try {
            acquire_impl(id, /*pin=*/false, /*is_prefetch=*/true);
        } catch (...) {
            // Background warming is best-effort; the foreground acquire
            // will surface any real error.
        }
        lk.lock();
    }
}

}  // namespace orion::serve
