#include "src/serve/session.h"

namespace orion::serve {

u64
SessionManager::register_session(
    std::span<const u8> key_bundle,
    const std::function<void(const KeyBundle&)>& validate)
{
    // Decode outside the lock: key bundles are megabytes and decode cost
    // should not serialize against concurrent lookups.
    KeyBundle bundle = decode_key_bundle(key_bundle, *ctx_);
    if (validate) validate(bundle);
    auto session = std::make_shared<Session>();
    session->relin = std::move(bundle.relin);
    session->galois = std::move(bundle.galois);

    std::lock_guard<std::mutex> lk(mu_);
    session->id = next_id_++;
    sessions_.emplace(session->id, session);
    return session->id;
}

void
SessionManager::unregister(u64 id)
{
    std::lock_guard<std::mutex> lk(mu_);
    ORION_CHECK(sessions_.erase(id) == 1, "unknown session id " << id);
}

std::shared_ptr<Session>
SessionManager::find(u64 id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

std::size_t
SessionManager::session_count() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return sessions_.size();
}

}  // namespace orion::serve
