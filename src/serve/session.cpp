#include "src/serve/session.h"

namespace orion::serve {

u64
SessionManager::register_session(
    std::span<const u8> key_bundle,
    const std::function<void(const KeyBundle&)>& validate)
{
    // Decode outside the lock: key bundles are megabytes and decode cost
    // should not serialize against concurrent lookups.
    KeyBundle bundle = decode_key_bundle(key_bundle, *ctx_);
    if (validate) validate(bundle);
    auto session = std::make_shared<Session>();
    {
        std::lock_guard<std::mutex> lk(mu_);
        session->id = next_id_++;
    }
    // Keys first, session second: find() resolves the session map before
    // the key store, so this order means a published session always has
    // its keys registered.
    keys_.put(session->id, std::move(bundle.relin), std::move(bundle.galois));
    std::lock_guard<std::mutex> lk(mu_);
    sessions_.emplace(session->id, session);
    return session->id;
}

bool
SessionManager::unregister(u64 id)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (sessions_.erase(id) == 0) return false;
    }
    keys_.erase(id);
    return true;
}

SessionLease
SessionManager::find(u64 id) const
{
    SessionLease lease;
    lease.session = peek(id);
    if (lease.session == nullptr) return {};
    lease.keys = keys_.acquire(id);
    // Raced an unregister between the two lookups: uniformly unknown.
    if (!lease.keys) return {};
    return lease;
}

std::shared_ptr<Session>
SessionManager::peek(u64 id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

std::size_t
SessionManager::session_count() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return sessions_.size();
}

}  // namespace orion::serve
