#include "src/nn/module.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace orion::nn {

// ---------------------------------------------------------------------
// HeInit
//
// The draw order and distribution usage below reproduce the historical
// model-zoo initializer bit for bit (one member normal_distribution whose
// cached spare value carries across calls); the frontend/IR equivalence
// test pins this behavior against the pre-frontend builders.
// ---------------------------------------------------------------------

std::vector<double>
HeInit::gaussian(u64 n, double std)
{
    std::vector<double> out(n);
    for (double& x : out) x = std * normal_(rng_);
    return out;
}

std::vector<double>
HeInit::conv_weight(const lin::Conv2dSpec& spec)
{
    const u64 fan_in = static_cast<u64>(spec.in_channels) / spec.groups *
                       spec.kernel_h * spec.kernel_w;
    return gaussian(spec.weight_count(),
                    std::sqrt(2.0 / static_cast<double>(fan_in)));
}

std::vector<double>
HeInit::linear_weight(int out_features, int in_features)
{
    return gaussian(static_cast<u64>(out_features) * in_features,
                    std::sqrt(2.0 / static_cast<double>(in_features)));
}

std::vector<double>
HeInit::bias(int n)
{
    return gaussian(static_cast<u64>(n), 0.01);
}

void
HeInit::batchnorm(int channels, std::vector<double>* gamma,
                  std::vector<double>* beta, std::vector<double>* mean,
                  std::vector<double>* var)
{
    std::uniform_real_distribution<double> g(0.6, 1.4);
    std::uniform_real_distribution<double> v(0.4, 1.6);
    gamma->resize(static_cast<std::size_t>(channels));
    beta->resize(static_cast<std::size_t>(channels));
    mean->resize(static_cast<std::size_t>(channels));
    var->resize(static_cast<std::size_t>(channels));
    for (int i = 0; i < channels; ++i) {
        (*gamma)[static_cast<std::size_t>(i)] = g(rng_);
        (*beta)[static_cast<std::size_t>(i)] = 0.05 * normal_(rng_);
        (*mean)[static_cast<std::size_t>(i)] = 0.1 * normal_(rng_);
        (*var)[static_cast<std::size_t>(i)] = v(rng_);
    }
}

// ---------------------------------------------------------------------
// Module base: the parameter registry
// ---------------------------------------------------------------------

void
Module::register_param(std::string name, u64 size, bool trainable)
{
    ORION_CHECK(name.find('.') == std::string::npos,
                "parameter name '" << name << "' may not contain '.'");
    for (const ParamSlot& p : params_) {
        ORION_CHECK(p.name != name,
                    kind() << " already has a parameter '" << name << "'");
    }
    params_.push_back(ParamSlot{std::move(name), size, trainable, {}});
}

Module::ParamSlot&
Module::slot(const std::string& name)
{
    for (ParamSlot& p : params_) {
        if (p.name == name) return p;
    }
    ORION_CHECK(false, kind() << " has no parameter '" << name << "'");
    return params_.front();  // unreachable
}

const Module::ParamSlot&
Module::slot(const std::string& name) const
{
    return const_cast<Module*>(this)->slot(name);
}

std::vector<double>
Module::slot_values(const std::string& name, bool take)
{
    ParamSlot& p = slot(name);
    ORION_CHECK(!p.values.empty(),
                kind() << " parameter '" << name
                       << "' is uninitialized: call initialize() or "
                          "set_param first");
    if (take) return std::move(p.values);
    return p.values;
}

std::vector<std::string>
Module::param_names() const
{
    std::vector<std::string> names;
    names.reserve(params_.size());
    for (const ParamSlot& p : params_) names.push_back(p.name);
    return names;
}

u64
Module::param_size(const std::string& name) const
{
    return slot(name).size;
}

bool
Module::param_set(const std::string& name) const
{
    return !slot(name).values.empty();
}

const std::vector<double>&
Module::param(const std::string& name) const
{
    const ParamSlot& p = slot(name);
    ORION_CHECK(!p.values.empty(),
                kind() << " parameter '" << name << "' is not set");
    return p.values;
}

void
Module::set_param(const std::string& name, std::vector<double> values)
{
    ParamSlot& p = slot(name);
    ORION_CHECK(values.size() == p.size,
                kind() << " parameter '" << name << "' expects " << p.size
                       << " values, got " << values.size());
    p.values = std::move(values);
}

bool
Module::initialized() const
{
    for (const ParamSlot& p : params_) {
        if (p.values.empty()) return false;
    }
    for (const auto& [name, child] : children()) {
        if (!child->initialized()) return false;
    }
    return true;
}

u64
Module::param_count() const
{
    u64 count = 0;
    for (const ParamSlot& p : params_) {
        if (p.trainable) count += p.size;
    }
    for (const auto& [name, child] : children()) {
        count += child->param_count();
    }
    return count;
}

void
Module::initialize(Initializer& init)
{
    init_own_params(init);
    for (const auto& [name, child] : children()) child->initialize(init);
}

void
Module::initialize(u64 seed)
{
    HeInit init(seed);
    initialize(init);
}

StateDict
Module::state_dict() const
{
    StateDict dict;
    struct Collector {
        static void
        walk(const Module& m, const std::string& prefix, StateDict* out)
        {
            for (const std::string& name : m.param_names()) {
                if (m.param_set(name)) (*out)[prefix + name] = m.param(name);
            }
            for (const auto& [cname, child] : m.children()) {
                walk(*child, prefix + cname + ".", out);
            }
        }
    };
    Collector::walk(*this, "", &dict);
    return dict;
}

void
Module::load_state_dict(const StateDict& dict)
{
    for (const auto& [path, values] : dict) {
        Module* m = this;
        std::string rest = path;
        for (;;) {
            // Own parameter at this level?
            bool own = false;
            for (const std::string& name : m->param_names()) {
                if (name == rest) {
                    own = true;
                    break;
                }
            }
            if (own) {
                m->set_param(rest, values);
                break;
            }
            const std::size_t dot = rest.find('.');
            ORION_CHECK(dot != std::string::npos,
                        "unknown parameter '" << path << "' ('" << rest
                                              << "' not found on "
                                              << m->kind() << ")");
            const std::string head = rest.substr(0, dot);
            Module* next = nullptr;
            for (const auto& [cname, child] : m->children()) {
                if (cname == head) {
                    next = child.get();
                    break;
                }
            }
            ORION_CHECK(next != nullptr,
                        "unknown parameter '"
                            << path << "': " << m->kind()
                            << " has no child named '" << head << "'");
            m = next;
            rest = rest.substr(dot + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------

namespace {

class Conv2dModule final : public Module {
  public:
    Conv2dModule(int in_channels, int out_channels, int kernel,
                 Conv2dOpts opts)
        : has_bias_(opts.bias)
    {
        spec_.in_channels = in_channels;
        spec_.out_channels = out_channels;
        spec_.kernel_h = spec_.kernel_w = kernel;
        spec_.stride = opts.stride;
        spec_.pad = opts.pad;
        spec_.dilation = opts.dilation;
        spec_.groups = opts.groups;
        spec_.validate();
        register_param("weight", spec_.weight_count());
        if (has_bias_) {
            register_param("bias", static_cast<u64>(out_channels));
        }
    }

    const char* kind() const override { return "Conv2d"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        ORION_CHECK(!in.flat, "Conv2d needs a spatial (c, h, w) input, got "
                                  << to_string(in));
        ORION_CHECK(in.c == spec_.in_channels,
                    "Conv2d expects " << spec_.in_channels
                                      << " input channels, got "
                                      << to_string(in));
        const int oh = spec_.out_h(in.h);
        const int ow = spec_.out_w(in.w);
        ORION_CHECK(oh >= 1 && ow >= 1,
                    "Conv2d kernel " << spec_.kernel_h << "x" << spec_.kernel_w
                                     << " (stride " << spec_.stride << ", pad "
                                     << spec_.pad
                                     << ") does not fit the input "
                                     << to_string(in));
        return Shape{false, spec_.out_channels, oh, ow, 0};
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        std::vector<double> bias;
        std::vector<double> weight = slot_values("weight", take_params);
        if (has_bias_) bias = slot_values("bias", take_params);
        return net.add_conv2d(input, spec_, std::move(weight),
                              std::move(bias));
    }

  protected:
    void
    init_own_params(Initializer& init) override
    {
        // Bias before weight: the historical builders passed both draws as
        // function arguments, which gcc evaluates right to left, so the
        // model zoo's seeded networks have always drawn bias first. This
        // order is pinned by the frontend/IR equivalence test.
        if (has_bias_ && !param_set("bias")) {
            set_param("bias", init.bias(spec_.out_channels));
        }
        if (!param_set("weight")) {
            set_param("weight", init.conv_weight(spec_));
        }
    }

  private:
    lin::Conv2dSpec spec_;
    bool has_bias_;
};

class LinearModule final : public Module {
  public:
    LinearModule(int in_features, int out_features, bool bias)
        : in_(in_features), out_(out_features), has_bias_(bias)
    {
        ORION_CHECK(in_ > 0 && out_ > 0,
                    "Linear needs positive dimensions, got " << in_ << " -> "
                                                             << out_);
        register_param("weight", static_cast<u64>(out_) * in_);
        if (has_bias_) register_param("bias", static_cast<u64>(out_));
    }

    const char* kind() const override { return "Linear"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        ORION_CHECK(static_cast<int>(in.size()) == in_,
                    "Linear expects " << in_ << " input features, got "
                                      << to_string(in));
        return Shape{true, 0, 0, 0, out_};
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        std::vector<double> bias;
        std::vector<double> weight = slot_values("weight", take_params);
        if (has_bias_) bias = slot_values("bias", take_params);
        return net.add_linear(input, out_, std::move(weight),
                              std::move(bias));
    }

  protected:
    void
    init_own_params(Initializer& init) override
    {
        // Bias before weight - see Conv2dModule::init_own_params.
        if (has_bias_ && !param_set("bias")) {
            set_param("bias", init.bias(out_));
        }
        if (!param_set("weight")) {
            set_param("weight", init.linear_weight(out_, in_));
        }
    }

  private:
    int in_, out_;
    bool has_bias_;
};

class BatchNorm2dModule final : public Module {
  public:
    BatchNorm2dModule(int channels, double eps) : c_(channels), eps_(eps)
    {
        ORION_CHECK(c_ > 0, "BatchNorm2d needs positive channels, got "
                                << c_);
        register_param("gamma", static_cast<u64>(c_));
        register_param("beta", static_cast<u64>(c_));
        register_param("mean", static_cast<u64>(c_), /*trainable=*/false);
        register_param("var", static_cast<u64>(c_), /*trainable=*/false);
    }

    const char* kind() const override { return "BatchNorm2d"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        ORION_CHECK(!in.flat,
                    "BatchNorm2d needs a spatial (c, h, w) input, got "
                        << to_string(in));
        ORION_CHECK(in.c == c_, "BatchNorm2d expects " << c_
                                                       << " channels, got "
                                                       << to_string(in));
        return in;
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        return net.add_batchnorm2d(input, slot_values("gamma", take_params),
                                   slot_values("beta", take_params),
                                   slot_values("mean", take_params),
                                   slot_values("var", take_params), eps_);
    }

  protected:
    void
    init_own_params(Initializer& init) override
    {
        if (param_set("gamma") && param_set("beta") && param_set("mean") &&
            param_set("var")) {
            return;
        }
        // One atomic draw for all four statistics, keeping the RNG stream
        // aligned with a fully-unset tree even when some are user-set.
        std::vector<double> g, b, m, v;
        init.batchnorm(c_, &g, &b, &m, &v);
        if (!param_set("gamma")) set_param("gamma", std::move(g));
        if (!param_set("beta")) set_param("beta", std::move(b));
        if (!param_set("mean")) set_param("mean", std::move(m));
        if (!param_set("var")) set_param("var", std::move(v));
    }

  private:
    int c_;
    double eps_;
};

class AvgPool2dModule final : public Module {
  public:
    AvgPool2dModule(int kernel, int stride, int pad)
        : k_(kernel), s_(stride == 0 ? kernel : stride), p_(pad)
    {
        ORION_CHECK(k_ > 0 && s_ > 0 && p_ >= 0,
                    "AvgPool2d needs positive kernel/stride, got kernel "
                        << k_ << ", stride " << s_ << ", pad " << p_);
    }

    const char* kind() const override { return "AvgPool2d"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        ORION_CHECK(!in.flat, "AvgPool2d needs a spatial (c, h, w) input, "
                              "got "
                                  << to_string(in));
        const int oh = (in.h + 2 * p_ - k_) / s_ + 1;
        const int ow = (in.w + 2 * p_ - k_) / s_ + 1;
        ORION_CHECK(in.h + 2 * p_ >= k_ && in.w + 2 * p_ >= k_,
                    "AvgPool2d kernel " << k_ << " does not fit the input "
                                        << to_string(in));
        return Shape{false, in.c, oh, ow, 0};
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        (void)take_params;
        return net.add_avgpool2d(input, k_, s_, p_);
    }

  private:
    int k_, s_, p_;
};

class GlobalAvgPoolModule final : public Module {
  public:
    const char* kind() const override { return "GlobalAvgPool"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        ORION_CHECK(!in.flat && in.h == in.w,
                    "GlobalAvgPool expects a square spatial input, got "
                        << to_string(in));
        return Shape{false, in.c, 1, 1, 0};
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        (void)take_params;
        return net.add_global_avgpool(input);
    }
};

class ActivationModule final : public Module {
  public:
    explicit ActivationModule(ActivationSpec spec) : spec_(std::move(spec))
    {
        ORION_CHECK(static_cast<bool>(spec_.f),
                    "activation has no cleartext function (CustomAct needs "
                    "a callable)");
    }

    const char*
    kind() const override
    {
        switch (spec_.kind) {
        case ActivationSpec::Kind::kSquare: return "Square";
        case ActivationSpec::Kind::kRelu: return "ReLU";
        case ActivationSpec::Kind::kSilu: return "SiLU";
        case ActivationSpec::Kind::kCustom: return "CustomAct";
        }
        return "Activation";
    }

    Shape infer_shape(const Shape& in) const override { return in; }

    int
    build(Network& net, int input, bool take_params) override
    {
        (void)take_params;
        return net.add_activation(input, spec_);
    }

  private:
    ActivationSpec spec_;
};

class FlattenModule final : public Module {
  public:
    const char* kind() const override { return "Flatten"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        return Shape{true, 0, 0, 0, static_cast<int>(in.size())};
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        (void)take_params;
        return net.add_flatten(input);
    }
};

class IdentityModule final : public Module {
  public:
    const char* kind() const override { return "Identity"; }
    Shape infer_shape(const Shape& in) const override { return in; }

    int
    build(Network& net, int input, bool take_params) override
    {
        (void)net;
        (void)take_params;
        return input;  // no IR layer
    }
};

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

class SequentialModule final : public Module {
  public:
    explicit SequentialModule(
        std::vector<std::pair<std::string, ModulePtr>> kids)
        : kids_(std::move(kids))
    {
        for (std::size_t i = 0; i < kids_.size(); ++i) {
            ORION_CHECK(kids_[i].second != nullptr,
                        "Sequential child " << i << " is null");
            ORION_CHECK(kids_[i].first.find('.') == std::string::npos,
                        "Sequential child name '" << kids_[i].first
                                                  << "' may not contain '.'");
            for (std::size_t j = 0; j < i; ++j) {
                ORION_CHECK(kids_[j].first != kids_[i].first,
                            "Sequential has two children named '"
                                << kids_[i].first << "'");
            }
        }
    }

    const char* kind() const override { return "Sequential"; }

    Shape
    infer_shape(const Shape& in) const override
    {
        Shape s = in;
        for (const auto& [name, child] : kids_) {
            s = child->infer_shape(s);
        }
        return s;
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        int id = input;
        for (const auto& [name, child] : kids_) {
            id = child->build(net, id, take_params);
        }
        return id;
    }

    std::vector<std::pair<std::string, ModulePtr>>
    children() const override
    {
        return kids_;
    }

  private:
    std::vector<std::pair<std::string, ModulePtr>> kids_;
};

/** body(x) + shortcut(x); a null shortcut is the identity. */
class AddModule final : public Module {
  public:
    AddModule(const char* kind, const char* a_name, const char* b_name,
              ModulePtr a, ModulePtr b)
        : kind_(kind), a_name_(a_name), b_name_(b_name), a_(std::move(a)),
          b_(std::move(b))
    {
        ORION_CHECK(a_ != nullptr, kind_ << " branch '" << a_name_
                                         << "' is null");
    }

    const char* kind() const override { return kind_; }

    Shape
    infer_shape(const Shape& in) const override
    {
        const Shape sa = a_->infer_shape(in);
        const Shape sb = b_ ? b_->infer_shape(in) : in;
        ORION_CHECK(sa == sb, kind_ << " branches produce different shapes: "
                                    << to_string(sa) << " vs "
                                    << to_string(sb));
        return sa;
    }

    int
    build(Network& net, int input, bool take_params) override
    {
        const int ia = a_->build(net, input, take_params);
        const int ib = b_ ? b_->build(net, input, take_params) : input;
        return net.add_add(ia, ib);
    }

    std::vector<std::pair<std::string, ModulePtr>>
    children() const override
    {
        std::vector<std::pair<std::string, ModulePtr>> kids;
        kids.emplace_back(a_name_, a_);
        if (b_) kids.emplace_back(b_name_, b_);
        return kids;
    }

  private:
    const char* kind_;
    const char* a_name_;
    const char* b_name_;
    ModulePtr a_, b_;
};

}  // namespace

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

ModulePtr
Conv2d(int in_channels, int out_channels, int kernel, Conv2dOpts opts)
{
    return std::make_shared<Conv2dModule>(in_channels, out_channels, kernel,
                                          opts);
}

ModulePtr
Linear(int in_features, int out_features, bool bias)
{
    return std::make_shared<LinearModule>(in_features, out_features, bias);
}

ModulePtr
BatchNorm2d(int channels, double eps)
{
    return std::make_shared<BatchNorm2dModule>(channels, eps);
}

ModulePtr
AvgPool2d(int kernel, int stride, int pad)
{
    return std::make_shared<AvgPool2dModule>(kernel, stride, pad);
}

ModulePtr
GlobalAvgPool()
{
    return std::make_shared<GlobalAvgPoolModule>();
}

ModulePtr
ReLU(std::vector<int> degrees)
{
    return std::make_shared<ActivationModule>(
        ActivationSpec::relu(std::move(degrees)));
}

ModulePtr
SiLU(int degree)
{
    return std::make_shared<ActivationModule>(ActivationSpec::silu(degree));
}

ModulePtr
Square()
{
    return std::make_shared<ActivationModule>(ActivationSpec::square());
}

ModulePtr
CustomAct(std::function<double(double)> f, int degree)
{
    return std::make_shared<ActivationModule>(
        ActivationSpec::custom(std::move(f), degree));
}

ModulePtr
Activation(const ActivationSpec& spec)
{
    return std::make_shared<ActivationModule>(spec);
}

ModulePtr
Flatten()
{
    return std::make_shared<FlattenModule>();
}

ModulePtr
Identity()
{
    return std::make_shared<IdentityModule>();
}

ModulePtr
Sequential(std::vector<ModulePtr> children)
{
    std::vector<std::pair<std::string, ModulePtr>> named;
    named.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
        named.emplace_back(std::to_string(i), std::move(children[i]));
    }
    return std::make_shared<SequentialModule>(std::move(named));
}

ModulePtr
Sequential(std::vector<std::pair<std::string, ModulePtr>> children)
{
    return std::make_shared<SequentialModule>(std::move(children));
}

ModulePtr
Add(ModulePtr a, ModulePtr b)
{
    ORION_CHECK(b != nullptr, "Add branch 'b' is null (use Residual for an "
                              "identity shortcut)");
    return std::make_shared<AddModule>("Add", "a", "b", std::move(a),
                                       std::move(b));
}

ModulePtr
Residual(ModulePtr body, ModulePtr shortcut)
{
    return std::make_shared<AddModule>("Residual", "body", "shortcut",
                                       std::move(body), std::move(shortcut));
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

Network
lower_to_network(Module& m, int c, int h, int w, std::string name,
                 bool take_params)
{
    ORION_CHECK(c > 0 && h > 0 && w > 0,
                "input shape must be positive, got (" << c << ", " << h
                                                      << ", " << w << ")");
    const Shape in{false, c, h, w, 0};
    m.infer_shape(in);  // precise shape errors before any IR is built
    ORION_CHECK(m.initialized(),
                "module tree has uninitialized parameters: call "
                "initialize(seed) or set_param first");
    Network net(std::move(name));
    const int input = net.add_input(c, h, w);
    const int output = m.build(net, input, take_params);
    net.set_output(output);
    return net;
}

Network
build_network(Module& m, int c, int h, int w, std::string name, u64 seed)
{
    ORION_CHECK(c > 0 && h > 0 && w > 0,
                "input shape must be positive, got (" << c << ", " << h
                                                      << ", " << w << ")");
    m.infer_shape(Shape{false, c, h, w, 0});  // fail before drawing weights
    m.initialize(seed);
    return lower_to_network(m, c, h, w, std::move(name),
                            /*take_params=*/true);
}

}  // namespace orion::nn
