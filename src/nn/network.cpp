#include "src/nn/network.h"

#include <cmath>

namespace orion::nn {

ActivationSpec
ActivationSpec::square()
{
    ActivationSpec s;
    s.kind = Kind::kSquare;
    s.f = [](double x) { return x * x; };
    return s;
}

ActivationSpec
ActivationSpec::relu(std::vector<int> degrees)
{
    ActivationSpec s;
    s.kind = Kind::kRelu;
    s.relu_degrees = std::move(degrees);
    s.f = [](double x) { return x > 0 ? x : 0.0; };
    return s;
}

ActivationSpec
ActivationSpec::silu(int degree)
{
    ActivationSpec s;
    s.kind = Kind::kSilu;
    s.degree = degree;
    s.f = [](double x) { return x / (1.0 + std::exp(-x)); };
    return s;
}

ActivationSpec
ActivationSpec::custom(std::function<double(double)> f, int degree)
{
    ActivationSpec s;
    s.kind = Kind::kCustom;
    s.degree = degree;
    s.f = std::move(f);
    return s;
}

const char*
layer_kind_name(LayerKind k)
{
    switch (k) {
    case LayerKind::kInput: return "Input";
    case LayerKind::kConv2d: return "Conv2d";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kBatchNorm2d: return "BatchNorm2d";
    case LayerKind::kAvgPool2d: return "AvgPool2d";
    case LayerKind::kActivation: return "Activation";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kFlatten: return "Flatten";
    }
    return "?";
}

std::string
to_string(const Shape& s)
{
    std::ostringstream oss;
    if (s.flat) {
        oss << "flat[" << s.features << "]";
    } else {
        oss << "(" << s.c << ", " << s.h << ", " << s.w << ")";
    }
    return oss.str();
}

const Layer&
Network::layer(int id) const
{
    ORION_CHECK(id >= 0 && id < num_layers(), "bad layer id " << id);
    return layers_[static_cast<std::size_t>(id)];
}

void
Network::check_input_id(int id, const char* who) const
{
    ORION_CHECK(id >= 0 && id < num_layers(),
                who << " input id " << id
                    << " does not name an existing layer (network '" << name_
                    << "' has layer ids 0.." << num_layers() - 1 << ")");
}

int
Network::push(Layer l)
{
    l.id = num_layers();
    for (int in : l.inputs) {
        ORION_CHECK(in >= 0 && in < l.id, "input id out of order: " << in);
    }
    l.out_shape = infer_shape(l);
    layers_.push_back(std::move(l));
    return layers_.back().id;
}

Shape
Network::infer_shape(const Layer& l) const
{
    switch (l.kind) {
    case LayerKind::kInput:
        return l.out_shape;  // set by add_input
    case LayerKind::kConv2d: {
        const Shape& in = shape_of(l.inputs[0]);
        ORION_CHECK(!in.flat, "add_conv2d needs a spatial (c, h, w) input, "
                              "got "
                                  << to_string(in));
        ORION_CHECK(in.c == l.conv.in_channels,
                    "add_conv2d expects " << l.conv.in_channels
                                          << " input channels, got "
                                          << to_string(in));
        const int oh = l.conv.out_h(in.h);
        const int ow = l.conv.out_w(in.w);
        ORION_CHECK(oh >= 1 && ow >= 1,
                    "add_conv2d kernel " << l.conv.kernel_h << "x"
                                         << l.conv.kernel_w
                                         << " (stride " << l.conv.stride
                                         << ", pad " << l.conv.pad
                                         << ") does not fit the input "
                                         << to_string(in));
        return Shape{false, l.conv.out_channels, oh, ow, 0};
    }
    case LayerKind::kLinear: {
        const Shape& in = shape_of(l.inputs[0]);
        ORION_CHECK(static_cast<int>(in.size()) == l.in_features,
                    "linear expects " << l.in_features << " features, got "
                                      << in.size());
        return Shape{true, 0, 0, 0, l.out_features};
    }
    case LayerKind::kBatchNorm2d: {
        const Shape& in = shape_of(l.inputs[0]);
        ORION_CHECK(!in.flat, "batchnorm needs a spatial input");
        ORION_CHECK(static_cast<std::size_t>(in.c) == l.bn_gamma.size(),
                    "batchnorm channel mismatch");
        return in;
    }
    case LayerKind::kAvgPool2d: {
        const Shape& in = shape_of(l.inputs[0]);
        ORION_CHECK(!in.flat, "pool needs a spatial input");
        const int oh =
            (in.h + 2 * l.pool_pad - l.pool_kernel) / l.pool_stride + 1;
        const int ow =
            (in.w + 2 * l.pool_pad - l.pool_kernel) / l.pool_stride + 1;
        return Shape{false, in.c, oh, ow, 0};
    }
    case LayerKind::kActivation:
        return shape_of(l.inputs[0]);
    case LayerKind::kAdd: {
        const Shape& a = shape_of(l.inputs[0]);
        const Shape& b = shape_of(l.inputs[1]);
        ORION_CHECK(a == b, "Add operands must have equal shapes");
        return a;
    }
    case LayerKind::kFlatten: {
        const Shape& in = shape_of(l.inputs[0]);
        return Shape{true, 0, 0, 0, static_cast<int>(in.size())};
    }
    }
    ORION_ASSERT(false);
    return {};
}

int
Network::add_input(int c, int h, int w)
{
    ORION_CHECK(input_ == -1, "network already has an input");
    Layer l;
    l.kind = LayerKind::kInput;
    l.name = "input";
    l.out_shape = Shape{false, c, h, w, 0};
    input_ = push(std::move(l));
    return input_;
}

int
Network::add_conv2d(int input, const lin::Conv2dSpec& spec,
                    std::vector<double> weights, std::vector<double> bias)
{
    check_input_id(input, "add_conv2d");
    spec.validate();
    ORION_CHECK(weights.size() == spec.weight_count(),
                "add_conv2d expects "
                    << spec.weight_count() << " weights (co "
                    << spec.out_channels << " x ci/g "
                    << spec.in_channels / spec.groups << " x "
                    << spec.kernel_h << "x" << spec.kernel_w << "), got "
                    << weights.size());
    ORION_CHECK(bias.empty() ||
                    bias.size() ==
                        static_cast<std::size_t>(spec.out_channels),
                "add_conv2d expects one bias per output channel ("
                    << spec.out_channels << "), got " << bias.size());
    Layer l;
    l.kind = LayerKind::kConv2d;
    l.name = "conv2d";
    l.inputs = {input};
    l.conv = spec;
    l.weights = std::move(weights);
    l.bias = std::move(bias);
    return push(std::move(l));
}

int
Network::add_linear(int input, int out_features, std::vector<double> weights,
                    std::vector<double> bias)
{
    check_input_id(input, "add_linear");
    ORION_CHECK(out_features > 0, "add_linear needs positive out_features, "
                                  "got "
                                      << out_features);
    const Shape& in = shape_of(input);
    const int in_features = static_cast<int>(in.size());
    ORION_CHECK(weights.size() == static_cast<std::size_t>(out_features) *
                                      static_cast<std::size_t>(in_features),
                "add_linear expects " << out_features << " x " << in_features
                                      << " = "
                                      << static_cast<u64>(out_features) *
                                             static_cast<u64>(in_features)
                                      << " weights for input "
                                      << to_string(in) << ", got "
                                      << weights.size());
    ORION_CHECK(bias.empty() ||
                    bias.size() == static_cast<std::size_t>(out_features),
                "add_linear expects one bias per output feature ("
                    << out_features << "), got " << bias.size());
    Layer l;
    l.kind = LayerKind::kLinear;
    l.name = "linear";
    l.inputs = {input};
    l.in_features = in_features;
    l.out_features = out_features;
    l.weights = std::move(weights);
    l.bias = std::move(bias);
    return push(std::move(l));
}

int
Network::add_batchnorm2d(int input, std::vector<double> gamma,
                         std::vector<double> beta, std::vector<double> mean,
                         std::vector<double> var, double eps)
{
    check_input_id(input, "add_batchnorm2d");
    const Shape& in = shape_of(input);
    ORION_CHECK(!in.flat, "add_batchnorm2d needs a spatial (c, h, w) input, "
                          "got "
                              << to_string(in));
    ORION_CHECK(gamma.size() == beta.size() && gamma.size() == mean.size() &&
                    gamma.size() == var.size(),
                "add_batchnorm2d parameter sizes disagree: gamma "
                    << gamma.size() << ", beta " << beta.size() << ", mean "
                    << mean.size() << ", var " << var.size());
    ORION_CHECK(gamma.size() == static_cast<std::size_t>(in.c),
                "add_batchnorm2d expects one parameter per channel of "
                    << to_string(in) << ", got " << gamma.size());
    Layer l;
    l.kind = LayerKind::kBatchNorm2d;
    l.name = "batchnorm2d";
    l.inputs = {input};
    l.bn_gamma = std::move(gamma);
    l.bn_beta = std::move(beta);
    l.bn_mean = std::move(mean);
    l.bn_var = std::move(var);
    l.bn_eps = eps;
    return push(std::move(l));
}

int
Network::add_avgpool2d(int input, int kernel, int stride, int pad)
{
    check_input_id(input, "add_avgpool2d");
    ORION_CHECK(kernel > 0 && stride > 0 && pad >= 0,
                "add_avgpool2d needs positive kernel/stride, got kernel "
                    << kernel << ", stride " << stride << ", pad " << pad);
    const Shape& in = shape_of(input);
    ORION_CHECK(!in.flat, "add_avgpool2d needs a spatial (c, h, w) input, "
                          "got "
                              << to_string(in));
    ORION_CHECK(in.h + 2 * pad >= kernel && in.w + 2 * pad >= kernel,
                "add_avgpool2d kernel " << kernel
                                        << " does not fit the input "
                                        << to_string(in) << " with pad "
                                        << pad);
    Layer l;
    l.kind = LayerKind::kAvgPool2d;
    l.name = "avgpool2d";
    l.inputs = {input};
    l.pool_kernel = kernel;
    l.pool_stride = stride;
    l.pool_pad = pad;
    return push(std::move(l));
}

int
Network::add_global_avgpool(int input)
{
    const Shape& in = shape_of(input);
    ORION_CHECK(!in.flat && in.h == in.w,
                "global pool expects a square spatial input");
    return add_avgpool2d(input, in.h, in.h);
}

int
Network::add_activation(int input, const ActivationSpec& spec)
{
    check_input_id(input, "add_activation");
    ORION_CHECK(static_cast<bool>(spec.f),
                "add_activation: the spec has no cleartext function (use "
                "the ActivationSpec factories)");
    Layer l;
    l.kind = LayerKind::kActivation;
    l.name = "activation";
    l.inputs = {input};
    l.act = spec;
    return push(std::move(l));
}

int
Network::add_add(int a, int b)
{
    check_input_id(a, "add_add");
    check_input_id(b, "add_add");
    ORION_CHECK(shape_of(a) == shape_of(b),
                "add_add operands must have equal shapes: layer "
                    << a << " is " << to_string(shape_of(a)) << ", layer "
                    << b << " is " << to_string(shape_of(b)));
    Layer l;
    l.kind = LayerKind::kAdd;
    l.name = "add";
    l.inputs = {a, b};
    return push(std::move(l));
}

int
Network::add_flatten(int input)
{
    check_input_id(input, "add_flatten");
    Layer l;
    l.kind = LayerKind::kFlatten;
    l.name = "flatten";
    l.inputs = {input};
    return push(std::move(l));
}

void
Network::set_output(int id)
{
    check_input_id(id, "set_output");
    output_ = id;
}

std::vector<int>
Network::topo_order() const
{
    std::vector<int> order(static_cast<std::size_t>(num_layers()));
    for (int i = 0; i < num_layers(); ++i) {
        order[static_cast<std::size_t>(i)] = i;  // insertion order is topo
    }
    return order;
}

std::vector<int>
Network::consumers(int id) const
{
    std::vector<int> out;
    for (const Layer& l : layers_) {
        for (int in : l.inputs) {
            if (in == id) {
                out.push_back(l.id);
                break;
            }
        }
    }
    return out;
}

u64
Network::param_count() const
{
    u64 count = 0;
    for (const Layer& l : layers_) {
        count += l.weights.size() + l.bias.size();
        count += l.bn_gamma.size() + l.bn_beta.size();
    }
    return count;
}

u64
Network::flop_count() const
{
    u64 count = 0;
    for (const Layer& l : layers_) {
        switch (l.kind) {
        case LayerKind::kConv2d: {
            const Shape& out = l.out_shape;
            count += static_cast<u64>(out.h) * out.w * out.c *
                     (static_cast<u64>(l.conv.in_channels) / l.conv.groups) *
                     l.conv.kernel_h * l.conv.kernel_w;
            break;
        }
        case LayerKind::kLinear:
            count += static_cast<u64>(l.in_features) * l.out_features;
            break;
        case LayerKind::kBatchNorm2d:
        case LayerKind::kActivation:
            count += l.out_shape.size();
            break;
        case LayerKind::kAvgPool2d:
            count += l.out_shape.size() * l.pool_kernel * l.pool_kernel;
            break;
        default:
            break;
        }
    }
    return count;
}

std::vector<double>
Network::forward_one_layer(const Layer& l, const std::vector<double>& a,
                           const std::vector<double>& b) const
{
    switch (l.kind) {
    case LayerKind::kInput:
    case LayerKind::kFlatten:
        return a;
    case LayerKind::kConv2d: {
        const Shape& in = shape_of(l.inputs[0]);
        std::vector<double> y =
            lin::conv2d_reference(l.conv, l.weights, a, in.h, in.w);
        if (!l.bias.empty()) {
            const Shape& out = l.out_shape;
            for (int c = 0; c < out.c; ++c) {
                for (int i = 0; i < out.h * out.w; ++i) {
                    y[static_cast<std::size_t>(c) * out.h * out.w +
                      static_cast<std::size_t>(i)] +=
                        l.bias[static_cast<std::size_t>(c)];
                }
            }
        }
        return y;
    }
    case LayerKind::kLinear: {
        std::vector<double> y(static_cast<std::size_t>(l.out_features), 0.0);
        for (int r = 0; r < l.out_features; ++r) {
            double acc = l.bias.empty()
                             ? 0.0
                             : l.bias[static_cast<std::size_t>(r)];
            const double* w = l.weights.data() +
                              static_cast<std::size_t>(r) * l.in_features;
            for (int c = 0; c < l.in_features; ++c) acc += w[c] * a[static_cast<std::size_t>(c)];
            y[static_cast<std::size_t>(r)] = acc;
        }
        return y;
    }
    case LayerKind::kBatchNorm2d: {
        const Shape& in = shape_of(l.inputs[0]);
        std::vector<double> y(a.size());
        const int hw = in.h * in.w;
        for (int c = 0; c < in.c; ++c) {
            const double inv_std =
                1.0 / std::sqrt(l.bn_var[static_cast<std::size_t>(c)] +
                                l.bn_eps);
            const double g = l.bn_gamma[static_cast<std::size_t>(c)];
            const double m = l.bn_mean[static_cast<std::size_t>(c)];
            const double bt = l.bn_beta[static_cast<std::size_t>(c)];
            for (int i = 0; i < hw; ++i) {
                const std::size_t idx =
                    static_cast<std::size_t>(c) * hw +
                    static_cast<std::size_t>(i);
                y[idx] = g * (a[idx] - m) * inv_std + bt;
            }
        }
        return y;
    }
    case LayerKind::kAvgPool2d: {
        const Shape& in = shape_of(l.inputs[0]);
        lin::Conv2dSpec spec;
        spec.in_channels = spec.out_channels = in.c;
        spec.kernel_h = spec.kernel_w = l.pool_kernel;
        spec.stride = l.pool_stride;
        spec.pad = l.pool_pad;
        spec.groups = in.c;
        const std::vector<double> w(
            spec.weight_count(),
            1.0 / (static_cast<double>(l.pool_kernel) * l.pool_kernel));
        return lin::conv2d_reference(spec, w, a, in.h, in.w);
    }
    case LayerKind::kActivation: {
        std::vector<double> y(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) y[i] = l.act.f(a[i]);
        return y;
    }
    case LayerKind::kAdd: {
        ORION_ASSERT(a.size() == b.size());
        std::vector<double> y(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] + b[i];
        return y;
    }
    }
    ORION_ASSERT(false);
    return {};
}

std::vector<double>
Network::forward(const std::vector<double>& input,
                 std::vector<double>* record_max_abs) const
{
    ORION_CHECK(input_ >= 0 && output_ >= 0, "network not finalized");
    ORION_CHECK(input.size() == shape_of(input_).size(),
                "input size mismatch: " << input.size() << " vs "
                                        << shape_of(input_).size());
    std::vector<std::vector<double>> values(
        static_cast<std::size_t>(num_layers()));
    if (record_max_abs != nullptr) {
        record_max_abs->assign(static_cast<std::size_t>(num_layers()), 0.0);
    }
    for (const Layer& l : layers_) {
        const std::vector<double> empty;
        const std::vector<double>& a =
            l.kind == LayerKind::kInput
                ? input
                : values[static_cast<std::size_t>(l.inputs[0])];
        const std::vector<double>& b =
            l.inputs.size() > 1
                ? values[static_cast<std::size_t>(l.inputs[1])]
                : empty;
        values[static_cast<std::size_t>(l.id)] = forward_one_layer(l, a, b);
        if (record_max_abs != nullptr) {
            double m = 0.0;
            for (double v : values[static_cast<std::size_t>(l.id)]) {
                m = std::max(m, std::abs(v));
            }
            (*record_max_abs)[static_cast<std::size_t>(l.id)] = m;
        }
    }
    return values[static_cast<std::size_t>(output_)];
}

}  // namespace orion::nn
