#ifndef ORION_SRC_NN_MODELS_H_
#define ORION_SRC_NN_MODELS_H_

/**
 * @file
 * The model zoo: every network evaluated in Table 2 of the paper, plus the
 * YOLO-v1 detector of Section 8.6 and the deeper CIFAR ResNets of Tables
 * 3 and 5. All networks are defined with the orion::nn module frontend
 * (src/nn/module.h) and lowered to the graph IR; weights are seeded
 * synthetic (He-initialized). The datasets and pretrained torchvision
 * weights used by the paper are not available offline, so accuracy
 * columns are replaced by FHE-vs-cleartext agreement (see DESIGN.md,
 * "Substitutions").
 */

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/nn/network.h"

namespace orion::nn {

/** Which activation family a model is instantiated with (Section 8.2). */
enum class Act { kSquare, kRelu, kSilu };

/** The ActivationSpec behind each Act family. */
ActivationSpec act_spec(Act act);

// ---- reusable blocks (Listing 1's BasicBlock and friends) ----

/** conv(no bias) -> batchnorm -> activation. */
ModulePtr ConvBnAct(int in_channels, int out_channels, int kernel,
                    int stride, int pad, Act act, int groups = 1);
/** conv(no bias) -> batchnorm. */
ModulePtr ConvBn(int in_channels, int out_channels, int kernel, int stride,
                 int pad, int groups = 1);
/** The residual BasicBlock of Listing 1 (projection shortcut as needed). */
ModulePtr BasicBlock(int in_channels, int out_channels, int stride, Act act);
/** The Bottleneck block of ResNet-50 (expansion 4). */
ModulePtr Bottleneck(int in_channels, int planes, int stride, Act act);

// ---- micro (8 x 8 x 1, not from the paper) ----

/**
 * A 64-16-5 MLP with one x^2 activation: small enough to run under the
 * toy CKKS parameters in well under a second. Shared by the serving
 * tests and bench_serve so they measure/validate the same network.
 */
Network make_micro_mlp(u64 seed = 51);

// ---- MNIST (28 x 28 x 1) ----

/** 3-layer MLP (SecureML): 784-128-128-10 with x^2 activations. */
Network make_mlp(u64 seed = 1);
/** LoLA CryptoNets: conv5x5/s2 -> x^2 -> FC100 -> x^2 -> FC10. */
Network make_lola(u64 seed = 2);
/** The large LeNet-5 of CHET/EVA: 32-64 conv maps, 512-dim FC. */
Network make_lenet5(u64 seed = 3);

// ---- CIFAR-10 (32 x 32 x 3) ----

Network make_alexnet_cifar(Act act, u64 seed = 4);
Network make_vgg16_cifar(Act act, u64 seed = 5);
/** CIFAR ResNet-(6n+2): depth in {20, 32, 44, 56, 110, ...}. */
Network make_resnet_cifar(int depth, Act act, u64 seed = 6);

// ---- Tiny ImageNet (64 x 64 x 3, 200 classes) ----

Network make_mobilenet_v1(u64 seed = 7);
Network make_resnet18_tiny(u64 seed = 8);

// ---- ImageNet (224 x 224 x 3, 1000 classes) ----

Network make_resnet34_imagenet(u64 seed = 9);
Network make_resnet50_imagenet(u64 seed = 10);

// ---- PASCAL-VOC object detection (448 x 448 x 3) ----

/** YOLO-v1 with a ResNet-34 backbone, 7x7x30 output (Section 8.6). */
Network make_yolo_v1(u64 seed = 11);

/** Every name make_model accepts (without activation suffixes). */
const std::vector<std::string>& model_names();

/**
 * Builds a model by name (case-insensitive): mlp, lola, lenet5, alexnet,
 * vgg16, resnet20, resnet32, resnet44, resnet56, resnet110, mobilenet,
 * resnet18, resnet34, resnet50, yolo, micro. Optional suffix
 * "-relu"/"-silu" selects the activation for CIFAR nets (default ReLU
 * for CIFAR, SiLU for larger sets). Unknown names throw an Error listing
 * every valid model.
 */
Network make_model(const std::string& name);

}  // namespace orion::nn

#endif  // ORION_SRC_NN_MODELS_H_
