#ifndef ORION_SRC_NN_NETWORK_H_
#define ORION_SRC_NN_NETWORK_H_

/**
 * @file
 * The network graph IR: the C++ analogue of the paper's `orion.nn` module
 * API (Listing 1). Networks are DAGs of layers; the same graph is executed
 * in cleartext (the "PyTorch output" every FHE run is validated against,
 * Section 7) and compiled to FHE instructions by src/core/compiler.
 *
 * Supported layer kinds cover the paper's model zoo: Conv2d with arbitrary
 * stride/padding/dilation/groups, Linear, BatchNorm2d, AvgPool2d (max
 * pooling is replaced by average pooling, Section 7), elementwise
 * activations (x^2, composite-minimax ReLU, Chebyshev SiLU or custom),
 * residual Add, and Flatten.
 */

#include <functional>
#include <string>
#include <vector>

#include "src/approx/chebyshev.h"
#include "src/linalg/toeplitz.h"

namespace orion::nn {

/** Elementwise activation specification. */
struct ActivationSpec {
    enum class Kind { kSquare, kRelu, kSilu, kCustom };

    Kind kind = Kind::kRelu;
    /** Composite minimax degrees for ReLU (Listing 1: degrees=[15,15,27]). */
    std::vector<int> relu_degrees = {15, 15, 27};
    /** Chebyshev degree for SiLU / custom activations. */
    int degree = 127;
    /** The cleartext function (set automatically for non-custom kinds). */
    std::function<double(double)> f;

    static ActivationSpec square();
    static ActivationSpec relu(std::vector<int> degrees = {15, 15, 27});
    static ActivationSpec silu(int degree = 127);
    static ActivationSpec custom(std::function<double(double)> f, int degree);
};

/** Layer kinds in the graph IR. */
enum class LayerKind {
    kInput,
    kConv2d,
    kLinear,
    kBatchNorm2d,
    kAvgPool2d,
    kActivation,
    kAdd,
    kFlatten,
};

const char* layer_kind_name(LayerKind k);

/** Tensor shape flowing along a graph edge. */
struct Shape {
    bool flat = false;
    int c = 0, h = 0, w = 0;  ///< when !flat
    int features = 0;         ///< when flat

    u64
    size() const
    {
        return flat ? static_cast<u64>(features)
                    : static_cast<u64>(c) * h * w;
    }
    bool
    operator==(const Shape& o) const
    {
        return flat == o.flat && c == o.c && h == o.h && w == o.w &&
               features == o.features;
    }
};

/** "(c, h, w)" or "flat[features]" - for error messages. */
std::string to_string(const Shape& s);

/** One node of the network graph. */
struct Layer {
    int id = -1;
    LayerKind kind = LayerKind::kInput;
    std::string name;
    std::vector<int> inputs;

    // Conv2d / AvgPool2d geometry.
    lin::Conv2dSpec conv;
    // Conv2d weights [co][ci/g][kh][kw]; Linear weights [out][in].
    std::vector<double> weights;
    std::vector<double> bias;  // per output channel / feature (may be empty)

    // Linear.
    int in_features = 0;
    int out_features = 0;

    // BatchNorm2d: y = gamma * (x - mean) / sqrt(var + eps) + beta.
    std::vector<double> bn_gamma, bn_beta, bn_mean, bn_var;
    double bn_eps = 1e-5;

    // AvgPool2d.
    int pool_kernel = 0;
    int pool_stride = 0;
    int pool_pad = 0;

    ActivationSpec act;

    Shape out_shape;  // filled by Network on construction
};

/** A DAG of layers with cleartext execution. */
class Network {
  public:
    explicit Network(std::string name = "net") : name_(std::move(name)) {}

    const std::string& network_name() const { return name_; }

    // ---- graph construction (returns the new layer id) ----

    int add_input(int c, int h, int w);
    int add_conv2d(int input, const lin::Conv2dSpec& spec,
                   std::vector<double> weights,
                   std::vector<double> bias = {});
    int add_linear(int input, int out_features, std::vector<double> weights,
                   std::vector<double> bias = {});
    int add_batchnorm2d(int input, std::vector<double> gamma,
                        std::vector<double> beta, std::vector<double> mean,
                        std::vector<double> var, double eps = 1e-5);
    int add_avgpool2d(int input, int kernel, int stride, int pad = 0);
    /** Global average pooling: kernel = stride = spatial size. */
    int add_global_avgpool(int input);
    int add_activation(int input, const ActivationSpec& spec);
    int add_add(int a, int b);
    int add_flatten(int input);
    void set_output(int id);

    // ---- inspection ----

    int num_layers() const { return static_cast<int>(layers_.size()); }
    const Layer& layer(int id) const;
    int output_id() const { return output_; }
    int input_id() const { return input_; }
    const Shape& shape_of(int id) const { return layer(id).out_shape; }
    /** Layer ids in topological (insertion) order. */
    std::vector<int> topo_order() const;
    /** Ids of layers consuming the given layer's output. */
    std::vector<int> consumers(int id) const;

    /** Trainable parameter count (Table 2's "Params"). */
    u64 param_count() const;
    /** Multiply count of one inference (Table 2's "FLOPS", mult-only). */
    u64 flop_count() const;

    // ---- cleartext execution ----

    /**
     * Runs the network on a logical (c,h,w)-major input. When
     * `record_max_abs` is given, it receives max |value| per layer output
     * (the basis of range estimation, Section 6).
     */
    std::vector<double> forward(const std::vector<double>& input,
                                std::vector<double>* record_max_abs = nullptr)
        const;

    /**
     * Cleartext forward where activations use their *polynomial*
     * approximations and inputs are pre-normalized, mirroring what the
     * compiled FHE program computes (used by the simulation backend).
     */
    std::vector<double> forward_one_layer(const Layer& l,
                                          const std::vector<double>& a,
                                          const std::vector<double>& b = {})
        const;

  private:
    Shape infer_shape(const Layer& l) const;
    int push(Layer l);
    /** Throws a precise error when `id` does not name an existing layer. */
    void check_input_id(int id, const char* who) const;

    std::string name_;
    std::vector<Layer> layers_;
    int input_ = -1;
    int output_ = -1;
};

}  // namespace orion::nn

#endif  // ORION_SRC_NN_NETWORK_H_
