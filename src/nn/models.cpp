#include "src/nn/models.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <utility>

namespace orion::nn {

ActivationSpec
act_spec(Act act)
{
    switch (act) {
    case Act::kSquare: return ActivationSpec::square();
    case Act::kRelu: return ActivationSpec::relu({15, 15, 27});
    case Act::kSilu: return ActivationSpec::silu(127);
    }
    ORION_ASSERT(false);
    return {};
}

// ---------------------------------------------------------------------
// Reusable blocks
// ---------------------------------------------------------------------

ModulePtr
ConvBnAct(int in_channels, int out_channels, int kernel, int stride, int pad,
          Act act, int groups)
{
    return Sequential(
        {Conv2d(in_channels, out_channels, kernel,
                {.stride = stride, .pad = pad, .groups = groups,
                 .bias = false}),
         BatchNorm2d(out_channels), Activation(act_spec(act))});
}

ModulePtr
ConvBn(int in_channels, int out_channels, int kernel, int stride, int pad,
       int groups)
{
    return Sequential(
        {Conv2d(in_channels, out_channels, kernel,
                {.stride = stride, .pad = pad, .groups = groups,
                 .bias = false}),
         BatchNorm2d(out_channels)});
}

ModulePtr
BasicBlock(int in_channels, int out_channels, int stride, Act act)
{
    ModulePtr body =
        Sequential({ConvBnAct(in_channels, out_channels, 3, stride, 1, act),
                    ConvBn(out_channels, out_channels, 3, 1, 1)});
    ModulePtr shortcut =
        (stride != 1 || in_channels != out_channels)
            ? ConvBn(in_channels, out_channels, 1, stride, 0)
            : nullptr;
    return Sequential(
        {Residual(std::move(body), std::move(shortcut)),
         Activation(act_spec(act))});
}

ModulePtr
Bottleneck(int in_channels, int planes, int stride, Act act)
{
    const int out_channels = planes * 4;
    ModulePtr body =
        Sequential({ConvBnAct(in_channels, planes, 1, 1, 0, act),
                    ConvBnAct(planes, planes, 3, stride, 1, act),
                    ConvBn(planes, out_channels, 1, 1, 0)});
    ModulePtr shortcut =
        (stride != 1 || in_channels != out_channels)
            ? ConvBn(in_channels, out_channels, 1, stride, 0)
            : nullptr;
    return Sequential(
        {Residual(std::move(body), std::move(shortcut)),
         Activation(act_spec(act))});
}

namespace {

/**
 * ImageNet-style ResNet trunk (stem + 4 stages): appends its modules to
 * `mods` and returns the trunk's output channel count.
 */
int
resnet_trunk(std::vector<ModulePtr>* mods, int in_channels, bool bottleneck,
             const std::vector<int>& blocks, Act act)
{
    // Stem: 7x7/s2 conv, then 3x3/s2 average pool (max pool replaced per
    // Section 7).
    mods->push_back(ConvBnAct(in_channels, 64, 7, 2, 3, act));
    mods->push_back(AvgPool2d(3, 2, 1));
    const std::vector<int> widths = {64, 128, 256, 512};
    int ci = 64;
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            if (bottleneck) {
                mods->push_back(Bottleneck(ci, widths[stage], stride, act));
                ci = widths[stage] * 4;
            } else {
                mods->push_back(BasicBlock(ci, widths[stage], stride, act));
                ci = widths[stage];
            }
        }
    }
    return ci;
}

/** micro-mlp's historical N(0, std) initializer (one shared carry). */
class GaussianInit final : public Initializer {
  public:
    GaussianInit(u64 seed, double std) : rng_(seed), dist_(0.0, std) {}

    std::vector<double>
    conv_weight(const lin::Conv2dSpec& spec) override
    {
        return draw(spec.weight_count());
    }
    std::vector<double>
    linear_weight(int out_features, int in_features) override
    {
        return draw(static_cast<u64>(out_features) * in_features);
    }
    std::vector<double> bias(int n) override
    {
        return draw(static_cast<u64>(n));
    }
    void
    batchnorm(int, std::vector<double>*, std::vector<double>*,
              std::vector<double>*, std::vector<double>*) override
    {
        ORION_CHECK(false, "GaussianInit has no batchnorm policy");
    }

  private:
    std::vector<double>
    draw(u64 n)
    {
        std::vector<double> w(n);
        for (double& x : w) x = dist_(rng_);
        return w;
    }

    std::mt19937_64 rng_;
    std::normal_distribution<double> dist_;
};

}  // namespace

// ---------------------------------------------------------------------
// The zoo
// ---------------------------------------------------------------------

Network
make_micro_mlp(u64 seed)
{
    auto m = Sequential(
        {Flatten(), Linear(64, 16), Square(), Linear(16, 5)});
    GaussianInit init(seed, 0.3);
    m->initialize(init);
    return lower_to_network(*m, 1, 8, 8, "micro-mlp", /*take_params=*/true);
}

Network
make_mlp(u64 seed)
{
    auto m = Sequential({Flatten(), Linear(784, 128), Square(),
                         Linear(128, 128), Square(), Linear(128, 10)});
    return build_network(*m, 1, 28, 28, "mlp", seed);
}

Network
make_lola(u64 seed)
{
    auto m = Sequential({Conv2d(1, 5, 5, {.stride = 2, .pad = 1}), Square(),
                         Flatten(),  // 5 x 13 x 13 = 845
                         Linear(845, 100), Square(), Linear(100, 10)});
    return build_network(*m, 1, 28, 28, "lola", seed);
}

Network
make_lenet5(u64 seed)
{
    auto m = Sequential({Conv2d(1, 32, 5, {.pad = 2}), Square(),
                         AvgPool2d(2), Conv2d(32, 64, 5, {.pad = 2}),
                         Square(), AvgPool2d(2),
                         Flatten(),  // 64 * 7 * 7 = 3136
                         Linear(3136, 512), Square(), Linear(512, 10)});
    return build_network(*m, 1, 28, 28, "lenet5", seed);
}

Network
make_alexnet_cifar(Act act, u64 seed)
{
    auto m = Sequential({
        ConvBnAct(3, 64, 3, 2, 1, act),    // 16x16
        ConvBnAct(64, 192, 3, 1, 1, act),  // 16x16
        AvgPool2d(2),                      // 8x8
        ConvBnAct(192, 384, 3, 1, 1, act),
        ConvBnAct(384, 256, 3, 1, 1, act),
        ConvBnAct(256, 256, 3, 1, 1, act),
        AvgPool2d(2),  // 4x4
        Flatten(),     // 4096
        Linear(4096, 4096),
        Activation(act_spec(act)),
        Linear(4096, 1024),
        Activation(act_spec(act)),
        Linear(1024, 10),
    });
    return build_network(
        *m, 3, 32, 32, act == Act::kSilu ? "alexnet-silu" : "alexnet-relu",
        seed);
}

Network
make_vgg16_cifar(Act act, u64 seed)
{
    const std::vector<std::vector<int>> stages = {
        {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512},
        {512, 512, 512}};
    std::vector<ModulePtr> mods;
    int ci = 3;
    for (const std::vector<int>& stage : stages) {
        for (int width : stage) {
            mods.push_back(ConvBnAct(ci, width, 3, 1, 1, act));
            ci = width;
        }
        mods.push_back(AvgPool2d(2));
    }
    mods.push_back(Flatten());  // 512 (1x1 after five pools)
    mods.push_back(Linear(512, 512));
    mods.push_back(Activation(act_spec(act)));
    mods.push_back(Linear(512, 10));
    auto m = Sequential(std::move(mods));
    return build_network(
        *m, 3, 32, 32, act == Act::kSilu ? "vgg16-silu" : "vgg16-relu",
        seed);
}

Network
make_resnet_cifar(int depth, Act act, u64 seed)
{
    ORION_CHECK(depth >= 8 && (depth - 2) % 6 == 0,
                "CIFAR ResNet depth must be 6n+2, got " << depth);
    const int n = (depth - 2) / 6;
    std::vector<ModulePtr> mods;
    mods.push_back(ConvBnAct(3, 16, 3, 1, 1, act));
    const std::vector<int> widths = {16, 32, 64};
    int ci = 16;
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < n; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            mods.push_back(BasicBlock(ci, widths[stage], stride, act));
            ci = widths[stage];
        }
    }
    mods.push_back(GlobalAvgPool());  // 64 x 1 x 1
    mods.push_back(Flatten());
    mods.push_back(Linear(64, 10));
    auto m = Sequential(std::move(mods));
    return build_network(*m, 3, 32, 32,
                         "resnet" + std::to_string(depth) +
                             (act == Act::kSilu ? "-silu" : "-relu"),
                         seed);
}

Network
make_mobilenet_v1(u64 seed)
{
    const Act act = Act::kSilu;
    std::vector<ModulePtr> mods;
    mods.push_back(ConvBnAct(3, 32, 3, 2, 1, act));  // 32x32
    // (out_channels, stride) of each depthwise-separable block.
    const std::vector<std::pair<int, int>> blocks = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2},
        {512, 1}, {512, 1}, {512, 1}, {512, 1},  {512, 1},  {1024, 2},
        {1024, 1}};
    int ci = 32;
    for (const auto& [co, stride] : blocks) {
        mods.push_back(
            ConvBnAct(ci, ci, 3, stride, 1, act, /*groups=*/ci));
        mods.push_back(ConvBnAct(ci, co, 1, 1, 0, act));
        ci = co;
    }
    mods.push_back(GlobalAvgPool());  // 1024 x 1 x 1 (spatial 2 -> 1)
    mods.push_back(Flatten());
    mods.push_back(Linear(1024, 200));
    auto m = Sequential(std::move(mods));
    return build_network(*m, 3, 64, 64, "mobilenet", seed);
}

Network
make_resnet18_tiny(u64 seed)
{
    // Tiny-ImageNet adaptation: stride-1 3x3 stem and no stem pooling, so
    // stage 1 runs at the full 64x64 resolution (this is what gives the
    // paper's 2.26G multiply count despite only 11M parameters).
    const Act act = Act::kSilu;
    std::vector<ModulePtr> mods;
    mods.push_back(ConvBnAct(3, 64, 3, 1, 1, act));
    const std::vector<int> widths = {64, 128, 256, 512};
    const std::vector<int> blocks = {2, 2, 2, 2};
    int ci = 64;
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            mods.push_back(BasicBlock(ci, widths[stage], stride, act));
            ci = widths[stage];
        }
    }
    mods.push_back(GlobalAvgPool());
    mods.push_back(Flatten());
    mods.push_back(Linear(512, 200));
    auto m = Sequential(std::move(mods));
    return build_network(*m, 3, 64, 64, "resnet18", seed);
}

Network
make_resnet34_imagenet(u64 seed)
{
    std::vector<ModulePtr> mods;
    const int co = resnet_trunk(&mods, 3, /*bottleneck=*/false, {3, 4, 6, 3},
                                Act::kSilu);
    mods.push_back(GlobalAvgPool());
    mods.push_back(Flatten());
    mods.push_back(Linear(co, 1000));
    auto m = Sequential(std::move(mods));
    return build_network(*m, 3, 224, 224, "resnet34", seed);
}

Network
make_resnet50_imagenet(u64 seed)
{
    std::vector<ModulePtr> mods;
    const int co = resnet_trunk(&mods, 3, /*bottleneck=*/true, {3, 4, 6, 3},
                                Act::kSilu);
    mods.push_back(GlobalAvgPool());
    mods.push_back(Flatten());
    mods.push_back(Linear(co, 1000));
    auto m = Sequential(std::move(mods));
    return build_network(*m, 3, 224, 224, "resnet50", seed);
}

Network
make_yolo_v1(u64 seed)
{
    const Act act = Act::kSilu;
    std::vector<ModulePtr> mods;
    // ResNet-34 backbone at 448 resolution: final feature map 14x14x512.
    const int co = resnet_trunk(&mods, 3, /*bottleneck=*/false, {3, 4, 6, 3},
                                act);
    // Detection head: one strided conv to 7x7, then the big FC pair.
    mods.push_back(ConvBnAct(co, 512, 3, 2, 1, act));  // 7x7x512
    mods.push_back(Flatten());                         // 25088
    mods.push_back(Linear(25088, 4096));
    mods.push_back(Activation(act_spec(act)));
    // 7 x 7 x 30 detection tensor (20 classes + 2 boxes x 5).
    mods.push_back(Linear(4096, 1470));
    auto m = Sequential(std::move(mods));
    return build_network(*m, 3, 448, 448, "yolo-v1", seed);
}

// ---------------------------------------------------------------------
// make_model
// ---------------------------------------------------------------------

const std::vector<std::string>&
model_names()
{
    static const std::vector<std::string> names = {
        "mlp",      "lola",     "lenet5",   "alexnet",  "vgg16",
        "resnet20", "resnet32", "resnet44", "resnet56", "resnet110",
        "mobilenet", "resnet18", "resnet34", "resnet50", "yolo",
        "micro"};
    return names;
}

Network
make_model(const std::string& name)
{
    std::string lowered = name;
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return std::tolower(c); });

    auto act_of = [&lowered](Act fallback) {
        if (lowered.ends_with("-silu")) return Act::kSilu;
        if (lowered.ends_with("-relu")) return Act::kRelu;
        return fallback;
    };
    const std::string base = [&lowered] {
        const auto dash = lowered.find('-');
        return dash == std::string::npos ? lowered : lowered.substr(0, dash);
    }();

    if (base == "micro") return make_micro_mlp();
    if (base == "mlp") return make_mlp();
    if (base == "lola") return make_lola();
    if (base == "lenet5") return make_lenet5();
    if (base == "alexnet") return make_alexnet_cifar(act_of(Act::kRelu));
    if (base == "vgg16") return make_vgg16_cifar(act_of(Act::kRelu));
    // Depth capped at 4 digits so std::stoi cannot overflow (anything
    // longer falls through to the unknown-model error).
    if (base.starts_with("resnet") && base.size() > 6 &&
        base.size() <= 6 + 4 &&
        std::all_of(base.begin() + 6, base.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
        })) {
        const int depth = std::stoi(base.substr(6));
        if (depth == 18) return make_resnet18_tiny();
        if (depth == 34) return make_resnet34_imagenet();
        if (depth == 50) return make_resnet50_imagenet();
        return make_resnet_cifar(depth, act_of(Act::kRelu));
    }
    if (base == "mobilenet") return make_mobilenet_v1();
    if (base == "yolo") return make_yolo_v1();

    std::string valid;
    for (const std::string& n : model_names()) {
        if (!valid.empty()) valid += ", ";
        valid += n;
    }
    ORION_CHECK(false, "unknown model '"
                           << name << "'; valid models (case-insensitive): "
                           << valid
                           << "; CIFAR nets accept -relu/-silu suffixes");
    return Network();
}

}  // namespace orion::nn
