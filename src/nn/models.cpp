#include "src/nn/models.h"

#include <cmath>
#include <random>

namespace orion::nn {

namespace {

/** Seeded He-style initializer for synthetic weights. */
class Init {
  public:
    explicit Init(u64 seed) : rng_(seed) {}

    std::vector<double>
    conv(const lin::Conv2dSpec& s)
    {
        const u64 fan_in = static_cast<u64>(s.in_channels) / s.groups *
                           s.kernel_h * s.kernel_w;
        return gaussian(s.weight_count(),
                        std::sqrt(2.0 / static_cast<double>(fan_in)));
    }
    std::vector<double>
    linear(int out_features, int in_features)
    {
        return gaussian(static_cast<u64>(out_features) * in_features,
                        std::sqrt(2.0 / static_cast<double>(in_features)));
    }
    std::vector<double>
    bias(int n)
    {
        return gaussian(static_cast<u64>(n), 0.01);
    }
    /** BatchNorm parameters resembling a trained network. */
    void
    bn(int c, std::vector<double>* gamma, std::vector<double>* beta,
       std::vector<double>* mean, std::vector<double>* var)
    {
        std::uniform_real_distribution<double> g(0.6, 1.4);
        std::uniform_real_distribution<double> v(0.4, 1.6);
        gamma->resize(static_cast<std::size_t>(c));
        beta->resize(static_cast<std::size_t>(c));
        mean->resize(static_cast<std::size_t>(c));
        var->resize(static_cast<std::size_t>(c));
        for (int i = 0; i < c; ++i) {
            (*gamma)[static_cast<std::size_t>(i)] = g(rng_);
            (*beta)[static_cast<std::size_t>(i)] = 0.05 * normal_(rng_);
            (*mean)[static_cast<std::size_t>(i)] = 0.1 * normal_(rng_);
            (*var)[static_cast<std::size_t>(i)] = v(rng_);
        }
    }

  private:
    std::vector<double>
    gaussian(u64 n, double std)
    {
        std::vector<double> out(n);
        for (double& x : out) x = std * normal_(rng_);
        return out;
    }
    std::mt19937_64 rng_;
    std::normal_distribution<double> normal_{0.0, 1.0};
};

ActivationSpec
act_spec(Act act)
{
    switch (act) {
    case Act::kSquare: return ActivationSpec::square();
    case Act::kRelu: return ActivationSpec::relu({15, 15, 27});
    case Act::kSilu: return ActivationSpec::silu(127);
    }
    ORION_ASSERT(false);
    return {};
}

/** conv -> bn -> act block. */
int
conv_bn_act(Network& net, Init& init, int input, int co, int kernel,
            int stride, int pad, Act act, int groups = 1)
{
    const Shape& in = net.shape_of(input);
    lin::Conv2dSpec spec;
    spec.in_channels = in.c;
    spec.out_channels = co;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;
    int id = net.add_conv2d(input, spec, init.conv(spec));
    std::vector<double> g, b, m, v;
    init.bn(co, &g, &b, &m, &v);
    id = net.add_batchnorm2d(id, g, b, m, v);
    return net.add_activation(id, act_spec(act));
}

/** conv -> bn (no activation). */
int
conv_bn(Network& net, Init& init, int input, int co, int kernel, int stride,
        int pad, int groups = 1)
{
    const Shape& in = net.shape_of(input);
    lin::Conv2dSpec spec;
    spec.in_channels = in.c;
    spec.out_channels = co;
    spec.kernel_h = spec.kernel_w = kernel;
    spec.stride = stride;
    spec.pad = pad;
    spec.groups = groups;
    int id = net.add_conv2d(input, spec, init.conv(spec));
    std::vector<double> g, b, m, v;
    init.bn(co, &g, &b, &m, &v);
    return net.add_batchnorm2d(id, g, b, m, v);
}

/** The BasicBlock of Listing 1. */
int
basic_block(Network& net, Init& init, int input, int co, int stride, Act act)
{
    const int ci = net.shape_of(input).c;
    int out = conv_bn_act(net, init, input, co, 3, stride, 1, act);
    out = conv_bn(net, init, out, co, 3, 1, 1);
    int shortcut = input;
    if (stride != 1 || ci != co) {
        shortcut = conv_bn(net, init, input, co, 1, stride, 0);
    }
    const int sum = net.add_add(out, shortcut);
    return net.add_activation(sum, act_spec(act));
}

/** The Bottleneck block of ResNet-50. */
int
bottleneck_block(Network& net, Init& init, int input, int planes, int stride,
                 Act act)
{
    const int ci = net.shape_of(input).c;
    const int co = planes * 4;
    int out = conv_bn_act(net, init, input, planes, 1, 1, 0, act);
    out = conv_bn_act(net, init, out, planes, 3, stride, 1, act);
    out = conv_bn(net, init, out, co, 1, 1, 0);
    int shortcut = input;
    if (stride != 1 || ci != co) {
        shortcut = conv_bn(net, init, input, co, 1, stride, 0);
    }
    const int sum = net.add_add(out, shortcut);
    return net.add_activation(sum, act_spec(act));
}

/** ImageNet-style ResNet trunk (stem + 4 stages). */
int
resnet_trunk(Network& net, Init& init, int input, bool bottleneck,
             const std::vector<int>& blocks, Act act)
{
    // Stem: 7x7/s2 conv, then 3x3/s2 average pool (max pool replaced per
    // Section 7).
    int id = conv_bn_act(net, init, input, 64, 7, 2, 3, act);
    id = net.add_avgpool2d(id, 3, 2, 1);
    const std::vector<int> widths = {64, 128, 256, 512};
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            id = bottleneck
                     ? bottleneck_block(net, init, id,
                                        widths[stage], stride, act)
                     : basic_block(net, init, id, widths[stage], stride, act);
        }
    }
    return id;
}

}  // namespace

Network
make_micro_mlp(u64 seed)
{
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> dist(0.0, 0.3);
    auto weights = [&rng, &dist](u64 n) {
        std::vector<double> w(n);
        for (double& x : w) x = dist(rng);
        return w;
    };
    Network net("micro-mlp");
    int id = net.add_input(1, 8, 8);
    id = net.add_flatten(id);
    id = net.add_linear(id, 16, weights(16 * 64), weights(16));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_linear(id, 5, weights(5 * 16), weights(5));
    net.set_output(id);
    return net;
}

Network
make_mlp(u64 seed)
{
    Init init(seed);
    Network net("mlp");
    int id = net.add_input(1, 28, 28);
    id = net.add_flatten(id);
    id = net.add_linear(id, 128, init.linear(128, 784), init.bias(128));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_linear(id, 128, init.linear(128, 128), init.bias(128));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_linear(id, 10, init.linear(10, 128), init.bias(10));
    net.set_output(id);
    return net;
}

Network
make_lola(u64 seed)
{
    Init init(seed);
    Network net("lola");
    int id = net.add_input(1, 28, 28);
    lin::Conv2dSpec spec;
    spec.in_channels = 1;
    spec.out_channels = 5;
    spec.kernel_h = spec.kernel_w = 5;
    spec.stride = 2;
    spec.pad = 1;
    id = net.add_conv2d(id, spec, init.conv(spec), init.bias(5));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_flatten(id);  // 5 x 13 x 13 = 845
    id = net.add_linear(id, 100, init.linear(100, 845), init.bias(100));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_linear(id, 10, init.linear(10, 100), init.bias(10));
    net.set_output(id);
    return net;
}

Network
make_lenet5(u64 seed)
{
    Init init(seed);
    Network net("lenet5");
    int id = net.add_input(1, 28, 28);
    lin::Conv2dSpec c1;
    c1.in_channels = 1;
    c1.out_channels = 32;
    c1.kernel_h = c1.kernel_w = 5;
    c1.pad = 2;
    id = net.add_conv2d(id, c1, init.conv(c1), init.bias(32));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_avgpool2d(id, 2, 2);
    lin::Conv2dSpec c2;
    c2.in_channels = 32;
    c2.out_channels = 64;
    c2.kernel_h = c2.kernel_w = 5;
    c2.pad = 2;
    id = net.add_conv2d(id, c2, init.conv(c2), init.bias(64));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_avgpool2d(id, 2, 2);
    id = net.add_flatten(id);  // 64 * 7 * 7 = 3136
    id = net.add_linear(id, 512, init.linear(512, 3136), init.bias(512));
    id = net.add_activation(id, ActivationSpec::square());
    id = net.add_linear(id, 10, init.linear(10, 512), init.bias(10));
    net.set_output(id);
    return net;
}

Network
make_alexnet_cifar(Act act, u64 seed)
{
    Init init(seed);
    Network net(act == Act::kSilu ? "alexnet-silu" : "alexnet-relu");
    int id = net.add_input(3, 32, 32);
    id = conv_bn_act(net, init, id, 64, 3, 2, 1, act);    // 16x16
    id = conv_bn_act(net, init, id, 192, 3, 1, 1, act);   // 16x16
    id = net.add_avgpool2d(id, 2, 2);                     // 8x8
    id = conv_bn_act(net, init, id, 384, 3, 1, 1, act);
    id = conv_bn_act(net, init, id, 256, 3, 1, 1, act);
    id = conv_bn_act(net, init, id, 256, 3, 1, 1, act);
    id = net.add_avgpool2d(id, 2, 2);                     // 4x4
    id = net.add_flatten(id);                             // 4096
    id = net.add_linear(id, 4096, init.linear(4096, 4096), init.bias(4096));
    id = net.add_activation(id, act_spec(act));
    id = net.add_linear(id, 1024, init.linear(1024, 4096), init.bias(1024));
    id = net.add_activation(id, act_spec(act));
    id = net.add_linear(id, 10, init.linear(10, 1024), init.bias(10));
    net.set_output(id);
    return net;
}

Network
make_vgg16_cifar(Act act, u64 seed)
{
    Init init(seed);
    Network net(act == Act::kSilu ? "vgg16-silu" : "vgg16-relu");
    int id = net.add_input(3, 32, 32);
    const std::vector<std::vector<int>> stages = {
        {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512},
        {512, 512, 512}};
    for (const std::vector<int>& stage : stages) {
        for (int width : stage) {
            id = conv_bn_act(net, init, id, width, 3, 1, 1, act);
        }
        id = net.add_avgpool2d(id, 2, 2);
    }
    id = net.add_flatten(id);  // 512 (1x1 after five pools)
    id = net.add_linear(id, 512, init.linear(512, 512), init.bias(512));
    id = net.add_activation(id, act_spec(act));
    id = net.add_linear(id, 10, init.linear(10, 512), init.bias(10));
    net.set_output(id);
    return net;
}

Network
make_resnet_cifar(int depth, Act act, u64 seed)
{
    ORION_CHECK(depth >= 8 && (depth - 2) % 6 == 0,
                "CIFAR ResNet depth must be 6n+2, got " << depth);
    const int n = (depth - 2) / 6;
    Init init(seed);
    Network net("resnet" + std::to_string(depth) +
                (act == Act::kSilu ? "-silu" : "-relu"));
    int id = net.add_input(3, 32, 32);
    id = conv_bn_act(net, init, id, 16, 3, 1, 1, act);
    const std::vector<int> widths = {16, 32, 64};
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < n; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            id = basic_block(net, init, id, widths[stage], stride, act);
        }
    }
    id = net.add_global_avgpool(id);  // 64 x 1 x 1
    id = net.add_flatten(id);
    id = net.add_linear(id, 10, init.linear(10, 64), init.bias(10));
    net.set_output(id);
    return net;
}

Network
make_mobilenet_v1(u64 seed)
{
    Init init(seed);
    Network net("mobilenet");
    const Act act = Act::kSilu;
    int id = net.add_input(3, 64, 64);
    id = conv_bn_act(net, init, id, 32, 3, 2, 1, act);  // 32x32
    // (out_channels, stride) of each depthwise-separable block.
    const std::vector<std::pair<int, int>> blocks = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2},
        {512, 1}, {512, 1}, {512, 1}, {512, 1},  {512, 1},  {1024, 2},
        {1024, 1}};
    for (const auto& [co, stride] : blocks) {
        const int ci = net.shape_of(id).c;
        id = conv_bn_act(net, init, id, ci, 3, stride, 1, act, /*groups=*/ci);
        id = conv_bn_act(net, init, id, co, 1, 1, 0, act);
    }
    id = net.add_global_avgpool(id);  // 1024 x 1 x 1 (spatial 2 -> 1)
    id = net.add_flatten(id);
    id = net.add_linear(id, 200, init.linear(200, 1024), init.bias(200));
    net.set_output(id);
    return net;
}

Network
make_resnet18_tiny(u64 seed)
{
    // Tiny-ImageNet adaptation: stride-1 3x3 stem and no stem pooling, so
    // stage 1 runs at the full 64x64 resolution (this is what gives the
    // paper's 2.26G multiply count despite only 11M parameters).
    Init init(seed);
    Network net("resnet18");
    const Act act = Act::kSilu;
    int id = net.add_input(3, 64, 64);
    id = conv_bn_act(net, init, id, 64, 3, 1, 1, act);
    const std::vector<int> widths = {64, 128, 256, 512};
    const std::vector<int> blocks = {2, 2, 2, 2};
    for (std::size_t stage = 0; stage < widths.size(); ++stage) {
        for (int b = 0; b < blocks[stage]; ++b) {
            const int stride = (stage > 0 && b == 0) ? 2 : 1;
            id = basic_block(net, init, id, widths[stage], stride, act);
        }
    }
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = net.add_linear(id, 200, init.linear(200, 512), init.bias(200));
    net.set_output(id);
    return net;
}

Network
make_resnet34_imagenet(u64 seed)
{
    Init init(seed);
    Network net("resnet34");
    int id = net.add_input(3, 224, 224);
    id = resnet_trunk(net, init, id, /*bottleneck=*/false, {3, 4, 6, 3},
                      Act::kSilu);
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = net.add_linear(id, 1000, init.linear(1000, 512), init.bias(1000));
    net.set_output(id);
    return net;
}

Network
make_resnet50_imagenet(u64 seed)
{
    Init init(seed);
    Network net("resnet50");
    int id = net.add_input(3, 224, 224);
    id = resnet_trunk(net, init, id, /*bottleneck=*/true, {3, 4, 6, 3},
                      Act::kSilu);
    id = net.add_global_avgpool(id);
    id = net.add_flatten(id);
    id = net.add_linear(id, 1000, init.linear(1000, 2048), init.bias(1000));
    net.set_output(id);
    return net;
}

Network
make_yolo_v1(u64 seed)
{
    Init init(seed);
    Network net("yolo-v1");
    const Act act = Act::kSilu;
    int id = net.add_input(3, 448, 448);
    // ResNet-34 backbone at 448 resolution: final feature map 14x14x512.
    id = resnet_trunk(net, init, id, /*bottleneck=*/false, {3, 4, 6, 3}, act);
    // Detection head: one strided conv to 7x7, then the big FC pair.
    id = conv_bn_act(net, init, id, 512, 3, 2, 1, act);  // 7x7x512
    id = net.add_flatten(id);                            // 25088
    id = net.add_linear(id, 4096, init.linear(4096, 25088), init.bias(4096));
    id = net.add_activation(id, act_spec(act));
    // 7 x 7 x 30 detection tensor (20 classes + 2 boxes x 5).
    id = net.add_linear(id, 1470, init.linear(1470, 4096), init.bias(1470));
    net.set_output(id);
    return net;
}

Network
make_model(const std::string& name)
{
    auto act_of = [&name](Act fallback) {
        if (name.ends_with("-silu")) return Act::kSilu;
        if (name.ends_with("-relu")) return Act::kRelu;
        return fallback;
    };
    const std::string base = [&name] {
        const auto dash = name.find('-');
        return dash == std::string::npos ? name : name.substr(0, dash);
    }();

    if (base == "mlp") return make_mlp();
    if (base == "lola") return make_lola();
    if (base == "lenet5") return make_lenet5();
    if (base == "alexnet") return make_alexnet_cifar(act_of(Act::kRelu));
    if (base == "vgg16") return make_vgg16_cifar(act_of(Act::kRelu));
    if (base.starts_with("resnet")) {
        const int depth = std::stoi(base.substr(6));
        if (depth == 18) return make_resnet18_tiny();
        if (depth == 34) return make_resnet34_imagenet();
        if (depth == 50) return make_resnet50_imagenet();
        return make_resnet_cifar(depth, act_of(Act::kRelu));
    }
    if (base == "mobilenet") return make_mobilenet_v1();
    if (base == "yolo") return make_yolo_v1();
    ORION_CHECK(false, "unknown model: " << name);
    return Network();
}

}  // namespace orion::nn
