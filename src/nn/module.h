#ifndef ORION_SRC_NN_MODULE_H_
#define ORION_SRC_NN_MODULE_H_

/**
 * @file
 * The PyTorch-style module frontend (the C++ realization of the paper's
 * Listing 1): typed, composable layer objects with shape inference at
 * construction, automatic seeded He initialization, and named
 * state_dict()-style weight access. A module tree *lowers* to the flat
 * graph IR of src/nn/network.h via build_network(), so the compiler,
 * placement, and executors underneath are untouched.
 *
 * A network definition reads like the paper's Python:
 *
 *   auto net = nn::Sequential({
 *       nn::Conv2d(1, 4, 3, {.stride = 2, .pad = 1}),
 *       nn::Square(),
 *       nn::Flatten(),
 *       nn::Linear(64, 10),
 *   });
 *   nn::Network ir = nn::build_network(*net, 1, 8, 8, "quickstart", seed);
 *
 * Lowering contract (see DESIGN.md, "Module -> Network ->
 * CompiledNetwork"): build() appends IR layers in module order, one
 * add_input at the root, and every parameter is materialized before
 * lowering (either user-set via set_param / load_state_dict, or drawn by
 * an Initializer in module order - which makes module-built graphs
 * bit-identical to the historical hand-threaded builders for the same
 * seed).
 */

#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/nn/network.h"

namespace orion::nn {

class Module;
using ModulePtr = std::shared_ptr<Module>;
/** Flat named-parameter map with dotted paths ("body.0.weight"). */
using StateDict = std::map<std::string, std::vector<double>>;

/**
 * Weight-initialization policy. Modules draw their unset parameters from
 * one Initializer in module order, so a given (policy, seed) pair
 * determines every weight in the tree deterministically.
 */
class Initializer {
  public:
    virtual ~Initializer() = default;

    virtual std::vector<double> conv_weight(const lin::Conv2dSpec& spec) = 0;
    virtual std::vector<double> linear_weight(int out_features,
                                              int in_features) = 0;
    virtual std::vector<double> bias(int n) = 0;
    virtual void batchnorm(int channels, std::vector<double>* gamma,
                           std::vector<double>* beta,
                           std::vector<double>* mean,
                           std::vector<double>* var) = 0;
};

/**
 * The default seeded He-style initializer (the historical model-zoo
 * `Init`): He-scaled gaussians for conv/linear weights, 0.01-std
 * gaussians for biases, and BatchNorm statistics resembling a trained
 * network. One shared normal_distribution carries state across draws, so
 * the draw *order* is part of the reproducibility contract.
 */
class HeInit final : public Initializer {
  public:
    explicit HeInit(u64 seed) : rng_(seed) {}

    std::vector<double> conv_weight(const lin::Conv2dSpec& spec) override;
    std::vector<double> linear_weight(int out_features,
                                      int in_features) override;
    std::vector<double> bias(int n) override;
    void batchnorm(int channels, std::vector<double>* gamma,
                   std::vector<double>* beta, std::vector<double>* mean,
                   std::vector<double>* var) override;

  private:
    std::vector<double> gaussian(u64 n, double std);

    std::mt19937_64 rng_;
    std::normal_distribution<double> normal_{0.0, 1.0};
};

/**
 * Base class of every frontend layer. Leaves own their parameters;
 * containers (Sequential, Residual/Add) own named children. All shape
 * computation happens at construction/composition time via
 * infer_shape(), so a mis-sized model throws before any compilation.
 */
class Module {
  public:
    virtual ~Module() = default;

    /** The module kind ("Conv2d", "Sequential", ...). */
    virtual const char* kind() const = 0;

    /**
     * Validates this module against an input shape and returns the output
     * shape. Throws orion::Error with a precise message on mismatch.
     */
    virtual Shape infer_shape(const Shape& in) const = 0;

    /**
     * Lowers this module into `net`, consuming the value produced by
     * layer `input`; returns the id of the produced layer. All
     * parameters must be materialized (initialize() or set_param).
     * When `take_params` is true the parameters are *moved* into the IR
     * (the module becomes uninitialized) - used by one-shot lowering of
     * large models to avoid double-buffering hundreds of MB of weights.
     */
    virtual int build(Network& net, int input, bool take_params = false) = 0;

    // ---- parameters (leaf-level names: "weight", "gamma", ...) ----

    /** Parameter names owned directly by this module (not children). */
    std::vector<std::string> param_names() const;
    /** Expected element count of a named parameter. */
    u64 param_size(const std::string& name) const;
    /** True when the named parameter has been materialized. */
    bool param_set(const std::string& name) const;
    /** Read access; throws if the name is unknown or not yet set. */
    const std::vector<double>& param(const std::string& name) const;
    /** Sets one parameter (size-checked against param_size). */
    void set_param(const std::string& name, std::vector<double> values);

    /** Named children in composition order (empty for leaves). */
    virtual std::vector<std::pair<std::string, ModulePtr>> children() const
    {
        return {};
    }

    /** True once every parameter in the tree is materialized. */
    bool initialized() const;

    /** Trainable parameter count (BatchNorm mean/var excluded). */
    u64 param_count() const;

    /**
     * Fills every *unset* parameter in the tree, in module order, from
     * the policy. User-set parameters are preserved (a BatchNorm with any
     * unset parameter still consumes one batchnorm() draw so the RNG
     * stream stays aligned with a fully-unset tree).
     */
    void initialize(Initializer& init);
    /** He-initializes with a fresh HeInit(seed). */
    void initialize(u64 seed);

    /** Recursive dotted-name snapshot of every set parameter. */
    StateDict state_dict() const;
    /**
     * Loads parameters by dotted name. Strict: unknown names and size
     * mismatches throw; names absent from the dict are left untouched.
     */
    void load_state_dict(const StateDict& dict);

  protected:
    /** One directly-owned parameter (registered by leaf constructors). */
    struct ParamSlot {
        std::string name;
        u64 size = 0;          ///< expected element count
        bool trainable = true;  ///< counted by param_count (BN stats not)
        std::vector<double> values;  ///< empty until set/initialized
    };

    /** Declares a parameter of `size` elements (leaf constructors). */
    void register_param(std::string name, u64 size, bool trainable = true);
    ParamSlot& slot(const std::string& name);
    const ParamSlot& slot(const std::string& name) const;
    /**
     * The materialized values of a slot, copied - or moved out, leaving
     * the slot unset - when `take` is set. Throws when unset.
     */
    std::vector<double> slot_values(const std::string& name, bool take);

    /** Per-leaf hook drawing this module's unset params (leaves only). */
    virtual void init_own_params(Initializer& init) { (void)init; }

  private:
    std::vector<ParamSlot> params_;
};

// ---- leaf factories ----

/** Optional Conv2d geometry (PyTorch defaults). */
struct Conv2dOpts {
    int stride = 1;
    int pad = 0;
    int dilation = 1;
    int groups = 1;
    bool bias = true;
};

/** 2-D convolution, weights [co][ci/g][kh][kw] ("weight" / "bias"). */
ModulePtr Conv2d(int in_channels, int out_channels, int kernel,
                 Conv2dOpts opts = {});

/** Fully connected layer, weights [out][in] ("weight" / "bias"). */
ModulePtr Linear(int in_features, int out_features, bool bias = true);

/** Inference-mode batch normalization ("gamma"/"beta"/"mean"/"var"). */
ModulePtr BatchNorm2d(int channels, double eps = 1e-5);

/** Average pooling (stride defaults to the kernel size). */
ModulePtr AvgPool2d(int kernel, int stride = 0, int pad = 0);

/** Global average pooling to (c, 1, 1). */
ModulePtr GlobalAvgPool();

/** Composite-minimax ReLU (Listing 1: degrees = {15, 15, 27}). */
ModulePtr ReLU(std::vector<int> degrees = {15, 15, 27});

/** Chebyshev-approximated SiLU. */
ModulePtr SiLU(int degree = 127);

/** The x^2 activation of the MNIST-era networks. */
ModulePtr Square();

/** A user-supplied activation approximated at the given degree. */
ModulePtr CustomAct(std::function<double(double)> f, int degree);

/** Any ActivationSpec as a module (the generic form of the above). */
ModulePtr Activation(const ActivationSpec& spec);

/** Collapses (c, h, w) to a flat feature vector. */
ModulePtr Flatten();

/** The identity (useful as a Residual shortcut). */
ModulePtr Identity();

// ---- composition ----

/** Runs children in order ("0", "1", ... or the given names). */
ModulePtr Sequential(std::vector<ModulePtr> children);
ModulePtr Sequential(std::vector<std::pair<std::string, ModulePtr>> children);

/** Two branches over the same input, summed ("a" / "b"). */
ModulePtr Add(ModulePtr a, ModulePtr b);

/**
 * body(x) + shortcut(x), the residual connection of Listing 1
 * ("body" / "shortcut"; a null shortcut is the identity).
 */
ModulePtr Residual(ModulePtr body, ModulePtr shortcut = nullptr);

// ---- lowering ----

/**
 * Lowers an initialized module tree over a (c, h, w) input to the graph
 * IR: add_input, module build in order, set_output. Shape inference runs
 * first, so mis-sized trees throw before any layer is added. When
 * `take_params` is true the tree's weights are moved (not copied) into
 * the IR.
 */
Network lower_to_network(Module& m, int c, int h, int w,
                         std::string name = "net", bool take_params = false);

/**
 * infer + He-initialize(seed) + lower in one call: the zoo's one-liner.
 * Parameters already set on the tree are preserved; weights are moved
 * into the returned network (the tree is consumed).
 */
Network build_network(Module& m, int c, int h, int w, std::string name,
                      u64 seed);

}  // namespace orion::nn

#endif  // ORION_SRC_NN_MODULE_H_
