#ifndef ORION_SRC_CORE_COMPILER_H_
#define ORION_SRC_CORE_COMPILER_H_

/**
 * @file
 * The Orion compiler (Section 6): lowers a network graph to an FHE
 * instruction sequence.
 *
 * Pipeline:
 *   1. BatchNorm folding into the preceding conv/linear layer.
 *   2. Range estimation (the paper's net.fit()): cleartext calibration
 *      passes record per-layer max magnitudes; every edge is normalized to
 *      [-1, 1] by folding scale factors into linear-layer weights (free)
 *      or inserting explicit scale-down multiplications where no foldable
 *      layer exists (residual shortcuts).
 *   3. Packing: every conv/pool/linear becomes a blocked Toeplitz matrix
 *      between multiplexed layouts (single-shot multiplexing, Section 4),
 *      with a BSGS rotation plan per block-column.
 *   4. Bootstrap placement + level assignment (Section 5) on the SESE
 *      chain, using the analytic cost model.
 *   5. Instruction emission with exact scale propagation: the weight scale
 *      of every linear layer is chosen as Delta * q_l / in_scale so the
 *      between-layer invariant scale == Delta holds exactly (Figure 7).
 */

#include <memory>
#include <optional>

#include "src/approx/sign.h"
#include "src/core/cost_model.h"
#include "src/core/placement.h"
#include "src/nn/network.h"

namespace orion::core {

/** Compilation switches. */
struct CompileOptions {
    u64 slots = u64(1) << 15;  ///< ciphertext slot count to pack against
    int l_eff = 10;            ///< effective level after bootstrapping
    CostModel cost = CostModel::paper_scale();
    double log_scale = 0.0;    ///< log2(Delta) used for scale tracking; 0
                               ///  means "match cost model paper scale" (40)

    /** Packing strategies (Figure 5 comparison). */
    enum class Packing {
        kMultiplexed,  ///< single-shot multiplexed (Orion, Section 4.3)
        kRaster,       ///< plain raster Toeplitz (gap never grows)
    };
    Packing packing = Packing::kMultiplexed;
    /** false: plain diagonal method instead of BSGS (Figure 2 baseline). */
    bool use_bsgs = true;
    /** true: lazy bootstrap-when-forced placement (Section 5.1 baseline). */
    bool lazy_placement = false;

    int calibration_samples = 8;  ///< range-estimation passes
    double margin = 1.25;         ///< range headroom (values <= 1/margin)
    u64 calibration_seed = 99;
    /**
     * Calibration dataset for range estimation (the argument of the
     * paper's net.fit()). When empty, synthetic uniform(-1, 1) inputs are
     * drawn - matching inference inputs in distribution matters, because
     * squaring-heavy networks compound any tail mismatch.
     */
    std::vector<std::vector<double>> calibration_inputs;

    /**
     * Skip materializing weight-value matrices (rotation plans only).
     * Required for ImageNet-scale networks; such programs run on the
     * simulation backend but not the CKKS backend.
     */
    bool structural_only = false;

    /**
     * Samples packed side by side across free slots (tile-tensor
     * batching). Clamped to the program's per-layer batch capacity
     * (slots / widest layer span rounded up to a power of two); 1
     * compiles the exact historical single-sample program.
     */
    int batch = 1;
};

/** One FHE instruction of the compiled program. */
struct Instruction {
    enum class Op {
        kInput,      ///< pack + encrypt the network input
        kBootstrap,  ///< bootstrap all ciphertexts of value a
        kLinear,     ///< value = Matrix(matrix_idx) * a  (+ bias)
        kActivation, ///< value = act(a): x^2, SiLU poly, or one sign stage
        kMul,        ///< value = a * b (the x * sign(x) join of ReLU)
        kScale,      ///< value = scale_factor * a (PMult + rescale)
        kAdd,        ///< value = a + b
        kOutput,     ///< decrypt + unpack + de-normalize value a
    };

    Op op = Op::kInput;
    int value = -1;      ///< id of the produced value
    int a = -1, b = -1;  ///< operand value ids
    int layer_id = -1;   ///< originating network layer
    int level = 0;       ///< level at which the op executes (input level)
    double in_scale = 0.0;
    double out_scale = 0.0;
    double weight_scale = 0.0;  ///< plaintext scale for kLinear / kScale
    double scale_factor = 1.0;  ///< multiplier for kScale
    u64 cts = 1;                ///< ciphertexts in the produced value
    int payload = -1;           ///< index into linears()/activations()
};

/** Everything needed to execute one linear layer. */
struct LinearLayerData {
    nn::LayerKind kind = nn::LayerKind::kConv2d;
    lin::TensorLayout in_layout, out_layout;
    lin::Conv2dSpec conv;            ///< for conv/pool
    int in_features = 0, out_features = 0;  ///< for linear
    std::vector<double> folded_weights;     ///< BN + normalization folded
    std::vector<double> folded_bias;        ///< normalized bias (may be empty)
    lin::BlockedPlan plan;
    PlanStats stats;
    std::shared_ptr<lin::BlockedMatrix> matrix;  ///< null when structural
    u64 rows = 0, cols = 0;
};

/**
 * Everything needed to execute one activation *unit*. A ReLU is lowered as
 * a SESE region (Section 5.2): one ActivationData per sign stage plus a
 * kMul join, so that bootstraps can be placed between (never within) the
 * composite's polynomial evaluations.
 */
struct ActivationData {
    nn::ActivationSpec::Kind kind = nn::ActivationSpec::Kind::kSquare;
    std::vector<approx::ChebyshevPoly> stages;  ///< empty for square;
                                                ///  exactly one otherwise
    int depth = 1;
    std::vector<int> stage_degrees;
    double nu_in = 1.0, nu_out = 1.0;
    std::function<double(double)> approx_f;  ///< cleartext u -> approx out
};

/** The compiled FHE program plus all compile-time statistics. */
struct CompiledNetwork {
    std::string name;
    std::vector<Instruction> program;
    std::vector<LinearLayerData> linears;
    std::vector<ActivationData> activations;

    // Input / output bookkeeping.
    nn::Shape input_shape;
    lin::TensorLayout input_layout;
    double input_nu = 1.0;   ///< encrypt nu * x
    double output_nu = 1.0;  ///< decrypted slots are nu * y
    lin::TensorLayout output_layout;
    u64 output_size = 0;

    // Batch tiling (tile tensors): every layer's layouts carry `batch`
    // lanes at stride `batch_stride` slots. batch_capacity is the most
    // the slot count admits for this network; batch is the compiled
    // (clamped) value, and batch_limit_layer names the widest layer —
    // the one whose span set the capacity.
    int batch = 1;
    u64 batch_stride = 0;
    int batch_capacity = 1;
    std::string batch_limit_layer;

    // Execution configuration carried to the backends.
    CostModel cost_model;
    int l_eff = 10;

    // Statistics (Table 2 / 4 / 5 columns).
    u64 slots = 0;
    u64 total_rotations = 0;
    u64 total_pmults = 0;
    u64 num_bootstraps = 0;
    int activation_depth = 0;  ///< sum of activation depths
    int total_mult_depth = 0;  ///< whole-circuit depth (Table 2's column)
    double modeled_latency = 0.0;
    double modeled_conv_latency = 0.0;  ///< linear layers only (Table 4)
    double compile_seconds = 0.0;
    double placement_seconds = 0.0;
    PlacementResult placement;

    /**
     * One rotation-key requirement of the program: a step and the highest
     * level any linear layer rotates by it. Key generation prunes each
     * Galois key to that level (ckks::GaloisKeyRequest), which is what
     * keeps per-session key bundles small; the executor layer appends the
     * bootstrap circuit's (nearly full-chain) requirements.
     */
    struct RotationUse {
        int step = 0;
        int level = 0;
    };
    std::vector<RotationUse> required_rotations() const;
};

/** "kBootstrap", "kLinear", ... for error messages and reports. */
const char* to_string(Instruction::Op op);

/** "kBootstrap (layer 12, 2 cts)" — names an instruction precisely. */
std::string describe_instruction(const Instruction& ins);

/** Compiles a network. The network must outlive nothing (all data copied). */
CompiledNetwork compile(const nn::Network& net, const CompileOptions& options);

}  // namespace orion::core

#endif  // ORION_SRC_CORE_COMPILER_H_
