#include "src/core/session.h"

#include <random>
#include <utility>

namespace orion {

Session::Session(SessionOptions opts) : opts_(std::move(opts))
{
    if (opts_.params.has_value()) {
        ctx_ = std::make_unique<ckks::Context>(*opts_.params);
        ORION_CHECK(opts_.l_eff < ctx_->max_level(),
                    "l_eff " << opts_.l_eff
                             << " must be below the context's max level "
                             << ctx_->max_level());
    }
}

Session
Session::toy()
{
    SessionOptions o;
    o.params = ckks::CkksParams::toy();
    o.l_eff = 4;
    return Session(std::move(o));
}

Session
Session::with_params(const ckks::CkksParams& params, int l_eff)
{
    SessionOptions o;
    o.params = params;
    o.l_eff = l_eff;
    return Session(std::move(o));
}

Session
Session::simulation(u64 slots, int l_eff)
{
    SessionOptions o;
    o.sim_slots = slots;
    o.l_eff = l_eff;
    return Session(std::move(o));
}

void
Session::fit(std::vector<std::vector<double>> calibration_data)
{
    calibration_ = std::move(calibration_data);
}

const core::CompiledNetwork&
Session::compile(const nn::Network& net, core::CompileOptions opt)
{
    opt.l_eff = opts_.l_eff;
    if (ctx_ != nullptr) {
        opt.slots = ctx_->slot_count();
        // The cost model's l_boot is the *measured* depth of the real
        // bootstrap circuit at this parameter point (the plan is a pure
        // function of the parameters), so placement prices bootstraps
        // with the same schedule the executor will actually run.
        // Dense secrets at large rings make the EvalMod fit diverge —
        // such parameter sets cannot run the circuit at all (executors
        // fall back to the oracle fixture), so compilation of
        // bootstrap-free programs must not die here: keep the
        // paper-default l_boot for pricing.
        if (!l_boot_.has_value()) {
            try {
                l_boot_ =
                    ckks::BootstrapPlan::cached(ctx_->params())->depth;
            } catch (const Error&) {
                l_boot_ = core::CostModel::paper_scale().l_boot();
            }
        }
        opt.cost = core::CostModel::for_params(ctx_->degree(),
                                               opts_.params->digit_size,
                                               opts_.params->digit_size,
                                               *l_boot_);
    } else {
        opt.slots = opts_.sim_slots;
    }
    if (opt.calibration_inputs.empty() && !calibration_.empty()) {
        opt.calibration_inputs = calibration_;
    }
    // A new program invalidates everything derived from the old one.
    prepared_.reset();
    fhe_.reset();
    sim_.reset();
    lowered_.reset();  // the module-compile overload re-stores its IR
    compiled_ = core::compile(net, opt);
    return *compiled_;
}

const core::CompiledNetwork&
Session::compile(nn::Module& module, int c, int h, int w, std::string name,
                 core::CompileOptions opt)
{
    module.infer_shape(nn::Shape{false, c, h, w, 0});
    if (!module.initialized()) module.initialize(opts_.seed);
    nn::Network net =
        nn::lower_to_network(module, c, h, w, std::move(name));
    const core::CompiledNetwork& cn = compile(net, std::move(opt));
    lowered_ = std::move(net);  // after compile(): that overload resets state
    return cn;
}

void
Session::require_compiled(const char* verb) const
{
    ORION_CHECK(compiled_.has_value(),
                "Session::" << verb << " called before compile()");
}

void
Session::require_context(const char* verb) const
{
    ORION_CHECK(ctx_ != nullptr,
                "Session::" << verb
                            << " needs a CKKS context, but this session is "
                               "simulation-only; construct it from "
                               "CkksParams (Session::toy / with_params) or "
                               "use simulate()");
}

void
Session::require_matrices(const char* verb) const
{
    // Name the first offending instruction (kind + layer id), not just
    // "the program": a 100-layer net with one structural-only conv should
    // point the user at that conv.
    for (const core::Instruction& ins : compiled_->program) {
        if (ins.op != core::Instruction::Op::kLinear) continue;
        const core::LinearLayerData& l =
            compiled_->linears[static_cast<std::size_t>(ins.payload)];
        ORION_CHECK(l.matrix != nullptr,
                    "Session::" << verb
                                << " needs materialized matrices, but "
                                << core::describe_instruction(ins)
                                << " was compiled structural_only; "
                                   "re-compile without structural_only");
    }
}

const ckks::Context&
Session::context() const
{
    require_context("context");
    return *ctx_;
}

const core::CompiledNetwork&
Session::compiled() const
{
    require_compiled("compiled");
    return *compiled_;
}

const nn::Network&
Session::network() const
{
    ORION_CHECK(lowered_.has_value(),
                "Session::network is only available after the module-tree "
                "compile() overload");
    return *lowered_;
}

std::shared_ptr<const core::PreparedProgram>
Session::prepared()
{
    require_compiled("prepared");
    require_context("prepared");
    require_matrices("prepared");
    if (prepared_ == nullptr) {
        prepared_ =
            std::make_shared<const core::PreparedProgram>(*compiled_, *ctx_);
    }
    return prepared_;
}

core::CkksExecutor&
Session::executor()
{
    require_compiled("executor");
    require_context("executor");
    require_matrices("executor");
    if (fhe_ == nullptr) {
        fhe_ = std::make_unique<core::CkksExecutor>(
            *compiled_, *ctx_, opts_.seed, opts_.exec_config, prepared());
    }
    return *fhe_;
}

core::ExecutionResult
Session::run(const std::vector<double>& input)
{
    require_compiled("run");
    require_context("run");
    return executor().run(input);
}

std::vector<std::vector<double>>
Session::run_batch(const std::vector<std::vector<double>>& inputs)
{
    require_compiled("run_batch");
    require_context("run_batch");
    const std::vector<ckks::Ciphertext> cts =
        executor().encrypt_input_batch(inputs);
    const core::EncryptedResult er = executor().run_encrypted(cts);
    return executor().decrypt_output_batch(
        er.outputs, static_cast<int>(inputs.size()));
}

core::ExecutionResult
Session::simulate(const std::vector<double>& input)
{
    require_compiled("simulate");
    if (sim_ == nullptr) {
        sim_ = std::make_unique<core::SimExecutor>(*compiled_,
                                                   opts_.sim_noise_std);
    }
    return sim_->run(input);
}

std::vector<ckks::Ciphertext>
Session::encrypt(const std::vector<double>& input)
{
    require_compiled("encrypt");
    require_context("encrypt");
    return executor().encrypt_input(input);
}

std::vector<ckks::Ciphertext>
Session::encrypt(const std::vector<std::vector<double>>& inputs)
{
    require_compiled("encrypt");
    require_context("encrypt");
    return executor().encrypt_input_batch(inputs);
}

core::EncryptedResult
Session::run_encrypted(const std::vector<ckks::Ciphertext>& input)
{
    require_compiled("run_encrypted");
    require_context("run_encrypted");
    return executor().run_encrypted(input);
}

std::vector<double>
Session::decrypt(const std::vector<ckks::Ciphertext>& outputs)
{
    require_compiled("decrypt");
    require_context("decrypt");
    return executor().decrypt_output(outputs);
}

std::vector<std::vector<double>>
Session::decrypt_batch(const std::vector<ckks::Ciphertext>& outputs,
                       int batch_count)
{
    require_compiled("decrypt_batch");
    require_context("decrypt_batch");
    return executor().decrypt_output_batch(outputs, batch_count);
}

std::unique_ptr<serve::InferenceServer>
Session::serve(serve::ServeOptions opts)
{
    require_compiled("serve");
    require_context("serve");
    require_matrices("serve");
    return std::make_unique<serve::InferenceServer>(*compiled_, *ctx_, opts,
                                                    prepared());
}

serve::ServeClient
Session::serve_client(std::optional<u64> seed)
{
    require_compiled("serve_client");
    require_context("serve_client");
    if (!seed.has_value()) {
        // Fresh entropy per client: two default-seeded clients must never
        // share a secret.
        std::random_device rd;
        seed = (static_cast<u64>(rd()) << 32) ^ rd();
    }
    return serve::ServeClient(*compiled_, *ctx_, *seed);
}

}  // namespace orion
