#include "src/core/thread_pool.h"

#include <algorithm>

#include "src/core/config.h"

namespace orion::core {

namespace {

/** Set while the current thread runs a worker loop (nesting guard). */
thread_local bool tls_on_worker = false;

/** Per-thread pool override installed by ScopedPoolOverride. */
thread_local std::shared_ptr<ThreadPool> tls_pool_override;

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;
/** Size of g_pool, readable without g_pool_mu (0 = not yet created). */
std::atomic<int> g_pool_size{0};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
{
    ORION_CHECK(num_threads >= 1, "thread pool needs at least one thread");
    const int workers = num_threads - 1;
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

bool
ThreadPool::on_worker_thread()
{
    return tls_on_worker;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::worker_loop()
{
    tls_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallel_for(i64 begin, i64 end,
                         const std::function<void(i64)>& fn)
{
    const i64 count = end - begin;
    if (count <= 0) return;
    if (count == 1 || workers_.empty() || on_worker_thread()) {
        for (i64 i = begin; i < end; ++i) fn(i);
        return;
    }

    struct State {
        std::atomic<i64> next{0};
        i64 end = 0;
        const std::function<void(i64)>* fn = nullptr;
        std::atomic<bool> failed{false};
        std::atomic<int> pending{0};
        std::mutex mu;
        std::condition_variable done;
        std::exception_ptr error;
    };
    auto st = std::make_shared<State>();
    st->next = begin;
    st->end = end;
    st->fn = &fn;

    auto drain = [](const std::shared_ptr<State>& s) {
        try {
            while (!s->failed.load(std::memory_order_relaxed)) {
                const i64 i = s->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= s->end) break;
                (*s->fn)(i);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lk(s->mu);
            if (!s->error) s->error = std::current_exception();
            s->failed.store(true, std::memory_order_relaxed);
        }
    };

    const int helpers = static_cast<int>(std::min<i64>(
        static_cast<i64>(workers_.size()), count - 1));
    st->pending = helpers;
    for (int h = 0; h < helpers; ++h) {
        enqueue([st, drain] {
            drain(st);
            if (st->pending.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lk(st->mu);
                st->done.notify_all();
            }
        });
    }
    drain(st);
    {
        std::unique_lock<std::mutex> lk(st->mu);
        st->done.wait(lk, [&] { return st->pending.load() == 0; });
    }
    if (st->error) std::rethrow_exception(st->error);
}

std::shared_ptr<ThreadPool>
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_pool_mu);
    if (!g_pool) {
        g_pool = std::make_shared<ThreadPool>(config().resolved_num_threads());
        g_pool_size.store(g_pool->num_threads(), std::memory_order_relaxed);
    }
    return g_pool;
}

void
ThreadPool::set_global_threads(int n)
{
    ORION_CHECK(n >= 1, "num_threads must be >= 1");
    std::shared_ptr<ThreadPool> retired;
    {
        std::lock_guard<std::mutex> lk(g_pool_mu);
        if (g_pool && g_pool->num_threads() == n) return;
        retired = std::move(g_pool);  // destroyed outside the lock, or kept
                                      // alive by in-flight kernels
        g_pool = std::make_shared<ThreadPool>(n);
        g_pool_size.store(n, std::memory_order_relaxed);
    }
}

int
ThreadPool::global_threads()
{
    std::lock_guard<std::mutex> lk(g_pool_mu);
    return g_pool ? g_pool->num_threads() : config().resolved_num_threads();
}

void
parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn)
{
    // Lock-free fast paths first: trivial ranges, nested launches from
    // pool workers, and a serial global pool all run inline without
    // touching g_pool_mu (this is the common case inside hot kernels).
    if (end - begin <= 1 || ThreadPool::on_worker_thread()) {
        for (i64 i = begin; i < end; ++i) fn(i);
        return;
    }
    if (tls_pool_override) {
        tls_pool_override->parallel_for(begin, end, fn);
        return;
    }
    if (g_pool_size.load(std::memory_order_relaxed) == 1) {
        for (i64 i = begin; i < end; ++i) fn(i);
        return;
    }
    // Holding the shared_ptr for the whole region keeps the pool alive
    // even if another thread swaps in a different global pool meanwhile.
    ThreadPool::global()->parallel_for(begin, end, fn);
}

int
current_parallelism()
{
    if (ThreadPool::on_worker_thread()) return 1;
    if (tls_pool_override) return tls_pool_override->num_threads();
    const int global = g_pool_size.load(std::memory_order_relaxed);
    return global > 0 ? global : config().resolved_num_threads();
}

ScopedNumThreads::ScopedNumThreads(int n)
    : previous_(config().num_threads)  // raw value, preserving the 0 =
                                       // "follow hardware" sentinel
{
    set_num_threads(n);
}

ScopedNumThreads::~ScopedNumThreads()
{
    set_num_threads(previous_);
}

ScopedPoolOverride::ScopedPoolOverride(int n)
    : previous_(std::move(tls_pool_override))
{
    ORION_CHECK(n >= 1, "num_threads must be >= 1");
    tls_pool_override = std::make_shared<ThreadPool>(n);
}

ScopedPoolOverride::~ScopedPoolOverride()
{
    tls_pool_override = std::move(previous_);
}

}  // namespace orion::core
