#include "src/core/disk_store.h"

#include <cstring>

namespace orion::core {

namespace {

constexpr char kMagic[8] = {'O', 'R', 'I', 'O', 'N', 'D', 'S', '1'};
constexpr char kSentinel = 'Z';
constexpr char kTagDoubles = 'D';
constexpr char kTagU64 = 'U';
constexpr char kTagMatrix = 'M';  // composite: stored as sub-records
constexpr char kTagBytes = 'B';   // opaque blob (serialized wire records)

}  // namespace

DiskStoreWriter::DiskStoreWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    ORION_CHECK(out_.good(), "cannot open store for writing: " << path);
    out_.write(kMagic, sizeof(kMagic));
}

DiskStoreWriter::~DiskStoreWriter()
{
    if (!closed_) close();
}

void
DiskStoreWriter::close()
{
    if (closed_) return;
    const u64 zero = 0;
    out_.put(kSentinel);
    out_.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
    out_.flush();
    ORION_CHECK(out_.good(), "store write failed on close");
    out_.close();
    closed_ = true;
}

void
DiskStoreWriter::write_record(const std::string& name, char tag,
                              const void* data, std::size_t bytes)
{
    ORION_CHECK(!closed_, "store already closed");
    ORION_CHECK(name.size() < 65536, "record name too long");
    // The reader refuses duplicate names; fail at write time so the
    // mistake surfaces where it happens, not when the store is reopened.
    ORION_CHECK(written_.insert(name).second,
                "duplicate store record: " << name);
    out_.put(tag);
    const u64 name_len = name.size();
    const u64 byte_count = bytes;
    out_.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out_.write(name.data(), static_cast<std::streamsize>(name.size()));
    out_.write(reinterpret_cast<const char*>(&byte_count),
               sizeof(byte_count));
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
    ORION_CHECK(out_.good(), "store write failed for record " << name);
}

void
DiskStoreWriter::put_doubles(const std::string& name,
                             const std::vector<double>& v)
{
    write_record(name, kTagDoubles, v.data(), v.size() * sizeof(double));
}

void
DiskStoreWriter::put_u64s(const std::string& name, const std::vector<u64>& v)
{
    write_record(name, kTagU64, v.data(), v.size() * sizeof(u64));
}

void
DiskStoreWriter::put_bytes(const std::string& name, const std::vector<u8>& v)
{
    write_record(name, kTagBytes, v.data(), v.size());
}

void
DiskStoreWriter::put_matrix(const std::string& name,
                            const lin::DiagonalMatrix& m)
{
    // Header record: [dim, #diags], then one doubles record per diagonal.
    const std::vector<u64> indices = m.diagonal_indices();
    std::vector<u64> header = {m.dim(),
                               static_cast<u64>(indices.size())};
    header.insert(header.end(), indices.begin(), indices.end());
    write_record(name, kTagMatrix, header.data(),
                 header.size() * sizeof(u64));
    for (u64 k : indices) {
        put_doubles(name + "/diag/" + std::to_string(k), *m.diagonal(k));
    }
}

DiskStoreReader::DiskStoreReader(const std::string& path)
    : in_(path, std::ios::binary)
{
    ORION_CHECK(in_.good(), "cannot open store for reading: " << path);
    // Total size first, so every record's payload extent (and the trailer)
    // can be validated without trusting length fields.
    in_.seekg(0, std::ios::end);
    const std::streamoff file_size = in_.tellg();
    in_.seekg(0, std::ios::beg);

    char magic[sizeof(kMagic)];
    in_.read(magic, sizeof(magic));
    ORION_CHECK(in_.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                "bad store magic in " << path);
    // Build the index by walking record headers, skipping payloads. Every
    // length is validated against the actual file size before use, so a
    // truncated or bit-flipped store is reported at open time instead of
    // surfacing as a short read (or a giant allocation) later.
    while (true) {
        const int tag = in_.get();
        ORION_CHECK(tag != EOF,
                    "truncated store " << path << ": ran out of bytes "
                                       << "before the closing sentinel");
        if (tag == kSentinel) {
            u64 trailer = 1;
            in_.read(reinterpret_cast<char*>(&trailer), sizeof(trailer));
            ORION_CHECK(in_.good() && trailer == 0,
                        "truncated store " << path
                                           << ": corrupt or missing "
                                           << "trailer after sentinel");
            ORION_CHECK(in_.tellg() == file_size,
                        "corrupt store " << path << ": "
                                         << (file_size - in_.tellg())
                                         << " trailing bytes after the "
                                         << "sentinel");
            break;
        }
        ORION_CHECK(tag == kTagDoubles || tag == kTagU64 ||
                        tag == kTagMatrix || tag == kTagBytes,
                    "corrupt store " << path << ": unknown record tag '"
                                     << static_cast<char>(tag) << "'");
        u64 name_len = 0;
        in_.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
        ORION_CHECK(in_.good(), "truncated store " << path
                                                   << ": cut off inside a "
                                                   << "record header");
        // The writer enforces < 65536; anything larger is corruption and
        // must not size an allocation.
        ORION_CHECK(name_len < 65536,
                    "corrupt store " << path << ": record name length "
                                     << name_len << " exceeds the format "
                                     << "limit");
        std::string name(name_len, '\0');
        in_.read(name.data(), static_cast<std::streamsize>(name_len));
        u64 bytes = 0;
        in_.read(reinterpret_cast<char*>(&bytes), sizeof(bytes));
        ORION_CHECK(in_.good(), "truncated store " << path
                                                   << ": cut off inside "
                                                   << "record " << name);
        const std::streamoff payload_at = in_.tellg();
        ORION_CHECK(bytes <= static_cast<u64>(file_size) &&
                        payload_at <= file_size -
                                          static_cast<std::streamoff>(bytes),
                    "truncated store " << path << ": record " << name
                                       << " claims " << bytes
                                       << " payload bytes past the end of "
                                       << "the file");
        ORION_CHECK(index_.count(name) == 0,
                    "corrupt store " << path << ": duplicate record "
                                     << name);
        index_[name] = Entry{static_cast<char>(tag), payload_at, bytes};
        in_.seekg(static_cast<std::streamoff>(bytes), std::ios::cur);
    }
    in_.clear();
}

std::vector<std::string>
DiskStoreReader::names() const
{
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto& [name, e] : index_) {
        (void)e;
        out.push_back(name);
    }
    return out;
}

const DiskStoreReader::Entry&
DiskStoreReader::entry(const std::string& name, char tag)
{
    const auto it = index_.find(name);
    ORION_CHECK(it != index_.end(), "store record not found: " << name);
    ORION_CHECK(it->second.tag == tag,
                "store record " << name << " has wrong type");
    return it->second;
}

std::vector<double>
DiskStoreReader::get_doubles(const std::string& name)
{
    const Entry& e = entry(name, kTagDoubles);
    ORION_CHECK(e.bytes % sizeof(double) == 0,
                "corrupt store record " << name << ": " << e.bytes
                                        << " bytes is not a whole number "
                                        << "of doubles");
    std::vector<double> out(e.bytes / sizeof(double));
    in_.seekg(e.offset);
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(e.bytes));
    ORION_CHECK(in_.good(), "store read failed: " << name);
    return out;
}

std::vector<u64>
DiskStoreReader::get_u64s(const std::string& name)
{
    const Entry& e = entry(name, kTagU64);
    ORION_CHECK(e.bytes % sizeof(u64) == 0,
                "corrupt store record " << name << ": " << e.bytes
                                        << " bytes is not a whole number "
                                        << "of u64s");
    std::vector<u64> out(e.bytes / sizeof(u64));
    in_.seekg(e.offset);
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(e.bytes));
    ORION_CHECK(in_.good(), "store read failed: " << name);
    return out;
}

std::vector<u8>
DiskStoreReader::get_bytes(const std::string& name)
{
    const Entry& e = entry(name, kTagBytes);
    std::vector<u8> out(e.bytes);
    in_.seekg(e.offset);
    in_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(e.bytes));
    ORION_CHECK(in_.good(), "store read failed: " << name);
    return out;
}

u64
DiskStoreReader::bytes_size(const std::string& name)
{
    return entry(name, kTagBytes).bytes;
}

void
DiskStoreReader::get_bytes_at(const std::string& name, u64 offset, void* dst,
                              std::size_t bytes)
{
    const Entry& e = entry(name, kTagBytes);
    ORION_CHECK(offset <= e.bytes && bytes <= e.bytes - offset,
                "ranged store read past the end of record "
                    << name << ": [" << offset << ", " << offset + bytes
                    << ") in a " << e.bytes << "-byte payload");
    in_.seekg(e.offset + static_cast<std::streamoff>(offset));
    in_.read(reinterpret_cast<char*>(dst),
             static_cast<std::streamsize>(bytes));
    ORION_CHECK(in_.good(), "store read failed: " << name);
}

lin::DiagonalMatrix
DiskStoreReader::get_matrix(const std::string& name)
{
    const Entry& e = entry(name, kTagMatrix);
    ORION_CHECK(e.bytes % sizeof(u64) == 0 && e.bytes >= 2 * sizeof(u64),
                "corrupt store record " << name
                                        << ": matrix header is not a "
                                        << "whole number of u64s");
    std::vector<u64> header(e.bytes / sizeof(u64));
    in_.seekg(e.offset);
    in_.read(reinterpret_cast<char*>(header.data()),
             static_cast<std::streamsize>(e.bytes));
    ORION_CHECK(in_.good(), "store read failed: " << name);
    const u64 dim = header[0];
    const u64 count = header[1];
    ORION_CHECK(count == header.size() - 2,
                "corrupt store record " << name << ": diagonal count "
                                        << count << " does not match the "
                                        << "header length");
    lin::DiagonalMatrix m(dim);
    for (u64 i = 0; i < count; ++i) {
        const u64 k = header[2 + i];
        const std::vector<double> diag =
            get_doubles(name + "/diag/" + std::to_string(k));
        ORION_CHECK(diag.size() == dim, "bad diagonal length");
        std::vector<double>& dst = m.mutable_diagonal(k);
        dst = diag;
    }
    return m;
}

}  // namespace orion::core
