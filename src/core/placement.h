#ifndef ORION_SRC_CORE_PLACEMENT_H_
#define ORION_SRC_CORE_PLACEMENT_H_

/**
 * @file
 * Automatic bootstrap placement (Section 5).
 *
 * The network is modeled as a chain of units (linear layers, polynomial
 * activations, scale fixups, joins); residual connections appear as
 * single-entry single-exit (SESE) regions holding one sub-chain per branch.
 * The level digraph of Figure 6 is solved by dynamic programming over
 * states (position, level): executing a unit at level e costs latency(e)
 * and drops e by the unit's depth; a bootstrap edge jumps any level to
 * L_eff at the modeled bootstrap cost times the ciphertext count of the
 * edge. Regions are "black-boxed" (Section 5.2): every branch is solved
 * for all (entry, exit) level pairs, the per-pair optima are summed into
 * an aggregate edge matrix, and the parent chain treats the region as a
 * single unit with that transition matrix. Complexity is linear in network
 * depth (Table 5): O(units * L_eff^2).
 */

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common.h"

namespace orion::core {

/** One schedulable unit of the placement chain. */
struct PlacementUnit {
    int layer_id = -1;  ///< originating network layer (-1 for synthetic)
    std::string name;
    int depth = 0;  ///< multiplicative levels consumed
    /** Latency (seconds) when executed with input level l. */
    std::function<double(int)> latency = [](int) { return 0.0; };
    u64 input_cts = 1;   ///< ciphertexts on the incoming edge
    u64 output_cts = 1;  ///< ciphertexts on the outgoing edge
};

struct ChainItem;

/** A straight-line sequence of units and regions. */
struct Chain {
    std::vector<ChainItem> items;
};

/** Chain element: either a unit or a fork/join region with branches. */
struct ChainItem {
    enum class Kind { kUnit, kRegion };
    Kind kind = Kind::kUnit;
    PlacementUnit unit;  ///< the unit itself, or the join unit of a region
    std::vector<Chain> branches;  ///< region branches (fork out -> join in)
};

/** Placement configuration. */
struct PlacementConfig {
    int l_eff = 10;                    ///< level reached by bootstrapping
    double bootstrap_latency = 10.0;   ///< per-ciphertext bootstrap cost (s)
    int max_entry_level = -1;          ///< fresh-input level (default l_eff)

    int
    entry_level() const
    {
        return max_entry_level < 0 ? l_eff : max_entry_level;
    }
};

/** One scheduling decision, in flattened topological order. */
struct UnitDecision {
    int layer_id = -1;
    std::string name;
    bool bootstrap_before = false;
    u64 boot_cts = 0;    ///< ciphertexts bootstrapped (when bootstrap_before)
    int exec_level = 0;  ///< input level at which the unit executes
};

/** The level-management policy found by the solver. */
struct PlacementResult {
    double latency = std::numeric_limits<double>::infinity();
    u64 num_bootstraps = 0;  ///< total bootstrapped ciphertexts
    u64 num_bootstrap_sites = 0;  ///< distinct edges with a bootstrap
    int exit_level = 0;
    std::vector<UnitDecision> decisions;
    double solve_seconds = 0.0;  ///< Table 5's "Boot. Place." column
};

/** Orion's placement: level-digraph shortest path with SESE aggregation. */
PlacementResult place_bootstraps(const Chain& chain,
                                 const PlacementConfig& config);

/**
 * Baseline: bootstrap only when the next unit cannot execute (the naive
 * strategy Section 5.1 warns about). Units always execute at the highest
 * available level.
 */
PlacementResult place_bootstraps_lazy(const Chain& chain,
                                      const PlacementConfig& config);

/** Number of units (recursively) in a chain, for reporting. */
u64 chain_unit_count(const Chain& chain);

}  // namespace orion::core

#endif  // ORION_SRC_CORE_PLACEMENT_H_
