#ifndef ORION_SRC_CORE_THREAD_POOL_H_
#define ORION_SRC_CORE_THREAD_POOL_H_

/**
 * @file
 * A small fork-join thread pool for data-parallel FHE kernels.
 *
 * Design constraints (which rule out a generic task graph):
 *  - Every parallel region in the CKKS substrate is a fork-join loop over
 *    independent slices (RNS limbs, key-switch digits, BSGS rotations)
 *    whose writes are disjoint and whose arithmetic is exact modular
 *    integer math, so results are bit-identical for ANY thread count.
 *    Reductions are always finalized serially in a fixed order.
 *  - Kernels nest (a parallel BSGS baby step performs a parallel NTT).
 *    Nested regions run inline on the calling worker - this is also the
 *    deadlock guard: a worker never blocks waiting on queue capacity.
 *  - num_threads = 1 must not spawn threads at all, so single-threaded
 *    runs exercise exactly the same code path as the seed implementation.
 *
 * Exceptions thrown by loop bodies are captured and the first one is
 * rethrown on the calling thread after the region completes; remaining
 * iterations are abandoned (best effort) once a failure is recorded.
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common.h"

namespace orion::core {

class ThreadPool {
  public:
    /** Creates a pool where `num_threads` threads (including the caller)
     *  participate in parallel regions; spawns `num_threads - 1` workers. */
    explicit ThreadPool(int num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Threads participating in parallel_for (workers + calling thread). */
    int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

    /** True when the current thread is a worker of any ThreadPool. */
    static bool on_worker_thread();

    /**
     * Runs fn(i) for every i in [begin, end), distributing iterations
     * across the pool. Blocks until all iterations complete. Runs inline
     * when the pool is serial, the range is trivial, or the caller is
     * already a pool worker (nesting / deadlock guard).
     */
    void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn);

    /**
     * Schedules a single task and returns its future. Runs inline (and
     * returns a ready future) when the pool is serial or the caller is a
     * pool worker, so waiting on the future can never deadlock.
     */
    template <typename F>
    auto
    submit(F&& f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        std::future<R> fut = task->get_future();
        if (workers_.empty() || on_worker_thread()) {
            (*task)();
        } else {
            enqueue([task] { (*task)(); });
        }
        return fut;
    }

    /**
     * The process-wide pool used by all FHE kernels. Sized from
     * core::config().num_threads on first use. Shared ownership: a kernel
     * holds the returned pointer for the duration of its region, so a
     * concurrent resize (which installs a fresh pool) cannot destroy a
     * pool that still has work in flight - the old pool is torn down when
     * its last in-flight region finishes.
     */
    static std::shared_ptr<ThreadPool> global();
    /** Replaces the global pool with one of the given size. */
    static void set_global_threads(int n);
    /** Current size of the global pool (without forcing its creation). */
    static int global_threads();

  private:
    void enqueue(std::function<void()> task);
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * The kernels' entry point. Dispatch order: trivial ranges and calls from
 * pool workers run inline (no locks); otherwise the calling thread's
 * ScopedPoolOverride pool, if any; otherwise the global pool.
 */
void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn);

/**
 * Number of threads a parallel_for launched from the current thread would
 * use: 1 on pool workers (nested regions run inline), the override pool's
 * size under a ScopedPoolOverride, otherwise the global pool's size. Used
 * by kernels that pick a chunk count for per-thread partial results; the
 * chunking only affects scheduling, never values, so any return value
 * preserves bit-identical outputs.
 */
int current_parallelism();

/** Chunk-count policy for per-chunk fan-outs: one contiguous chunk per
 *  available thread, never more chunks than iterations. */
inline i64
chunk_count(i64 count)
{
    return std::min<i64>(count, std::max(1, current_parallelism()));
}

/**
 * Splits [0, count) into `chunks` contiguous ranges (from chunk_count —
 * passed explicitly so callers sizing per-chunk state see the same value)
 * and runs fn(chunk, begin, end) for each across the pool, inline when
 * there is a single chunk. The partition depends only on (count, chunks),
 * so workloads whose values don't depend on the grouping — elementwise
 * loops, or reductions merged in chunk order with exact arithmetic —
 * stay bit-identical at any thread count.
 */
template <typename F>
void
parallel_chunks(i64 count, i64 chunks, F&& fn)
{
    if (count <= 0) return;
    if (chunks <= 1) {
        fn(i64(0), i64(0), count);
        return;
    }
    parallel_for(0, chunks, [&](i64 c) {
        fn(c, count * c / chunks, count * (c + 1) / chunks);
    });
}

/**
 * Runs fn(i) for every i in [0, count) via parallel_chunks. For
 * elementwise-independent bodies — no cross-index reads or reductions —
 * this gives fine-grained loops pool parallelism without per-index
 * dispatch overhead.
 */
template <typename F>
void
parallel_for_chunked(i64 count, F&& fn)
{
    parallel_chunks(count, chunk_count(count), [&](i64, i64 begin, i64 end) {
        for (i64 i = begin; i < end; ++i) fn(i);
    });
}

/** RAII guard: sets the global pool size, restores the old size on exit.
 *  Process-wide - intended for single-threaded drivers (tests, benches).
 *  Concurrent guards on different threads trample each other's sizes; use
 *  ScopedPoolOverride for per-call-tree parallelism instead. */
class ScopedNumThreads {
  public:
    explicit ScopedNumThreads(int n);
    ~ScopedNumThreads();
    ScopedNumThreads(const ScopedNumThreads&) = delete;
    ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

  private:
    int previous_;
};

/**
 * RAII guard: gives the *current thread's* kernel launches a private pool
 * of n threads, restoring the previous override (if any) on exit. Unlike
 * ScopedNumThreads this touches no global state, so concurrent executors
 * with different thread budgets cannot interfere with each other.
 */
class ScopedPoolOverride {
  public:
    explicit ScopedPoolOverride(int n);
    ~ScopedPoolOverride();
    ScopedPoolOverride(const ScopedPoolOverride&) = delete;
    ScopedPoolOverride& operator=(const ScopedPoolOverride&) = delete;

  private:
    std::shared_ptr<ThreadPool> previous_;
};

}  // namespace orion::core

#endif  // ORION_SRC_CORE_THREAD_POOL_H_
