#ifndef ORION_SRC_CORE_ARENA_H_
#define ORION_SRC_CORE_ARENA_H_

/**
 * @file
 * Pooled scratch memory for the RNS hot paths.
 *
 * Key switching, BSGS accumulation, and encoding allocate the same few
 * buffer shapes over and over: an RnsPoly at (level, extended) is always
 * exactly num_limbs * N residues, and the per-call temporaries (lambda
 * rows, centered-coefficient buffers, digit pointer tables) repeat the
 * same sizes every operation. Paying a fresh std::vector allocation (and
 * its page faults) per call is measurable churn at paper-scale N = 2^16,
 * where one extended polynomial is ~10 MB.
 *
 * The Arena is a process-wide pool of 64-byte-aligned blocks kept on
 * exact-size free lists: a small thread-local cache in front (lock-free
 * for the per-task temporaries the thread pool's workers burn through) and
 * a mutex-protected global pool behind it (so a block released on one
 * thread can be reacquired on another — steady-state hot loops allocate
 * on workers and free on the caller, which pure thread-local lists would
 * leak). Cached-but-free bytes are bounded by $ORION_ARENA_MB (global
 * pool; the per-thread caches are a few blocks per size on top); beyond
 * the bound, released blocks go back to the heap.
 *
 * Ownership rules (see DESIGN.md "Vectorized kernels & memory arenas"):
 * blocks are owned by exactly one ArenaVec at a time, returned on
 * destruction, and never shared; the pool never hands out a block smaller
 * than the request; acquisition order is unobservable in results, so
 * pooling cannot affect bit-identity.
 */

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "src/common.h"

namespace orion::core {

/** Pool effectiveness counters (monotonic except the byte gauges). */
struct ArenaStats {
    u64 acquires = 0;      ///< block acquisitions (pool hit or fresh heap)
    u64 pool_hits = 0;     ///< acquisitions served from a free list
    u64 live_bytes = 0;    ///< bytes currently handed out
    u64 cached_bytes = 0;  ///< free bytes parked in the global pool
};

/** How an ArenaVec::acquire was satisfied. */
enum class ArenaAcquire {
    kReused,  ///< existing capacity was enough; no block changed hands
    kPool,    ///< served from a free list (no heap allocation)
    kHeap,    ///< fresh heap allocation (pool miss)
};

/** Process-wide block pool. All methods are thread-safe. */
class Arena {
  public:
    /** The singleton (never destroyed, so thread-exit flushes stay safe). */
    static Arena& instance();

    /**
     * A 64-byte-aligned block of at least `bytes` (rounded up to the
     * 64-byte size class that keys the free lists). Returns the block and
     * sets `*pool_hit` when it came from a free list.
     */
    void* acquire(std::size_t bytes, bool* pool_hit);
    /** Returns a block to the pool (or the heap, past the byte bound). */
    void release(void* p, std::size_t bytes);

    /** Rounded size class of a request (the `bytes` release expects). */
    static std::size_t size_class(std::size_t bytes);

    ArenaStats stats() const;
    /** Drops every cached free block (global pool + this thread's cache). */
    void trim();

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

  private:
    Arena();
    struct Impl;
    Impl* impl_;  // leaked with the singleton
};

/**
 * A pool-backed buffer of trivially-copyable elements. Move-only; RnsPoly
 * and the kernel scratch paths build on it. Unlike std::vector, shrinking
 * keeps the block (released only on destruction, under its original size
 * class), and growth never copies old contents — callers own the
 * initialization.
 */
template <typename T>
class ArenaVec {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ArenaVec elements must be trivially copyable");

  public:
    ArenaVec() = default;
    ~ArenaVec() { release(); }

    ArenaVec(ArenaVec&& o) noexcept
        : ptr_(o.ptr_), size_(o.size_), cap_bytes_(o.cap_bytes_)
    {
        o.ptr_ = nullptr;
        o.size_ = 0;
        o.cap_bytes_ = 0;
    }
    ArenaVec&
    operator=(ArenaVec&& o) noexcept
    {
        if (this != &o) {
            release();
            ptr_ = o.ptr_;
            size_ = o.size_;
            cap_bytes_ = o.cap_bytes_;
            o.ptr_ = nullptr;
            o.size_ = 0;
            o.cap_bytes_ = 0;
        }
        return *this;
    }
    // Copying is explicit (acquire + copy_from) so RnsPoly can count it.
    ArenaVec(const ArenaVec&) = delete;
    ArenaVec& operator=(const ArenaVec&) = delete;

    /**
     * Makes the buffer hold exactly n elements, UNINITIALIZED unless the
     * existing capacity was reused (then old contents up to n survive).
     * Reports how the storage was obtained, for allocation accounting.
     */
    ArenaAcquire
    acquire(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (ptr_ != nullptr && bytes <= cap_bytes_) {
            size_ = n;
            return ArenaAcquire::kReused;
        }
        release();
        bool hit = false;
        ptr_ = static_cast<T*>(Arena::instance().acquire(bytes, &hit));
        cap_bytes_ = Arena::size_class(bytes);
        size_ = n;
        return hit ? ArenaAcquire::kPool : ArenaAcquire::kHeap;
    }

    /** acquire(n) followed by zero fill. */
    ArenaAcquire
    acquire_zero(std::size_t n)
    {
        const ArenaAcquire how = acquire(n);
        std::memset(ptr_, 0, n * sizeof(T));
        return how;
    }

    /** acquire(o.size()) followed by a copy of o's contents. */
    ArenaAcquire
    copy_from(const ArenaVec& o)
    {
        const ArenaAcquire how = acquire(o.size_);
        std::memcpy(ptr_, o.ptr_, o.size_ * sizeof(T));
        return how;
    }

    /** Shrinks the element count; capacity (and the block) stay put. */
    void
    resize_down(std::size_t n)
    {
        ORION_ASSERT(n <= size_);
        size_ = n;
    }

    void
    release()
    {
        if (ptr_ != nullptr) {
            Arena::instance().release(ptr_, cap_bytes_);
            ptr_ = nullptr;
        }
        size_ = 0;
        cap_bytes_ = 0;
    }

    T* data() { return ptr_; }
    const T* data() const { return ptr_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T& operator[](std::size_t i) { return ptr_[i]; }
    const T& operator[](std::size_t i) const { return ptr_[i]; }

  private:
    T* ptr_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_bytes_ = 0;
};

/**
 * Function-scope scratch buffer: an ArenaVec acquired (uninitialized) for
 * n elements at construction. The drop-in replacement for the hot loops'
 * per-call `std::vector<T> tmp(n)` — minus the allocation after warmup
 * and minus the zero fill (every user overwrites its scratch fully).
 */
template <typename T>
class ScratchVec {
  public:
    explicit ScratchVec(std::size_t n) { buf_.acquire(n); }

    T* data() { return buf_.data(); }
    const T* data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    T& operator[](std::size_t i) { return buf_[i]; }
    const T& operator[](std::size_t i) const { return buf_[i]; }

  private:
    ArenaVec<T> buf_;
};

}  // namespace orion::core

#endif  // ORION_SRC_CORE_ARENA_H_
