#ifndef ORION_SRC_CORE_COST_MODEL_H_
#define ORION_SRC_CORE_COST_MODEL_H_

/**
 * @file
 * Analytic FHE latency model (Section 5.1, "Cost model"; Figure 1).
 *
 * Latencies of RNS-CKKS primitives are dominated by per-limb NTTs and
 * pointwise passes, so each primitive cost is a closed-form function of the
 * ring degree N, the current level l, and the key-switching digit count
 * d(l) = ceil((l+1)/alpha). Key switching at level l touches
 * (l + 1 + k) * (d(l) + 2)-ish limb transforms, which is what produces the
 * superlinear growth of rotation and bootstrap latency with level that
 * Figure 1 reports. The single constant `seconds_per_word_op` can be
 * calibrated against real measurements (bench/fig1_op_latency does this) or
 * left at its default for deterministic unit tests.
 */

#include <vector>

#include "src/common.h"

namespace orion::core {

/** Aggregate operation counts of one linear layer (from a BlockedPlan). */
struct PlanStats {
    u64 baby_rotations = 0;   ///< hoisted baby-step rotations
    u64 giant_rotations = 0;  ///< giant-step rotations (deferred mod-down)
    u64 pmults = 0;           ///< plaintext-ciphertext products
    u64 input_cts = 0;        ///< ciphertexts holding the input tensor
    u64 output_cts = 0;       ///< ciphertexts holding the output tensor
    u64 hoists = 0;           ///< hoisted decompositions (one per input ct
                              ///  per column use)

    u64 total_rotations() const { return baby_rotations + giant_rotations; }
};

/** Closed-form latency model for CKKS primitives. */
class CostModel {
  public:
    /** Paper-scale parameters: N = 2^16, alpha = 3, L_boot = 14. */
    static CostModel paper_scale();
    /** Model matching this repository's functional parameter sets. */
    static CostModel for_params(u64 poly_degree, int digit_size,
                                int num_special, int l_boot);

    u64 poly_degree() const { return n_; }
    int l_boot() const { return l_boot_; }

    /** Calibrates seconds_per_word_op from a measured rotation latency. */
    void calibrate(double measured_rotation_seconds, int at_level);
    /**
     * Calibrates seconds_per_word_op so bootstrap(l_eff) equals a measured
     * full-bootstrap wall-clock. The scaling is uniform across every
     * primitive, so relative costs (and therefore bootstrap placements)
     * are unchanged; only the absolute latency scale moves.
     */
    void calibrate_bootstrap(double measured_seconds, int l_eff);

    // ---- primitive latencies (seconds), as functions of level ----

    double ntt(int limbs) const;
    double pmult(int level) const;
    double hadd(int level) const;
    double rescale(int level) const;
    /** Full (un-hoisted) rotation: decompose + inner product + mod-down. */
    double rotation(int level) const;
    /** Rotation served from an existing hoisted decomposition. */
    double rotation_hoisted(int level) const;
    /** The hoisted decomposition itself (amortized over many rotations). */
    double hoist(int level) const;
    /** Ciphertext-ciphertext multiply including relinearization. */
    double hmult(int level) const;

    /**
     * Bootstrap latency to effective level l_eff: sum of the modeled
     * CoeffToSlot + EvalMod + SlotToCoeff schedules starting at level
     * l_eff + l_boot. Superlinear in l_eff (Figure 1c).
     */
    double bootstrap(int l_eff) const;

    // ---- aggregate latencies ----

    /** One linear layer (BSGS matvec) executed at the given level. */
    double linear_layer(const PlanStats& stats, int level) const;

    /**
     * One polynomial-activation evaluation of the given stage degrees
     * executed on `cts` ciphertexts starting at the given level.
     */
    double activation(const std::vector<int>& stage_degrees, int level,
                      u64 cts, bool times_input) const;

  private:
    int num_digits(int level) const;

    u64 n_ = u64(1) << 16;
    int log_n_ = 16;
    int alpha_ = 3;
    int num_special_ = 3;
    int l_boot_ = 14;
    /**
     * Default constant calibrated against the measured N = 2^16 paper-scale
     * bootstrap (bench/baselines/BENCH_bootstrap.json: 37851.07 ms measured
     * vs 20325.99 ms that this model priced at the previous 2.0e-9) —
     * 2.0e-9 * 37851.0701 / 20325.9923. The registry's boot.*.seconds
     * stage histograms are the data source for future refits.
     */
    double seconds_per_word_op_ = 3.7244e-9;
};

}  // namespace orion::core

#endif  // ORION_SRC_CORE_COST_MODEL_H_
