#ifndef ORION_SRC_CORE_EXECUTOR_H_
#define ORION_SRC_CORE_EXECUTOR_H_

/**
 * @file
 * Execution backends for compiled networks.
 *
 * SimExecutor runs the instruction stream functionally (cleartext values,
 * polynomial activation approximations, injected bootstrap noise) while
 * charging the analytic cost model and tracking levels exactly - this is
 * how ImageNet-scale rows of Table 2 are produced. CkksExecutor runs the
 * same instruction stream under real RNS-CKKS encryption end to end.
 *
 * CkksExecutor has two key modes:
 *  - self-keyed: the executor generates its own secret, can encrypt inputs
 *    and decrypt outputs, and supports bootstrap instructions (the oracle
 *    bootstrapper holds the secret). This is the single-party mode used by
 *    tests, benches, and the paper's tables.
 *  - external-key (serving): the executor holds only a client's evaluation
 *    keys (relinearization + Galois). It can run run_encrypted() -
 *    ciphertexts in, ciphertexts out - but never sees a secret key. The
 *    expensive key-independent preparation (encoded diagonals, bias
 *    plaintexts, resolved scales) lives in a shared PreparedProgram so a
 *    pool of serving executors amortizes it across sessions.
 */

#include <memory>
#include <optional>

#include "src/ckks/ckks.h"
#include "src/core/compiler.h"
#include "src/core/config.h"

namespace orion::core {

/**
 * Wall-clock attribution of one network layer: consecutive program
 * instructions with the same Instruction::layer_id merge into one entry
 * (execution order is preserved), so the vector reads as the paper's
 * Table-4-style per-layer breakdown. layer_id -1 is compiler glue
 * (scales, residual adds) outside any frontend layer.
 */
struct LayerTiming {
    int layer_id = -1;
    double seconds = 0.0;
};

/** Outcome of one inference. */
struct ExecutionResult {
    std::vector<double> output;    ///< logical network output (de-normalized)
    double modeled_latency = 0.0;  ///< cost-model seconds
    double wall_seconds = 0.0;     ///< measured wall-clock seconds
    u64 bootstraps = 0;
    u64 rotations = 0;
    u64 pmults = 0;
    std::vector<LayerTiming> layer_times;
};

/** Outcome of one encrypted-domain inference (serving path). */
struct EncryptedResult {
    std::vector<ckks::Ciphertext> outputs;  ///< still encrypted
    double wall_seconds = 0.0;
    u64 bootstraps = 0;
    u64 rotations = 0;
    u64 pmults = 0;
    std::vector<LayerTiming> layer_times;
};

/**
 * Optional per-instruction observer: receives the instruction and the
 * (logical/decrypted) slot values it produced. Used by integration tests
 * to localize divergence between backends.
 */
using InspectFn =
    std::function<void(const Instruction&, const std::vector<double>&)>;

/** Functional simulation backend. */
class SimExecutor {
  public:
    explicit SimExecutor(const CompiledNetwork& cn,
                         double bootstrap_noise_std = 1e-6, u64 seed = 5);

    ExecutionResult run(const std::vector<double>& input);

    InspectFn inspect;  ///< optional per-instruction observer

  private:
    const CompiledNetwork* cn_;
    double noise_std_;
    ckks::Sampler noise_;
};

/**
 * Key-independent prepared payloads of a compiled program: every linear
 * layer's matrix diagonals encoded at their assigned levels and repair
 * scales (Figure 7), bias plaintexts, the symbolic scale resolution, and
 * — when the program bootstraps and the context has the levels for it —
 * the public-key bootstrap circuit (ckks::BootstrapCircuit), one encoded
 * variant per distinct symbolic input scale. Immutable after
 * construction and safe to share (read-only) across any number of
 * concurrently running executors; the program must have been compiled
 * with matrices (structural_only = false).
 */
class PreparedProgram {
  public:
    PreparedProgram(const CompiledNetwork& cn, const ckks::Context& ctx);

    const CompiledNetwork& network() const { return *cn_; }
    const ckks::Context& context() const { return *ctx_; }

    /** The bootstrap circuit structure; null for bootstrap-free programs. */
    const ckks::BootstrapPlan* bootstrap_plan() const
    {
        return boot_plan_.get();
    }
    /**
     * True when every bootstrap instruction can run as the real circuit
     * (the context has l_eff + l_boot levels). False either because the
     * program is bootstrap-free or because the chain is too short — in
     * the latter case only a self-keyed executor can run the program,
     * via the oracle test fixture.
     */
    bool bootstrap_supported() const { return !boot_circuits_.empty(); }

    /**
     * Rotation-key requirements of the whole program: the linear layers'
     * level-pruned steps plus (when bootstrapping) the circuit's steps.
     * With needs_conjugation()/conjugation_level(), exactly the bundle a
     * client must provide — nothing more is ever generated.
     */
    std::vector<ckks::GaloisKeyRequest> galois_requests() const;
    bool needs_conjugation() const { return bootstrap_supported(); }
    int conjugation_level() const;

  private:
    friend class CkksExecutor;

    /** The prepared circuit for program instruction idx (never null for
     *  bootstrap instructions when bootstrap_supported()). */
    const ckks::BootstrapCircuit* circuit_for(std::size_t idx) const;

    const CompiledNetwork* cn_;
    const ckks::Context* ctx_;
    // Prepared payloads, indexed like cn_->program.
    std::vector<std::shared_ptr<lin::HeBlockedMatrix>> prepared_;
    std::vector<std::vector<ckks::Plaintext>> bias_;
    std::vector<double> in_scale_;    ///< per-instruction input scale
    std::vector<double> act_target_;  ///< per-activation target scale
    // Bootstrap support (empty / null for bootstrap-free programs). The
    // plan is the process-wide memoized one (BootstrapPlan::cached);
    // circuit variants share it rather than copying its stage matrices.
    std::shared_ptr<const ckks::BootstrapPlan> boot_plan_;
    std::vector<std::unique_ptr<const ckks::BootstrapCircuit>>
        boot_circuits_;               ///< one per distinct input scale
    std::vector<int> boot_circuit_of_;  ///< per-instruction index, or -1
};

/**
 * The Galois-key requirements of serving a compiled program on a given
 * context: the program's level-pruned rotation steps plus, for
 * bootstrap-bearing programs the context can support, the bootstrap
 * circuit's steps and conjugation. A pure function of (cn, ctx.params),
 * so a client and a server derive identical sets independently — and
 * keygen generates *only* this union, nothing speculative.
 */
struct GaloisRequirements {
    std::vector<ckks::GaloisKeyRequest> requests;
    bool conjugation = false;
    int conjugation_level = -1;
};
GaloisRequirements required_galois(const CompiledNetwork& cn,
                                   const ckks::Context& ctx);

/**
 * Packs and encrypts a network input exactly as the program's kInput
 * instruction expects (normalization, layout packing, level, scale).
 * Shared by CkksExecutor::run and the serving client.
 */
std::vector<ckks::Ciphertext> encrypt_network_input(
    const CompiledNetwork& cn, const ckks::Context& ctx,
    const ckks::Encoder& encoder, ckks::Encryptor& encryptor,
    const std::vector<double>& input);

/**
 * Packs up to CompiledNetwork::batch samples into their slot lanes and
 * encrypts them as one ciphertext set (the batched kInput form). The
 * program executes once for the whole batch.
 */
std::vector<ckks::Ciphertext> encrypt_network_input_batch(
    const CompiledNetwork& cn, const ckks::Context& ctx,
    const ckks::Encoder& encoder, ckks::Encryptor& encryptor,
    const std::vector<std::vector<double>>& inputs);

/**
 * Decrypts, unpacks, and de-normalizes program outputs exactly as the
 * kOutput instruction does.
 */
std::vector<double> decrypt_network_output(
    const CompiledNetwork& cn, const ckks::Encoder& encoder,
    const ckks::Decryptor& decryptor,
    const std::vector<ckks::Ciphertext>& outputs);

/** Batched decrypt: the first batch_count lanes as per-sample outputs. */
std::vector<std::vector<double>> decrypt_network_output_batch(
    const CompiledNetwork& cn, const ckks::Encoder& encoder,
    const ckks::Decryptor& decryptor,
    const std::vector<ckks::Ciphertext>& outputs, int batch_count);

/*
 * CkksExecutor honors OrionConfig::num_threads: run() installs a
 * thread-local pool override for its duration, so the executor knob
 * controls every parallel kernel underneath it without touching global
 * state (concurrent executors with different budgets are safe).
 * num_threads = 1 is bit-identical to any other setting; it simply runs
 * the kernels serially. SimExecutor is pure cleartext simulation and has
 * no parallel kernels today.
 */

/** Real-FHE backend over the from-scratch CKKS substrate. */
class CkksExecutor {
  public:
    /**
     * Self-keyed mode: generates keys for every required rotation step and
     * prepares the program (or reuses `prepared` when given). Requires the
     * program to have been compiled with matrices (structural_only =
     * false) and with l_eff < the context's max level.
     */
    /**
     * When `cfg` is given, run() pins its kernels to cfg.num_threads via a
     * thread-local pool override. Without it, the executor follows the
     * ambient setting at run() time (core::set_num_threads or a caller's
     * ScopedPoolOverride), so late thread-count changes take effect.
     */
    CkksExecutor(const CompiledNetwork& cn, const ckks::Context& ctx,
                 u64 seed = 7,
                 std::optional<OrionConfig> cfg = std::nullopt,
                 std::shared_ptr<const PreparedProgram> prepared = nullptr);

    /**
     * External-key (serving) mode: no key material of its own; callers
     * bind a session's evaluation keys before each run_encrypted().
     * Bootstrap instructions run as the real public-key circuit under
     * the bound Galois/relinearization keys; the context must therefore
     * have l_eff + l_boot levels (construction fails otherwise, naming
     * the offending instruction).
     */
    CkksExecutor(const CompiledNetwork& cn, const ckks::Context& ctx,
                 std::shared_ptr<const PreparedProgram> prepared,
                 std::optional<OrionConfig> cfg = std::nullopt);

    /**
     * Binds per-session evaluation keys (external-key mode, or to override
     * the self-generated keys). The pointed-to keys must outlive every
     * subsequent run_encrypted() call.
     */
    void bind_session_keys(const ckks::KswitchKey* relin,
                           const ckks::GaloisKeys* galois);

    /**
     * Full inference: encrypt, execute, decrypt. Self-keyed mode only.
     * Safe to call repeatedly on one instance: all per-run state (values,
     * levels, stats) is local to the call.
     */
    ExecutionResult run(const std::vector<double>& input);

    /**
     * Encrypted-domain inference: validates the input ciphertexts against
     * the program's kInput contract (count, level, scale), executes, and
     * returns the still-encrypted outputs. Works in both modes; the
     * serving path never touches a secret key. Reported rotation /
     * bootstrap / pmult counts are the program's deterministic operation
     * counts with SimExecutor's accounting (race-free when many executors
     * share one Context): rotations equal the measured kernel counts
     * (asserted against Context counters by the compiler integration
     * test); pmults cover linear layers and explicit scales but not the
     * plaintext products inside polynomial activation evaluation.
     */
    EncryptedResult run_encrypted(const std::vector<ckks::Ciphertext>& input);

    /** Encrypts a logical input (self-keyed mode). */
    std::vector<ckks::Ciphertext> encrypt_input(
        const std::vector<double>& input);
    /** Encrypts up to CompiledNetwork::batch samples into slot lanes. */
    std::vector<ckks::Ciphertext> encrypt_input_batch(
        const std::vector<std::vector<double>>& inputs);
    /** Decrypts encrypted-domain outputs (self-keyed mode). */
    std::vector<double> decrypt_output(
        const std::vector<ckks::Ciphertext>& outputs) const;
    /** Decrypts the first batch_count lanes as per-sample outputs. */
    std::vector<std::vector<double>> decrypt_output_batch(
        const std::vector<ckks::Ciphertext>& outputs, int batch_count) const;

    /** The pinned config, or the current global one when not pinned. */
    OrionConfig exec_config() const { return cfg_ ? *cfg_ : config(); }
    void set_exec_config(const OrionConfig& cfg) { cfg_ = cfg; }

    bool self_keyed() const { return keygen_.has_value(); }

    InspectFn inspect;  ///< optional observer (decrypts intermediates!)

    const ckks::SecretKey& secret_key() const
    {
        ORION_CHECK(keygen_.has_value(),
                    "external-key executor holds no secret key");
        return keygen_->secret_key();
    }
    std::size_t galois_key_bytes() const
    {
        return galois_ ? galois_->byte_size() : 0;
    }

  private:
    std::vector<ckks::Ciphertext> drop_all(
        const std::vector<ckks::Ciphertext>& in, int level) const;
    /** The shared instruction walk behind run() and run_encrypted(). */
    EncryptedResult execute_program(
        const std::vector<ckks::Ciphertext>& input);

    const CompiledNetwork* cn_;
    const ckks::Context* ctx_;
    std::optional<OrionConfig> cfg_;
    ckks::Encoder encoder_;
    std::shared_ptr<const PreparedProgram> prep_;
    // Self-key material; absent in external-key (serving) mode.
    std::optional<ckks::KeyGenerator> keygen_;
    std::optional<ckks::PublicKey> pk_;
    std::optional<ckks::KswitchKey> own_relin_;
    std::optional<ckks::GaloisKeys> own_galois_;
    std::optional<ckks::Encryptor> encryptor_;
    std::optional<ckks::Decryptor> decryptor_;
    // Oracle fallback: only for self-keyed executors on chains too short
    // for the real circuit (toy test parameters); see bootstrap.h.
    std::optional<ckks::OracleBootstrapper> oracle_boot_;
    // Bound evaluation keys (own keys, or a session's external keys).
    const ckks::KswitchKey* relin_ = nullptr;
    const ckks::GaloisKeys* galois_ = nullptr;
    ckks::Evaluator eval_;
};

}  // namespace orion::core

#endif  // ORION_SRC_CORE_EXECUTOR_H_
