#ifndef ORION_SRC_CORE_EXECUTOR_H_
#define ORION_SRC_CORE_EXECUTOR_H_

/**
 * @file
 * Execution backends for compiled networks.
 *
 * SimExecutor runs the instruction stream functionally (cleartext values,
 * polynomial activation approximations, injected bootstrap noise) while
 * charging the analytic cost model and tracking levels exactly - this is
 * how ImageNet-scale rows of Table 2 are produced. CkksExecutor runs the
 * same instruction stream under real RNS-CKKS encryption end to end.
 */

#include <optional>

#include "src/ckks/ckks.h"
#include "src/core/compiler.h"
#include "src/core/config.h"

namespace orion::core {

/** Outcome of one inference. */
struct ExecutionResult {
    std::vector<double> output;    ///< logical network output (de-normalized)
    double modeled_latency = 0.0;  ///< cost-model seconds
    double wall_seconds = 0.0;     ///< measured wall-clock seconds
    u64 bootstraps = 0;
    u64 rotations = 0;
    u64 pmults = 0;
};

/**
 * Optional per-instruction observer: receives the instruction and the
 * (logical/decrypted) slot values it produced. Used by integration tests
 * to localize divergence between backends.
 */
using InspectFn =
    std::function<void(const Instruction&, const std::vector<double>&)>;

/** Functional simulation backend. */
class SimExecutor {
  public:
    explicit SimExecutor(const CompiledNetwork& cn,
                         double bootstrap_noise_std = 1e-6, u64 seed = 5);

    ExecutionResult run(const std::vector<double>& input);

    InspectFn inspect;  ///< optional per-instruction observer

  private:
    const CompiledNetwork* cn_;
    double noise_std_;
    ckks::Sampler noise_;
};

/*
 * CkksExecutor honors OrionConfig::num_threads: run() installs a
 * thread-local pool override for its duration, so the executor knob
 * controls every parallel kernel underneath it without touching global
 * state (concurrent executors with different budgets are safe).
 * num_threads = 1 is bit-identical to any other setting; it simply runs
 * the kernels serially. SimExecutor is pure cleartext simulation and has
 * no parallel kernels today.
 */

/** Real-FHE backend over the from-scratch CKKS substrate. */
class CkksExecutor {
  public:
    /**
     * Prepares the program for the given context: generates keys for every
     * required rotation step, encodes all matrix diagonals and biases at
     * their assigned levels and repair scales. Requires the program to have
     * been compiled with matrices (structural_only = false) and with
     * l_eff < the context's max level.
     */
    /**
     * When `cfg` is given, run() pins its kernels to cfg.num_threads via a
     * thread-local pool override. Without it, the executor follows the
     * ambient setting at run() time (core::set_num_threads or a caller's
     * ScopedPoolOverride), so late thread-count changes take effect.
     */
    CkksExecutor(const CompiledNetwork& cn, const ckks::Context& ctx,
                 u64 seed = 7,
                 std::optional<OrionConfig> cfg = std::nullopt);

    ExecutionResult run(const std::vector<double>& input);

    /** The pinned config, or the current global one when not pinned. */
    OrionConfig exec_config() const { return cfg_ ? *cfg_ : config(); }
    void set_exec_config(const OrionConfig& cfg) { cfg_ = cfg; }

    InspectFn inspect;  ///< optional observer (decrypts intermediates!)

    const ckks::SecretKey& secret_key() const
    {
        return keygen_.secret_key();
    }
    std::size_t galois_key_bytes() const { return galois_.byte_size(); }

  private:
    /** One tensor value: its ciphertexts. */
    struct Value {
        std::vector<ckks::Ciphertext> cts;
    };

    std::vector<ckks::Ciphertext> drop_all(
        const std::vector<ckks::Ciphertext>& in, int level) const;

    const CompiledNetwork* cn_;
    const ckks::Context* ctx_;
    std::optional<OrionConfig> cfg_;
    ckks::Encoder encoder_;
    ckks::KeyGenerator keygen_;
    ckks::PublicKey pk_;
    ckks::KswitchKey relin_;
    ckks::GaloisKeys galois_;
    ckks::Encryptor encryptor_;
    ckks::Decryptor decryptor_;
    ckks::Evaluator eval_;
    ckks::Bootstrapper boot_;
    // Prepared payloads, indexed like cn_->program.
    std::vector<std::shared_ptr<lin::HeBlockedMatrix>> prepared_;
    std::vector<std::vector<ckks::Plaintext>> bias_;
    std::vector<double> in_scale_;    ///< per-instruction input scale
    std::vector<double> act_target_;  ///< per-activation target scale
};

}  // namespace orion::core

#endif  // ORION_SRC_CORE_EXECUTOR_H_
