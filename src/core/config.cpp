#include "src/core/config.h"

#include <cstdlib>
#include <mutex>
#include <thread>

#include "src/core/thread_pool.h"

namespace orion::core {

namespace {

std::mutex g_config_mu;

OrionConfig
config_from_env()
{
    OrionConfig cfg;
    if (const char* env = std::getenv("ORION_NUM_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 0) cfg.num_threads = n;
    }
    if (const char* env = std::getenv("ORION_MAX_INFLIGHT")) {
        const int n = std::atoi(env);
        if (n >= 0) cfg.max_inflight = n;
    }
    if (const char* env = std::getenv("ORION_QUEUE_CAPACITY")) {
        const int n = std::atoi(env);
        if (n >= 1) cfg.queue_capacity = n;
    }
    if (const char* env = std::getenv("ORION_KEY_CACHE_MB")) {
        const int n = std::atoi(env);
        if (n >= 0) cfg.key_cache_mb = n;
    }
    return cfg;
}

OrionConfig&
mutable_config()
{
    static OrionConfig cfg = config_from_env();
    return cfg;
}

}  // namespace

namespace {

int
resolve_or_hardware(int n)
{
    if (n > 0) return n;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int
OrionConfig::resolved_num_threads() const
{
    return resolve_or_hardware(num_threads);
}

int
OrionConfig::resolved_max_inflight() const
{
    return resolve_or_hardware(max_inflight);
}

OrionConfig
config()
{
    std::lock_guard<std::mutex> lk(g_config_mu);
    return mutable_config();
}

void
set_config(const OrionConfig& cfg)
{
    {
        std::lock_guard<std::mutex> lk(g_config_mu);
        mutable_config() = cfg;
    }
    ThreadPool::set_global_threads(cfg.resolved_num_threads());
}

void
set_num_threads(int n)
{
    OrionConfig cfg;
    {
        // Single critical section for the read-modify-write, so two
        // concurrent setters cannot lose an update to other fields.
        std::lock_guard<std::mutex> lk(g_config_mu);
        mutable_config().num_threads = n;
        cfg = mutable_config();
    }
    ThreadPool::set_global_threads(cfg.resolved_num_threads());
}

}  // namespace orion::core
