#include "src/core/arena.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

#include "src/core/telemetry.h"

namespace orion::core {

namespace {

constexpr std::size_t kAlign = 64;  // cache line; also the size-class step

/** Blocks a thread keeps privately per size class before spilling. */
constexpr std::size_t kTlsBlocksPerClass = 4;

std::size_t
default_cache_bound()
{
    // Cached-free bytes the global pool may hold before releases fall
    // through to the heap. Generous by default (paper-scale key switching
    // wants several extended-poly blocks of ~10 MB each); override with
    // ORION_ARENA_MB (0 disables caching entirely — every release frees).
    constexpr std::size_t kDefaultMb = 512;
    const char* env = std::getenv("ORION_ARENA_MB");
    if (env == nullptr || *env == '\0') return kDefaultMb << 20;
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(env, &end, 10);
    if (end == env) return kDefaultMb << 20;
    return static_cast<std::size_t>(mb) << 20;
}

void*
aligned_new(std::size_t bytes)
{
    return ::operator new(bytes, std::align_val_t(kAlign));
}

void
aligned_delete(void* p)
{
    ::operator delete(p, std::align_val_t(kAlign));
}

// Set by ~TlsCache. Statics holding pooled buffers can destruct after the
// thread-local cache is already gone (exit-time destructor ordering);
// their releases must bypass the dead cache and go straight to the global
// pool. Trivially destructible, so reading it stays valid through exit.
thread_local bool g_tls_cache_dead = false;

}  // namespace

struct Arena::Impl {
    mutable std::mutex mu;
    // Free lists keyed by exact size class; the pointer vectors are tiny
    // next to the blocks they index.
    std::unordered_map<std::size_t, std::vector<void*>> free_lists;
    std::size_t cache_bound = default_cache_bound();
    std::size_t cached_bytes = 0;

    // Counters are relaxed atomics so the thread-local fast paths never
    // take the mutex just to count.
    std::atomic<u64> acquires{0};
    std::atomic<u64> pool_hits{0};
    std::atomic<u64> live_bytes{0};

    /** One thread's private front cache for a single size class. */
    struct TlsClass {
        void* blocks[kTlsBlocksPerClass];
        std::size_t count = 0;
    };
    struct TlsCache {
        std::unordered_map<std::size_t, TlsClass> classes;
        Impl* owner = nullptr;

        ~TlsCache()
        {
            // Thread exit: hand every cached block back to the global
            // pool so nothing strands with the thread. The singleton is
            // leaked, so `owner` is always still alive here.
            g_tls_cache_dead = true;
            if (owner == nullptr) return;
            std::lock_guard<std::mutex> lk(owner->mu);
            for (auto& [bytes, cls] : classes) {
                for (std::size_t i = 0; i < cls.count; ++i) {
                    owner->release_locked(cls.blocks[i], bytes);
                }
                cls.count = 0;
            }
        }
    };

    TlsCache&
    tls()
    {
        thread_local TlsCache cache;
        cache.owner = this;
        return cache;
    }

    /** Parks a block in the global pool, or frees it past the bound. */
    void
    release_locked(void* p, std::size_t bytes)
    {
        if (cached_bytes + bytes > cache_bound) {
            aligned_delete(p);
            return;
        }
        free_lists[bytes].push_back(p);
        cached_bytes += bytes;
    }
};

Arena::Arena() : impl_(new Impl)
{
    // The singleton is leaked, so the collector is never removed; it
    // publishes the pool counters/gauges at every registry scrape.
    telemetry::Registry::global().add_collector(
        [this](std::vector<telemetry::Sample>& out) {
            const ArenaStats s = stats();
            using Kind = telemetry::Sample::Kind;
            out.push_back({"arena.acquires",
                           static_cast<double>(s.acquires),
                           Kind::kCounter});
            out.push_back({"arena.pool_hits",
                           static_cast<double>(s.pool_hits),
                           Kind::kCounter});
            out.push_back({"arena.live_bytes",
                           static_cast<double>(s.live_bytes),
                           Kind::kGauge});
            out.push_back({"arena.cached_bytes",
                           static_cast<double>(s.cached_bytes),
                           Kind::kGauge});
        });
}

Arena&
Arena::instance()
{
    // Leaked: thread-local cache destructors may run at any point during
    // process teardown and must always find a live pool to flush into.
    static Arena* const arena = new Arena();
    return *arena;
}

std::size_t
Arena::size_class(std::size_t bytes)
{
    if (bytes == 0) return kAlign;
    return (bytes + kAlign - 1) / kAlign * kAlign;
}

void*
Arena::acquire(std::size_t bytes, bool* pool_hit)
{
    const std::size_t cls = size_class(bytes);

    impl_->acquires.fetch_add(1, std::memory_order_relaxed);
    impl_->live_bytes.fetch_add(cls, std::memory_order_relaxed);

    // Fast path: this thread's own cache, no lock.
    if (!g_tls_cache_dead) {
        Impl::TlsCache& tls = impl_->tls();
        if (auto it = tls.classes.find(cls);
            it != tls.classes.end() && it->second.count > 0) {
            void* p = it->second.blocks[--it->second.count];
            impl_->pool_hits.fetch_add(1, std::memory_order_relaxed);
            *pool_hit = true;
            return p;
        }
    }

    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        auto it = impl_->free_lists.find(cls);
        if (it != impl_->free_lists.end() && !it->second.empty()) {
            void* p = it->second.back();
            it->second.pop_back();
            impl_->cached_bytes -= cls;
            impl_->pool_hits.fetch_add(1, std::memory_order_relaxed);
            *pool_hit = true;
            return p;
        }
    }
    *pool_hit = false;
    return aligned_new(cls);
}

void
Arena::release(void* p, std::size_t bytes)
{
    const std::size_t cls = size_class(bytes);
    impl_->live_bytes.fetch_sub(cls, std::memory_order_relaxed);
    // Prefer the thread-local cache; spill to the global pool when full
    // so long-lived producer/consumer imbalances still recirculate.
    if (!g_tls_cache_dead) {
        Impl::TlsClass& cls_cache = impl_->tls().classes[cls];
        if (cls_cache.count < kTlsBlocksPerClass) {
            cls_cache.blocks[cls_cache.count++] = p;
            return;
        }
    }
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->release_locked(p, cls);
}

ArenaStats
Arena::stats() const
{
    ArenaStats s;
    s.acquires = impl_->acquires.load(std::memory_order_relaxed);
    s.pool_hits = impl_->pool_hits.load(std::memory_order_relaxed);
    s.live_bytes = impl_->live_bytes.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        s.cached_bytes = impl_->cached_bytes;
    }
    return s;
}

void
Arena::trim()
{
    // This thread's cache first (other threads' caches flush on their own
    // exit), then the global pool.
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (!g_tls_cache_dead) {
        Impl::TlsCache& tls = impl_->tls();
        for (auto& [bytes, cls] : tls.classes) {
            for (std::size_t i = 0; i < cls.count; ++i) {
                impl_->release_locked(cls.blocks[i], bytes);
            }
            cls.count = 0;
        }
    }
    for (auto& [bytes, list] : impl_->free_lists) {
        (void)bytes;
        for (void* p : list) aligned_delete(p);
        list.clear();
    }
    impl_->cached_bytes = 0;
}

}  // namespace orion::core
