#ifndef ORION_SRC_CORE_TELEMETRY_H_
#define ORION_SRC_CORE_TELEMETRY_H_

/**
 * @file
 * Process-wide telemetry: one metrics registry + one span tracer for every
 * layer of the stack (ckks kernels, the executor, the serving path, and
 * the benches), replacing the per-subsystem stat islands.
 *
 * Metrics registry
 * ----------------
 * Three instrument kinds, all safe to update from any thread:
 *  - Counter: monotonic u64 (relaxed fetch_add).
 *  - Gauge: last-written double (relaxed store; add() for accumulating
 *    gauges like byte totals).
 *  - Histogram: fixed log-spaced buckets (8 per octave from 1e-6), with
 *    p50/p95/p99 extraction by log interpolation inside the bucket. Built
 *    for latencies in seconds but unit-agnostic.
 * Instruments are created on first use by name and live for the process
 * (references returned by the registry never dangle). Hot paths must
 * capture the reference once — the by-name lookup takes the registry
 * mutex.
 *
 * Registries also accept *collectors*: scrape-time callbacks that emit
 * samples from stats the owner already maintains (per-Context OpCounters,
 * the Arena pool). Collector samples merge into text()/snapshot() output
 * by name (summed), so N live Contexts read as one process-wide op
 * ledger without any double-counting in the hot loops.
 *
 * `Registry::global()` is the process registry; `InferenceServer` keeps a
 * private one per instance so its request metrics are not polluted by
 * other servers in the same process, and concatenates both in
 * metrics_text().
 *
 * Naming convention: `subsystem.verb[.qualifier]` (e.g. `ckks.op.hmult`,
 * `boot.cts.seconds`, `serve.failed.decode_error`). text() renders
 * Prometheus-style exposition: dots become underscores, everything is
 * prefixed `orion_`, counters gain `_total`.
 *
 * Span tracer
 * -----------
 * RAII spans (`TELEM_SPAN("ckks.keyswitch")`) record into per-thread ring
 * buffers; a full ring overwrites its oldest event (drop count kept).
 * Tracing is disabled by default: a disabled span is one relaxed atomic
 * load and two pointer writes — cheap enough for per-op granularity.
 * `ORION_TRACE=path` (read at process start) enables tracing and writes
 * chrome://tracing JSON ("Load" in chrome://tracing or ui.perfetto.dev)
 * at exit; tests drive the same machinery via set_tracing() /
 * collect_trace_events().
 */

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common.h"

namespace orion::telemetry {

// ---------------------------------------------------------------- metrics

/** Monotonic counter. add()/value() are wait-free relaxed atomics. */
class Counter {
  public:
    void add(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    u64 value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> v_{0};
};

/** Last-written (or accumulated) double value. */
class Gauge {
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void
    add(double d)
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
        }
    }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket latency histogram: kSubBuckets log-spaced buckets per
 * octave starting at kMinValue, so bucket widths are a constant ~9% of
 * their value and percentiles are accurate to that resolution from 1us to
 * ~19 hours (for values in seconds). ~2.3 KB per instrument.
 */
class Histogram {
  public:
    static constexpr int kSubBuckets = 8;    ///< buckets per octave
    static constexpr int kOctaves = 36;      ///< kMinValue .. kMinValue*2^36
    static constexpr int kBuckets = kSubBuckets * kOctaves;
    static constexpr double kMinValue = 1e-6;

    void observe(double v);

    u64 count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    /** Percentile in [0, 100]; 0 when the histogram is empty. */
    double percentile(double p) const;

    /** Inclusive upper bound of bucket i (the Prometheus `le` label). */
    static double bucket_upper(int i);
    u64
    bucket_count(int i) const
    {
        return buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    }

  private:
    std::atomic<u64> buckets_[kBuckets] = {};
    std::atomic<u64> count_{0};
    std::atomic<double> sum_{0.0};
};

/** One flattened metric value (snapshot rows, collector emissions). */
struct Sample {
    enum class Kind { kCounter, kGauge };
    std::string name;
    double value = 0.0;
    Kind kind = Kind::kCounter;
};

/**
 * A named family of instruments plus scrape-time collectors. All methods
 * are thread-safe; instrument references are stable for the registry's
 * lifetime (and forever for Registry::global()).
 */
class Registry {
  public:
    /** Scrape callback: append samples (merged into output by name). */
    using Collector = std::function<void(std::vector<Sample>&)>;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Registers a scrape collector; returns a handle for removal. */
    u64 add_collector(Collector fn);
    void remove_collector(u64 handle);

    /**
     * Every metric flattened to name -> value: counters and gauges by
     * name (collector samples summed in), histograms as `<name>.count`,
     * `.sum`, `.p50`, `.p95`, `.p99`.
     */
    std::map<std::string, double> snapshot() const;

    /**
     * Prometheus-style text exposition: `# TYPE` comments, `orion_`
     * prefix, dots -> underscores, `_total` on counters, cumulative
     * `_bucket{le="..."}` rows (only buckets that grow, plus `+Inf`) with
     * `_sum`/`_count` for histograms.
     */
    std::string text() const;

    /** The process-wide registry. */
    static Registry& global();

  private:
    void collect(std::vector<Sample>& out) const;

    mutable std::mutex mu_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::map<u64, Collector> collectors_;
    u64 next_collector_ = 1;
};

// ----------------------------------------------------------------- tracer

/** One completed span (timestamps in ns since the process trace epoch). */
struct TraceEvent {
    const char* name = nullptr;  ///< static string (macro literal)
    u64 t0_ns = 0;
    u64 dur_ns = 0;
    i64 arg = -1;  ///< optional id (layer_id, request id); -1 = none
};

/** A collected span: TraceEvent plus the recording thread's trace id. */
struct TraceRecord {
    TraceEvent event;
    int tid = 0;
};

namespace detail {

extern std::atomic<bool> g_tracing;

u64 now_ns();
void record_span(const char* name, u64 t0_ns, u64 t1_ns, i64 arg);

}  // namespace detail

/** True when spans are being recorded. The only cost of a disabled span. */
inline bool
tracing_enabled()
{
    return detail::g_tracing.load(std::memory_order_relaxed);
}

void set_tracing(bool on);
/** Ring size for threads that start tracing after the call (tests). */
void set_trace_ring_capacity(std::size_t events);
/** Drops all buffered events and the drop counts; rings stay registered. */
void clear_trace();
/** Total events overwritten by ring wrap since the last clear_trace(). */
u64 trace_dropped();
/** Every buffered span, oldest-first per thread. */
std::vector<TraceRecord> collect_trace_events();
/** chrome://tracing JSON (the "Trace Event Format", ph:"X" events). */
std::string trace_json();
/** Writes trace_json() to `path`; false (with a stderr note) on failure. */
bool write_trace(const std::string& path);

/**
 * RAII span. Construction takes one relaxed atomic load when tracing is
 * off; when on, steady_clock timestamps bracket the scope and destruction
 * pushes into the calling thread's ring buffer.
 */
class SpanGuard {
  public:
    explicit SpanGuard(const char* name, i64 arg = -1)
    {
        if (tracing_enabled()) {
            name_ = name;
            arg_ = arg;
            t0_ = detail::now_ns();
        }
    }
    ~SpanGuard()
    {
        if (name_ != nullptr) {
            detail::record_span(name_, t0_, detail::now_ns(), arg_);
        }
    }
    SpanGuard(const SpanGuard&) = delete;
    SpanGuard& operator=(const SpanGuard&) = delete;

  private:
    const char* name_ = nullptr;
    i64 arg_ = -1;
    u64 t0_ = 0;
};

#define ORION_TELEM_CONCAT2(a, b) a##b
#define ORION_TELEM_CONCAT(a, b) ORION_TELEM_CONCAT2(a, b)
/** Traces the enclosing scope under `name` (a string literal). */
#define TELEM_SPAN(name)                                                     \
    ::orion::telemetry::SpanGuard ORION_TELEM_CONCAT(telem_span_,            \
                                                     __LINE__)(name)
/** TELEM_SPAN with an integer id rendered into the event's args. */
#define TELEM_SPAN_ID(name, id)                                              \
    ::orion::telemetry::SpanGuard ORION_TELEM_CONCAT(telem_span_, __LINE__)( \
        name, static_cast<::orion::i64>(id))

}  // namespace orion::telemetry

#endif  // ORION_SRC_CORE_TELEMETRY_H_
