#include "src/core/placement.h"

#include <algorithm>
#include <chrono>

namespace orion::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Backtrace record for one DP transition. */
struct Trace {
    int prev_level = -1;
    int exec_level = -1;
    bool boot_before = false;
    int region_entry = -1;  ///< for region items: chosen branch entry level
};

/**
 * Solves one chain for a fixed entry level. Region branches are solved
 * recursively and cached (every branch is solved once per entry level,
 * which is what keeps the whole algorithm linear in depth).
 */
class ChainSolver {
  public:
    ChainSolver(const Chain& chain, const PlacementConfig& config)
        : chain_(&chain), config_(&config)
    {
        for (const ChainItem& item : chain.items) {
            if (item.kind == ChainItem::Kind::kRegion) {
                std::vector<std::unique_ptr<ChainSolver>> solvers;
                for (const Chain& branch : item.branches) {
                    solvers.push_back(
                        std::make_unique<ChainSolver>(branch, config));
                }
                branch_solvers_.emplace(
                    static_cast<int>(&item - chain.items.data()),
                    std::move(solvers));
            }
        }
    }

    /** DP tables for one entry level. */
    struct Solve {
        // cost[i][l]: min cost of being before item i at level l (i in
        // 0..n; i == n means after the last item). boots[i][l]: total
        // bootstrapped ciphertexts along the optimal path.
        std::vector<std::vector<double>> cost;
        std::vector<std::vector<u64>> boots;
        std::vector<std::vector<Trace>> trace;
    };

    const Solve&
    solve(int entry)
    {
        auto it = memo_.find(entry);
        if (it != memo_.end()) return it->second;

        const int levels = config_->l_eff + 1;
        const int n = static_cast<int>(chain_->items.size());
        Solve s;
        s.cost.assign(static_cast<std::size_t>(n + 1),
                      std::vector<double>(static_cast<std::size_t>(levels),
                                          kInf));
        s.boots.assign(static_cast<std::size_t>(n + 1),
                       std::vector<u64>(static_cast<std::size_t>(levels), 0));
        s.trace.assign(static_cast<std::size_t>(n + 1),
                       std::vector<Trace>(static_cast<std::size_t>(levels)));
        s.cost[0][static_cast<std::size_t>(entry)] = 0.0;

        for (int i = 0; i < n; ++i) {
            const ChainItem& item =
                chain_->items[static_cast<std::size_t>(i)];
            // Augment states with an optional bootstrap before item i.
            std::vector<double> pre = s.cost[static_cast<std::size_t>(i)];
            std::vector<u64> pre_boots =
                s.boots[static_cast<std::size_t>(i)];
            std::vector<Trace> pre_trace(static_cast<std::size_t>(levels));
            for (int l = 0; l < levels; ++l) {
                pre_trace[static_cast<std::size_t>(l)].prev_level = l;
            }
            for (int l = 0; l < levels; ++l) {
                const double base =
                    s.cost[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(l)];
                if (base == kInf) continue;
                const double boosted =
                    base + config_->bootstrap_latency *
                               static_cast<double>(item.unit.input_cts);
                const int top = config_->l_eff;
                if (boosted < pre[static_cast<std::size_t>(top)]) {
                    pre[static_cast<std::size_t>(top)] = boosted;
                    pre_boots[static_cast<std::size_t>(top)] =
                        s.boots[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(l)] +
                        item.unit.input_cts;
                    pre_trace[static_cast<std::size_t>(top)] = Trace{
                        l, -1, true, -1};
                }
            }

            // Transition through the item.
            for (int l = 0; l < levels; ++l) {
                const double base = pre[static_cast<std::size_t>(l)];
                if (base == kInf) continue;
                const Trace& tr_in = pre_trace[static_cast<std::size_t>(l)];
                if (item.kind == ChainItem::Kind::kUnit) {
                    // Execute at any level e <= l (mod-down is free).
                    for (int e = item.unit.depth; e <= l; ++e) {
                        const int out = e - item.unit.depth;
                        const double c = base + item.unit.latency(e);
                        auto& slot = s.cost[static_cast<std::size_t>(i + 1)]
                                           [static_cast<std::size_t>(out)];
                        if (c < slot) {
                            slot = c;
                            s.boots[static_cast<std::size_t>(i + 1)]
                                   [static_cast<std::size_t>(out)] =
                                pre_boots[static_cast<std::size_t>(l)];
                            Trace tr = tr_in;
                            tr.exec_level = e;
                            s.trace[static_cast<std::size_t>(i + 1)]
                                   [static_cast<std::size_t>(out)] = tr;
                        }
                    }
                } else {
                    // Region: branches entered at e <= l, each exiting at
                    // some level >= b and mod-downed (free) to the common
                    // join level b; the join unit runs at b.
                    const auto& solvers = branch_solvers_.at(i);
                    for (int e = 0; e <= l; ++e) {
                        // Suffix minima over branch exit levels.
                        std::vector<std::vector<double>> best_cost(
                            solvers.size());
                        std::vector<std::vector<u64>> best_boots(
                            solvers.size());
                        for (std::size_t br = 0; br < solvers.size(); ++br) {
                            const Solve& bs = solvers[br]->solve(e);
                            auto& bc = best_cost[br];
                            auto& bb = best_boots[br];
                            bc.assign(static_cast<std::size_t>(levels), kInf);
                            bb.assign(static_cast<std::size_t>(levels), 0);
                            double run = kInf;
                            u64 run_boots = 0;
                            for (int b = config_->l_eff; b >= 0; --b) {
                                const double v =
                                    bs.cost.back()
                                        [static_cast<std::size_t>(b)];
                                if (v < run) {
                                    run = v;
                                    run_boots =
                                        bs.boots.back()
                                            [static_cast<std::size_t>(b)];
                                }
                                bc[static_cast<std::size_t>(b)] = run;
                                bb[static_cast<std::size_t>(b)] = run_boots;
                            }
                        }
                        for (int b = 0; b <= config_->l_eff; ++b) {
                            double c = base + item.unit.latency(b);
                            u64 boots = pre_boots[static_cast<std::size_t>(l)];
                            bool feasible = true;
                            for (std::size_t br = 0; br < solvers.size();
                                 ++br) {
                                const double bc =
                                    best_cost[br][static_cast<std::size_t>(b)];
                                if (bc == kInf) {
                                    feasible = false;
                                    break;
                                }
                                c += bc;
                                boots +=
                                    best_boots[br]
                                              [static_cast<std::size_t>(b)];
                            }
                            if (!feasible) continue;
                            const int out = b - item.unit.depth;
                            if (out < 0) continue;
                            auto& slot =
                                s.cost[static_cast<std::size_t>(i + 1)]
                                      [static_cast<std::size_t>(out)];
                            if (c < slot) {
                                slot = c;
                                s.boots[static_cast<std::size_t>(i + 1)]
                                       [static_cast<std::size_t>(out)] =
                                    boots;
                                Trace tr = tr_in;
                                tr.exec_level = b;
                                tr.region_entry = e;
                                s.trace[static_cast<std::size_t>(i + 1)]
                                       [static_cast<std::size_t>(out)] = tr;
                            }
                        }
                    }
                }
            }
        }
        return memo_.emplace(entry, std::move(s)).first->second;
    }

    /** Reconstructs decisions for the optimal path entry -> exit. */
    void
    extract(int entry, int exit, std::vector<UnitDecision>* out)
    {
        const Solve& s = solve(entry);
        const int n = static_cast<int>(chain_->items.size());
        // Walk backwards collecting (item, trace) pairs.
        std::vector<std::pair<int, Trace>> steps;
        int level = exit;
        for (int i = n; i >= 1; --i) {
            const Trace tr =
                s.trace[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(level)];
            steps.push_back({i - 1, tr});
            level = tr.prev_level;
        }
        std::reverse(steps.begin(), steps.end());

        for (const auto& [idx, tr] : steps) {
            const ChainItem& item =
                chain_->items[static_cast<std::size_t>(idx)];
            UnitDecision d;
            d.layer_id = item.unit.layer_id;
            d.name = item.unit.name;
            d.bootstrap_before = tr.boot_before;
            d.boot_cts = tr.boot_before ? item.unit.input_cts : 0;
            d.exec_level = tr.exec_level;
            if (item.kind == ChainItem::Kind::kRegion) {
                // Emit the bootstrap-before decision (if any), then the
                // branches' decisions, then the join itself.
                UnitDecision fork_note = d;
                fork_note.exec_level = tr.region_entry;
                fork_note.name = item.unit.name + ":fork";
                out->push_back(fork_note);
                const auto& solvers = branch_solvers_.at(idx);
                for (const auto& solver : solvers) {
                    // The branch exits at the cheapest level >= the join
                    // level (same descending tie-break as the solve step).
                    const Solve& bs = solver->solve(tr.region_entry);
                    int exit = tr.exec_level;
                    double best = kInf;
                    for (int b = config_->l_eff; b >= tr.exec_level; --b) {
                        const double v =
                            bs.cost.back()[static_cast<std::size_t>(b)];
                        if (v < best) {
                            best = v;
                            exit = b;
                        }
                    }
                    solver->extract(tr.region_entry, exit, out);
                }
                UnitDecision join = d;
                join.bootstrap_before = false;
                join.boot_cts = 0;
                out->push_back(join);
            } else {
                out->push_back(d);
            }
        }
    }

  private:
    const Chain* chain_;
    const PlacementConfig* config_;
    std::map<int, Solve> memo_;
    std::map<int, std::vector<std::unique_ptr<ChainSolver>>> branch_solvers_;
};

}  // namespace

u64
chain_unit_count(const Chain& chain)
{
    u64 count = 0;
    for (const ChainItem& item : chain.items) {
        ++count;
        for (const Chain& branch : item.branches) {
            count += chain_unit_count(branch);
        }
    }
    return count;
}

PlacementResult
place_bootstraps(const Chain& chain, const PlacementConfig& config)
{
    const auto t0 = std::chrono::steady_clock::now();
    ChainSolver solver(chain, config);
    const auto& s = solver.solve(config.entry_level());

    PlacementResult result;
    for (int b = 0; b <= config.l_eff; ++b) {
        const double c = s.cost.back()[static_cast<std::size_t>(b)];
        if (c < result.latency) {
            result.latency = c;
            result.exit_level = b;
        }
    }
    ORION_CHECK(result.latency < kInf, "placement infeasible: a unit needs "
                                       "more levels than l_eff provides");
    result.num_bootstraps =
        s.boots.back()[static_cast<std::size_t>(result.exit_level)];
    solver.extract(config.entry_level(), result.exit_level,
                   &result.decisions);
    for (const UnitDecision& d : result.decisions) {
        if (d.bootstrap_before) ++result.num_bootstrap_sites;
    }
    result.solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
}

namespace {

/** Greedy traversal for the lazy baseline; returns the exit level. */
int
lazy_walk(const Chain& chain, const PlacementConfig& config, int level,
          PlacementResult* result)
{
    for (const ChainItem& item : chain.items) {
        if (item.kind == ChainItem::Kind::kUnit) {
            UnitDecision d;
            d.layer_id = item.unit.layer_id;
            d.name = item.unit.name;
            if (level < item.unit.depth) {
                d.bootstrap_before = true;
                d.boot_cts = item.unit.input_cts;
                result->latency += config.bootstrap_latency *
                                   static_cast<double>(item.unit.input_cts);
                result->num_bootstraps += item.unit.input_cts;
                ++result->num_bootstrap_sites;
                level = config.l_eff;
            }
            d.exec_level = level;
            result->latency += item.unit.latency(level);
            level -= item.unit.depth;
            result->decisions.push_back(std::move(d));
        } else {
            // Run each branch lazily from the current level, then meet at
            // the minimum exit level (mod-down the higher branch for free).
            int join_level = config.l_eff;
            for (const Chain& branch : item.branches) {
                join_level = std::min(
                    join_level, lazy_walk(branch, config, level, result));
            }
            UnitDecision join;
            join.layer_id = item.unit.layer_id;
            join.name = item.unit.name;
            join.exec_level = join_level;
            result->latency += item.unit.latency(join_level);
            level = join_level - item.unit.depth;
            if (level < 0) {
                // Join itself cannot run: bootstrap both inputs.
                result->latency += config.bootstrap_latency * 2.0 *
                                   static_cast<double>(item.unit.input_cts);
                result->num_bootstraps += 2 * item.unit.input_cts;
                ++result->num_bootstrap_sites;
                join.exec_level = config.l_eff;
                level = config.l_eff - item.unit.depth;
            }
            result->decisions.push_back(std::move(join));
        }
    }
    return level;
}

}  // namespace

PlacementResult
place_bootstraps_lazy(const Chain& chain, const PlacementConfig& config)
{
    const auto t0 = std::chrono::steady_clock::now();
    PlacementResult result;
    result.latency = 0.0;
    result.exit_level = lazy_walk(chain, config, config.entry_level(),
                                  &result);
    result.solve_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
}

}  // namespace orion::core
