#include "src/core/cost_model.h"

#include <cmath>
#include <vector>

namespace orion::core {

CostModel
CostModel::paper_scale()
{
    return for_params(u64(1) << 16, /*digit_size=*/3, /*num_special=*/3,
                      /*l_boot=*/14);
}

CostModel
CostModel::for_params(u64 poly_degree, int digit_size, int num_special,
                      int l_boot)
{
    CostModel m;
    m.n_ = poly_degree;
    m.log_n_ = log2_exact(poly_degree);
    m.alpha_ = digit_size;
    m.num_special_ = num_special;
    m.l_boot_ = l_boot;
    return m;
}

void
CostModel::calibrate(double measured_rotation_seconds, int at_level)
{
    const double predicted = rotation(at_level);
    ORION_CHECK(predicted > 0 && measured_rotation_seconds > 0,
                "bad calibration inputs");
    seconds_per_word_op_ *= measured_rotation_seconds / predicted;
}

void
CostModel::calibrate_bootstrap(double measured_seconds, int l_eff)
{
    const double predicted = bootstrap(l_eff);
    ORION_CHECK(predicted > 0 && measured_seconds > 0,
                "bad calibration inputs");
    seconds_per_word_op_ *= measured_seconds / predicted;
}

int
CostModel::num_digits(int level) const
{
    return static_cast<int>(ceil_div(static_cast<u64>(level) + 1,
                                     static_cast<u64>(alpha_)));
}

double
CostModel::ntt(int limbs) const
{
    return seconds_per_word_op_ * static_cast<double>(limbs) *
           static_cast<double>(n_) * log_n_;
}

double
CostModel::pmult(int level) const
{
    // One pointwise pass over l+1 limbs.
    return seconds_per_word_op_ * (level + 1.0) * static_cast<double>(n_);
}

double
CostModel::hadd(int level) const
{
    return 0.25 * pmult(level);
}

double
CostModel::rescale(int level) const
{
    // One INTT of the dropped limb, one NTT + pointwise pass per survivor.
    return ntt(level + 1) + pmult(level);
}

double
CostModel::hoist(int level) const
{
    // Decompose: INTT of l+1 limbs, then per digit an NTT into the full
    // extended basis plus the base-conversion pointwise work.
    const int digits = num_digits(level);
    const int ext = level + 1 + num_special_;
    return ntt(level + 1) + digits * (ntt(ext) + 2.0 * pmult(ext - 1));
}

double
CostModel::rotation_hoisted(int level) const
{
    // Permutation + key inner product over the extended basis + mod-down.
    const int digits = num_digits(level);
    const int ext = level + 1 + num_special_;
    const double inner = seconds_per_word_op_ * 2.0 * digits * ext *
                         static_cast<double>(n_);
    const double mod_down =
        2.0 * num_special_ * (ntt(level + 1) / (level + 1.0) + pmult(level));
    return inner + mod_down + 2.0 * ntt(num_special_);
}

double
CostModel::rotation(int level) const
{
    return hoist(level) + rotation_hoisted(level);
}

double
CostModel::hmult(int level) const
{
    // Tensor product (4 pointwise passes) + key switch of d2 + rescale.
    return 4.0 * pmult(level) + rotation(level) + rescale(level);
}

double
CostModel::linear_layer(const PlanStats& stats, int level) const
{
    return static_cast<double>(stats.hoists) * hoist(level) +
           static_cast<double>(stats.baby_rotations) *
               rotation_hoisted(level) +
           static_cast<double>(stats.giant_rotations) *
               rotation_hoisted(level) +
           static_cast<double>(stats.pmults) *
               (pmult(level) + hadd(level)) +
           static_cast<double>(stats.output_cts) * rescale(level);
}

double
CostModel::activation(const std::vector<int>& stage_degrees, int level,
                      u64 cts, bool times_input) const
{
    // Per stage of degree d: ~(bs + log2(d/bs) + d/(2*bs)) ct-ct products
    // for the power basis and recombination, plus ~d plaintext products at
    // the leaves, spread over descending levels.
    double total = 0.0;
    int lvl = level;
    for (int d : stage_degrees) {
        const double bs = std::ceil(std::sqrt(d + 1.0));
        const double mults = bs + std::log2(std::max(2.0, (d + 1.0) / bs));
        const int depth = static_cast<int>(std::ceil(std::log2(d + 1.0))) + 1;
        const int mid = std::max(1, lvl - depth / 2);
        total += mults * hmult(mid) + d * (pmult(mid) + hadd(mid)) +
                 depth * rescale(mid);
        lvl = std::max(1, lvl - depth);
    }
    if (times_input) total += hmult(std::max(1, lvl)) + rescale(std::max(1, lvl));
    return total * static_cast<double>(cts);
}

double
CostModel::bootstrap(int l_eff) const
{
    // Modeled schedule of a full CKKS bootstrap starting at level
    // L = l_eff + l_boot (see src/ckks/bootstrap.h for why the functional
    // substrate does not execute this circuit itself):
    //   CoeffToSlot: 3 BSGS DFT matmuls at the top levels,
    //   EvalMod: degree-63 Chebyshev of the scaled sine (+ double angle),
    //   SlotToCoeff: 3 BSGS DFT matmuls at the bottom levels.
    const int top = l_eff + l_boot_;
    const double root_n = std::sqrt(static_cast<double>(n_ / 2));
    double total = 0.0;

    int lvl = top;
    for (int i = 0; i < 3 && lvl > 1; ++i) {  // CoeffToSlot
        total += 2.0 * std::sqrt(root_n) * rotation_hoisted(lvl) +
                 root_n * (pmult(lvl) + hadd(lvl)) + hoist(lvl) +
                 rescale(lvl);
        --lvl;
    }
    for (int i = 0; i < 8 && lvl > 1; ++i) {  // EvalMod (depth ~8)
        total += 2.5 * hmult(lvl) + 8.0 * (pmult(lvl) + hadd(lvl)) +
                 rescale(lvl);
        --lvl;
    }
    for (int i = 0; i < 3 && lvl > 1; ++i) {  // SlotToCoeff
        total += 2.0 * std::sqrt(root_n) * rotation_hoisted(lvl) +
                 root_n * (pmult(lvl) + hadd(lvl)) + hoist(lvl) +
                 rescale(lvl);
        --lvl;
    }
    return total;
}

}  // namespace orion::core
