#ifndef ORION_SRC_CORE_ORION_H_
#define ORION_SRC_CORE_ORION_H_

/**
 * @file
 * Umbrella header: the public Orion API.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   auto net = orion::nn::Sequential({
 *       orion::nn::Conv2d(1, 4, 3, {.stride = 2, .pad = 1}),
 *       orion::nn::Square(),
 *       orion::nn::Flatten(),
 *       orion::nn::Linear(64, 10),
 *   });
 *   orion::Session session = orion::Session::toy();
 *   session.compile(*net, 1, 8, 8);
 *   auto result = session.run(image);
 */

#include "src/ckks/ckks.h"
#include "src/ckks/serial.h"
#include "src/core/compiler.h"
#include "src/core/config.h"
#include "src/core/cost_model.h"
#include "src/core/executor.h"
#include "src/core/placement.h"
#include "src/core/session.h"
#include "src/core/thread_pool.h"
#include "src/linalg/linalg.h"
#include "src/nn/models.h"
#include "src/nn/module.h"
#include "src/nn/network.h"

#endif  // ORION_SRC_CORE_ORION_H_
