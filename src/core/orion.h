#ifndef ORION_SRC_CORE_ORION_H_
#define ORION_SRC_CORE_ORION_H_

/**
 * @file
 * Umbrella header: the public Orion API.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   orion::nn::Network net = orion::nn::make_resnet_cifar(20,
 *       orion::nn::Act::kRelu);
 *   orion::core::CompileOptions opt;
 *   auto compiled = orion::core::compile(net, opt);
 *   orion::core::SimExecutor sim(compiled);
 *   auto result = sim.run(image);
 */

#include "src/ckks/ckks.h"
#include "src/ckks/serial.h"
#include "src/core/compiler.h"
#include "src/core/config.h"
#include "src/core/cost_model.h"
#include "src/core/executor.h"
#include "src/core/placement.h"
#include "src/core/thread_pool.h"
#include "src/linalg/linalg.h"
#include "src/nn/models.h"
#include "src/nn/network.h"

#endif  // ORION_SRC_CORE_ORION_H_
