#include "src/core/executor.h"

#include <chrono>
#include <cmath>
#include <set>

#include "src/approx/polyeval.h"
#include "src/core/telemetry.h"
#include "src/core/thread_pool.h"

namespace orion::core {

namespace {

/** Per-value bookkeeping shared by both backends. */
struct ValueMeta {
    int level = 0;
};

/** One tensor value of the CKKS backend: its ciphertexts. */
struct Value {
    std::vector<ckks::Ciphertext> cts;
};

/** Static span label of one program instruction kind. */
const char*
op_span_name(Instruction::Op op)
{
    switch (op) {
    case Instruction::Op::kInput: return "exec.input";
    case Instruction::Op::kBootstrap: return "exec.bootstrap";
    case Instruction::Op::kLinear: return "exec.linear";
    case Instruction::Op::kActivation: return "exec.activation";
    case Instruction::Op::kMul: return "exec.mul";
    case Instruction::Op::kScale: return "exec.scale";
    case Instruction::Op::kAdd: return "exec.add";
    case Instruction::Op::kOutput: return "exec.output";
    }
    return "exec.unknown";
}

/** Merges one instruction's wall time into the per-layer breakdown. */
void
charge_layer(std::vector<LayerTiming>& times, int layer_id, double seconds)
{
    if (!times.empty() && times.back().layer_id == layer_id) {
        times.back().seconds += seconds;
        return;
    }
    times.push_back({layer_id, seconds});
}

}  // namespace

// ---------------------------------------------------------------------
// SimExecutor
// ---------------------------------------------------------------------

SimExecutor::SimExecutor(const CompiledNetwork& cn, double bootstrap_noise_std,
                         u64 seed)
    : cn_(&cn), noise_std_(bootstrap_noise_std), noise_(seed)
{
}

ExecutionResult
SimExecutor::run(const std::vector<double>& input)
{
    const auto t0 = std::chrono::steady_clock::now();
    ORION_CHECK(input.size() == cn_->input_shape.size(),
                "input size mismatch");
    const CostModel& cost = cn_->cost_model;

    std::map<int, std::vector<double>> values;
    std::map<int, ValueMeta> meta;
    ExecutionResult result;

    for (const Instruction& ins : cn_->program) {
        switch (ins.op) {
        case Instruction::Op::kInput: {
            std::vector<double> v(input.size());
            for (std::size_t i = 0; i < input.size(); ++i) {
                v[i] = cn_->input_nu * input[i];
            }
            values[ins.value] = std::move(v);
            meta[ins.value] = {ins.level};
            break;
        }
        case Instruction::Op::kBootstrap: {
            ORION_CHECK(meta.at(ins.a).level >= 0, "bad bootstrap operand");
            std::vector<double> v = values.at(ins.a);
            for (double& x : v) x += noise_.sample_normal(noise_std_);
            values[ins.value] = std::move(v);
            meta[ins.value] = {cn_->l_eff};
            result.bootstraps += ins.cts;
            result.modeled_latency +=
                static_cast<double>(ins.cts) * cost.bootstrap(cn_->l_eff);
            break;
        }
        case Instruction::Op::kLinear: {
            ORION_CHECK(meta.at(ins.a).level >= ins.level,
                        "operand below linear exec level");
            const LinearLayerData& data =
                cn_->linears[static_cast<std::size_t>(ins.payload)];
            const std::vector<double>& x = values.at(ins.a);
            std::vector<double> y;
            if (data.kind == nn::LayerKind::kLinear) {
                y.assign(static_cast<std::size_t>(data.out_features), 0.0);
                for (int r = 0; r < data.out_features; ++r) {
                    double acc = 0.0;
                    const double* w =
                        data.folded_weights.data() +
                        static_cast<std::size_t>(r) * data.in_features;
                    for (int c = 0; c < data.in_features; ++c) {
                        acc += w[c] * x[static_cast<std::size_t>(c)];
                    }
                    y[static_cast<std::size_t>(r)] = acc;
                }
            } else {
                y = lin::conv2d_reference(data.conv, data.folded_weights, x,
                                          data.in_layout.height,
                                          data.in_layout.width);
            }
            if (!data.folded_bias.empty()) {
                const u64 hw = static_cast<u64>(data.out_layout.height) *
                               data.out_layout.width;
                if (data.kind == nn::LayerKind::kLinear) {
                    for (std::size_t i = 0; i < y.size(); ++i) {
                        y[i] += data.folded_bias[i];
                    }
                } else {
                    for (std::size_t c = 0; c < data.folded_bias.size();
                         ++c) {
                        for (u64 i = 0; i < hw; ++i) {
                            y[c * hw + i] += data.folded_bias[c];
                        }
                    }
                }
            }
            values[ins.value] = std::move(y);
            meta[ins.value] = {ins.level - 1};
            result.rotations += data.stats.total_rotations();
            result.pmults += data.stats.pmults;
            result.modeled_latency += cost.linear_layer(data.stats,
                                                        ins.level);
            break;
        }
        case Instruction::Op::kActivation: {
            const ActivationData& data =
                cn_->activations[static_cast<std::size_t>(ins.payload)];
            ORION_CHECK(meta.at(ins.a).level >= ins.level,
                        "operand below activation exec level");
            ORION_CHECK(ins.level >= data.depth,
                        "not enough levels for activation");
            std::vector<double> v = values.at(ins.a);
            for (double& x : v) x = data.approx_f(x);
            values[ins.value] = std::move(v);
            meta[ins.value] = {ins.level - data.depth};
            result.modeled_latency += cost.activation(
                data.stage_degrees, ins.level, ins.cts, false);
            break;
        }
        case Instruction::Op::kMul: {
            const std::vector<double>& a = values.at(ins.a);
            const std::vector<double>& b = values.at(ins.b);
            ORION_CHECK(a.size() == b.size(), "Mul operand size mismatch");
            ORION_CHECK(meta.at(ins.a).level >= ins.level &&
                            meta.at(ins.b).level >= ins.level,
                        "Mul operands below exec level");
            std::vector<double> v(a.size());
            for (std::size_t i = 0; i < a.size(); ++i) v[i] = a[i] * b[i];
            values[ins.value] = std::move(v);
            meta[ins.value] = {ins.level - 1};
            result.modeled_latency +=
                static_cast<double>(ins.cts) *
                (cost.hmult(ins.level) + cost.rescale(ins.level));
            break;
        }
        case Instruction::Op::kScale: {
            std::vector<double> v = values.at(ins.a);
            for (double& x : v) x *= ins.scale_factor;
            values[ins.value] = std::move(v);
            meta[ins.value] = {ins.level - 1};
            result.pmults += ins.cts;
            result.modeled_latency +=
                static_cast<double>(ins.cts) *
                (cost.pmult(ins.level) + cost.rescale(ins.level));
            break;
        }
        case Instruction::Op::kAdd: {
            const std::vector<double>& a = values.at(ins.a);
            const std::vector<double>& b = values.at(ins.b);
            ORION_CHECK(a.size() == b.size(), "Add operand size mismatch");
            ORION_CHECK(meta.at(ins.a).level >= ins.level &&
                            meta.at(ins.b).level >= ins.level,
                        "Add operands below exec level");
            std::vector<double> v(a.size());
            for (std::size_t i = 0; i < a.size(); ++i) v[i] = a[i] + b[i];
            values[ins.value] = std::move(v);
            meta[ins.value] = {ins.level};
            result.modeled_latency +=
                static_cast<double>(ins.cts) * cost.hadd(ins.level);
            break;
        }
        case Instruction::Op::kOutput: {
            std::vector<double> v = values.at(ins.a);
            for (double& x : v) x /= cn_->output_nu;
            result.output = std::move(v);
            break;
        }
        }
        if (inspect && ins.op != Instruction::Op::kOutput) {
            inspect(ins, values.at(ins.value));
        }
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
}

// ---------------------------------------------------------------------
// PreparedProgram
// ---------------------------------------------------------------------

PreparedProgram::PreparedProgram(const CompiledNetwork& cn,
                                 const ckks::Context& ctx)
    : cn_(&cn), ctx_(&ctx)
{
    ORION_CHECK(cn.slots == ctx.slot_count(),
                "program compiled for " << cn.slots
                                        << " slots, context has "
                                        << ctx.slot_count());
    ORION_CHECK(cn.l_eff < ctx.max_level(),
                "context needs more levels than l_eff");
    const ckks::Encoder encoder(ctx);

    // Symbolic scale propagation mirrors execute_program(); every linear
    // layer encodes
    // its diagonals at the repair scale Delta * q_level / in_scale
    // (Figure 7), so scales between layers are exactly Delta.
    const double delta = ctx.scale();
    prepared_.resize(cn.program.size());
    bias_.resize(cn.program.size());
    in_scale_.assign(cn.program.size(), 0.0);
    act_target_.assign(cn.program.size(), 0.0);

    // ---- Phase A: symbolic scale resolution ----
    // Linear layers can repair to any target via their free weight scale
    // (Figure 7); everything else propagates deterministically. A linear
    // output stays "pending" until its consumer is known: an Add binds it
    // to its partner's scale (which may have drifted through a square),
    // any other consumer binds it to Delta.
    std::map<int, double> scale_of;
    std::set<int> pending;  // linear outputs with undecided targets
    auto finalize = [&](int v, double s) {
        scale_of[v] = s;
        pending.erase(v);
    };
    auto consume = [&](int v) -> double {
        if (pending.count(v)) finalize(v, delta);
        return scale_of.at(v);
    };
    for (std::size_t idx = 0; idx < cn.program.size(); ++idx) {
        const Instruction& ins = cn.program[idx];
        switch (ins.op) {
        case Instruction::Op::kInput:
            scale_of[ins.value] = delta;
            break;
        case Instruction::Op::kBootstrap:
            // The operand's exact symbolic scale feeds the circuit's
            // CoeffToSlot constant (the circuit, like the old oracle,
            // re-normalizes to the canonical scale).
            (void)consume(ins.a);
            scale_of[ins.value] = delta;
            break;
        case Instruction::Op::kLinear:
            (void)consume(ins.a);
            scale_of[ins.value] = delta;  // provisional
            pending.insert(ins.value);
            break;
        case Instruction::Op::kActivation: {
            const ActivationData& data =
                cn.activations[static_cast<std::size_t>(ins.payload)];
            const double in_scale = consume(ins.a);
            if (data.kind == nn::ActivationSpec::Kind::kSquare) {
                scale_of[ins.value] =
                    in_scale * in_scale /
                    static_cast<double>(ctx.q(ins.level).value());
            } else {
                scale_of[ins.value] = delta;  // retargeted by kMul below
            }
            break;
        }
        case Instruction::Op::kMul: {
            const double sa = consume(ins.a);
            (void)consume(ins.b);
            // Retarget the producing sign stage so this multiply rescales
            // exactly onto Delta.
            const double target =
                delta * static_cast<double>(ctx.q(ins.level).value()) / sa;
            scale_of[ins.b] = target;
            scale_of[ins.value] = delta;
            break;
        }
        case Instruction::Op::kScale:
            scale_of[ins.value] = consume(ins.a);
            break;
        case Instruction::Op::kAdd: {
            const bool pa = pending.count(ins.a) != 0;
            const bool pb = pending.count(ins.b) != 0;
            if (pa && pb) {
                finalize(ins.a, delta);
                finalize(ins.b, delta);
            } else if (pa) {
                finalize(ins.a, scale_of.at(ins.b));
            } else if (pb) {
                finalize(ins.b, scale_of.at(ins.a));
            }
            const double sa = scale_of.at(ins.a);
            const double sb = scale_of.at(ins.b);
            ORION_CHECK(ckks::scales_match(sa, sb),
                        "Add operands at mismatched scales: "
                            << sa << " vs " << sb);
            scale_of[ins.value] = sa;
            break;
        }
        case Instruction::Op::kOutput:
            (void)consume(ins.a);
            break;
        }
    }
    for (int v : std::set<int>(pending.begin(), pending.end())) {
        finalize(v, delta);
    }

    // ---- Phase B: encode matrices, biases, and activation targets ----
    for (std::size_t idx = 0; idx < cn.program.size(); ++idx) {
        const Instruction& ins = cn.program[idx];
        switch (ins.op) {
        case Instruction::Op::kLinear: {
            const LinearLayerData& data =
                cn.linears[static_cast<std::size_t>(ins.payload)];
            ORION_CHECK(data.matrix != nullptr,
                        "structural-only program cannot run on CKKS");
            const double in_scale = scale_of.at(ins.a);
            const double target = scale_of.at(ins.value);
            in_scale_[idx] = in_scale;
            const double w_scale =
                target *
                static_cast<double>(ctx.q(ins.level).value()) / in_scale;
            prepared_[idx] = std::make_shared<lin::HeBlockedMatrix>(
                ctx, encoder, *data.matrix, data.plan, ins.level, w_scale);
            if (!data.folded_bias.empty()) {
                const u64 padded =
                    std::max<u64>(1, ceil_div(data.rows, cn.slots)) *
                    cn.slots;
                std::vector<double> slots(padded, 0.0);
                // The bias is replicated into every batch lane; unused
                // lanes of an under-filled request carry bias-propagated
                // values that never leave their lane (the weight matrix
                // is block-diagonal) and are dropped at unpack.
                const int nb = std::max(1, data.out_layout.batch);
                const u64 lane_stride = data.out_layout.batch_stride;
                if (data.kind == nn::LayerKind::kLinear) {
                    for (int b = 0; b < nb; ++b) {
                        for (std::size_t i = 0; i < data.folded_bias.size();
                             ++i) {
                            slots[static_cast<u64>(b) * lane_stride + i] =
                                data.folded_bias[i];
                        }
                    }
                } else {
                    for (int b = 0; b < nb; ++b) {
                        for (int c = 0;
                             c < static_cast<int>(data.folded_bias.size());
                             ++c) {
                            for (int y = 0; y < data.out_layout.height;
                                 ++y) {
                                for (int x = 0; x < data.out_layout.width;
                                     ++x) {
                                    slots[data.out_layout.slot_of(b, c, y,
                                                                  x)] =
                                        data.folded_bias
                                            [static_cast<std::size_t>(c)];
                                }
                            }
                        }
                    }
                }
                for (u64 c = 0; c * cn.slots < padded; ++c) {
                    const std::span<const double> chunk(
                        slots.data() + c * cn.slots, cn.slots);
                    bias_[idx].push_back(encoder.encode(
                        chunk, ins.level - 1, target));
                }
            }
            break;
        }
        case Instruction::Op::kActivation: {
            in_scale_[idx] = scale_of.at(ins.a);
            act_target_[idx] = scale_of.at(ins.value);
            break;
        }
        case Instruction::Op::kScale:
        case Instruction::Op::kBootstrap:
            in_scale_[idx] = scale_of.at(ins.a);
            break;
        default:
            break;
        }
    }

    // ---- Phase C: the public-key bootstrap circuit ----
    // One plan (a pure function of the parameters), one encoded circuit
    // per distinct symbolic input scale. A chain too short for the
    // circuit leaves boot_circuits_ empty: only a self-keyed executor
    // can then run the program, through the oracle test fixture.
    if (cn.num_bootstraps > 0) {
        boot_plan_ = ckks::BootstrapPlan::cached(ctx.params());
        if (ckks::BootstrapCircuit::supported(ctx, *boot_plan_, cn.l_eff)) {
            boot_circuit_of_.assign(cn.program.size(), -1);
            for (std::size_t idx = 0; idx < cn.program.size(); ++idx) {
                if (cn.program[idx].op != Instruction::Op::kBootstrap) {
                    continue;
                }
                const double s_in = in_scale_[idx];
                int found = -1;
                for (std::size_t c = 0; c < boot_circuits_.size(); ++c) {
                    if (ckks::scales_match(boot_circuits_[c]->input_scale(),
                                           s_in)) {
                        found = static_cast<int>(c);
                        break;
                    }
                }
                if (found < 0) {
                    boot_circuits_.push_back(
                        std::make_unique<const ckks::BootstrapCircuit>(
                            ctx, encoder, boot_plan_, cn.l_eff, s_in));
                    found = static_cast<int>(boot_circuits_.size()) - 1;
                }
                boot_circuit_of_[idx] = found;
            }
        }
    }
}

const ckks::BootstrapCircuit*
PreparedProgram::circuit_for(std::size_t idx) const
{
    ORION_ASSERT(idx < boot_circuit_of_.size() &&
                 boot_circuit_of_[idx] >= 0);
    return boot_circuits_[static_cast<std::size_t>(boot_circuit_of_[idx])]
        .get();
}

std::vector<ckks::GaloisKeyRequest>
PreparedProgram::galois_requests() const
{
    // One derivation shared with clients: the server validates bundles
    // against exactly what required_galois() tells a client to generate.
    return required_galois(*cn_, *ctx_).requests;
}

int
PreparedProgram::conjugation_level() const
{
    ORION_CHECK(bootstrap_supported(),
                "conjugation is only needed by the bootstrap circuit");
    return boot_plan_->conjugation_level(cn_->l_eff);
}

// ---------------------------------------------------------------------
// Input/output packing helpers (shared with the serving client)
// ---------------------------------------------------------------------

namespace {

/** The program's (unique) input instruction. */
const Instruction&
input_instruction(const CompiledNetwork& cn)
{
    for (const Instruction& ins : cn.program) {
        if (ins.op == Instruction::Op::kInput) return ins;
    }
    ORION_CHECK(false, "program has no input instruction");
    // Unreachable; silences the missing-return warning.
    return cn.program.front();
}

}  // namespace

GaloisRequirements
required_galois(const CompiledNetwork& cn, const ckks::Context& ctx)
{
    GaloisRequirements out;
    for (const CompiledNetwork::RotationUse& use : cn.required_rotations()) {
        out.requests.push_back({use.step, use.level});
    }
    if (cn.num_bootstraps > 0) {
        const std::shared_ptr<const ckks::BootstrapPlan> plan =
            ckks::BootstrapPlan::cached(ctx.params());
        if (ckks::BootstrapCircuit::supported(ctx, *plan, cn.l_eff)) {
            const std::vector<ckks::GaloisKeyRequest> boot =
                plan->galois_requests(cn.l_eff);
            out.requests.insert(out.requests.end(), boot.begin(),
                                boot.end());
            out.conjugation = true;
            out.conjugation_level = plan->conjugation_level(cn.l_eff);
        }
    }
    return out;
}

std::vector<ckks::Ciphertext>
encrypt_network_input(const CompiledNetwork& cn, const ckks::Context& ctx,
                      const ckks::Encoder& encoder,
                      ckks::Encryptor& encryptor,
                      const std::vector<double>& input)
{
    ORION_CHECK(input.size() == cn.input_shape.size(),
                "input size mismatch: got " << input.size() << ", program "
                                            << "expects "
                                            << cn.input_shape.size());
    const Instruction& ins = input_instruction(cn);
    std::vector<double> normalized(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
        normalized[i] = cn.input_nu * input[i];
    }
    const u64 padded = ins.cts * cn.slots;
    const std::vector<double> packed =
        cn.input_layout.pack(normalized, padded);
    const double delta = ctx.scale();
    std::vector<ckks::Ciphertext> cts;
    cts.reserve(ins.cts);
    for (u64 c = 0; c < ins.cts; ++c) {
        const std::span<const double> chunk(packed.data() + c * cn.slots,
                                            cn.slots);
        cts.push_back(
            encryptor.encrypt(encoder.encode(chunk, ins.level, delta)));
    }
    return cts;
}

std::vector<ckks::Ciphertext>
encrypt_network_input_batch(const CompiledNetwork& cn,
                            const ckks::Context& ctx,
                            const ckks::Encoder& encoder,
                            ckks::Encryptor& encryptor,
                            const std::vector<std::vector<double>>& inputs)
{
    ORION_CHECK(!inputs.empty(), "batch must have at least one sample");
    ORION_CHECK(inputs.size() <= static_cast<std::size_t>(cn.batch),
                "batch_count " << inputs.size() << " > program capacity "
                               << cn.batch << " for layer "
                               << cn.batch_limit_layer);
    std::vector<std::vector<double>> normalized(inputs.size());
    for (std::size_t b = 0; b < inputs.size(); ++b) {
        const std::vector<double>& input = inputs[b];
        ORION_CHECK(input.size() == cn.input_shape.size(),
                    "input size mismatch: got "
                        << input.size() << ", program expects "
                        << cn.input_shape.size());
        normalized[b].resize(input.size());
        for (std::size_t i = 0; i < input.size(); ++i) {
            normalized[b][i] = cn.input_nu * input[i];
        }
    }
    const Instruction& ins = input_instruction(cn);
    const u64 padded = ins.cts * cn.slots;
    const std::vector<double> packed =
        cn.input_layout.pack_batch(normalized, padded);
    const double delta = ctx.scale();
    std::vector<ckks::Ciphertext> cts;
    cts.reserve(ins.cts);
    for (u64 c = 0; c < ins.cts; ++c) {
        const std::span<const double> chunk(packed.data() + c * cn.slots,
                                            cn.slots);
        cts.push_back(
            encryptor.encrypt(encoder.encode(chunk, ins.level, delta)));
    }
    return cts;
}

std::vector<double>
decrypt_network_output(const CompiledNetwork& cn,
                       const ckks::Encoder& encoder,
                       const ckks::Decryptor& decryptor,
                       const std::vector<ckks::Ciphertext>& outputs)
{
    std::vector<double> slots;
    slots.reserve(outputs.size() * cn.slots);
    for (const ckks::Ciphertext& ct : outputs) {
        const std::vector<double> part =
            encoder.decode(decryptor.decrypt(ct));
        slots.insert(slots.end(), part.begin(), part.end());
    }
    slots.resize(std::max<u64>(cn.output_layout.total_slots(), slots.size()),
                 0.0);
    std::vector<double> logical = cn.output_layout.unpack(slots);
    logical.resize(cn.output_size);
    for (double& x : logical) x /= cn.output_nu;
    return logical;
}

std::vector<std::vector<double>>
decrypt_network_output_batch(const CompiledNetwork& cn,
                             const ckks::Encoder& encoder,
                             const ckks::Decryptor& decryptor,
                             const std::vector<ckks::Ciphertext>& outputs,
                             int batch_count)
{
    ORION_CHECK(batch_count >= 1 && batch_count <= cn.batch,
                "batch_count " << batch_count << " > program capacity "
                               << cn.batch << " for layer "
                               << cn.batch_limit_layer);
    std::vector<double> slots;
    slots.reserve(outputs.size() * cn.slots);
    for (const ckks::Ciphertext& ct : outputs) {
        const std::vector<double> part =
            encoder.decode(decryptor.decrypt(ct));
        slots.insert(slots.end(), part.begin(), part.end());
    }
    slots.resize(std::max<u64>(cn.output_layout.total_slots(), slots.size()),
                 0.0);
    std::vector<std::vector<double>> logical =
        cn.output_layout.unpack_batch(slots, batch_count);
    for (std::vector<double>& sample : logical) {
        sample.resize(cn.output_size);
        for (double& x : sample) x /= cn.output_nu;
    }
    return logical;
}

// ---------------------------------------------------------------------
// CkksExecutor
// ---------------------------------------------------------------------

CkksExecutor::CkksExecutor(const CompiledNetwork& cn,
                           const ckks::Context& ctx, u64 seed,
                           std::optional<OrionConfig> cfg,
                           std::shared_ptr<const PreparedProgram> prepared)
    : cn_(&cn), ctx_(&ctx), cfg_(std::move(cfg)), encoder_(ctx),
      prep_(prepared ? std::move(prepared)
                     : std::make_shared<const PreparedProgram>(cn, ctx)),
      keygen_(std::in_place, ctx, seed),
      pk_(keygen_->make_public_key()),
      own_relin_(keygen_->make_relin_key()),
      encryptor_(std::in_place, ctx, *pk_),
      decryptor_(std::in_place, ctx, keygen_->secret_key()),
      eval_(ctx, encoder_)
{
    ORION_CHECK(prep_->cn_ == &cn && prep_->ctx_ == &ctx,
                "prepared program belongs to a different network or context");
    // Galois keys: exactly the union of rotation steps the compiled
    // program and (when present) the bootstrap circuit use, each key
    // pruned to the highest level it is used at.
    const std::vector<ckks::GaloisKeyRequest> requests =
        prep_->galois_requests();
    own_galois_ = keygen_->make_galois_keys(
        std::span<const ckks::GaloisKeyRequest>(requests),
        prep_->needs_conjugation(),
        prep_->needs_conjugation() ? prep_->conjugation_level() : -1);
    // Chains too short for the real circuit keep the explicit oracle as
    // a single-party test fixture (see bootstrap.h).
    if (cn.num_bootstraps > 0 && !prep_->bootstrap_supported()) {
        oracle_boot_.emplace(
            ctx, encoder_, keygen_->secret_key(),
            ckks::OracleBootstrapConfig{ctx.max_level() - cn.l_eff, 1e-6,
                                        1.0});
    }
    bind_session_keys(&*own_relin_, &*own_galois_);
}

CkksExecutor::CkksExecutor(const CompiledNetwork& cn,
                           const ckks::Context& ctx,
                           std::shared_ptr<const PreparedProgram> prepared,
                           std::optional<OrionConfig> cfg)
    : cn_(&cn), ctx_(&ctx), cfg_(std::move(cfg)), encoder_(ctx),
      prep_(std::move(prepared)), eval_(ctx, encoder_)
{
    ORION_CHECK(prep_ != nullptr,
                "external-key executor requires a prepared program");
    ORION_CHECK(prep_->cn_ == &cn && prep_->ctx_ == &ctx,
                "prepared program belongs to a different network or context");
    if (cn.num_bootstraps > 0 && !prep_->bootstrap_supported()) {
        const Instruction* boot_ins = nullptr;
        for (const Instruction& ins : cn.program) {
            if (ins.op == Instruction::Op::kBootstrap) {
                boot_ins = &ins;
                break;
            }
        }
        ORION_ASSERT(boot_ins != nullptr);
        const ckks::BootstrapPlan* plan = prep_->bootstrap_plan();
        ORION_CHECK(false,
                    "cannot serve "
                        << describe_instruction(*boot_ins)
                        << ": the public-key bootstrap circuit needs l_eff "
                        << cn.l_eff << " + l_boot "
                        << (plan ? plan->depth : 0) << " levels, but the "
                        << "context chain tops out at level "
                        << ctx.max_level());
    }
}

void
CkksExecutor::bind_session_keys(const ckks::KswitchKey* relin,
                                const ckks::GaloisKeys* galois)
{
    relin_ = relin;
    galois_ = galois;
    eval_.set_relin_key(relin_);
    eval_.set_galois_keys(galois_);
}

std::vector<ckks::Ciphertext>
CkksExecutor::drop_all(const std::vector<ckks::Ciphertext>& in,
                       int level) const
{
    std::vector<ckks::Ciphertext> out;
    out.reserve(in.size());
    for (const ckks::Ciphertext& ct : in) {
        ORION_CHECK(ct.level() >= level, "value below required level");
        ckks::Ciphertext c = ct;
        if (c.level() > level) eval_.drop_to_level_inplace(c, level);
        out.push_back(std::move(c));
    }
    return out;
}

std::vector<ckks::Ciphertext>
CkksExecutor::encrypt_input(const std::vector<double>& input)
{
    ORION_CHECK(encryptor_.has_value(),
                "encrypt_input requires a self-keyed executor");
    return encrypt_network_input(*cn_, *ctx_, encoder_, *encryptor_, input);
}

std::vector<ckks::Ciphertext>
CkksExecutor::encrypt_input_batch(
    const std::vector<std::vector<double>>& inputs)
{
    ORION_CHECK(encryptor_.has_value(),
                "encrypt_input_batch requires a self-keyed executor");
    return encrypt_network_input_batch(*cn_, *ctx_, encoder_, *encryptor_,
                                       inputs);
}

std::vector<double>
CkksExecutor::decrypt_output(const std::vector<ckks::Ciphertext>& outputs)
    const
{
    ORION_CHECK(decryptor_.has_value(),
                "decrypt_output requires a self-keyed executor");
    return decrypt_network_output(*cn_, encoder_, *decryptor_, outputs);
}

std::vector<std::vector<double>>
CkksExecutor::decrypt_output_batch(
    const std::vector<ckks::Ciphertext>& outputs, int batch_count) const
{
    ORION_CHECK(decryptor_.has_value(),
                "decrypt_output_batch requires a self-keyed executor");
    return decrypt_network_output_batch(*cn_, encoder_, *decryptor_,
                                        outputs, batch_count);
}

EncryptedResult
CkksExecutor::execute_program(const std::vector<ckks::Ciphertext>& input)
{
    const auto t0 = std::chrono::steady_clock::now();
    const approx::HePolyEvaluator polyeval(eval_);
    const double delta = ctx_->scale();

    std::map<int, Value> values;
    EncryptedResult result;

    for (std::size_t idx = 0; idx < cn_->program.size(); ++idx) {
        const Instruction& ins = cn_->program[idx];
        const auto ins_t0 = std::chrono::steady_clock::now();
        telemetry::SpanGuard ins_span(op_span_name(ins.op), ins.layer_id);
        switch (ins.op) {
        case Instruction::Op::kInput: {
            ORION_CHECK(input.size() == ins.cts,
                        "encrypted input has " << input.size()
                                               << " ciphertexts, program "
                                               << "expects " << ins.cts);
            for (const ckks::Ciphertext& ct : input) {
                ORION_CHECK(ct.valid() && ct.level() >= ins.level,
                            "encrypted input below the program's input "
                            "level " << ins.level);
                ORION_CHECK(ct.c0.is_ntt() && ct.c1.is_ntt(),
                            "encrypted input must be in NTT form");
                ORION_CHECK(ckks::scales_match(ct.scale, delta),
                            "encrypted input scale " << ct.scale
                                << " does not match the context scale "
                                << delta);
            }
            Value v;
            v.cts = drop_all(input, ins.level);
            values[ins.value] = std::move(v);
            break;
        }
        case Instruction::Op::kBootstrap: {
            Value v;
            if (prep_->bootstrap_supported()) {
                // The real public-key circuit, under whatever evaluation
                // keys are bound (a serving session's, or our own).
                const ckks::BootstrapCircuit* circuit =
                    prep_->circuit_for(idx);
                for (const ckks::Ciphertext& ct : values.at(ins.a).cts) {
                    v.cts.push_back(circuit->bootstrap(eval_, ct));
                }
            } else {
                ORION_CHECK(oracle_boot_.has_value(),
                            "cannot execute "
                                << describe_instruction(ins)
                                << ": the chain is too short for the "
                                << "public-key bootstrap circuit and only "
                                << "self-keyed executors may fall back to "
                                << "the oracle fixture");
                for (const ckks::Ciphertext& ct : values.at(ins.a).cts) {
                    v.cts.push_back(oracle_boot_->bootstrap(ct));
                }
            }
            values[ins.value] = std::move(v);
            result.bootstraps += ins.cts;
            break;
        }
        case Instruction::Op::kLinear: {
            const LinearLayerData& data =
                cn_->linears[static_cast<std::size_t>(ins.payload)];
            const std::vector<ckks::Ciphertext> in_cts =
                drop_all(values.at(ins.a).cts, ins.level);
            Value v;
            v.cts = prep_->prepared_[idx]->apply(eval_, in_cts);
            if (!prep_->bias_[idx].empty()) {
                for (std::size_t c = 0; c < v.cts.size(); ++c) {
                    eval_.add_plain_inplace(v.cts[c],
                                            prep_->bias_[idx][c]);
                }
            }
            values[ins.value] = std::move(v);
            // Deterministic program counts (equal to the measured kernel
            // counts; race-free when executors share one Context).
            result.rotations += data.stats.total_rotations();
            result.pmults += data.stats.pmults;
            break;
        }
        case Instruction::Op::kActivation: {
            const ActivationData& data =
                cn_->activations[static_cast<std::size_t>(ins.payload)];
            const std::vector<ckks::Ciphertext> in_cts =
                drop_all(values.at(ins.a).cts, ins.level);
            Value v;
            for (const ckks::Ciphertext& ct : in_cts) {
                if (data.kind == nn::ActivationSpec::Kind::kSquare) {
                    ckks::Ciphertext sq = eval_.square(ct);
                    eval_.rescale_inplace(sq);
                    v.cts.push_back(std::move(sq));
                } else {
                    v.cts.push_back(polyeval.evaluate(
                        data.stages[0], ct, prep_->act_target_[idx]));
                }
            }
            values[ins.value] = std::move(v);
            break;
        }
        case Instruction::Op::kMul: {
            const std::vector<ckks::Ciphertext> a =
                drop_all(values.at(ins.a).cts, ins.level);
            const std::vector<ckks::Ciphertext> b =
                drop_all(values.at(ins.b).cts, ins.level);
            ORION_CHECK(a.size() == b.size(), "Mul ct count mismatch");
            Value v;
            for (std::size_t i = 0; i < a.size(); ++i) {
                ckks::Ciphertext prod = eval_.mul(a[i], b[i]);
                eval_.rescale_inplace(prod);
                ORION_ASSERT(ckks::scales_match(prod.scale, delta));
                prod.scale = delta;
                v.cts.push_back(std::move(prod));
            }
            values[ins.value] = std::move(v);
            break;
        }
        case Instruction::Op::kScale: {
            const std::vector<ckks::Ciphertext> in_cts =
                drop_all(values.at(ins.a).cts, ins.level);
            Value v;
            for (const ckks::Ciphertext& ct : in_cts) {
                ckks::Ciphertext c = ct;
                eval_.mul_constant_inplace(
                    c, ins.scale_factor,
                    static_cast<double>(ctx_->q(ins.level).value()));
                eval_.rescale_inplace(c);
                c.scale = prep_->in_scale_[idx];  // exact by construction
                v.cts.push_back(std::move(c));
            }
            values[ins.value] = std::move(v);
            result.pmults += ins.cts;
            break;
        }
        case Instruction::Op::kAdd: {
            const std::vector<ckks::Ciphertext> a =
                drop_all(values.at(ins.a).cts, ins.level);
            const std::vector<ckks::Ciphertext> b =
                drop_all(values.at(ins.b).cts, ins.level);
            ORION_CHECK(a.size() == b.size(), "Add ct count mismatch");
            Value v;
            for (std::size_t i = 0; i < a.size(); ++i) {
                v.cts.push_back(eval_.add(a[i], b[i]));
            }
            values[ins.value] = std::move(v);
            break;
        }
        case Instruction::Op::kOutput: {
            // The values map dies with this call; no need to copy the
            // megabytes of output ciphertexts.
            result.outputs = std::move(values.at(ins.a).cts);
            break;
        }
        }
        // Per-layer attribution covers the op itself, not the inspect
        // callback below (which decrypts and only runs in tests).
        charge_layer(result.layer_times, ins.layer_id,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - ins_t0)
                         .count());
        if (inspect && ins.op != Instruction::Op::kOutput) {
            ORION_CHECK(decryptor_.has_value(),
                        "inspect requires a self-keyed executor");
            std::vector<double> slots;
            for (const ckks::Ciphertext& ct : values.at(ins.value).cts) {
                const std::vector<double> part =
                    encoder_.decode(decryptor_->decrypt(ct));
                slots.insert(slots.end(), part.begin(), part.end());
            }
            inspect(ins, slots);
        }
    }

    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
}

ExecutionResult
CkksExecutor::run(const std::vector<double>& input)
{
    const auto t0 = std::chrono::steady_clock::now();
    ORION_CHECK(encryptor_.has_value() && decryptor_.has_value(),
                "run() requires a self-keyed executor; serving mode uses "
                "run_encrypted()");
    // A pinned config governs every kernel underneath this call via a
    // thread-local override (concurrent executors with different budgets
    // cannot interfere). Without one, kernels follow the ambient setting
    // (global pool or the caller's own override).
    std::optional<ScopedPoolOverride> scoped_threads;
    if (cfg_) scoped_threads.emplace(cfg_->resolved_num_threads());

    const std::vector<ckks::Ciphertext> in_cts =
        encrypt_network_input(*cn_, *ctx_, encoder_, *encryptor_, input);
    EncryptedResult er = execute_program(in_cts);

    ExecutionResult result;
    result.output =
        decrypt_network_output(*cn_, encoder_, *decryptor_, er.outputs);
    result.bootstraps = er.bootstraps;
    result.rotations = er.rotations;
    result.pmults = er.pmults;
    result.layer_times = std::move(er.layer_times);
    result.modeled_latency = cn_->modeled_latency;
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
}

EncryptedResult
CkksExecutor::run_encrypted(const std::vector<ckks::Ciphertext>& input)
{
    ORION_CHECK(relin_ != nullptr || galois_ != nullptr,
                "run_encrypted requires bound evaluation keys "
                "(bind_session_keys)");
    std::optional<ScopedPoolOverride> scoped_threads;
    if (cfg_) scoped_threads.emplace(cfg_->resolved_num_threads());
    return execute_program(input);
}

}  // namespace orion::core
