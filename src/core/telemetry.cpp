#include "src/core/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

namespace orion::telemetry {

// ---------------------------------------------------------------- metrics

namespace {

/** Bucket index for a value: smallest i with bucket_upper(i) >= v. */
int
bucket_index(double v)
{
    if (!(v > Histogram::kMinValue)) return 0;
    const double f =
        Histogram::kSubBuckets * std::log2(v / Histogram::kMinValue);
    const int i = static_cast<int>(std::ceil(f)) - 1;
    if (i < 0) return 0;
    if (i >= Histogram::kBuckets) return Histogram::kBuckets - 1;
    return i;
}

}  // namespace

void
Histogram::observe(double v)
{
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

double
Histogram::bucket_upper(int i)
{
    return kMinValue *
           std::exp2(static_cast<double>(i + 1) / kSubBuckets);
}

double
Histogram::percentile(double p) const
{
    const u64 n = count();
    if (n == 0) return 0.0;
    const double rank = std::max(1.0, p / 100.0 * static_cast<double>(n));
    u64 cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const u64 in_bucket = bucket_count(i);
        if (in_bucket == 0) continue;
        if (static_cast<double>(cum + in_bucket) >= rank) {
            // Interpolate inside the bucket: geometrically (buckets are
            // log-spaced) except the first, which starts at 0.
            const double lo = (i == 0) ? 0.0 : bucket_upper(i - 1);
            const double hi = bucket_upper(i);
            const double frac = (rank - static_cast<double>(cum)) /
                                static_cast<double>(in_bucket);
            if (lo <= 0.0) return hi * frac;
            return lo * std::pow(hi / lo, frac);
        }
        cum += in_bucket;
    }
    return bucket_upper(kBuckets - 1);
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_[name];
}

u64
Registry::add_collector(Collector fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    const u64 handle = next_collector_++;
    collectors_[handle] = std::move(fn);
    return handle;
}

void
Registry::remove_collector(u64 handle)
{
    std::lock_guard<std::mutex> lock(mu_);
    collectors_.erase(handle);
}

void
Registry::collect(std::vector<Sample>& out) const
{
    // Callers hold mu_. Collectors may take their owners' locks; the lock
    // order is therefore always registry -> owner, and owners must never
    // call by-name registry lookups while holding their own lock (capture
    // instrument references up front instead).
    for (const auto& [name, c] : counters_) {
        out.push_back({name, static_cast<double>(c.value()),
                       Sample::Kind::kCounter});
    }
    for (const auto& [name, g] : gauges_) {
        out.push_back({name, g.value(), Sample::Kind::kGauge});
    }
    for (const auto& [handle, fn] : collectors_) fn(out);
}

namespace {

/** Merged scrape output: same-name samples sum (N contexts -> one row). */
std::map<std::string, Sample>
merge(const std::vector<Sample>& samples)
{
    std::map<std::string, Sample> merged;
    for (const Sample& s : samples) {
        auto [it, fresh] = merged.emplace(s.name, s);
        if (!fresh) it->second.value += s.value;
    }
    return merged;
}

/** `ckks.op.hmult` -> `orion_ckks_op_hmult` (Prometheus-legal). */
std::string
prom_name(const std::string& name)
{
    std::string out = "orion_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
fmt_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

}  // namespace

std::map<std::string, double>
Registry::snapshot() const
{
    std::vector<Sample> samples;
    std::map<std::string, double> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        collect(samples);
        for (const auto& [name, h] : histograms_) {
            out[name + ".count"] = static_cast<double>(h.count());
            out[name + ".sum"] = h.sum();
            out[name + ".p50"] = h.percentile(50.0);
            out[name + ".p95"] = h.percentile(95.0);
            out[name + ".p99"] = h.percentile(99.0);
        }
    }
    for (const auto& [name, s] : merge(samples)) out[name] = s.value;
    return out;
}

std::string
Registry::text() const
{
    std::vector<Sample> samples;
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mu_);
    collect(samples);
    for (const auto& [name, s] : merge(samples)) {
        const bool is_counter = s.kind == Sample::Kind::kCounter;
        const std::string prom =
            prom_name(name) + (is_counter ? "_total" : "");
        os << "# TYPE " << prom << (is_counter ? " counter" : " gauge")
           << "\n";
        os << prom << " " << fmt_double(s.value) << "\n";
    }
    for (const auto& [name, h] : histograms_) {
        const std::string prom = prom_name(name);
        os << "# TYPE " << prom << " histogram\n";
        u64 cum = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            const u64 in_bucket = h.bucket_count(i);
            if (in_bucket == 0) continue;
            cum += in_bucket;
            os << prom << "_bucket{le=\""
               << fmt_double(Histogram::bucket_upper(i)) << "\"} " << cum
               << "\n";
        }
        os << prom << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
        os << prom << "_sum " << fmt_double(h.sum()) << "\n";
        os << prom << "_count " << h.count() << "\n";
    }
    return os.str();
}

Registry&
Registry::global()
{
    // Leaked: instrument references handed to static-lifetime callers must
    // outlive every atexit handler.
    static Registry* registry = new Registry;
    return *registry;
}

// ----------------------------------------------------------------- tracer

namespace detail {

std::atomic<bool> g_tracing{false};

u64
now_ns()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

namespace {

/** One thread's span buffer; overwrites oldest when full. */
struct TraceRing {
    std::mutex mu;
    std::vector<TraceEvent> buf;
    std::size_t capacity = 0;
    std::size_t head = 0;  ///< oldest event once the ring has wrapped
    u64 dropped = 0;
    int tid = 0;
};

struct TraceState {
    std::mutex mu;
    // shared_ptrs keep rings alive past thread exit so their events
    // still appear in the trace.
    std::vector<std::shared_ptr<TraceRing>> rings;
    std::size_t ring_capacity = std::size_t(1) << 15;
    int next_tid = 1;
};

TraceState&
state()
{
    static TraceState* s = new TraceState;  // leaked, like the registry
    return *s;
}

thread_local std::shared_ptr<TraceRing> t_ring;

TraceRing&
ring()
{
    if (t_ring == nullptr) {
        auto r = std::make_shared<TraceRing>();
        TraceState& s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        r->capacity = std::max<std::size_t>(1, s.ring_capacity);
        r->buf.reserve(r->capacity);
        r->tid = s.next_tid++;
        s.rings.push_back(r);
        t_ring = std::move(r);
    }
    return *t_ring;
}

}  // namespace

void
record_span(const char* name, u64 t0_ns, u64 t1_ns, i64 arg)
{
    TraceRing& r = ring();
    const TraceEvent e{name, t0_ns, t1_ns - t0_ns, arg};
    std::lock_guard<std::mutex> lock(r.mu);
    if (r.buf.size() < r.capacity) {
        r.buf.push_back(e);
    } else {
        r.buf[r.head] = e;
        r.head = (r.head + 1) % r.capacity;
        ++r.dropped;
    }
}

}  // namespace detail

void
set_tracing(bool on)
{
    detail::g_tracing.store(on, std::memory_order_relaxed);
}

void
set_trace_ring_capacity(std::size_t events)
{
    detail::TraceState& s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.ring_capacity = std::max<std::size_t>(1, events);
}

void
clear_trace()
{
    detail::TraceState& s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& r : s.rings) {
        std::lock_guard<std::mutex> ring_lock(r->mu);
        r->buf.clear();
        r->head = 0;
        r->dropped = 0;
    }
}

u64
trace_dropped()
{
    detail::TraceState& s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    u64 total = 0;
    for (const auto& r : s.rings) {
        std::lock_guard<std::mutex> ring_lock(r->mu);
        total += r->dropped;
    }
    return total;
}

std::vector<TraceRecord>
collect_trace_events()
{
    detail::TraceState& s = detail::state();
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<TraceRecord> out;
    for (const auto& r : s.rings) {
        std::lock_guard<std::mutex> ring_lock(r->mu);
        const std::size_t n = r->buf.size();
        for (std::size_t k = 0; k < n; ++k) {
            // head is the oldest entry once the ring has wrapped.
            const std::size_t i = (r->head + k) % n;
            out.push_back({r->buf[i], r->tid});
        }
    }
    return out;
}

std::string
trace_json()
{
    const std::vector<TraceRecord> records = collect_trace_events();
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceRecord& rec : records) {
        if (!first) os << ",";
        first = false;
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "\n{\"name\":\"%s\",\"cat\":\"orion\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d",
                      rec.event.name,
                      static_cast<double>(rec.event.t0_ns) / 1e3,
                      static_cast<double>(rec.event.dur_ns) / 1e3, rec.tid);
        os << buf;
        if (rec.event.arg >= 0) {
            os << ",\"args\":{\"id\":" << rec.event.arg << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
write_trace(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "[telemetry] cannot write trace to %s\n",
                     path.c_str());
        return false;
    }
    const std::string json = trace_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
}

namespace {

/** $ORION_TRACE=path: enable tracing now, dump the trace at exit. */
struct TraceEnvInit {
    TraceEnvInit()
    {
        const char* path = std::getenv("ORION_TRACE");
        if (path == nullptr || path[0] == '\0') return;
        trace_path() = path;
        set_tracing(true);
        std::atexit(+[] {
            if (write_trace(trace_path())) {
                std::fprintf(stderr, "[telemetry] trace written to %s\n",
                             trace_path().c_str());
            }
        });
    }
    static std::string&
    trace_path()
    {
        static std::string* p = new std::string;
        return *p;
    }
};

const TraceEnvInit g_trace_env_init;

}  // namespace

}  // namespace orion::telemetry
