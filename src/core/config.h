#ifndef ORION_SRC_CORE_CONFIG_H_
#define ORION_SRC_CORE_CONFIG_H_

/**
 * @file
 * Process-wide runtime configuration knobs.
 *
 * The configuration intentionally contains only knobs that change HOW the
 * runtime executes, never WHAT it computes: every kernel is bit-identical
 * across num_threads settings (see thread_pool.h), so tests pin
 * num_threads = 1 and benchmarks sweep it freely.
 */

#include "src/common.h"

namespace orion::core {

/** Runtime execution knobs (defaults reproduce the serial seed behavior). */
struct OrionConfig {
    /**
     * Threads participating in parallel kernels (RNS limb loops, key-switch
     * inner products, BSGS rotation fan-out). 1 = fully serial. 0 = use
     * the hardware concurrency. Initialized from $ORION_NUM_THREADS when
     * set.
     */
    int num_threads = 1;

    /**
     * Serving defaults (src/serve): requests executing concurrently in an
     * InferenceServer (0 = hardware concurrency). Initialized from
     * $ORION_MAX_INFLIGHT when set; ServeOptions can override per server.
     */
    int max_inflight = 2;

    /**
     * Serving defaults: submitted-but-not-yet-executing requests an
     * InferenceServer queues before applying backpressure. Initialized
     * from $ORION_QUEUE_CAPACITY when set.
     */
    int queue_capacity = 16;

    /**
     * Serving defaults: cap (in MiB) on evaluation-key bytes an
     * InferenceServer keeps resident across sessions; least-recently-used
     * sessions beyond it are spilled to disk and reloaded on demand.
     * 0 = unbounded (every registered key stays resident). Initialized
     * from $ORION_KEY_CACHE_MB when set.
     */
    int key_cache_mb = 0;

    /** Resolves num_threads = 0 to the hardware concurrency. */
    int resolved_num_threads() const;
    /** Resolves max_inflight = 0 to the hardware concurrency. */
    int resolved_max_inflight() const;
};

/** A snapshot of the active global configuration (copied under lock). */
OrionConfig config();

/** Replaces the global configuration and resizes the global thread pool. */
void set_config(const OrionConfig& cfg);

/** Convenience: updates only num_threads (0 = hardware concurrency). */
void set_num_threads(int n);

}  // namespace orion::core

#endif  // ORION_SRC_CORE_CONFIG_H_
