#ifndef ORION_SRC_CORE_DISK_STORE_H_
#define ORION_SRC_CORE_DISK_STORE_H_

/**
 * @file
 * On-disk storage for large compile-time artifacts (Section 6, "Handling
 * large data structures"): the paper stores hundreds of gigabytes of
 * rotation keys and encoded matrix diagonals in HDF5 and loads them
 * dynamically during inference. HDF5 is not available offline, so this is
 * a minimal self-describing binary container with the same role: write
 * once at compile time, stream records back on demand at inference time.
 *
 * Format: a magic header, then length-prefixed named records of raw
 * little-endian u64/double arrays. Integrity is guarded by per-record
 * byte counts and a trailing sentinel.
 */

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common.h"
#include "src/linalg/diagonal.h"

namespace orion::core {

/** Writes named binary records to a store file. */
class DiskStoreWriter {
  public:
    explicit DiskStoreWriter(const std::string& path);
    ~DiskStoreWriter();

    DiskStoreWriter(const DiskStoreWriter&) = delete;
    DiskStoreWriter& operator=(const DiskStoreWriter&) = delete;

    void put_doubles(const std::string& name, const std::vector<double>& v);
    void put_u64s(const std::string& name, const std::vector<u64>& v);
    /** Stores an opaque byte blob (e.g. a serialized wire record). */
    void put_bytes(const std::string& name, const std::vector<u8>& v);
    /** Stores a diagonal matrix as (indices, per-diagonal values). */
    void put_matrix(const std::string& name, const lin::DiagonalMatrix& m);

    /** Finalizes the file (also done by the destructor). */
    void close();

  private:
    void write_record(const std::string& name, char tag, const void* data,
                      std::size_t bytes);

    std::ofstream out_;
    std::set<std::string> written_;  ///< duplicate names fail at write time
    bool closed_ = false;
};

/** Random-access reader over a store file (index loaded eagerly, record
 * payloads streamed on demand - the "load dynamically during inference"
 * behaviour of Section 6). */
class DiskStoreReader {
  public:
    explicit DiskStoreReader(const std::string& path);

    bool has(const std::string& name) const { return index_.count(name) > 0; }
    std::vector<std::string> names() const;

    std::vector<double> get_doubles(const std::string& name);
    std::vector<u64> get_u64s(const std::string& name);
    std::vector<u8> get_bytes(const std::string& name);
    lin::DiagonalMatrix get_matrix(const std::string& name);

    /** Payload size of a bytes record, without reading it. */
    u64 bytes_size(const std::string& name);
    /**
     * Ranged read from a bytes record: copies `bytes` starting at
     * `offset` within the record's payload into dst. Lets callers stream
     * a large blob (e.g. a serialized Galois key set) chunk by chunk
     * instead of materializing the whole record next to its decoded form.
     */
    void get_bytes_at(const std::string& name, u64 offset, void* dst,
                      std::size_t bytes);

  private:
    struct Entry {
        char tag;
        std::streamoff offset;  ///< payload position
        u64 bytes;
    };

    const Entry& entry(const std::string& name, char tag);

    std::ifstream in_;
    std::map<std::string, Entry> index_;
};

}  // namespace orion::core

#endif  // ORION_SRC_CORE_DISK_STORE_H_
