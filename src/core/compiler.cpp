#include "src/core/compiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <set>

#include "src/approx/polyeval.h"

namespace orion::core {

namespace {

using nn::Layer;
using nn::LayerKind;
using nn::Network;

/** Layers that produce no FHE instruction (value aliases). */
bool
is_passthrough(LayerKind k)
{
    return k == LayerKind::kInput || k == LayerKind::kFlatten;
}

lin::TensorLayout
layout_for(const nn::Shape& s, int gap)
{
    if (s.flat) return lin::TensorLayout(1, 1, s.features, 1);
    return lin::TensorLayout(s.c, s.h, s.w, gap);
}

/** The whole compile state, threaded through the passes. */
struct CompilerState {
    const Network* net;
    const CompileOptions* opt;
    CompiledNetwork out;

    std::vector<bool> bn_absorbed;       // BN folded into its producer
    std::vector<int> bn_of;              // conv/linear id -> absorbed BN id
    std::vector<double> max_abs;         // per-layer calibration maxima
    double input_max = 1.0;
    std::vector<double> nu;              // per-layer edge normalization
    std::vector<int> gap;                // layout gap of each layer output
    std::vector<u64> edge_cts;           // ciphertexts per layer output
    std::vector<int> payload_of;         // layer id -> linears/acts index
    std::map<int, double> scale_insert;  // Add input layer id -> factor
    std::map<int, int> fork_of;          // Add/ReLU id -> fork layer id
    std::map<int, std::vector<int>> relu_stages_of;  // ReLU id -> payloads
    std::map<int, int> stage_operand;    // stage synthetic id -> operand key

    int batch = 1;          // effective (capacity-clamped) batch
    u64 batch_stride = 0;   // slot stride between batch lanes

    u64
    cts_of_layout(const lin::TensorLayout& l) const
    {
        return std::max<u64>(1, ceil_div(l.total_slots(), opt->slots));
    }

    /** Stamps the compiled batch tiling onto a per-sample layout. */
    lin::TensorLayout
    batched(const lin::TensorLayout& l) const
    {
        if (batch <= 1) return l;
        return l.with_batch(batch, batch_stride);
    }
};

// ---------------------------------------------------------------------
// Pass 1: BatchNorm folding.
// ---------------------------------------------------------------------

void
fold_batchnorms(CompilerState& st)
{
    const Network& net = *st.net;
    st.bn_absorbed.assign(static_cast<std::size_t>(net.num_layers()), false);
    st.bn_of.assign(static_cast<std::size_t>(net.num_layers()), -1);
    for (int id = 0; id < net.num_layers(); ++id) {
        const Layer& l = net.layer(id);
        if (l.kind != LayerKind::kBatchNorm2d) continue;
        const int p = l.inputs[0];
        const Layer& producer = net.layer(p);
        const bool foldable =
            (producer.kind == LayerKind::kConv2d) &&
            net.consumers(p).size() == 1;
        if (foldable) {
            st.bn_absorbed[static_cast<std::size_t>(id)] = true;
            st.bn_of[static_cast<std::size_t>(p)] = id;
        }
        // Non-foldable BN becomes a standalone 1x1 depthwise conv later.
    }
}

// ---------------------------------------------------------------------
// Pass 2: range estimation (net.fit()).
// ---------------------------------------------------------------------

void
estimate_ranges(CompilerState& st)
{
    const Network& net = *st.net;
    st.max_abs.assign(static_cast<std::size_t>(net.num_layers()), 1e-9);
    std::mt19937_64 rng(st.opt->calibration_seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const u64 in_size = net.shape_of(net.input_id()).size();
    st.input_max = 1e-9;
    const std::vector<std::vector<double>>& user =
        st.opt->calibration_inputs;
    const int samples = user.empty() ? st.opt->calibration_samples
                                     : static_cast<int>(user.size());
    for (int s = 0; s < samples; ++s) {
        std::vector<double> x;
        if (user.empty()) {
            x.resize(in_size);
            for (double& v : x) v = dist(rng);
        } else {
            x = user[static_cast<std::size_t>(s)];
            ORION_CHECK(x.size() == in_size,
                        "calibration input size mismatch");
        }
        for (double v : x) st.input_max = std::max(st.input_max, std::abs(v));
        std::vector<double> maxima;
        net.forward(x, &maxima);
        for (int id = 0; id < net.num_layers(); ++id) {
            st.max_abs[static_cast<std::size_t>(id)] =
                std::max(st.max_abs[static_cast<std::size_t>(id)],
                         maxima[static_cast<std::size_t>(id)]);
        }
    }
}

/**
 * The calibration maximum of a layer's *effective* output (i.e. after any
 * absorbed BatchNorm).
 */
double
eff_max(const CompilerState& st, int id)
{
    const int bn = st.bn_of[static_cast<std::size_t>(id)];
    return st.max_abs[static_cast<std::size_t>(bn >= 0 ? bn : id)];
}

// ---------------------------------------------------------------------
// Pass 3: normalization factor assignment.
// ---------------------------------------------------------------------

/**
 * Extra normalization headroom on edges feeding polynomial activations:
 * fitted polynomials (sign composites, SiLU Chebyshev) are only controlled
 * on their fit domain, so approximation/calibration drift must never push
 * activation inputs outside it.
 */
constexpr double kActInputSlack = 1.5;

/** True when the layer's value feeds a non-square activation (via any
 * flatten views). */
bool
feeds_poly_activation(const Network& net, int id)
{
    for (int consumer : net.consumers(id)) {
        const Layer& c = net.layer(consumer);
        if (c.kind == LayerKind::kFlatten) {
            if (feeds_poly_activation(net, consumer)) return true;
        } else if (c.kind == LayerKind::kActivation &&
                   c.act.kind != nn::ActivationSpec::Kind::kSquare) {
            return true;
        }
    }
    return false;
}

void
assign_normalization(CompilerState& st)
{
    const Network& net = *st.net;
    const double margin = st.opt->margin;
    st.nu.assign(static_cast<std::size_t>(net.num_layers()), 1.0);
    auto nu_of = [&st](int id) -> double& {
        return st.nu[static_cast<std::size_t>(id)];
    };
    auto slack_of = [&net](int id) {
        return feeds_poly_activation(net, id) ? kActInputSlack : 1.0;
    };

    for (int id = 0; id < net.num_layers(); ++id) {
        const Layer& l = net.layer(id);
        switch (l.kind) {
        case LayerKind::kInput:
            nu_of(id) = 1.0 / (margin * slack_of(id) * st.input_max);
            break;
        case LayerKind::kConv2d:
        case LayerKind::kLinear:
        case LayerKind::kAvgPool2d:
        case LayerKind::kBatchNorm2d:
            nu_of(id) = 1.0 / (margin * slack_of(id) * eff_max(st, id));
            break;
        case LayerKind::kActivation:
            switch (l.act.kind) {
            case nn::ActivationSpec::Kind::kSquare: {
                // With a foldable producer, retrofit nu_in = sqrt(nu_out)
                // so the square needs no extra constant. Otherwise the
                // square simply emits nu_in^2 * x^2, which is still in
                // [-1, 1] (|nu_in * x| <= 1), and the next layer folds
                // from nu_in^2.
                const int p = l.inputs[0];
                const LayerKind pk = net.layer(p).kind;
                const bool foldable =
                    (pk == LayerKind::kConv2d || pk == LayerKind::kLinear ||
                     pk == LayerKind::kBatchNorm2d) &&
                    net.consumers(p).size() == 1;
                if (foldable) {
                    const double out =
                        1.0 /
                        (margin * st.max_abs[static_cast<std::size_t>(id)]);
                    nu_of(p) = std::sqrt(out);
                    nu_of(id) = out;
                } else {
                    nu_of(id) = nu_of(p) * nu_of(p);
                }
                break;
            }
            case nn::ActivationSpec::Kind::kRelu:
                nu_of(id) = nu_of(l.inputs[0]);
                break;
            default:
                nu_of(id) =
                    1.0 / (margin * st.max_abs[static_cast<std::size_t>(id)]);
                break;
            }
            break;
        case LayerKind::kAdd: {
            // Both inputs must arrive at a common nu that also bounds the
            // sum (see compiler.h pipeline notes).
            const int a = l.inputs[0];
            const int b = l.inputs[1];
            const double bound = std::max(
                {st.max_abs[static_cast<std::size_t>(id)],
                 st.max_abs[static_cast<std::size_t>(a)],
                 st.max_abs[static_cast<std::size_t>(b)]});
            const double target = 1.0 / (margin * slack_of(id) * bound);
            for (int in : {a, b}) {
                const Layer& p = net.layer(in);
                const bool foldable =
                    (p.kind == LayerKind::kConv2d ||
                     p.kind == LayerKind::kLinear ||
                     p.kind == LayerKind::kAvgPool2d ||
                     p.kind == LayerKind::kBatchNorm2d) &&
                    net.consumers(in).size() == 1;
                if (foldable) {
                    nu_of(in) = target;
                } else if (!ckks::scales_match(nu_of(in), target)) {
                    st.scale_insert[in] = target / nu_of(in);
                }
            }
            nu_of(id) = target;
            break;
        }
        case LayerKind::kFlatten:
            nu_of(id) = nu_of(l.inputs[0]);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Pass 4: packing (layouts, matrices / structures, BSGS plans).
// ---------------------------------------------------------------------

/** Effective per-output-channel multiplier and bias of a linear layer. */
void
folded_channel_terms(const CompilerState& st, const Layer& l, int channels,
                     std::vector<double>* mult, std::vector<double>* bias)
{
    const double nu_in = st.nu[static_cast<std::size_t>(l.inputs[0])];
    // The authoritative output edge is the absorbed BatchNorm's when one
    // exists: downstream consumers reference that layer's nu.
    const int out_edge = st.bn_of[static_cast<std::size_t>(l.id)] >= 0
                             ? st.bn_of[static_cast<std::size_t>(l.id)]
                             : l.id;
    const double nu_out = st.nu[static_cast<std::size_t>(out_edge)];
    mult->assign(static_cast<std::size_t>(channels), nu_out / nu_in);
    bias->assign(static_cast<std::size_t>(channels), 0.0);
    for (int c = 0; c < channels; ++c) {
        double base_bias =
            l.bias.empty() ? 0.0 : l.bias[static_cast<std::size_t>(c)];
        double g = 1.0;
        double shift = 0.0;
        const int bn_id = st.bn_of[static_cast<std::size_t>(l.id)];
        if (bn_id >= 0) {
            const Layer& bn = st.net->layer(bn_id);
            const double inv_std = 1.0 / std::sqrt(
                bn.bn_var[static_cast<std::size_t>(c)] + bn.bn_eps);
            g = bn.bn_gamma[static_cast<std::size_t>(c)] * inv_std;
            shift = bn.bn_beta[static_cast<std::size_t>(c)] -
                    g * bn.bn_mean[static_cast<std::size_t>(c)];
        }
        (*mult)[static_cast<std::size_t>(c)] *= g;
        (*bias)[static_cast<std::size_t>(c)] =
            nu_out * (g * base_bias + shift);
    }
}

PlanStats
stats_from_plan(const lin::BlockedPlan& plan, u64 in_cts, u64 out_cts)
{
    PlanStats s;
    for (const auto& [bc, babies] : plan.column_babies) {
        (void)bc;
        for (u64 b : babies) {
            if (b != 0) ++s.baby_rotations;
        }
        ++s.hoists;
    }
    for (const auto& [key, bp] : plan.block_plans) {
        (void)key;
        s.giant_rotations += bp.giant_rotation_count();
        s.pmults += bp.pmult_count();
    }
    s.input_cts = in_cts;
    s.output_cts = out_cts;
    return s;
}

/**
 * The slot layout actually holding a value: flattens are views, so the
 * layout (possibly multiplexed, Section 4.3) of the nearest non-flatten
 * producer is what a consumer sees.
 */
lin::TensorLayout
value_layout(const CompilerState& st, int id)
{
    const Layer& l = st.net->layer(id);
    if (l.kind == LayerKind::kFlatten) {
        return value_layout(st, l.inputs[0]);
    }
    return layout_for(l.out_shape, st.gap[static_cast<std::size_t>(id)]);
}

/** Builds the LinearLayerData of a conv / pool / linear / standalone BN. */
int
build_linear_payload(CompilerState& st, const Layer& l)
{
    const Network& net = *st.net;
    const CompileOptions& opt = *st.opt;
    LinearLayerData data;
    const int in_id = l.inputs[0];
    const lin::TensorLayout in_layout = st.batched(value_layout(st, in_id));
    data.in_layout = in_layout;

    lin::BlockedStructure structure;
    if (l.kind == LayerKind::kConv2d) {
        data.kind = LayerKind::kConv2d;
        data.conv = l.conv;
        const int out_gap = opt.packing == CompileOptions::Packing::kRaster
                                ? in_layout.gap
                                : in_layout.gap * l.conv.stride;
        data.out_layout = st.batched(lin::TensorLayout(
            l.conv.out_channels, l.out_shape.h, l.out_shape.w, out_gap));
        std::vector<double> mult, bias;
        folded_channel_terms(st, l, l.conv.out_channels, &mult, &bias);
        data.folded_weights = l.weights;
        const u64 per_out = data.folded_weights.size() /
                            static_cast<u64>(l.conv.out_channels);
        for (int c = 0; c < l.conv.out_channels; ++c) {
            for (u64 i = 0; i < per_out; ++i) {
                data.folded_weights[static_cast<std::size_t>(c) * per_out +
                                    i] *= mult[static_cast<std::size_t>(c)];
            }
        }
        data.folded_bias = std::move(bias);
        structure = lin::build_conv_structure(l.conv, in_layout,
                                              data.out_layout, opt.slots);
        if (!opt.structural_only) {
            data.matrix = std::make_shared<lin::BlockedMatrix>(
                lin::build_conv_matrix(l.conv, data.folded_weights, in_layout,
                                       data.out_layout, opt.slots));
        }
    } else if (l.kind == LayerKind::kAvgPool2d) {
        data.kind = LayerKind::kAvgPool2d;
        lin::Conv2dSpec spec;
        const nn::Shape in_shape = net.shape_of(in_id);
        spec.in_channels = spec.out_channels = in_shape.c;
        spec.kernel_h = spec.kernel_w = l.pool_kernel;
        spec.stride = l.pool_stride;
        spec.pad = l.pool_pad;
        spec.groups = in_shape.c;
        data.conv = spec;
        const int out_gap = opt.packing == CompileOptions::Packing::kRaster
                                ? in_layout.gap
                                : in_layout.gap * spec.stride;
        data.out_layout = st.batched(lin::TensorLayout(
            in_shape.c, l.out_shape.h, l.out_shape.w, out_gap));
        const double nu_ratio =
            st.nu[static_cast<std::size_t>(l.id)] /
            st.nu[static_cast<std::size_t>(in_id)];
        data.folded_weights.assign(
            spec.weight_count(),
            nu_ratio / (static_cast<double>(l.pool_kernel) * l.pool_kernel));
        structure = lin::build_avgpool_structure(
            l.pool_kernel, l.pool_stride, in_layout, data.out_layout,
            opt.slots, l.pool_pad);
        if (!opt.structural_only) {
            data.matrix = std::make_shared<lin::BlockedMatrix>(
                lin::build_conv_matrix(spec, data.folded_weights, in_layout,
                                       data.out_layout, opt.slots));
        }
    } else if (l.kind == LayerKind::kLinear) {
        data.kind = LayerKind::kLinear;
        data.in_features = l.in_features;
        data.out_features = l.out_features;
        data.out_layout = st.batched(lin::TensorLayout(1, 1, l.out_features, 1));
        std::vector<double> mult, bias;
        folded_channel_terms(st, l, l.out_features, &mult, &bias);
        data.folded_weights = l.weights;
        for (int r = 0; r < l.out_features; ++r) {
            for (int c = 0; c < l.in_features; ++c) {
                data.folded_weights[static_cast<std::size_t>(r) *
                                        l.in_features +
                                    c] *= mult[static_cast<std::size_t>(r)];
            }
        }
        data.folded_bias = std::move(bias);
        structure =
            lin::build_linear_structure(l.out_features, in_layout, opt.slots);
        if (!opt.structural_only) {
            data.matrix = std::make_shared<lin::BlockedMatrix>(
                lin::build_linear_matrix(l.out_features, l.in_features,
                                         data.folded_weights, in_layout,
                                         opt.slots));
        }
    } else {
        // Standalone BatchNorm: 1x1 depthwise conv.
        ORION_ASSERT(l.kind == LayerKind::kBatchNorm2d);
        data.kind = LayerKind::kConv2d;
        const nn::Shape in_shape = net.shape_of(in_id);
        lin::Conv2dSpec spec;
        spec.in_channels = spec.out_channels = in_shape.c;
        spec.groups = in_shape.c;
        data.conv = spec;
        data.out_layout = in_layout;
        const double nu_in = st.nu[static_cast<std::size_t>(in_id)];
        const double nu_out = st.nu[static_cast<std::size_t>(l.id)];
        data.folded_weights.resize(static_cast<std::size_t>(in_shape.c));
        data.folded_bias.resize(static_cast<std::size_t>(in_shape.c));
        for (int c = 0; c < in_shape.c; ++c) {
            const double inv_std = 1.0 / std::sqrt(
                l.bn_var[static_cast<std::size_t>(c)] + l.bn_eps);
            const double g = l.bn_gamma[static_cast<std::size_t>(c)] * inv_std;
            data.folded_weights[static_cast<std::size_t>(c)] =
                g * nu_out / nu_in;
            data.folded_bias[static_cast<std::size_t>(c)] =
                nu_out * (l.bn_beta[static_cast<std::size_t>(c)] -
                          g * l.bn_mean[static_cast<std::size_t>(c)]);
        }
        structure = lin::build_conv_structure(spec, in_layout,
                                              data.out_layout, opt.slots);
        if (!opt.structural_only) {
            data.matrix = std::make_shared<lin::BlockedMatrix>(
                lin::build_conv_matrix(spec, data.folded_weights, in_layout,
                                       data.out_layout, opt.slots));
        }
    }

    data.rows = structure.rows;
    data.cols = structure.cols;
    data.plan = lin::BlockedPlan::build_from_structure(
        opt.slots, structure.row_blocks(), structure.col_blocks(),
        structure.blocks, opt.use_bsgs ? 0 : 1);
    data.stats = stats_from_plan(
        data.plan, std::max<u64>(1, structure.col_blocks()),
        std::max<u64>(1, structure.row_blocks()));

    st.out.linears.push_back(std::move(data));
    return static_cast<int>(st.out.linears.size()) - 1;
}

/**
 * Builds the ActivationData unit(s) of an activation layer. Square and
 * SiLU/custom are one unit; ReLU becomes one unit per sign stage (its
 * x * sign(x) multiply is emitted as a kMul join by the chain builder),
 * so bootstraps can land between the composite's stages (Section 5.2).
 * Returns the payload index for single-unit kinds, -1 for ReLU (the stage
 * payloads are recorded in relu_stages_of).
 */
int
build_activation_payload(CompilerState& st, const Layer& l)
{
    const double nu_in = st.nu[static_cast<std::size_t>(l.inputs[0])];
    const double nu_out = st.nu[static_cast<std::size_t>(l.id)];
    switch (l.act.kind) {
    case nn::ActivationSpec::Kind::kSquare: {
        ActivationData data;
        data.kind = l.act.kind;
        data.nu_in = nu_in;
        data.nu_out = nu_out;
        data.depth = 1;
        data.stage_degrees = {2};
        data.approx_f = [](double u) { return u * u; };
        st.out.activations.push_back(std::move(data));
        return static_cast<int>(st.out.activations.size()) - 1;
    }
    case nn::ActivationSpec::Kind::kRelu: {
        std::vector<approx::ChebyshevPoly> stages =
            approx::make_relu_stages(l.act.relu_degrees);
        // Widen the first stage's effective domain: evaluating p0(x / tau)
        // leaves sign(x) unchanged but keeps the composite stable when
        // approximation noise or calibration drift pushes |x| slightly
        // past 1 (otherwise the sign polynomials amplify the overshoot
        // and deep ResNets blow up).
        constexpr double kSignDomainSlack = 1.5;
        const approx::ChebyshevPoly p0 = stages[0];
        stages[0] = approx::ChebyshevPoly::fit(
            [&p0](double x) { return p0.eval(x / kSignDomainSlack); }, -1.0,
            1.0, p0.degree());
        std::vector<int>& payloads = st.relu_stages_of[l.id];
        for (std::size_t i = 0; i < stages.size(); ++i) {
            ActivationData data;
            data.kind = l.act.kind;
            data.nu_in = nu_in;
            data.nu_out = nu_out;
            data.stages = {stages[i]};
            data.depth = approx::HePolyEvaluator::poly_depth(stages[i]);
            data.stage_degrees = {stages[i].degree()};
            const approx::ChebyshevPoly s = stages[i];
            data.approx_f = [s](double u) { return s.eval(u); };
            st.out.activations.push_back(std::move(data));
            payloads.push_back(
                static_cast<int>(st.out.activations.size()) - 1);
        }
        return -1;
    }
    default: {
        // SiLU / custom: fit g(u) = nu_out * f(u / nu_in) on [-1, 1].
        ActivationData data;
        data.kind = l.act.kind;
        data.nu_in = nu_in;
        data.nu_out = nu_out;
        const std::function<double(double)> f = l.act.f;
        const approx::ChebyshevPoly g = approx::ChebyshevPoly::fit(
            [&](double u) { return nu_out * f(u / nu_in); }, -1.0, 1.0,
            l.act.degree);
        data.stages = {g};
        data.depth = approx::HePolyEvaluator::poly_depth(g);
        data.stage_degrees = {l.act.degree};
        const approx::ChebyshevPoly g_copy = g;
        data.approx_f = [g_copy](double u) { return g_copy.eval(u); };
        st.out.activations.push_back(std::move(data));
        return static_cast<int>(st.out.activations.size()) - 1;
    }
    }
}

// ---------------------------------------------------------------------
// Pass 5: chain construction (SESE regions around residual Adds).
// ---------------------------------------------------------------------

/** Synthetic layer ids for inserted scale units: -100 - add_input_id. */
int
scale_unit_id(int branch_producer)
{
    return -100 - branch_producer;
}

PlacementUnit
make_unit(CompilerState& st, const Layer& l)
{
    PlacementUnit u;
    u.layer_id = l.id;
    u.name = nn::layer_kind_name(l.kind);
    const CostModel& cost = st.opt->cost;
    switch (l.kind) {
    case LayerKind::kConv2d:
    case LayerKind::kLinear:
    case LayerKind::kAvgPool2d:
    case LayerKind::kBatchNorm2d: {
        const int payload = st.payload_of[static_cast<std::size_t>(l.id)];
        const LinearLayerData& data =
            st.out.linears[static_cast<std::size_t>(payload)];
        u.depth = 1;
        const PlanStats stats = data.stats;
        u.latency = [&cost, stats](int lvl) {
            return cost.linear_layer(stats, lvl);
        };
        u.input_cts = stats.input_cts;
        u.output_cts = stats.output_cts;
        break;
    }
    case LayerKind::kActivation: {
        const int payload = st.payload_of[static_cast<std::size_t>(l.id)];
        ORION_ASSERT(payload >= 0);  // ReLU goes through make_stage_unit
        const ActivationData& data =
            st.out.activations[static_cast<std::size_t>(payload)];
        u.depth = data.depth;
        const std::vector<int> degrees = data.stage_degrees;
        const u64 cts = st.edge_cts[static_cast<std::size_t>(l.id)];
        u.latency = [&cost, degrees, cts](int lvl) {
            return cost.activation(degrees, lvl, cts, false);
        };
        u.input_cts = u.output_cts = cts;
        break;
    }
    case LayerKind::kAdd: {
        const u64 cts = st.edge_cts[static_cast<std::size_t>(l.id)];
        u.depth = 0;
        u.latency = [&cost, cts](int lvl) {
            return static_cast<double>(cts) * cost.hadd(lvl);
        };
        u.input_cts = u.output_cts = cts;
        break;
    }
    default:
        ORION_ASSERT(false);
    }
    return u;
}

/** Synthetic layer ids for ReLU sign-stage units: -1000 - payload. */
int
stage_unit_id(int payload)
{
    return -1000 - payload;
}

PlacementUnit
make_stage_unit(CompilerState& st, int payload, u64 cts)
{
    const CostModel& cost = st.opt->cost;
    const ActivationData& data =
        st.out.activations[static_cast<std::size_t>(payload)];
    PlacementUnit u;
    u.layer_id = stage_unit_id(payload);
    u.name = "SignStage";
    u.depth = data.depth;
    const std::vector<int> degrees = data.stage_degrees;
    u.latency = [&cost, degrees, cts](int lvl) {
        return cost.activation(degrees, lvl, cts, false);
    };
    u.input_cts = u.output_cts = cts;
    return u;
}

PlacementUnit
make_mul_unit(CompilerState& st, int relu_layer_id, u64 cts)
{
    const CostModel& cost = st.opt->cost;
    PlacementUnit u;
    u.layer_id = relu_layer_id;
    u.name = "ReluMul";
    u.depth = 1;
    u.latency = [&cost, cts](int lvl) {
        return static_cast<double>(cts) *
               (cost.hmult(lvl) + cost.rescale(lvl));
    };
    u.input_cts = u.output_cts = cts;
    return u;
}

PlacementUnit
make_scale_unit(CompilerState& st, int branch_producer)
{
    const CostModel& cost = st.opt->cost;
    const u64 cts = st.edge_cts[static_cast<std::size_t>(branch_producer)];
    PlacementUnit u;
    u.layer_id = scale_unit_id(branch_producer);
    u.name = "Scale";
    u.depth = 1;
    u.latency = [&cost, cts](int lvl) {
        return static_cast<double>(cts) *
               (cost.pmult(lvl) + cost.rescale(lvl));
    };
    u.input_cts = u.output_cts = cts;
    return u;
}

Chain build_chain(CompilerState& st, int from_exclusive, int to_inclusive);

/** Appends the chain item(s) of one layer (skipping passthroughs). */
void
append_layer(CompilerState& st, Chain* chain, int id)
{
    const Layer& l = st.net->layer(id);
    if (is_passthrough(l.kind)) return;
    if (l.kind == LayerKind::kBatchNorm2d &&
        st.bn_absorbed[static_cast<std::size_t>(id)]) {
        return;
    }
    if (l.kind == LayerKind::kActivation &&
        l.act.kind == nn::ActivationSpec::Kind::kRelu) {
        // ReLU = x * sign(x): a SESE region whose backbone is the sign
        // stages and whose other branch is the identity (x itself).
        const u64 cts = st.edge_cts[static_cast<std::size_t>(id)];
        st.fork_of[id] = l.inputs[0];
        ChainItem region;
        region.kind = ChainItem::Kind::kRegion;
        region.unit = make_mul_unit(st, id, cts);
        Chain backbone;
        int prev_key = l.inputs[0];
        for (int payload : st.relu_stages_of.at(id)) {
            ChainItem stage;
            stage.kind = ChainItem::Kind::kUnit;
            stage.unit = make_stage_unit(st, payload, cts);
            st.stage_operand[stage_unit_id(payload)] = prev_key;
            prev_key = stage_unit_id(payload);
            backbone.items.push_back(std::move(stage));
        }
        region.branches.push_back(std::move(backbone));
        region.branches.emplace_back();  // identity branch: x
        chain->items.push_back(std::move(region));
        return;
    }
    if (l.kind == LayerKind::kAdd) {
        // Region: find the fork (nearest common ancestor of both inputs).
        const Network& net = *st.net;
        std::set<int> ancestors;
        int cur = l.inputs[0];
        while (true) {
            ancestors.insert(cur);
            const Layer& a = net.layer(cur);
            if (a.inputs.empty()) break;
            cur = a.inputs[0];
        }
        int fork = l.inputs[1];
        while (ancestors.count(fork) == 0) {
            const Layer& b = net.layer(fork);
            ORION_CHECK(!b.inputs.empty(), "no common fork for Add");
            fork = b.inputs[0];
        }
        st.fork_of[id] = fork;

        ChainItem region;
        region.kind = ChainItem::Kind::kRegion;
        region.unit = make_unit(st, l);
        for (int in : {l.inputs[0], l.inputs[1]}) {
            Chain branch = build_chain(st, fork, in);
            if (auto it = st.scale_insert.find(in);
                it != st.scale_insert.end()) {
                ChainItem scale;
                scale.kind = ChainItem::Kind::kUnit;
                scale.unit = make_scale_unit(st, in);
                branch.items.push_back(std::move(scale));
            }
            region.branches.push_back(std::move(branch));
        }
        chain->items.push_back(std::move(region));
        return;
    }
    ChainItem item;
    item.kind = ChainItem::Kind::kUnit;
    item.unit = make_unit(st, l);
    chain->items.push_back(std::move(item));
}

Chain
build_chain(CompilerState& st, int from_exclusive, int to_inclusive)
{
    Chain chain;
    if (from_exclusive == to_inclusive) return chain;
    // Collect the backward path, recursing at Adds.
    std::vector<int> path;
    int cur = to_inclusive;
    while (cur != from_exclusive) {
        path.push_back(cur);
        const Layer& l = st.net->layer(cur);
        ORION_CHECK(!l.inputs.empty(), "walked past the chain start");
        // For Adds, continue upward through the fork.
        if (l.kind == LayerKind::kAdd) {
            // The fork is an ancestor of both inputs; find it the same way
            // append_layer will.
            std::set<int> ancestors;
            int a = l.inputs[0];
            while (true) {
                ancestors.insert(a);
                const Layer& al = st.net->layer(a);
                if (al.inputs.empty()) break;
                a = al.inputs[0];
            }
            int fork = l.inputs[1];
            while (ancestors.count(fork) == 0) {
                fork = st.net->layer(fork).inputs[0];
            }
            cur = fork;
        } else {
            cur = l.inputs[0];
        }
    }
    std::reverse(path.begin(), path.end());
    for (int id : path) append_layer(st, &chain, id);
    return chain;
}

// ---------------------------------------------------------------------
// Pass 7: instruction emission.
// ---------------------------------------------------------------------

void
emit_instructions(CompilerState& st, const PlacementResult& placement)
{
    const Network& net = *st.net;
    CompiledNetwork& out = st.out;
    std::map<int, int> value_of;  // layer id (or synthetic) -> value id
    int next_value = 0;

    // Input.
    {
        Instruction in;
        in.op = Instruction::Op::kInput;
        in.value = next_value++;
        in.layer_id = net.input_id();
        in.level = st.opt->l_eff;
        in.cts = st.edge_cts[static_cast<std::size_t>(net.input_id())];
        out.program.push_back(in);
        value_of[net.input_id()] = in.value;
        // Passthrough aliases resolve through this map lazily below.
    }

    auto resolve = [&](int id) -> int {
        // Walk through passthrough layers / absorbed BNs to the value.
        int cur = id;
        while (value_of.count(cur) == 0) {
            const Layer& l = net.layer(cur);
            ORION_CHECK(!l.inputs.empty(), "unresolved value for layer "
                                               << cur);
            cur = l.inputs[0];
        }
        return value_of.at(cur);
    };

    for (const UnitDecision& d : placement.decisions) {
        const bool is_fork_note = d.name.ends_with(":fork");
        // Identify the consumed operand.
        int operand_layer = -1;
        if (d.layer_id >= 0) {
            const Layer& l = net.layer(d.layer_id);
            if (is_fork_note) {
                operand_layer = st.fork_of.at(d.layer_id);
            } else {
                operand_layer = l.inputs[0];
            }
        } else if (d.layer_id <= -1000) {
            operand_layer = st.stage_operand.at(d.layer_id);
        } else {
            operand_layer = -(d.layer_id + 100);  // scale unit: producer id
        }

        if (d.bootstrap_before) {
            Instruction boot;
            boot.op = Instruction::Op::kBootstrap;
            boot.a = resolve(operand_layer);
            boot.value = next_value++;
            // Name the originating layer so rejection/validation errors
            // can point at the offending instruction, not just "a
            // bootstrap somewhere".
            boot.layer_id = d.layer_id;
            boot.level = st.opt->l_eff;
            boot.cts = d.boot_cts;
            out.program.push_back(boot);
            // The bootstrapped value replaces the old binding.
            value_of[operand_layer] = boot.value;
            out.num_bootstraps += d.boot_cts;
        }
        if (is_fork_note) continue;

        if (d.layer_id <= -1000) {
            // One sign stage of a ReLU composite.
            const int payload = -(d.layer_id + 1000);
            Instruction act;
            act.op = Instruction::Op::kActivation;
            act.a = resolve(operand_layer);
            act.value = next_value++;
            act.layer_id = d.layer_id;
            act.level = d.exec_level;
            act.payload = payload;
            // All stages share the ReLU edge's ciphertext count; walk the
            // operand chain back to the originating network layer.
            int key = operand_layer;
            while (key < 0) key = st.stage_operand.at(key);
            act.cts = st.edge_cts[static_cast<std::size_t>(key)];
            out.program.push_back(act);
            value_of[d.layer_id] = act.value;
            continue;
        }
        if (d.layer_id < 0) {
            // Synthetic scale unit on a residual branch.
            const int producer = -(d.layer_id + 100);
            Instruction sc;
            sc.op = Instruction::Op::kScale;
            sc.a = resolve(producer);
            sc.value = next_value++;
            sc.layer_id = d.layer_id;
            sc.level = d.exec_level;
            sc.scale_factor = st.scale_insert.at(producer);
            sc.cts = st.edge_cts[static_cast<std::size_t>(producer)];
            out.program.push_back(sc);
            value_of[producer] = sc.value;
            continue;
        }

        const Layer& l = net.layer(d.layer_id);
        Instruction ins;
        ins.layer_id = d.layer_id;
        ins.level = d.exec_level;
        ins.cts = st.edge_cts[static_cast<std::size_t>(d.layer_id)];
        switch (l.kind) {
        case LayerKind::kConv2d:
        case LayerKind::kLinear:
        case LayerKind::kAvgPool2d:
        case LayerKind::kBatchNorm2d: {
            ins.op = Instruction::Op::kLinear;
            ins.a = resolve(l.inputs[0]);
            ins.payload = st.payload_of[static_cast<std::size_t>(d.layer_id)];
            const LinearLayerData& data =
                out.linears[static_cast<std::size_t>(ins.payload)];
            out.total_rotations += data.stats.total_rotations();
            out.total_pmults += data.stats.pmults;
            out.modeled_conv_latency +=
                st.opt->cost.linear_layer(data.stats, d.exec_level);
            break;
        }
        case LayerKind::kActivation: {
            if (l.act.kind == nn::ActivationSpec::Kind::kRelu) {
                // The x * sign(x) join: a = x, b = the last sign stage.
                ins.op = Instruction::Op::kMul;
                ins.a = resolve(l.inputs[0]);
                ins.b = resolve(
                    stage_unit_id(st.relu_stages_of.at(d.layer_id).back()));
            } else {
                ins.op = Instruction::Op::kActivation;
                ins.a = resolve(l.inputs[0]);
                ins.payload =
                    st.payload_of[static_cast<std::size_t>(d.layer_id)];
            }
            break;
        }
        case LayerKind::kAdd: {
            ins.op = Instruction::Op::kAdd;
            ins.a = resolve(l.inputs[0]);
            ins.b = resolve(l.inputs[1]);
            break;
        }
        default:
            ORION_ASSERT(false);
        }
        ins.value = next_value++;
        out.program.push_back(ins);
        value_of[d.layer_id] = ins.value;
    }

    // Output.
    Instruction fin;
    fin.op = Instruction::Op::kOutput;
    fin.a = resolve(net.output_id());
    fin.value = next_value++;
    fin.layer_id = net.output_id();
    out.program.push_back(fin);
}

}  // namespace

std::vector<CompiledNetwork::RotationUse>
CompiledNetwork::required_rotations() const
{
    // Every rotation of a linear layer happens at the instruction's
    // execution level (babies and giants both precede the rescale), so
    // each step's key only has to cover the highest level any layer
    // rotates by it.
    std::map<int, int> level_of;
    for (const Instruction& ins : program) {
        if (ins.op != Instruction::Op::kLinear) continue;
        const LinearLayerData& data =
            linears[static_cast<std::size_t>(ins.payload)];
        for (int s : data.plan.required_steps()) {
            auto [it, inserted] = level_of.emplace(s, ins.level);
            if (!inserted) it->second = std::max(it->second, ins.level);
        }
    }
    std::vector<RotationUse> out;
    out.reserve(level_of.size());
    for (const auto& [step, level] : level_of) {
        out.push_back({step, level});
    }
    return out;
}

const char*
to_string(Instruction::Op op)
{
    switch (op) {
    case Instruction::Op::kInput: return "kInput";
    case Instruction::Op::kBootstrap: return "kBootstrap";
    case Instruction::Op::kLinear: return "kLinear";
    case Instruction::Op::kActivation: return "kActivation";
    case Instruction::Op::kMul: return "kMul";
    case Instruction::Op::kScale: return "kScale";
    case Instruction::Op::kAdd: return "kAdd";
    case Instruction::Op::kOutput: return "kOutput";
    }
    return "k?";
}

std::string
describe_instruction(const Instruction& ins)
{
    std::ostringstream oss;
    oss << to_string(ins.op) << " (layer " << ins.layer_id << ", "
        << ins.cts << " cts)";
    return oss.str();
}

CompiledNetwork
compile(const nn::Network& net, const CompileOptions& options)
{
    const auto t0 = std::chrono::steady_clock::now();
    ORION_CHECK(net.input_id() >= 0 && net.output_id() >= 0,
                "network not finalized");
    CompilerState st;
    st.net = &net;
    st.opt = &options;
    st.out.name = net.network_name();
    st.out.slots = options.slots;
    st.out.cost_model = options.cost;
    st.out.l_eff = options.l_eff;

    fold_batchnorms(st);
    estimate_ranges(st);
    assign_normalization(st);

    // Layout gaps, in topological order (payload construction below needs
    // every gap fixed before the batch capacity is known).
    st.gap.assign(static_cast<std::size_t>(net.num_layers()), 1);
    st.edge_cts.assign(static_cast<std::size_t>(net.num_layers()), 1);
    st.payload_of.assign(static_cast<std::size_t>(net.num_layers()), -1);
    for (int id = 0; id < net.num_layers(); ++id) {
        const Layer& l = net.layer(id);
        const int in_gap =
            l.inputs.empty() ? 1
                             : st.gap[static_cast<std::size_t>(l.inputs[0])];
        int out_gap = in_gap;
        if (options.packing == CompileOptions::Packing::kMultiplexed) {
            if (l.kind == LayerKind::kConv2d) out_gap = in_gap * l.conv.stride;
            if (l.kind == LayerKind::kAvgPool2d) {
                out_gap = in_gap * l.pool_stride;
            }
        }
        if (l.kind == LayerKind::kLinear) out_gap = 1;
        const bool absorbed =
            l.kind == LayerKind::kBatchNorm2d &&
            st.bn_absorbed[static_cast<std::size_t>(id)];
        st.gap[static_cast<std::size_t>(id)] = absorbed ? in_gap : out_gap;
    }

    // Batch capacity: the widest layer's per-sample span, rounded up to a
    // power of two, becomes the lane stride; slots / stride samples fit
    // side by side. Lanes at a uniform power-of-two stride keep every
    // batched weight matrix on the same generalized diagonals as B = 1,
    // so the rotation plans are unchanged. A span wider than the slot
    // count (multi-ciphertext layers) pins capacity at 1: those programs
    // run unbatched.
    ORION_CHECK(options.batch >= 1,
                "batch must be >= 1, got " << options.batch);
    u64 max_span = 0;
    std::string limit_name = "input#0";
    for (int id = 0; id < net.num_layers(); ++id) {
        const Layer& l = net.layer(id);
        if (l.kind == LayerKind::kFlatten) continue;
        const u64 span =
            layout_for(l.out_shape, st.gap[static_cast<std::size_t>(id)])
                .total_slots();
        if (span > max_span) {
            max_span = span;
            limit_name = l.name.empty() ? nn::layer_kind_name(l.kind)
                                        : l.name;
            limit_name += "#" + std::to_string(id);
        }
    }
    u64 lane_stride = 1;
    while (lane_stride < max_span) lane_stride <<= 1;
    const int capacity =
        lane_stride > options.slots
            ? 1
            : static_cast<int>(options.slots / lane_stride);
    st.batch = std::min(options.batch, capacity);
    st.batch_stride = st.batch > 1 ? lane_stride : 0;
    st.out.batch = st.batch;
    st.out.batch_stride = st.batch_stride;
    st.out.batch_capacity = capacity;
    st.out.batch_limit_layer = limit_name;

    // Payloads, in topological order.
    for (int id = 0; id < net.num_layers(); ++id) {
        const Layer& l = net.layer(id);
        if (l.kind == LayerKind::kFlatten) {
            st.edge_cts[static_cast<std::size_t>(id)] =
                st.edge_cts[static_cast<std::size_t>(l.inputs[0])];
        } else {
            const lin::TensorLayout layout = st.batched(layout_for(
                l.out_shape, st.gap[static_cast<std::size_t>(id)]));
            st.edge_cts[static_cast<std::size_t>(id)] =
                st.cts_of_layout(layout);
        }

        const bool absorbed =
            l.kind == LayerKind::kBatchNorm2d &&
            st.bn_absorbed[static_cast<std::size_t>(id)];
        if (absorbed) continue;
        if (l.kind == LayerKind::kConv2d || l.kind == LayerKind::kLinear ||
            l.kind == LayerKind::kAvgPool2d ||
            l.kind == LayerKind::kBatchNorm2d) {
            st.payload_of[static_cast<std::size_t>(id)] =
                build_linear_payload(st, l);
        } else if (l.kind == LayerKind::kActivation) {
            st.payload_of[static_cast<std::size_t>(id)] =
                build_activation_payload(st, l);
            if (l.act.kind == nn::ActivationSpec::Kind::kRelu) {
                for (int payload : st.relu_stages_of.at(id)) {
                    st.out.activation_depth +=
                        st.out
                            .activations[static_cast<std::size_t>(payload)]
                            .depth;
                }
                st.out.activation_depth += 1;  // the x * sign(x) multiply
            } else {
                st.out.activation_depth += st.out.activations.back().depth;
            }
        }
    }

    // Placement.
    Chain chain = build_chain(st, net.input_id(), net.output_id());
    PlacementConfig pconfig;
    pconfig.l_eff = options.l_eff;
    pconfig.bootstrap_latency = options.cost.bootstrap(options.l_eff);
    st.out.placement = options.lazy_placement
                           ? place_bootstraps_lazy(chain, pconfig)
                           : place_bootstraps(chain, pconfig);
    st.out.placement_seconds = st.out.placement.solve_seconds;
    st.out.modeled_latency = st.out.placement.latency;

    emit_instructions(st, st.out.placement);

    // Total multiplicative depth (the Table 2 depth column counts linear
    // layers and activations together: e.g. MLP = 3 FC + 2 squares = 5).
    for (const Instruction& ins : st.out.program) {
        switch (ins.op) {
        case Instruction::Op::kLinear:
        case Instruction::Op::kScale:
        case Instruction::Op::kMul:
            st.out.total_mult_depth += 1;
            break;
        case Instruction::Op::kActivation:
            st.out.total_mult_depth +=
                st.out.activations[static_cast<std::size_t>(ins.payload)]
                    .depth;
            break;
        default:
            break;
        }
    }

    // Input/output bookkeeping.
    st.out.input_shape = net.shape_of(net.input_id());
    st.out.input_layout = st.batched(layout_for(
        st.out.input_shape,
        st.gap[static_cast<std::size_t>(net.input_id())]));
    st.out.input_nu = st.nu[static_cast<std::size_t>(net.input_id())];
    st.out.output_nu = st.nu[static_cast<std::size_t>(net.output_id())];
    st.out.output_layout = st.batched(layout_for(
        net.shape_of(net.output_id()),
        st.gap[static_cast<std::size_t>(net.output_id())]));
    st.out.output_size = net.shape_of(net.output_id()).size();

    st.out.compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return st.out;
}

}  // namespace orion::core
