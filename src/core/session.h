#ifndef ORION_SRC_CORE_SESSION_H_
#define ORION_SRC_CORE_SESSION_H_

/**
 * @file
 * orion::Session - the unified pipeline facade (the C++ analogue of the
 * paper's Listing 1 driver): one object that owns the CKKS context and
 * key material and exposes the paper's verbs:
 *
 *   orion::Session session = orion::Session::toy();
 *   session.fit(calibration_batch);             // net.fit(loader)
 *   session.compile(*net, 1, 8, 8);             // orion.compile(net)
 *   auto result = session.run(image);           // encrypted inference
 *   auto sim = session.simulate(image);         // functional backend
 *
 * A Session comes in two flavors:
 *  - real-substrate (toy() / with_params()): a ckks::Context backs
 *    encrypt / run / decrypt / serve; the executor and its keys are
 *    created lazily on first use and reuse one shared PreparedProgram
 *    with any servers created from the same Session.
 *  - simulation-only (simulation()): no Context is built; compile()
 *    targets the paper-scale slot count and only simulate() executes
 *    (how the ImageNet-scale Table 2 rows are produced).
 *
 * The serving path hangs off the same object: serve() starts an
 * InferenceServer over the session's compiled program, serve_client()
 * creates a data-owner client with its own fresh secret.
 */

#include <memory>
#include <optional>
#include <vector>

#include "src/ckks/ckks.h"
#include "src/core/compiler.h"
#include "src/core/config.h"
#include "src/core/executor.h"
#include "src/nn/module.h"
#include "src/serve/serve.h"

namespace orion {

/** Substrate configuration fixed at Session construction. */
struct SessionOptions {
    /** CKKS ring parameters; nullopt = simulation-only session. */
    std::optional<ckks::CkksParams> params;
    /** Packing slot count for simulation-only sessions (paper: 2^15). */
    u64 sim_slots = u64(1) << 15;
    /** Effective post-bootstrap level handed to the compiler. */
    int l_eff = 10;
    /** Keygen seed for the session's own executor. */
    u64 seed = 7;
    /** Bootstrap noise std of the simulation backend. */
    double sim_noise_std = 1e-6;
    /** Kernel-thread config pinned on the executor (nullopt = ambient). */
    std::optional<core::OrionConfig> exec_config;
};

/** One FHE pipeline: context + keys + compiled program + executors. */
class Session {
  public:
    explicit Session(SessionOptions opts);

    /** Toy ring (N = 2^11, l_eff 4): fast demos/tests, NOT secure. */
    static Session toy();
    /** A real substrate at the given parameters (NOT secure sizes). */
    static Session with_params(const ckks::CkksParams& params, int l_eff);
    /** Simulation-only: paper-scale packing, no Context, simulate(). */
    static Session simulation(u64 slots = u64(1) << 15, int l_eff = 10);

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    // ---- the paper's verbs ----

    /**
     * Registers calibration inputs for range estimation (the argument of
     * the paper's net.fit(loader)). Applies to subsequent compile()
     * calls; an explicit CompileOptions::calibration_inputs wins.
     */
    void fit(std::vector<std::vector<double>> calibration_data);

    /**
     * Compiles a network: fills the substrate-derived options (slots,
     * l_eff, cost model, calibration data from fit()) and runs the
     * Section 6 pipeline. Any previously compiled program, executors,
     * and prepared payloads of this Session are discarded.
     */
    const core::CompiledNetwork& compile(const nn::Network& net,
                                         core::CompileOptions opt = {});

    /**
     * Compiles a module tree over a (c, h, w) input: infers shapes,
     * He-initializes any unset parameters with the session seed, lowers
     * to the graph IR (kept; see network()), and compiles. Note the
     * weights end up resident three times (module tree, retained IR,
     * compiled program) - convenient for the small networks a real
     * substrate can execute; for ImageNet-scale trees lower yourself
     * with nn::build_network (which *moves* the weights) and use the
     * Network overload.
     */
    const core::CompiledNetwork& compile(nn::Module& module, int c, int h,
                                         int w, std::string name = "net",
                                         core::CompileOptions opt = {});

    /** Full encrypted inference: encrypt + execute + decrypt. */
    core::ExecutionResult run(const std::vector<double>& input);

    /**
     * Batched encrypted inference: packs up to CompiledNetwork::batch
     * samples into slot lanes (compile with CompileOptions::batch > 1),
     * executes the program ONCE, and returns one output per sample.
     */
    std::vector<std::vector<double>> run_batch(
        const std::vector<std::vector<double>>& inputs);

    /** Functional simulation (cost model + bootstrap noise). */
    core::ExecutionResult simulate(const std::vector<double>& input);

    /** Packs + encrypts an input as the compiled program expects. */
    std::vector<ckks::Ciphertext> encrypt(const std::vector<double>& input);

    /** Packs + encrypts a batch of samples into their slot lanes. */
    std::vector<ckks::Ciphertext> encrypt(
        const std::vector<std::vector<double>>& inputs);

    /** Encrypted-domain inference: ciphertexts in, ciphertexts out. */
    core::EncryptedResult run_encrypted(
        const std::vector<ckks::Ciphertext>& input);

    /** Decrypts + unpacks + de-normalizes program outputs. */
    std::vector<double> decrypt(const std::vector<ckks::Ciphertext>& outputs);

    /** Batched decrypt: the first batch_count lanes, one per sample. */
    std::vector<std::vector<double>> decrypt_batch(
        const std::vector<ckks::Ciphertext>& outputs, int batch_count);

    // ---- serving (the Section 6 deployment model) ----

    /**
     * Starts an InferenceServer over the session's compiled program,
     * sharing this Session's PreparedProgram with its worker pool.
     */
    std::unique_ptr<serve::InferenceServer> serve(
        serve::ServeOptions opts = {});

    /**
     * A data-owner client with its own fresh secret (never shared).
     * Without an explicit seed, keygen entropy comes from
     * std::random_device, so every default-constructed client has a
     * distinct secret; pass a seed only for reproducible tests/demos.
     */
    serve::ServeClient serve_client(
        std::optional<u64> seed = std::nullopt);

    // ---- access ----

    bool has_context() const { return ctx_ != nullptr; }
    const ckks::Context& context() const;
    const core::CompiledNetwork& compiled() const;
    /** The graph IR lowered by the module-tree compile() overload. */
    const nn::Network& network() const;
    /** The session's self-keyed executor (created on first use). */
    core::CkksExecutor& executor();
    /** Shared key-independent payloads (created on first use). */
    std::shared_ptr<const core::PreparedProgram> prepared();
    const SessionOptions& options() const { return opts_; }

  private:
    void require_compiled(const char* verb) const;
    void require_context(const char* verb) const;
    void require_matrices(const char* verb) const;

    SessionOptions opts_;
    std::unique_ptr<ckks::Context> ctx_;  ///< null when simulation-only
    std::optional<int> l_boot_;  ///< measured bootstrap-circuit depth
    std::vector<std::vector<double>> calibration_;
    std::optional<nn::Network> lowered_;  ///< module-compile() keeps the IR
    std::optional<core::CompiledNetwork> compiled_;
    std::shared_ptr<const core::PreparedProgram> prepared_;
    std::unique_ptr<core::CkksExecutor> fhe_;
    std::unique_ptr<core::SimExecutor> sim_;
};

}  // namespace orion

#endif  // ORION_SRC_CORE_SESSION_H_
