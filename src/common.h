#ifndef ORION_SRC_COMMON_H_
#define ORION_SRC_COMMON_H_

/**
 * @file
 * Project-wide fundamental types, error handling, and small utilities.
 *
 * Error-handling convention (per the C++ Core Guidelines):
 *  - ORION_CHECK: recoverable precondition violations (user error) throw
 *    orion::Error with a formatted message.
 *  - ORION_ASSERT: internal invariants; aborts in debug builds, compiled to
 *    a cheap check that throws in release builds (we prefer loud failure to
 *    silent corruption in a cryptographic library).
 */

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace orion {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;

/** Base exception type for all orion errors. */
class Error : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void
throw_error(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << msg;
    throw Error(oss.str());
}

}  // namespace detail

#define ORION_CHECK(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream orion_check_oss_;                             \
            orion_check_oss_ << "check failed: " #cond ": " << msg;          \
            ::orion::detail::throw_error(__FILE__, __LINE__,                 \
                                         orion_check_oss_.str());            \
        }                                                                    \
    } while (0)

#define ORION_ASSERT(cond)                                                   \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::orion::detail::throw_error(__FILE__, __LINE__,                 \
                                         "internal invariant failed: "       \
                                         #cond);                             \
        }                                                                    \
    } while (0)

/** Returns true when x is a power of two (and nonzero). */
constexpr bool
is_power_of_two(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr int
log2_exact(u64 x)
{
    int n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Ceiling division for nonnegative integers. */
constexpr u64
ceil_div(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** Reverses the low `bits` bits of `x`. */
constexpr u32
reverse_bits(u32 x, int bits)
{
    u32 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

}  // namespace orion

#endif  // ORION_SRC_COMMON_H_
