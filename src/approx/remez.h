#ifndef ORION_SRC_APPROX_REMEZ_H_
#define ORION_SRC_APPROX_REMEZ_H_

/**
 * @file
 * Remez exchange algorithm for minimax polynomial approximation on a single
 * interval (Section 7: activation polynomials are "obtained using a similar
 * minimax approach"). The solver works in the Chebyshev basis for
 * conditioning and alternates solve / exchange steps until the equioscillation
 * error stabilizes.
 */

#include "src/approx/chebyshev.h"

namespace orion::approx {

/** Result of a Remez fit. */
struct RemezResult {
    ChebyshevPoly poly;
    double minimax_error = 0.0;
    int iterations = 0;
    bool converged = false;
};

/**
 * Minimax fit of f on [a, b] at the given degree. Requires f continuous.
 * Falls back to (and never does worse than) Chebyshev interpolation.
 */
RemezResult remez_fit(const std::function<double(double)>& f, double a,
                      double b, int degree, int max_iterations = 30);

}  // namespace orion::approx

#endif  // ORION_SRC_APPROX_REMEZ_H_
