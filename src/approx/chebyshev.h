#ifndef ORION_SRC_APPROX_CHEBYSHEV_H_
#define ORION_SRC_APPROX_CHEBYSHEV_H_

/**
 * @file
 * Chebyshev-basis polynomials: the representation every activation
 * function is lowered to before homomorphic evaluation (Section 6,
 * "Range estimation": activations are fit with Chebyshev polynomials by
 * interpolation or the Remez algorithm).
 */

#include <functional>
#include <vector>

#include "src/common.h"

namespace orion::approx {

/** A polynomial in the Chebyshev basis on domain [a, b]. */
class ChebyshevPoly {
  public:
    ChebyshevPoly() = default;
    ChebyshevPoly(std::vector<double> coeffs, double a = -1.0, double b = 1.0)
        : coeffs_(std::move(coeffs)), a_(a), b_(b)
    {
        ORION_CHECK(!coeffs_.empty(), "polynomial needs coefficients");
        ORION_CHECK(a < b, "bad domain");
    }

    int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
    double domain_min() const { return a_; }
    double domain_max() const { return b_; }
    const std::vector<double>& coefficients() const { return coeffs_; }
    /** True when the domain is already the canonical [-1, 1]. */
    bool
    canonical_domain() const
    {
        return a_ == -1.0 && b_ == 1.0;
    }

    /** Evaluates at x via the Clenshaw recurrence. */
    double eval(double x) const;

    /** Maximum |p(x) - f(x)| over a dense grid (for tests and reports). */
    double max_error(const std::function<double(double)>& f,
                     int samples = 2048) const;

    /**
     * Chebyshev interpolation of f at degree+1 Chebyshev nodes on [a, b].
     * Exact (up to roundoff) when f is itself a polynomial of the same
     * degree, which is how power-basis polynomials are converted to the
     * numerically stable Chebyshev basis.
     */
    static ChebyshevPoly fit(const std::function<double(double)>& f,
                             double a, double b, int degree);

    /** Truncates trailing coefficients below `tol`, keeping degree >= 1. */
    void truncate(double tol = 0.0);

  private:
    std::vector<double> coeffs_;
    double a_ = -1.0;
    double b_ = 1.0;
};

}  // namespace orion::approx

#endif  // ORION_SRC_APPROX_CHEBYSHEV_H_
