#ifndef ORION_SRC_APPROX_POLYEVAL_H_
#define ORION_SRC_APPROX_POLYEVAL_H_

/**
 * @file
 * Homomorphic polynomial evaluation in the Chebyshev basis with exact
 * ("errorless") scale management.
 *
 * Evaluation uses the baby-step giant-step Paterson-Stockmeyer recursion:
 * Chebyshev powers T_1..T_{bs-1} plus giants T_{bs*2^j} are generated with
 * the double-angle identities, and the polynomial is recursively split as
 * p = q * T_m + r. Every recursion node receives a (target level, target
 * scale) pair; the free plaintext constants at the leaves are encoded at
 * whatever scale makes each rescale land *exactly* on its target (the
 * extension of Bossuat et al.'s errorless polynomial evaluation that
 * Section 6 of the paper builds its scale management on). The public
 * contract: the result sits at exactly `target_scale`, consuming exactly
 * depth() levels.
 */

#include <map>
#include <optional>

#include "src/approx/chebyshev.h"
#include "src/ckks/evaluator.h"

namespace orion::approx {

/** Evaluates Chebyshev polynomials and compositions on ciphertexts. */
class HePolyEvaluator {
  public:
    explicit HePolyEvaluator(const ckks::Evaluator& eval)
        : eval_(&eval), ctx_(&eval.context())
    {
    }

    /**
     * Evaluates p on ct. The input scale may be arbitrary; the output is at
     * exactly target_scale (default: the context scale Delta) and consumes
     * exactly poly_depth(p) levels.
     */
    ckks::Ciphertext evaluate(const ChebyshevPoly& p,
                              const ckks::Ciphertext& ct,
                              double target_scale = 0.0) const;

    /** Chained composition: stages applied left to right. */
    ckks::Ciphertext evaluate_composite(const std::vector<ChebyshevPoly>& stages,
                                        const ckks::Ciphertext& ct,
                                        double target_scale = 0.0) const;

    /**
     * ReLU-style evaluation x * g(x) where g is the composite from
     * make_relu_stages; one level deeper than the composite itself.
     */
    ckks::Ciphertext evaluate_times_input(
        const std::vector<ChebyshevPoly>& stages, const ckks::Ciphertext& ct,
        double target_scale = 0.0) const;

    /** Multiplicative depth of evaluate() for this polynomial. */
    static int poly_depth(const ChebyshevPoly& p);
    static int composite_depth(const std::vector<ChebyshevPoly>& stages);
    /** composite_depth + 1 (the final multiplication by x). */
    static int relu_depth(const std::vector<ChebyshevPoly>& stages);

  private:
    /** A generated Chebyshev power with its exact scale. */
    struct Power {
        ckks::Ciphertext ct;
    };
    using PowerBasis = std::map<int, ckks::Ciphertext>;

    /** Result of a recursion node: a ciphertext or an exact scalar. */
    struct NodeResult {
        std::optional<ckks::Ciphertext> ct;
        double constant = 0.0;
    };

    /** Lazily generates T_k with minimal depth (memoized). */
    const ckks::Ciphertext& power(PowerBasis& basis, int k) const;

    NodeResult eval_node(const std::vector<double>& coeffs, int bs,
                         PowerBasis& basis, int target_level,
                         double target_scale) const;

    /** Drops a copy of ct to the given level. */
    ckks::Ciphertext at_level(const ckks::Ciphertext& ct, int level) const;

    static int baby_step_count(int degree);
    static int depth_node(const std::vector<double>& coeffs, int bs);
    static bool is_zero_coeffs(const std::vector<double>& coeffs);

    const ckks::Evaluator* eval_;
    const ckks::Context* ctx_;
};

}  // namespace orion::approx

#endif  // ORION_SRC_APPROX_POLYEVAL_H_
