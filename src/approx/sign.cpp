#include "src/approx/sign.h"

#include <cmath>

#include "src/approx/polyeval.h"

namespace orion::approx {

int
sign_stage_n(int degree)
{
    ORION_CHECK(degree >= 3 && degree % 2 == 1,
                "sign stage degree must be odd and >= 3, got " << degree);
    return (degree - 1) / 2;
}

ChebyshevPoly
sign_stage_poly(int n)
{
    ORION_CHECK(n >= 1 && n <= 30, "sign stage n out of range: " << n);
    // f_n(x) = sum_i 4^{-i} C(2i,i) x (1-x^2)^i, evaluated pointwise and
    // re-fit in the Chebyshev basis (interpolation at degree+1 nodes is
    // exact for a polynomial of that degree).
    std::vector<double> binom(static_cast<std::size_t>(n) + 1);
    binom[0] = 1.0;
    for (int i = 1; i <= n; ++i) {
        // C(2i, i) = C(2(i-1), i-1) * (2i)(2i-1) / i^2.
        binom[static_cast<std::size_t>(i)] =
            binom[static_cast<std::size_t>(i - 1)] *
            (2.0 * i) * (2.0 * i - 1.0) / (static_cast<double>(i) * i);
    }
    auto f = [n, &binom](double x) {
        double acc = 0.0;
        double pow_term = x;  // x * (1-x^2)^i accumulated
        double scale = 1.0;   // 4^{-i}
        for (int i = 0; i <= n; ++i) {
            acc += scale * binom[static_cast<std::size_t>(i)] * pow_term;
            pow_term *= (1.0 - x * x);
            scale *= 0.25;
        }
        return acc;
    };
    ChebyshevPoly p = ChebyshevPoly::fit(f, -1.0, 1.0, 2 * n + 1);
    return p;
}

CompositeSign::CompositeSign(const std::vector<int>& degrees)
{
    ORION_CHECK(!degrees.empty(), "composite sign needs at least one stage");
    stages_.reserve(degrees.size());
    for (int d : degrees) {
        stages_.push_back(sign_stage_poly(sign_stage_n(d)));
    }
}

double
CompositeSign::eval(double x) const
{
    double v = x;
    for (const ChebyshevPoly& s : stages_) v = s.eval(v);
    return v;
}

int
CompositeSign::depth() const
{
    return HePolyEvaluator::composite_depth(stages_);
}

std::vector<ChebyshevPoly>
make_relu_stages(const std::vector<int>& degrees)
{
    CompositeSign sign(degrees);
    std::vector<ChebyshevPoly> stages = sign.stages();
    // Last stage p -> (p + 1) / 2 so the composition is ~ (1 + sign(x)) / 2.
    ChebyshevPoly& last = stages.back();
    std::vector<double> coeffs = last.coefficients();
    for (double& c : coeffs) c *= 0.5;
    coeffs[0] += 0.5;
    last = ChebyshevPoly(std::move(coeffs), last.domain_min(),
                         last.domain_max());
    return stages;
}

double
composite_relu_reference(const std::vector<ChebyshevPoly>& stages, double x)
{
    double v = x;
    for (const ChebyshevPoly& s : stages) v = s.eval(v);
    return x * v;
}

}  // namespace orion::approx
