#ifndef ORION_SRC_APPROX_APPROX_H_
#define ORION_SRC_APPROX_APPROX_H_

/**
 * @file
 * Umbrella header for polynomial approximation machinery.
 */

#include "src/approx/chebyshev.h"
#include "src/approx/polyeval.h"
#include "src/approx/remez.h"
#include "src/approx/sign.h"

#endif  // ORION_SRC_APPROX_APPROX_H_
