#include "src/approx/remez.h"

#include <cmath>
#include <numbers>

namespace orion::approx {

namespace {

/** Chebyshev basis value T_k(u) for u in [-1, 1]. */
double
cheb_t(int k, double u)
{
    // Clamp for acos stability at the boundary.
    const double c = std::max(-1.0, std::min(1.0, u));
    return std::cos(k * std::acos(c));
}

/** Solves the (d+2)x(d+2) dense system by Gaussian elimination. */
std::vector<double>
solve_dense(std::vector<std::vector<double>> m, std::vector<double> rhs)
{
    const int n = static_cast<int>(rhs.size());
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int r = col + 1; r < n; ++r) {
            if (std::abs(m[static_cast<std::size_t>(r)]
                          [static_cast<std::size_t>(col)]) >
                std::abs(m[static_cast<std::size_t>(pivot)]
                          [static_cast<std::size_t>(col)])) {
                pivot = r;
            }
        }
        std::swap(m[static_cast<std::size_t>(col)],
                  m[static_cast<std::size_t>(pivot)]);
        std::swap(rhs[static_cast<std::size_t>(col)],
                  rhs[static_cast<std::size_t>(pivot)]);
        const double diag =
            m[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
        ORION_CHECK(std::abs(diag) > 1e-300, "singular Remez system");
        for (int r = col + 1; r < n; ++r) {
            const double factor = m[static_cast<std::size_t>(r)]
                                   [static_cast<std::size_t>(col)] /
                                  diag;
            if (factor == 0.0) continue;
            for (int c = col; c < n; ++c) {
                m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -=
                    factor * m[static_cast<std::size_t>(col)]
                              [static_cast<std::size_t>(c)];
            }
            rhs[static_cast<std::size_t>(r)] -=
                factor * rhs[static_cast<std::size_t>(col)];
        }
    }
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int r = n - 1; r >= 0; --r) {
        double acc = rhs[static_cast<std::size_t>(r)];
        for (int c = r + 1; c < n; ++c) {
            acc -= m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
                   x[static_cast<std::size_t>(c)];
        }
        x[static_cast<std::size_t>(r)] =
            acc / m[static_cast<std::size_t>(r)][static_cast<std::size_t>(r)];
    }
    return x;
}

}  // namespace

RemezResult
remez_fit(const std::function<double(double)>& f, double a, double b,
          int degree, int max_iterations)
{
    ORION_CHECK(degree >= 1, "Remez needs degree >= 1");
    const int n = degree + 2;  // reference size
    // Initial reference: Chebyshev extrema mapped to [a, b].
    std::vector<double> ref(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const double u = std::cos(std::numbers::pi * i / (n - 1));
        ref[static_cast<std::size_t>(i)] = 0.5 * (a + b) - 0.5 * (b - a) * u;
    }

    ChebyshevPoly best = ChebyshevPoly::fit(f, a, b, degree);
    double best_err = best.max_error(f);
    RemezResult result{best, best_err, 0, false};

    const int grid = std::max(4096, 64 * degree);
    std::vector<double> coeffs(static_cast<std::size_t>(degree + 1));
    for (int iter = 0; iter < max_iterations; ++iter) {
        // Solve p(x_i) + (-1)^i E = f(x_i) in the Chebyshev basis.
        std::vector<std::vector<double>> m(
            static_cast<std::size_t>(n),
            std::vector<double>(static_cast<std::size_t>(n)));
        std::vector<double> rhs(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const double x = ref[static_cast<std::size_t>(i)];
            const double u = (2.0 * x - (a + b)) / (b - a);
            for (int k = 0; k <= degree; ++k) {
                m[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
                    cheb_t(k, u);
            }
            m[static_cast<std::size_t>(i)][static_cast<std::size_t>(n - 1)] =
                (i % 2 == 0) ? 1.0 : -1.0;
            rhs[static_cast<std::size_t>(i)] = f(x);
        }
        const std::vector<double> sol = solve_dense(std::move(m), rhs);
        std::copy(sol.begin(), sol.end() - 1, coeffs.begin());
        const ChebyshevPoly p(coeffs, a, b);

        // Exchange step: pick the extremum of the error in each
        // sign-consistent segment of a dense grid.
        std::vector<double> new_ref;
        new_ref.reserve(static_cast<std::size_t>(n));
        double prev_sign = 0.0;
        double seg_best_x = a;
        double seg_best_v = 0.0;
        double overall_max = 0.0;
        for (int g = 0; g <= grid; ++g) {
            const double x = a + (b - a) * static_cast<double>(g) / grid;
            const double e = p.eval(x) - f(x);
            overall_max = std::max(overall_max, std::abs(e));
            const double sign = e >= 0 ? 1.0 : -1.0;
            if (g == 0 || sign != prev_sign) {
                if (g != 0) new_ref.push_back(seg_best_x);
                prev_sign = sign;
                seg_best_x = x;
                seg_best_v = std::abs(e);
            } else if (std::abs(e) > seg_best_v) {
                seg_best_v = std::abs(e);
                seg_best_x = x;
            }
        }
        new_ref.push_back(seg_best_x);

        if (overall_max < best_err) {
            best = p;
            best_err = overall_max;
            result.poly = best;
            result.minimax_error = best_err;
        }
        result.iterations = iter + 1;

        if (static_cast<int>(new_ref.size()) < n) {
            // Fewer alternations than needed: already effectively minimax
            // (or f is a polynomial of lower degree).
            result.converged = true;
            break;
        }
        // Keep exactly n alternation points (largest-error ones first if
        // there are extras; simplest robust choice: evenly thin the list).
        while (static_cast<int>(new_ref.size()) > n) {
            // Drop the point with the smallest error.
            std::size_t drop = 0;
            double drop_err = 1e300;
            for (std::size_t i = 0; i < new_ref.size(); ++i) {
                const double e = std::abs(p.eval(new_ref[i]) - f(new_ref[i]));
                if (e < drop_err) {
                    drop_err = e;
                    drop = i;
                }
            }
            new_ref.erase(new_ref.begin() +
                          static_cast<std::ptrdiff_t>(drop));
        }
        const double move = [&] {
            double m2 = 0.0;
            for (int i = 0; i < n; ++i) {
                m2 = std::max(m2, std::abs(new_ref[static_cast<std::size_t>(
                                               i)] -
                                           ref[static_cast<std::size_t>(i)]));
            }
            return m2;
        }();
        ref = new_ref;
        if (move < (b - a) * 1e-9) {
            result.converged = true;
            break;
        }
    }
    return result;
}

}  // namespace orion::approx
