#include "src/approx/chebyshev.h"

#include <cmath>
#include <numbers>

namespace orion::approx {

double
ChebyshevPoly::eval(double x) const
{
    // Map to [-1, 1] and run Clenshaw.
    const double u = (2.0 * x - (a_ + b_)) / (b_ - a_);
    double b1 = 0.0;
    double b2 = 0.0;
    for (int k = degree(); k >= 1; --k) {
        const double t = 2.0 * u * b1 - b2 + coeffs_[static_cast<std::size_t>(k)];
        b2 = b1;
        b1 = t;
    }
    return u * b1 - b2 + coeffs_[0];
}

double
ChebyshevPoly::max_error(const std::function<double(double)>& f,
                         int samples) const
{
    double worst = 0.0;
    for (int i = 0; i <= samples; ++i) {
        const double x =
            a_ + (b_ - a_) * static_cast<double>(i) / samples;
        worst = std::max(worst, std::abs(eval(x) - f(x)));
    }
    return worst;
}

ChebyshevPoly
ChebyshevPoly::fit(const std::function<double(double)>& f, double a, double b,
                   int degree)
{
    ORION_CHECK(degree >= 0, "negative degree");
    const int n = degree + 1;
    // Chebyshev nodes of the first kind mapped to [a, b].
    std::vector<double> fx(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
        const double theta =
            std::numbers::pi * (static_cast<double>(j) + 0.5) / n;
        const double u = std::cos(theta);
        fx[static_cast<std::size_t>(j)] =
            f(0.5 * (a + b) + 0.5 * (b - a) * u);
    }
    std::vector<double> coeffs(static_cast<std::size_t>(n), 0.0);
    for (int k = 0; k < n; ++k) {
        double acc = 0.0;
        for (int j = 0; j < n; ++j) {
            acc += fx[static_cast<std::size_t>(j)] *
                   std::cos(std::numbers::pi * k *
                            (static_cast<double>(j) + 0.5) / n);
        }
        coeffs[static_cast<std::size_t>(k)] = (k == 0 ? 1.0 : 2.0) * acc / n;
    }
    return ChebyshevPoly(std::move(coeffs), a, b);
}

void
ChebyshevPoly::truncate(double tol)
{
    while (coeffs_.size() > 2 && std::abs(coeffs_.back()) <= tol) {
        coeffs_.pop_back();
    }
}

}  // namespace orion::approx
