#include "src/approx/polyeval.h"

#include <cmath>

namespace orion::approx {

namespace {

/** Coefficients smaller than this are treated as structural zeros. */
constexpr double kCoeffTol = 1e-12;

int
ceil_log2(int x)
{
    ORION_ASSERT(x >= 1);
    int bits = 0;
    int v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** Highest index with |c| > tol, or -1 if none. */
int
pruned_degree(const std::vector<double>& coeffs)
{
    for (int i = static_cast<int>(coeffs.size()) - 1; i >= 0; --i) {
        if (std::abs(coeffs[static_cast<std::size_t>(i)]) > kCoeffTol) {
            return i;
        }
    }
    return -1;
}

/** Highest index >= 1 with |c| > tol, or 0 if the poly is constant. */
int
pruned_nonconstant_degree(const std::vector<double>& coeffs)
{
    const int d = pruned_degree(coeffs);
    return d >= 1 ? d : 0;
}

/** Splits p = q * T_m + r using T_i = 2 T_m T_{i-m} - T_{2m-i}. */
void
split_chebyshev(const std::vector<double>& coeffs, int m,
                std::vector<double>* q, std::vector<double>* r)
{
    const int d = pruned_degree(coeffs);
    ORION_ASSERT(d >= m && d < 2 * m);
    q->assign(static_cast<std::size_t>(d - m) + 1, 0.0);
    r->assign(coeffs.begin(), coeffs.begin() + m);
    for (int i = d; i >= m; --i) {
        const double c = coeffs[static_cast<std::size_t>(i)];
        if (std::abs(c) <= kCoeffTol) continue;
        if (i == m) {
            (*q)[0] += c;
        } else {
            (*q)[static_cast<std::size_t>(i - m)] += 2.0 * c;
            (*r)[static_cast<std::size_t>(2 * m - i)] -= c;
        }
    }
}

/** The split point: the smallest power-of-two multiple of bs above d/2. */
int
split_point(int degree, int bs)
{
    int m = bs;
    while (2 * m <= degree) m <<= 1;
    return m;
}

}  // namespace

int
HePolyEvaluator::baby_step_count(int degree)
{
    const int root = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(degree) + 1.0)));
    int bs = 2;
    while (bs < root) bs <<= 1;
    return bs;
}

bool
HePolyEvaluator::is_zero_coeffs(const std::vector<double>& coeffs)
{
    return pruned_degree(coeffs) < 0;
}

int
HePolyEvaluator::depth_node(const std::vector<double>& coeffs, int bs)
{
    const int d = pruned_nonconstant_degree(coeffs);
    if (d == 0) return 0;  // constant (or zero)
    if (d < bs) {
        int worst = 0;
        for (int k = 1; k <= d; ++k) {
            if (std::abs(coeffs[static_cast<std::size_t>(k)]) > kCoeffTol) {
                worst = std::max(worst, ceil_log2(k));
            }
        }
        return 1 + worst;
    }
    const int m = split_point(d, bs);
    std::vector<double> q, r;
    split_chebyshev(coeffs, m, &q, &r);
    const int dq = depth_node(q, bs);
    const int dr = depth_node(r, bs);
    const int prod_path =
        is_zero_coeffs(q) ? 0 : 1 + std::max(dq, ceil_log2(m));
    return std::max(prod_path, dr);
}

int
HePolyEvaluator::poly_depth(const ChebyshevPoly& p)
{
    const int bs = baby_step_count(p.degree());
    return (p.canonical_domain() ? 0 : 1) +
           depth_node(p.coefficients(), bs);
}

int
HePolyEvaluator::composite_depth(const std::vector<ChebyshevPoly>& stages)
{
    int d = 0;
    for (const ChebyshevPoly& s : stages) d += poly_depth(s);
    return d;
}

int
HePolyEvaluator::relu_depth(const std::vector<ChebyshevPoly>& stages)
{
    return composite_depth(stages) + 1;
}

ckks::Ciphertext
HePolyEvaluator::at_level(const ckks::Ciphertext& ct, int level) const
{
    ORION_CHECK(ct.level() >= level,
                "needs level " << level << ", have " << ct.level());
    if (ct.level() == level) return ct;
    ckks::Ciphertext out = ct;
    eval_->drop_to_level_inplace(out, level);
    return out;
}

const ckks::Ciphertext&
HePolyEvaluator::power(PowerBasis& basis, int k) const
{
    ORION_ASSERT(k >= 1);
    auto it = basis.find(k);
    if (it != basis.end()) return it->second;

    // T_{a+b} = 2 T_a T_b - T_{a-b} with a = ceil(k/2) for minimal depth.
    const int a = (k + 1) / 2;
    const int b = k / 2;
    const ckks::Ciphertext& ta = power(basis, a);
    const ckks::Ciphertext& tb = power(basis, b);
    const int lvl = std::min(ta.level(), tb.level());
    const ckks::Ciphertext ta_l = at_level(ta, lvl);
    ckks::Ciphertext prod =
        (a == b) ? eval_->square(ta_l) : eval_->mul(ta_l, at_level(tb, lvl));
    // Value 2*T_a*T_b: integer doubling costs neither scale nor level.
    prod.c0.mul_small_scalar_inplace(2);
    prod.c1.mul_small_scalar_inplace(2);

    if (a == b) {
        // Subtract T_0 = 1 at the product's scale.
        const ckks::Plaintext one =
            eval_->encoder().encode_constant(1.0, lvl, prod.scale);
        eval_->sub_plain_inplace(prod, one);
    } else {
        // Subtract T_{a-b} = T_1, scale-aligned with a free constant.
        const ckks::Ciphertext& diff = power(basis, a - b);
        const ckks::Ciphertext diff_l = at_level(diff, lvl);
        const ckks::Plaintext align = eval_->encoder().encode_constant(
            1.0, lvl, prod.scale / diff_l.scale);
        eval_->sub_inplace(prod, eval_->mul_plain(diff_l, align));
    }
    eval_->rescale_inplace(prod);
    return basis.emplace(k, std::move(prod)).first->second;
}

HePolyEvaluator::NodeResult
HePolyEvaluator::eval_node(const std::vector<double>& coeffs, int bs,
                           PowerBasis& basis, int target_level,
                           double target_scale) const
{
    const int d = pruned_nonconstant_degree(coeffs);
    if (d == 0) {
        return {std::nullopt,
                pruned_degree(coeffs) >= 0 ? coeffs[0] : 0.0};
    }

    if (d < bs) {
        // Leaf: sum of c_k T_k brought to a common scale via the free
        // constants, one rescale to land on the target.
        const int work = target_level + 1;
        const double q_work = static_cast<double>(
            ctx_->q(work).value());
        std::optional<ckks::Ciphertext> sum;
        for (int k = 1; k <= d; ++k) {
            const double c = coeffs[static_cast<std::size_t>(k)];
            if (std::abs(c) <= kCoeffTol) continue;
            const ckks::Ciphertext tk = at_level(power(basis, k), work);
            const ckks::Plaintext pc = eval_->encoder().encode_constant(
                c, work, target_scale * q_work / tk.scale);
            ckks::Ciphertext term = eval_->mul_plain(tk, pc);
            // All terms share scale target_scale * q_work by construction;
            // pin the double to avoid ulp drift across additions.
            term.scale = target_scale * q_work;
            if (sum.has_value()) {
                eval_->add_inplace(*sum, term);
            } else {
                sum = std::move(term);
            }
        }
        ORION_ASSERT(sum.has_value());
        if (std::abs(coeffs[0]) > kCoeffTol) {
            eval_->add_constant_inplace(*sum, coeffs[0]);
        }
        eval_->rescale_inplace(*sum);
        ORION_ASSERT(ckks::scales_match(sum->scale, target_scale));
        sum->scale = target_scale;
        return {std::move(sum), 0.0};
    }

    // Split p = q * T_m + r.
    const int m = split_point(d, bs);
    std::vector<double> qc, rc;
    split_chebyshev(coeffs, m, &qc, &rc);

    std::optional<ckks::Ciphertext> prod;
    if (!is_zero_coeffs(qc)) {
        const int work = target_level + 1;
        const double q_work = static_cast<double>(ctx_->q(work).value());
        const ckks::Ciphertext tm = at_level(power(basis, m), work);
        const double s_q = target_scale * q_work / tm.scale;
        const NodeResult qr = eval_node(qc, bs, basis, work, s_q);
        if (qr.ct.has_value()) {
            prod = eval_->mul(*qr.ct, tm);
        } else if (qr.constant != 0.0) {
            const ckks::Plaintext pc = eval_->encoder().encode_constant(
                qr.constant, work, s_q);
            prod = eval_->mul_plain(tm, pc);
        }
        if (prod.has_value()) {
            eval_->rescale_inplace(*prod);
            ORION_ASSERT(ckks::scales_match(prod->scale, target_scale));
            prod->scale = target_scale;
        }
    }

    NodeResult rr = eval_node(rc, bs, basis, target_level, target_scale);
    if (prod.has_value() && rr.ct.has_value()) {
        eval_->add_inplace(*prod, *rr.ct);
        return {std::move(prod), 0.0};
    }
    if (prod.has_value()) {
        if (rr.constant != 0.0) {
            eval_->add_constant_inplace(*prod, rr.constant);
        }
        return {std::move(prod), 0.0};
    }
    return rr;
}

ckks::Ciphertext
HePolyEvaluator::evaluate(const ChebyshevPoly& p, const ckks::Ciphertext& ct,
                          double target_scale) const
{
    if (target_scale == 0.0) target_scale = ctx_->scale();
    const int depth = poly_depth(p);
    ORION_CHECK(ct.level() >= depth,
                "polynomial of depth " << depth << " needs level >= " << depth
                                       << ", input at " << ct.level());

    // Domain scaling u = (2x - (a+b)) / (b-a), one level when not [-1, 1].
    ckks::Ciphertext u = ct;
    if (!p.canonical_domain()) {
        const double a = p.domain_min();
        const double b = p.domain_max();
        const double alpha = 2.0 / (b - a);
        const double beta = -(a + b) / (b - a);
        const double q_top = static_cast<double>(ctx_->q(u.level()).value());
        eval_->mul_plain_inplace(
            u, eval_->encoder().encode_constant(alpha, u.level(), q_top));
        eval_->rescale_inplace(u);
        u.scale = ct.scale;
        if (beta != 0.0) eval_->add_constant_inplace(u, beta);
    }

    const int bs = baby_step_count(p.degree());
    PowerBasis basis;
    basis.emplace(1, u);
    const int d_rec = depth_node(p.coefficients(), bs);
    const int target_level = u.level() - d_rec;
    NodeResult res = eval_node(p.coefficients(), bs, basis, target_level,
                               target_scale);
    if (res.ct.has_value()) return std::move(*res.ct);

    // Degenerate constant polynomial: synthesize const + 0 * input.
    const ckks::Plaintext zero = eval_->encoder().encode_constant(
        0.0, u.level(),
        target_scale * static_cast<double>(ctx_->q(u.level()).value()) /
            u.scale);
    ckks::Ciphertext out = eval_->mul_plain(u, zero);
    eval_->rescale_inplace(out);
    out.scale = target_scale;
    eval_->add_constant_inplace(out, res.constant);
    eval_->drop_to_level_inplace(out, target_level);
    return out;
}

ckks::Ciphertext
HePolyEvaluator::evaluate_composite(const std::vector<ChebyshevPoly>& stages,
                                    const ckks::Ciphertext& ct,
                                    double target_scale) const
{
    ORION_CHECK(!stages.empty(), "empty composite");
    if (target_scale == 0.0) target_scale = ctx_->scale();
    ckks::Ciphertext cur = ct;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const double t =
            (i + 1 == stages.size()) ? target_scale : ctx_->scale();
        cur = evaluate(stages[i], cur, t);
    }
    return cur;
}

ckks::Ciphertext
HePolyEvaluator::evaluate_times_input(
    const std::vector<ChebyshevPoly>& stages, const ckks::Ciphertext& ct,
    double target_scale) const
{
    if (target_scale == 0.0) target_scale = ctx_->scale();
    const int g_level = ct.level() - composite_depth(stages);
    ORION_CHECK(g_level >= 1, "not enough levels for composite-times-input");
    // Choose the composite's output scale so that the final product with x
    // rescales exactly onto the target.
    const double q_final = static_cast<double>(ctx_->q(g_level).value());
    const double t_g = target_scale * q_final / ct.scale;
    const ckks::Ciphertext g = evaluate_composite(stages, ct, t_g);
    ORION_ASSERT(g.level() == g_level);
    ckks::Ciphertext out = eval_->mul(at_level(ct, g_level), g);
    eval_->rescale_inplace(out);
    ORION_ASSERT(ckks::scales_match(out.scale, target_scale));
    out.scale = target_scale;
    return out;
}

}  // namespace orion::approx
