#ifndef ORION_SRC_APPROX_SIGN_H_
#define ORION_SRC_APPROX_SIGN_H_

/**
 * @file
 * Composite minimax sign approximation and the activation specifications
 * built on it (Section 7, "Activation functions").
 *
 * ReLU is evaluated as x * (1 + sign(x)) / 2, where sign is approximated by
 * a composition of low-degree odd polynomials (the paper follows Lee et
 * al.'s composite minimax construction with degrees 15, 15, 27, giving
 * ReLU a multiplicative depth of 14 = 13 for sign + 1 for the product).
 * We instantiate the composition with the provably-convergent odd family
 *
 *   f_n(x) = sum_{i=0}^{n} 4^{-i} C(2i, i) x (1 - x^2)^i
 *
 * of Cheon et al., which maps [-1,1] into [-1,1] and squashes toward +/-1;
 * degrees (15, 15, 27) correspond to n = (7, 7, 13). Each stage is converted
 * to the Chebyshev basis for numerically stable homomorphic evaluation.
 */

#include "src/approx/chebyshev.h"

namespace orion::approx {

/**
 * The odd sign-squashing polynomial f_n (degree 2n+1) in Chebyshev form
 * on [-1, 1].
 */
ChebyshevPoly sign_stage_poly(int n);

/** f_n degree from stage degree: n = (degree - 1) / 2 (degree must be odd). */
int sign_stage_n(int degree);

/**
 * Composite sign approximation sign(x) ~ (s_k o ... o s_1)(x) on [-1, 1],
 * specified by per-stage degrees as in `on.ReLU(degrees=[15, 15, 27])`.
 */
class CompositeSign {
  public:
    explicit CompositeSign(const std::vector<int>& degrees);

    const std::vector<ChebyshevPoly>& stages() const { return stages_; }
    /** Cleartext evaluation (for validation). */
    double eval(double x) const;
    /**
     * Sum of per-stage homomorphic depths as actually consumed by
     * HePolyEvaluator. Note: our rescale-eager, exactly-scaled evaluator
     * consumes ceil(log2(deg+1)) + 1 levels per stage for deg >= 7; the
     * paper's accounting (degrees [15,15,27] -> depth 13) assumes the lazy
     * rescale fusion of Lee et al. See EXPERIMENTS.md.
     */
    int depth() const;

  private:
    std::vector<ChebyshevPoly> stages_;
};

/**
 * Transforms the final stage of a composite sign so the composition yields
 * (1 + sign(x)) / 2; multiplying by x then gives ReLU with one extra level.
 */
std::vector<ChebyshevPoly> make_relu_stages(const std::vector<int>& degrees);

/** Cleartext reference for the composite ReLU (for precision reporting). */
double composite_relu_reference(const std::vector<ChebyshevPoly>& stages,
                                double x);

}  // namespace orion::approx

#endif  // ORION_SRC_APPROX_SIGN_H_
