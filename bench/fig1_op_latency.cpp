/**
 * @file
 * Figure 1: latencies of PMult (a), HRot (b), and Bootstrap (c) as a
 * function of ciphertext level.
 *
 * PMult and HRot are *measured* on the from-scratch CKKS substrate at a
 * functional ring degree; bootstrap latency comes from the analytic cost
 * model (the functional bootstrap is an oracle, see DESIGN.md) at the
 * paper's N = 2^16 scale, and the measured rotation at the top level
 * calibrates the model's single constant. The paper's qualitative shape -
 * roughly linear growth for PMult/HRot in level, superlinear growth of
 * bootstrap latency with L_eff - is the reproduction target.
 */

#include "bench/bench_util.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Figure 1: homomorphic op latency vs ciphertext level");

    ckks::CkksParams params;
    params.poly_degree = u64(1) << 13;
    params.log_scale = 35;
    params.first_prime_bits = 45;
    params.num_scale_primes = 12;
    params.special_prime_bits = 46;
    params.digit_size = 3;
    ckks::Context ctx(params);
    ckks::Encoder enc(ctx);
    ckks::KeyGenerator keygen(ctx, 7);
    const ckks::PublicKey pk = keygen.make_public_key();
    const std::vector<int> steps = {1};
    ckks::GaloisKeys galois = keygen.make_galois_keys(steps);
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Evaluator eval(ctx, enc);
    eval.set_galois_keys(&galois);

    const std::vector<double> m =
        bench::random_vector(ctx.slot_count(), 1.0, 1);

    std::printf("(measured, N = 2^13)\n");
    std::printf("%6s %14s %14s\n", "level", "PMult (ms)", "HRot (ms)");
    double top_rot = 0.0;
    for (int level = 1; level <= ctx.max_level(); ++level) {
        // Smoke: the endpoints are enough to exercise the code path.
        if (bench::smoke() && level != 1 && level != ctx.max_level()) {
            continue;
        }
        const ckks::Plaintext pt = enc.encode(m, level, ctx.scale());
        const ckks::Ciphertext ct = encryptor.encrypt(pt);
        const double t_pmult = bench::time_median(bench::reps(5), [&] {
            ckks::Ciphertext c = ct;
            eval.mul_plain_inplace(c, pt);
        });
        const double t_rot = bench::time_median(bench::reps(5), [&] {
            (void)eval.rotate(ct, 1);
        });
        if (level == ctx.max_level()) top_rot = t_rot;
        std::printf("%6d %14.3f %14.3f\n", level, t_pmult * 1e3,
                    t_rot * 1e3);
        bench::json_metric("pmult_ms_level_" + std::to_string(level),
                           t_pmult * 1e3);
        bench::json_metric("hrot_ms_level_" + std::to_string(level),
                           t_rot * 1e3);
    }

    // Calibrate the paper-scale model from the measured rotation, then
    // report the modeled bootstrap latency (Figure 1c).
    core::CostModel small =
        core::CostModel::for_params(params.poly_degree, params.digit_size,
                                    params.digit_size, 3);
    small.calibrate(top_rot, ctx.max_level());
    core::CostModel paper = core::CostModel::paper_scale();
    paper.calibrate(top_rot * 8.0 * 16.0 / 13.0, ctx.max_level());

    std::printf("\n(modeled bootstrap, N = 2^16, L_boot = 14; Figure 1c)\n");
    std::printf("%6s %18s\n", "L_eff", "Bootstrap (s)");
    double prev = 0.0;
    double prev_growth = 0.0;
    bool superlinear = true;
    for (int l_eff = 2; l_eff <= 16; l_eff += 2) {
        const double t = paper.bootstrap(l_eff);
        std::printf("%6d %18.3f\n", l_eff, t);
        if (prev > 0.0) {
            const double growth = t - prev;
            if (prev_growth > 0.0 && growth < prev_growth) {
                superlinear = false;
            }
            prev_growth = growth;
        }
        prev = t;
    }
    std::printf("\nshape check: bootstrap latency grows %s with L_eff "
                "(paper: superlinear)\n",
                superlinear ? "superlinearly" : "sublinearly");
    return 0;
}
