/**
 * @file
 * Figure 8 / Section 8.6: the first high-resolution homomorphic object
 * detection - YOLO-v1 (ResNet-34 backbone, 139M parameters) on a
 * 448 x 448 x 3 image.
 *
 * Without PASCAL-VOC weights the detections are not semantically
 * meaningful; the reproduction target is the *system* result: the
 * compiler handles a 139M-parameter detector end to end, the functional
 * backend executes it, the decoded 7x7x30 tensor matches the cleartext
 * network, and boxes + confidences decode exactly as the paper's
 * pipeline. The modeled single-thread latency is reported against the
 * paper's 17.5 hours.
 */

#include "bench/bench_util.h"

using namespace orion;

namespace {

struct Detection {
    int cell_y, cell_x, cls;
    double confidence;
    double x, y, w, h;
};

/** Decodes the YOLO-v1 7x7x30 output tensor into detections. */
std::vector<Detection>
decode_yolo(const std::vector<double>& out, double threshold)
{
    std::vector<Detection> dets;
    for (int cy = 0; cy < 7; ++cy) {
        for (int cx = 0; cx < 7; ++cx) {
            const std::size_t base =
                (static_cast<std::size_t>(cy) * 7 + cx) * 30;
            int best_cls = 0;
            for (int c = 1; c < 20; ++c) {
                if (out[base + c] > out[base + best_cls]) best_cls = c;
            }
            for (int b = 0; b < 2; ++b) {
                const std::size_t bb = base + 20 + 5 * static_cast<std::size_t>(b);
                const double conf = out[bb + 4] * out[base + best_cls];
                if (conf > threshold) {
                    dets.push_back({cy, cx, best_cls, conf, out[bb],
                                    out[bb + 1], out[bb + 2], out[bb + 3]});
                }
            }
        }
    }
    std::sort(dets.begin(), dets.end(),
              [](const Detection& a, const Detection& b) {
                  return a.confidence > b.confidence;
              });
    return dets;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Figure 8: YOLO-v1 object detection under FHE (448x448x3)");

    // Smoke: building + forwarding the 270M-parameter YOLO-v1 takes
    // minutes of CPU; a small CNN exercises the same compile/simulate
    // pipeline (the detection decode below is skipped for it).
    const nn::Network net =
        bench::smoke() ? nn::make_model("lenet5") : nn::make_yolo_v1();
    std::printf("model: %s, %.1fM parameters, %.1fG multiplies\n",
                net.network_name().c_str(), net.param_count() / 1e6,
                net.flop_count() / 1e9);
    std::fflush(stdout);

    core::CompileOptions opt;
    opt.slots = u64(1) << 15;
    opt.l_eff = 10;
    opt.structural_only = true;
    opt.calibration_samples = 1;
    const core::CompiledNetwork cn = core::compile(net, opt);
    std::printf("compiled in %.1f s (placement %.2f s): %llu rotations, "
                "%llu bootstraps, act depth %d\n",
                cn.compile_seconds, cn.placement_seconds,
                static_cast<unsigned long long>(cn.total_rotations),
                static_cast<unsigned long long>(cn.num_bootstraps),
                cn.activation_depth);
    std::fflush(stdout);

    // Synthetic image -> functional FHE inference.
    const std::vector<double> image = bench::random_vector(
        net.shape_of(net.input_id()).size(), 1.0, 7);
    core::SimExecutor sim(cn, 1e-6);
    const core::ExecutionResult r = sim.run(image);
    const std::vector<double> clear = net.forward(image);

    const double prec = bench::precision_bits(r.output, clear);
    std::printf("\nFHE-vs-cleartext output precision: %.1f bits "
                "(paper reports ~8.6b on its ResNet-34 backbone)\n",
                prec);

    if (r.output.size() < 7 * 7 * 30) {
        std::printf("(smoke stand-in model: detection decode skipped)\n");
        return 0;
    }
    const std::vector<Detection> fhe_dets = decode_yolo(r.output, 0.05);
    const std::vector<Detection> clear_dets = decode_yolo(clear, 0.05);
    std::printf("detections (FHE): %zu, (cleartext): %zu\n",
                fhe_dets.size(), clear_dets.size());
    const std::size_t show = std::min<std::size_t>(4, fhe_dets.size());
    for (std::size_t i = 0; i < show; ++i) {
        const Detection& d = fhe_dets[i];
        std::printf("  cell (%d,%d) class %2d conf %.2f box "
                    "[%.2f %.2f %.2f %.2f]\n",
                    d.cell_y, d.cell_x, d.cls, d.confidence, d.x, d.y, d.w,
                    d.h);
    }
    // Compare the top detection only: deeper ranks reorder freely when
    // untrained confidences tie within the FHE noise.
    const bool agree =
        !fhe_dets.empty() && !clear_dets.empty() &&
        fhe_dets[0].cls == clear_dets[0].cls &&
        fhe_dets[0].cell_y == clear_dets[0].cell_y &&
        fhe_dets[0].cell_x == clear_dets[0].cell_x;
    std::printf("top FHE and cleartext detections agree: %s\n",
                agree ? "yes" : "no");
    std::printf("\nmodeled single-thread latency at N=2^16: %.1f hours "
                "(paper: 17.5 hours measured on Xeon 8581C)\n",
                cn.modeled_latency / 3600.0);
    return 0;
}
