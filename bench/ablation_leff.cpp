/**
 * @file
 * Ablation: the L_eff trade-off the paper motivates with Figure 1 ("Setting
 * L_eff too low would require many low-latency bootstraps, while setting it
 * too high would result in fewer but higher-latency bootstraps. We set
 * L_eff = 10.").
 *
 * This bench sweeps L_eff for ResNet-20 (composite ReLU) and reports the
 * modeled end-to-end latency and bootstrap count at each setting, plus two
 * further ablations of DESIGN.md's design choices: BSGS on/off and
 * multiplexed vs raster packing.
 */

#include "bench/bench_util.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Ablation: L_eff sweep + packing/BSGS ablations on ResNet-20");

    const nn::Network net = nn::make_resnet_cifar(20, nn::Act::kRelu);

    std::printf("%6s %10s %14s %16s\n", "L_eff", "#boots", "latency (s)",
                "boot cost (s)");
    double best = 1e300;
    int best_leff = 0;
    // The composite [15,15,27] sign stages need >= 6 levels per stage
    // under our evaluator, so the sweep starts at 6.
    for (int l_eff = 6; l_eff <= 18; l_eff += 2) {
        if (bench::smoke() && l_eff != 6 && l_eff != 10) continue;
        core::CompileOptions opt;
        opt.slots = u64(1) << 15;
        opt.l_eff = l_eff;
        opt.structural_only = true;
        opt.calibration_samples = 1;
        const core::CompiledNetwork cn = core::compile(net, opt);
        std::printf("%6d %10llu %14.1f %16.2f\n", l_eff,
                    static_cast<unsigned long long>(cn.num_bootstraps),
                    cn.modeled_latency, opt.cost.bootstrap(l_eff));
        if (cn.modeled_latency < best) {
            best = cn.modeled_latency;
            best_leff = l_eff;
        }
        std::fflush(stdout);
    }
    std::printf("\nminimum modeled latency at L_eff = %d "
                "(paper selects L_eff = 10)\n",
                best_leff);

    // Design-choice ablations at L_eff = 10.
    std::printf("\n%-34s %10s %10s %14s\n", "configuration", "#rots",
                "#boots", "latency (s)");
    struct Config {
        const char* name;
        bool bsgs;
        core::CompileOptions::Packing packing;
        bool lazy;
    };
    const Config configs[] = {
        {"Orion (BSGS + multiplexed)", true,
         core::CompileOptions::Packing::kMultiplexed, false},
        {"- BSGS (diagonal method)", false,
         core::CompileOptions::Packing::kMultiplexed, false},
        {"- multiplexing (raster packing)", true,
         core::CompileOptions::Packing::kRaster, false},
        {"- optimal placement (lazy)", true,
         core::CompileOptions::Packing::kMultiplexed, true},
    };
    for (const Config& c : configs) {
        // Smoke: the full Orion configuration plus one ablation suffice.
        if (bench::smoke() && c.packing == core::CompileOptions::Packing::kRaster) {
            continue;
        }
        core::CompileOptions opt;
        opt.slots = u64(1) << 15;
        opt.l_eff = 10;
        opt.structural_only = true;
        opt.calibration_samples = 1;
        opt.use_bsgs = c.bsgs;
        opt.packing = c.packing;
        opt.lazy_placement = c.lazy;
        const core::CompiledNetwork cn = core::compile(net, opt);
        std::printf("%-34s %10llu %10llu %14.1f\n", c.name,
                    static_cast<unsigned long long>(cn.total_rotations),
                    static_cast<unsigned long long>(cn.num_bootstraps),
                    cn.modeled_latency);
        std::fflush(stdout);
    }
    std::printf("\n(each removed optimization increases modeled latency; "
                "together they are the\n paper's three contribution axes: "
                "packing, placement, execution strategy)\n");
    return 0;
}
