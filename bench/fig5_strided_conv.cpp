/**
 * @file
 * Figure 5: strided convolutions under raster packing produce Toeplitz
 * matrices with many sparse nonzero diagonals (a); single-shot multiplexed
 * packing (gap_out = gap_in * stride) keeps them densely diagonal (b).
 * This bench sweeps strides and channel counts, reporting nonzero-diagonal
 * and rotation counts for both packings plus the Lee-et-al. two-level
 * alternative.
 */

#include "bench/bench_util.h"
#include "src/baselines/lee_packing.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Figure 5: strided convolutions - raster Toeplitz vs single-shot "
        "multiplexed");

    const u64 slots = 1u << 14;
    std::printf("%-30s %12s %12s | %12s %12s | %10s %6s\n", "conv",
                "raster diag", "raster rot", "mux diag", "mux rot",
                "Lee rot", "depth");

    struct Case {
        int ci, co, h, w, k, stride;
    };
    const std::vector<Case> cases = {
        {1, 4, 16, 16, 2, 2},   // the paper's Figure 5 example family
        {3, 16, 32, 32, 3, 2},  // CIFAR stem-style
        {16, 32, 32, 32, 3, 2}, // ResNet-20 stage transition
        {32, 64, 16, 16, 3, 2}, // deeper transition
        {16, 16, 32, 32, 3, 1}, // non-strided control (identical packings)
    };

    for (const Case& c : cases) {
        lin::Conv2dSpec spec;
        spec.in_channels = c.ci;
        spec.out_channels = c.co;
        spec.kernel_h = spec.kernel_w = c.k;
        spec.stride = c.stride;
        spec.pad = c.k / 2;
        const lin::TensorLayout in(c.ci, c.h, c.w, 1);

        // Raster: output stays gap 1 (Figure 5a).
        const lin::TensorLayout raster_out(c.co, spec.out_h(c.h),
                                           spec.out_w(c.w), 1);
        const lin::BlockedStructure raster =
            lin::build_conv_structure(spec, in, raster_out, slots);
        const lin::BlockedPlan raster_plan =
            lin::BlockedPlan::build_from_structure(
                slots, raster.row_blocks(), raster.col_blocks(),
                raster.blocks);

        // Multiplexed: gap_out = stride (Figure 5b).
        const lin::TensorLayout mux_out = lin::conv_output_layout(spec, in);
        const lin::BlockedStructure mux =
            lin::build_conv_structure(spec, in, mux_out, slots);
        const lin::BlockedPlan mux_plan =
            lin::BlockedPlan::build_from_structure(
                slots, mux.row_blocks(), mux.col_blocks(), mux.blocks);

        const baselines::LeeLayerCounts lee =
            baselines::lee_conv_counts(spec, in, slots);

        char name[64];
        std::snprintf(name, sizeof(name), "%dx%d %d->%d k%d s%d", c.h, c.w,
                      c.ci, c.co, c.k, c.stride);
        std::printf("%-30s %12llu %12llu | %12llu %12llu | %10llu %6d\n",
                    name,
                    static_cast<unsigned long long>(raster.num_diagonals()),
                    static_cast<unsigned long long>(
                        raster_plan.rotation_count()),
                    static_cast<unsigned long long>(mux.num_diagonals()),
                    static_cast<unsigned long long>(
                        mux_plan.rotation_count()),
                    static_cast<unsigned long long>(lee.rotations),
                    lee.depth);
    }
    std::printf("\n(multiplexed depth is always 1; Lee et al. strided "
                "convs cost depth 2)\n");
    return 0;
}
