/**
 * @file
 * Figures 3 & 4: the packed-SISO method of Gazelle is the diagonal method
 * applied to the convolution's Toeplitz matrix; Orion's contribution is
 * recognizing this and applying BSGS + hoisting. This bench counts
 * rotations both ways for SISO (Figure 3) and MIMO (Figure 4)
 * convolutions and validates correctness under encryption.
 */

#include "bench/bench_util.h"

using namespace orion;

namespace {

void
report(const char* name, const lin::Conv2dSpec& spec,
       const lin::TensorLayout& in, u64 slots)
{
    const lin::TensorLayout out = lin::conv_output_layout(spec, in);
    const lin::BlockedStructure s =
        lin::build_conv_structure(spec, in, out, slots);
    const lin::BlockedPlan gazelle = lin::BlockedPlan::build_from_structure(
        slots, s.row_blocks(), s.col_blocks(), s.blocks, /*n1=*/1);
    const lin::BlockedPlan orion = lin::BlockedPlan::build_from_structure(
        slots, s.row_blocks(), s.col_blocks(), s.blocks);
    std::printf("%-28s %10llu %14llu %14llu\n", name,
                static_cast<unsigned long long>(s.num_diagonals()),
                static_cast<unsigned long long>(gazelle.rotation_count()),
                static_cast<unsigned long long>(orion.rotation_count()));
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Figures 3-4: packed SISO/MIMO conv = Toeplitz diagonal method;\n"
        "Orion adds BSGS (rotations O(f) -> O(sqrt f))");

    const u64 slots = 1u << 14;
    std::printf("%-28s %10s %14s %14s\n", "convolution", "#diags",
                "Gazelle rots", "Orion rots");

    {  // Figure 3: 3x3 SISO same-style conv on 32x32.
        lin::Conv2dSpec spec;
        spec.kernel_h = spec.kernel_w = 3;
        spec.pad = 1;
        report("SISO 3x3 (32x32)", spec, lin::TensorLayout(1, 32, 32, 1),
               slots);
    }
    {  // Figure 4: MIMO ci = co = 2.
        lin::Conv2dSpec spec;
        spec.in_channels = spec.out_channels = 2;
        spec.kernel_h = spec.kernel_w = 3;
        spec.pad = 1;
        report("MIMO 2->2 3x3 (32x32)", spec,
               lin::TensorLayout(2, 32, 32, 1), slots);
    }
    {  // Larger MIMO: the BSGS advantage grows with filter count.
        lin::Conv2dSpec spec;
        spec.in_channels = 16;
        spec.out_channels = 16;
        spec.kernel_h = spec.kernel_w = 3;
        spec.pad = 1;
        report("MIMO 16->16 3x3 (32x32)", spec,
               lin::TensorLayout(16, 32, 32, 1), slots);
    }
    {
        lin::Conv2dSpec spec;
        spec.in_channels = 32;
        spec.out_channels = 64;
        spec.kernel_h = spec.kernel_w = 5;
        spec.pad = 2;
        report("MIMO 32->64 5x5 (16x16)", spec,
               lin::TensorLayout(32, 16, 16, 1), slots);
    }

    // Correctness under encryption for the Figure 3 example.
    ckks::CkksParams params = ckks::CkksParams::toy();
    ckks::Context ctx(params);
    ckks::Encoder enc(ctx);
    ckks::KeyGenerator keygen(ctx, 7);
    const ckks::PublicKey pk = keygen.make_public_key();
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Evaluator eval(ctx, enc);

    lin::Conv2dSpec spec;
    spec.kernel_h = spec.kernel_w = 3;
    spec.pad = 1;
    const lin::TensorLayout in(1, 16, 16, 1);
    const lin::TensorLayout out = lin::conv_output_layout(spec, in);
    const std::vector<double> w = bench::random_vector(9, 1.0, 7);
    const lin::BlockedMatrix m =
        lin::build_conv_matrix(spec, w, in, out, ctx.slot_count());
    const lin::BlockedPlan plan = lin::BlockedPlan::build(m);
    ckks::GaloisKeys galois = keygen.make_galois_keys(plan.required_steps());
    eval.set_galois_keys(&galois);
    const lin::HeBlockedMatrix he(ctx, enc, m, plan, 2,
                                  static_cast<double>(ctx.q(2).value()));

    const std::vector<double> img = bench::random_vector(256, 1.0, 8);
    const std::vector<ckks::Ciphertext> cts = {encryptor.encrypt(enc.encode(
        in.pack(img, ctx.slot_count()), 2, ctx.scale()))};
    const double t = bench::time_median(bench::reps(3),
                                        [&] { (void)he.apply(eval, cts); });
    const std::vector<ckks::Ciphertext> y = he.apply(eval, cts);
    ckks::Decryptor dec(ctx, keygen.secret_key());
    const std::vector<double> got =
        out.unpack(enc.decode(dec.decrypt(y[0])));
    const std::vector<double> want =
        lin::conv2d_reference(spec, w, img, 16, 16);
    std::printf("\nSISO 3x3 under encryption: %.2f ms, max err %.2e "
                "(vs cleartext conv)\n",
                t * 1e3, bench::max_abs_diff(got, want));
    return 0;
}
