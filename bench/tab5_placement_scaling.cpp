/**
 * @file
 * Table 5: scalability of automatic bootstrap placement with ResNet depth.
 * Columns: compile time, bootstrap placement time, bootstrap count, for
 * ResNet-20/32/44/56/110 with the composite ReLU.
 *
 * Paper: compile 437..2132 s (dominated by diagonal generation/encoding on
 * their N = 2^16 testbed), placement 1.94..11.0 s growing linearly,
 * bootstraps 37..217 growing linearly. The linear growth of placement
 * time and bootstrap count with depth is the reproduction target.
 */

#include "bench/bench_util.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Table 5: bootstrap placement scalability on CIFAR ResNets");

    std::printf("%-12s %12s %16s %10s %10s %8s\n", "network",
                "compile (s)", "placement (s)", "#boots", "#sites",
                "units");
    double first_place = 0.0;
    u64 first_boots = 0;
    int first_depth = 0;
    std::vector<int> depths = {20, 32, 44, 56, 110};
    if (bench::smoke()) depths = {20, 32};
    for (int depth : depths) {
        const nn::Network net = nn::make_resnet_cifar(depth, nn::Act::kRelu);
        core::CompileOptions opt;
        opt.slots = u64(1) << 15;
        opt.l_eff = 10;
        opt.structural_only = true;
        opt.calibration_samples = 1;
        const core::CompiledNetwork cn = core::compile(net, opt);
        std::printf("%-12s %12.2f %16.4f %10llu %10llu %8zu\n",
                    net.network_name().c_str(), cn.compile_seconds,
                    cn.placement_seconds,
                    static_cast<unsigned long long>(cn.num_bootstraps),
                    static_cast<unsigned long long>(
                        cn.placement.num_bootstrap_sites),
                    cn.program.size());
        std::fflush(stdout);
        if (depth == 20) {
            first_place = cn.placement_seconds;
            first_boots = cn.num_bootstraps;
            first_depth = depth;
        }
        if (depth == 110 && first_place > 0) {
            std::printf(
                "\nscaling 20 -> 110: placement time x%.1f, bootstraps "
                "x%.1f (depth x%.1f; paper: ~5.7x and ~5.9x)\n",
                cn.placement_seconds / std::max(first_place, 1e-6),
                static_cast<double>(cn.num_bootstraps) /
                    static_cast<double>(std::max<u64>(first_boots, 1)),
                static_cast<double>(depth) / first_depth);
        }
    }
    return 0;
}
