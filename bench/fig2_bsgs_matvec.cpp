/**
 * @file
 * Figure 2: the diagonal method (a) needs one rotation per nonzero
 * diagonal; BSGS (b) reduces an n x n matvec to ~2*sqrt(n) rotations.
 * Rotation counts are exact (from the plans); times are measured on the
 * CKKS substrate for the slot-sized case.
 */

#include <thread>

#include "bench/bench_util.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "Figure 2: diagonal method vs BSGS matrix-vector products");

    std::printf("%8s %16s %14s %14s\n", "n", "diag rots O(n)",
                "BSGS rots", "BSGS n1");
    for (u64 n : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
        std::vector<u64> all(n);
        for (u64 i = 0; i < n; ++i) all[i] = i;
        const lin::BsgsPlan diag = lin::BsgsPlan::build_from_indices(n, all, 1);
        const lin::BsgsPlan bsgs = lin::BsgsPlan::build_from_indices(n, all);
        std::printf("%8llu %16llu %14llu %14llu\n",
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(diag.rotation_count()),
                    static_cast<unsigned long long>(bsgs.rotation_count()),
                    static_cast<unsigned long long>(bsgs.n1));
    }

    // Measured: a dense slot-sized matvec under both plans.
    ckks::CkksParams params = ckks::CkksParams::toy();
    ckks::Context ctx(params);
    ckks::Encoder enc(ctx);
    ckks::KeyGenerator keygen(ctx, 7);
    const ckks::PublicKey pk = keygen.make_public_key();
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Evaluator eval(ctx, enc);

    const u64 dim = ctx.slot_count();
    lin::DiagonalMatrix m(dim);
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> dist(-0.5, 0.5);
    // A 64-diagonal band keeps encode time manageable while showing the
    // rotation gap.
    for (u64 k = 0; k < 64; ++k) {
        for (u64 r = 0; r < dim; ++r) m.set(r, (r + k) % dim, dist(rng));
    }
    const lin::BsgsPlan plan_diag = lin::BsgsPlan::build(m, 1);
    const lin::BsgsPlan plan_bsgs = lin::BsgsPlan::build(m);

    std::vector<int> steps = plan_diag.required_steps();
    for (int s : plan_bsgs.required_steps()) steps.push_back(s);
    ckks::GaloisKeys galois = keygen.make_galois_keys(steps);
    eval.set_galois_keys(&galois);

    const int level = 3;
    const double w_scale = static_cast<double>(ctx.q(level).value());
    const lin::HeDiagonalMatrix he_diag(ctx, enc, m, plan_diag, level,
                                        w_scale);
    const lin::HeDiagonalMatrix he_bsgs(ctx, enc, m, plan_bsgs, level,
                                        w_scale);
    const ckks::Ciphertext ct = encryptor.encrypt(
        enc.encode(bench::random_vector(dim, 1.0, 6), level, ctx.scale()));

    const double t_diag = bench::time_median(
        bench::reps(3), [&] { (void)he_diag.apply(eval, ct); });
    const double t_bsgs = bench::time_median(
        bench::reps(3), [&] { (void)he_bsgs.apply(eval, ct); });
    std::printf("\n(measured, N = 2^11, 64-diagonal band, slot dim %llu)\n",
                static_cast<unsigned long long>(dim));
    std::printf("diagonal method: %4llu rots, %8.2f ms\n",
                static_cast<unsigned long long>(plan_diag.rotation_count()),
                t_diag * 1e3);
    std::printf("BSGS:            %4llu rots, %8.2f ms  (%.2fx faster)\n",
                static_cast<unsigned long long>(plan_bsgs.rotation_count()),
                t_bsgs * 1e3, t_diag / t_bsgs);
    bench::json_metric("diag_matvec_ms", t_diag * 1e3);
    bench::json_metric("bsgs_matvec_ms", t_bsgs * 1e3);

    // Thread scaling of the same BSGS matvec: the decrypted output must be
    // identical at every thread count (the runtime's determinism
    // guarantee), only the wall clock may change.
    ckks::Decryptor dec(ctx, keygen.secret_key());
    std::printf("\nBSGS matvec thread scaling (num_threads knob; "
                "%u hardware threads on this host):\n",
                std::thread::hardware_concurrency());
    std::printf("%8s %12s %10s %12s\n", "threads", "ms", "speedup",
                "output");
    double t1 = 0.0;
    std::vector<double> out1;
    bool diverged = false;
    for (int threads : {1, 2, 4, 8}) {
        const core::ScopedNumThreads scoped(threads);
        const double t = bench::time_median(
            bench::reps(3), [&] { (void)he_bsgs.apply(eval, ct); });
        const std::vector<double> out =
            enc.decode(dec.decrypt(he_bsgs.apply(eval, ct)));
        if (threads == 1) {
            t1 = t;
            out1 = out;
        }
        const double diff = bench::max_abs_diff(out, out1);
        if (diff != 0.0) diverged = true;
        std::printf("%8d %12.2f %9.2fx %12s\n", threads, t * 1e3, t1 / t,
                    diff == 0.0 ? "identical" : "DIVERGED");
        bench::json_metric("bsgs_matvec_ms_threads_" + std::to_string(threads),
                           t * 1e3);
    }
    if (std::thread::hardware_concurrency() <= 1) {
        std::printf("(single-core host: speedup requires multiple cores; "
                    "outputs above still verify determinism)\n");
    }
    if (diverged) {
        std::fprintf(stderr, "FAIL: multithreaded BSGS output diverged "
                             "from num_threads=1\n");
        return 1;
    }
    return 0;
}
