#!/usr/bin/env python3
"""Fails when a benchmark JSON regresses against a checked-in baseline.

Usage:
    check_regression.py BASELINE.json CURRENT.json [--max-regress 0.10]
                        [--prefix sweep_] [--allow-missing SUBSTR]...

Both files are the --json reports the bench binaries write. Every metric
key present in the BASELINE whose name ends in `_ms` (a latency) is
compared; CURRENT may be at most (1 + max_regress) times the BASELINE
value. Non-latency keys (counters, sizes, ISA ids) are ignored — they
describe the run rather than its speed.

A baseline `_ms` key that is absent from CURRENT is an error: a silently
vanished metric would otherwise let a regression hide behind a renamed or
dropped measurement. When the absence is expected (e.g. the baseline was
recorded on an AVX-512 host and CI is not), pass
`--allow-missing avx512`; the flag is repeatable and matches keys by
substring. Keys only present in CURRENT never fail the check, so adding
new metrics does not break CI.

A per-metric summary table (baseline vs current vs ratio) is printed on
every run, success included, so CI logs always show the actual numbers.

Exit status: 0 when no compared metric regresses and no required baseline
metric is missing, 1 otherwise.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", {})
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: 'metrics' is not an object")
    return doc, metrics


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="allowed fractional slowdown (default 0.10 = 10%%)")
    ap.add_argument("--prefix", default="",
                    help="only compare metric keys with this prefix")
    ap.add_argument("--allow-missing", action="append", default=[],
                    metavar="SUBSTR",
                    help="baseline keys containing SUBSTR may be absent "
                         "from the current run (repeatable)")
    ap.add_argument("--verbose", action="store_true",
                    help="kept for compatibility; the summary table is "
                         "now always printed")
    args = ap.parse_args()

    base_doc, base = load_metrics(args.baseline)
    cur_doc, cur = load_metrics(args.current)

    if base_doc.get("smoke") or cur_doc.get("smoke"):
        print("note: comparing smoke-mode runs; timings are unreliable",
              file=sys.stderr)

    def in_scope(key):
        if not key.endswith("_ms"):
            return False
        if args.prefix and not key.startswith(args.prefix):
            return False
        return True

    rows = []      # (mark, key, old, new, ratio)
    failures = []
    missing = []   # baseline keys absent from current and not allowed
    skipped_missing = 0
    for key in sorted(k for k in base if in_scope(k)):
        if key not in cur:
            if any(sub in key for sub in args.allow_missing):
                skipped_missing += 1
                continue
            missing.append(key)
            continue
        old, new = float(base[key]), float(cur[key])
        if old <= 0.0:
            continue  # degenerate baseline cell; nothing to compare against
        ratio = new / old
        regressed = ratio > 1.0 + args.max_regress
        mark = "FAIL" if regressed else "ok"
        rows.append((mark, key, old, new, ratio))
        if regressed:
            failures.append((key, old, new, ratio))

    if rows:
        width = max(len(r[1]) for r in rows)
        print(f"{'':4s} {'metric':{width}s} {'baseline':>12s} "
              f"{'current':>12s} {'ratio':>7s}")
        for mark, key, old, new, ratio in rows:
            print(f"{mark:4s} {key:{width}s} {old:>9.4f} ms {new:>9.4f} ms "
                  f"{ratio:>6.2f}x")

    only_cur = sorted(k for k in cur if k not in base and in_scope(k))
    if only_cur:
        print(f"note: {len(only_cur)} new metric(s) not in baseline: "
              f"{', '.join(only_cur[:5])}"
              f"{' ...' if len(only_cur) > 5 else ''}")
    if skipped_missing:
        print(f"note: {skipped_missing} baseline metric(s) absent from the "
              f"current run but matched --allow-missing")

    ok = True
    if missing:
        print(f"\nerror: {len(missing)} baseline metric(s) missing from "
              f"{args.current} (pass --allow-missing SUBSTR if expected):",
              file=sys.stderr)
        for key in missing:
            print(f"  {key}", file=sys.stderr)
        ok = False
    if not rows and not missing:
        print("error: no comparable metrics between the two reports",
              file=sys.stderr)
        ok = False
    if failures:
        print(f"\n{len(failures)}/{len(rows)} metric(s) regressed more than "
              f"{args.max_regress:.0%}:")
        for key, old, new, ratio in failures:
            print(f"  {key}: {old:.4f} -> {new:.4f} ms ({ratio:.2f}x)")
        ok = False
    if ok:
        print(f"all {len(rows)} compared metrics within "
              f"{args.max_regress:.0%} of baseline")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
