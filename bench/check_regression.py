#!/usr/bin/env python3
"""Fails when a benchmark JSON regresses against a checked-in baseline.

Usage:
    check_regression.py BASELINE.json CURRENT.json [--max-regress 0.10]
                        [--prefix sweep_] [--verbose]

Both files are the --json reports the bench binaries write. Every metric
key present in BOTH files whose name ends in `_ms` (a latency) is
compared; CURRENT may be at most (1 + max_regress) times the BASELINE
value. Non-latency keys (counters, sizes, ISA ids) are ignored — they
describe the run rather than its speed. Keys only present on one side are
reported but never fail the check, so adding new metrics (or running a
sweep on a host without AVX-512) does not break CI.

Exit status: 0 when no compared metric regresses, 1 otherwise.
"""

import argparse
import json
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", {})
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: 'metrics' is not an object")
    return doc, metrics


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="allowed fractional slowdown (default 0.10 = 10%%)")
    ap.add_argument("--prefix", default="",
                    help="only compare metric keys with this prefix")
    ap.add_argument("--verbose", action="store_true",
                    help="print every compared metric, not just failures")
    args = ap.parse_args()

    base_doc, base = load_metrics(args.baseline)
    cur_doc, cur = load_metrics(args.current)

    if base_doc.get("smoke") or cur_doc.get("smoke"):
        print("note: comparing smoke-mode runs; timings are unreliable",
              file=sys.stderr)

    compared = 0
    failures = []
    for key in sorted(set(base) & set(cur)):
        if not key.endswith("_ms"):
            continue
        if args.prefix and not key.startswith(args.prefix):
            continue
        old, new = float(base[key]), float(cur[key])
        if old <= 0.0:
            continue  # degenerate baseline cell; nothing to compare against
        compared += 1
        ratio = new / old
        regressed = ratio > 1.0 + args.max_regress
        if regressed:
            failures.append((key, old, new, ratio))
        if args.verbose or regressed:
            mark = "FAIL" if regressed else "ok"
            print(f"{mark:4s} {key}: {old:.4f} -> {new:.4f} ms "
                  f"({ratio:.2f}x)")

    only_base = sorted(k for k in base if k not in cur and k.endswith("_ms"))
    only_cur = sorted(k for k in cur if k not in base and k.endswith("_ms"))
    if only_base:
        print(f"note: {len(only_base)} baseline metric(s) missing from "
              f"current run: {', '.join(only_base[:5])}"
              f"{' ...' if len(only_base) > 5 else ''}")
    if only_cur:
        print(f"note: {len(only_cur)} new metric(s) not in baseline: "
              f"{', '.join(only_cur[:5])}"
              f"{' ...' if len(only_cur) > 5 else ''}")

    if compared == 0:
        print("error: no comparable metrics between the two reports",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)}/{compared} metric(s) regressed more than "
              f"{args.max_regress:.0%}:")
        for key, old, new, ratio in failures:
            print(f"  {key}: {old:.4f} -> {new:.4f} ms ({ratio:.2f}x)")
        return 1
    print(f"all {compared} compared metrics within {args.max_regress:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
