#ifndef ORION_BENCH_BENCH_UTIL_H_
#define ORION_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the per-table/figure benchmark binaries. Each binary
 * regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints it in a comparable layout.
 */

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "src/core/orion.h"

namespace orion::bench {

inline std::vector<double>
random_vector(std::size_t n, double range = 1.0, u64 seed = 42)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-range, range);
    std::vector<double> out(n);
    for (double& x : out) x = dist(rng);
    return out;
}

/** Wall-clock seconds of one call. */
template <typename F>
double
time_once(F&& f)
{
    const auto t0 = std::chrono::steady_clock::now();
    f();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Median wall-clock seconds over `reps` calls. */
template <typename F>
double
time_median(int reps, F&& f)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) times.push_back(time_once(f));
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

/** Max |a - b| over the common prefix. */
inline double
max_abs_diff(const std::vector<double>& a, const std::vector<double>& b)
{
    double m = 0.0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        m = std::max(m, std::abs(a[i] - b[i]));
    }
    return m;
}

/** Table 2's precision metric: -log2(mean absolute difference). */
inline double
precision_bits(const std::vector<double>& got,
               const std::vector<double>& want)
{
    double sum = 0.0;
    const std::size_t n = std::min(got.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) sum += std::abs(got[i] - want[i]);
    const double mean = sum / static_cast<double>(std::max<std::size_t>(n, 1));
    return -std::log2(std::max(mean, 1e-300));
}

/** Fraction of runs where both vectors share the argmax (top-1 agreement). */
inline bool
same_argmax(const std::vector<double>& a, const std::vector<double>& b)
{
    std::size_t ia = 0, ib = 0;
    for (std::size_t i = 1; i < a.size(); ++i) {
        if (a[i] > a[ia]) ia = i;
    }
    for (std::size_t i = 1; i < b.size(); ++i) {
        if (b[i] > b[ib]) ib = i;
    }
    return ia == ib;
}

inline void
print_header(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

}  // namespace orion::bench

#endif  // ORION_BENCH_BENCH_UTIL_H_
