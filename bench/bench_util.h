#ifndef ORION_BENCH_BENCH_UTIL_H_
#define ORION_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the per-table/figure benchmark binaries. Each binary
 * regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints it in a comparable layout.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/core/orion.h"

namespace orion::bench {

/** Parsed command-line / environment options shared by every bench. */
struct BenchOptions {
    /**
     * Smoke mode: each experiment runs one tiny iteration so CI can verify
     * every binary end to end without multi-minute runtimes. Enabled by
     * `--smoke` or a nonempty $ORION_BENCH_SMOKE.
     */
    bool smoke = false;
    /** `--threads N`: sets core num_threads for the whole run (0 = all). */
    int num_threads = -1;  // -1 = leave the global config untouched
};

inline BenchOptions&
options()
{
    static BenchOptions opts;
    return opts;
}

/**
 * Parses --smoke / --threads N (and $ORION_BENCH_SMOKE) and applies the
 * thread knob to the global config. Call first thing in every main().
 */
inline void
init(int argc, char** argv)
{
    BenchOptions& opts = options();
    if (const char* env = std::getenv("ORION_BENCH_SMOKE")) {
        if (env[0] != '\0' && std::strcmp(env, "0") != 0) opts.smoke = true;
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            opts.num_threads = std::atoi(argv[++i]);
        }
        // Unrecognized arguments are left for the binary's own flags.
    }
    if (opts.num_threads >= 0) core::set_num_threads(opts.num_threads);
    if (opts.smoke) std::printf("[smoke mode: tiny single iterations]\n");
}

inline bool
smoke()
{
    return options().smoke;
}

/** Repetition count: `full` normally, 1 in smoke mode. */
inline int
reps(int full)
{
    return smoke() ? 1 : full;
}

inline std::vector<double>
random_vector(std::size_t n, double range = 1.0, u64 seed = 42)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-range, range);
    std::vector<double> out(n);
    for (double& x : out) x = dist(rng);
    return out;
}

/** Wall-clock seconds of one call. */
template <typename F>
double
time_once(F&& f)
{
    const auto t0 = std::chrono::steady_clock::now();
    f();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Median wall-clock seconds over `reps` calls. */
template <typename F>
double
time_median(int reps, F&& f)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) times.push_back(time_once(f));
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

/** Max |a - b| over the common prefix. */
inline double
max_abs_diff(const std::vector<double>& a, const std::vector<double>& b)
{
    double m = 0.0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        m = std::max(m, std::abs(a[i] - b[i]));
    }
    return m;
}

/** Table 2's precision metric: -log2(mean absolute difference). */
inline double
precision_bits(const std::vector<double>& got,
               const std::vector<double>& want)
{
    double sum = 0.0;
    const std::size_t n = std::min(got.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) sum += std::abs(got[i] - want[i]);
    const double mean = sum / static_cast<double>(std::max<std::size_t>(n, 1));
    return -std::log2(std::max(mean, 1e-300));
}

/** Fraction of runs where both vectors share the argmax (top-1 agreement). */
inline bool
same_argmax(const std::vector<double>& a, const std::vector<double>& b)
{
    std::size_t ia = 0, ib = 0;
    for (std::size_t i = 1; i < a.size(); ++i) {
        if (a[i] > a[ia]) ia = i;
    }
    for (std::size_t i = 1; i < b.size(); ++i) {
        if (b[i] > b[ib]) ib = i;
    }
    return ia == ib;
}

inline void
print_header(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

}  // namespace orion::bench

#endif  // ORION_BENCH_BENCH_UTIL_H_
