#ifndef ORION_BENCH_BENCH_UTIL_H_
#define ORION_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the per-table/figure benchmark binaries. Each binary
 * regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints it in a comparable layout.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/core/orion.h"
#include "src/core/telemetry.h"

namespace orion::bench {

/** Parsed command-line / environment options shared by every bench. */
struct BenchOptions {
    /**
     * Smoke mode: each experiment runs one tiny iteration so CI can verify
     * every binary end to end without multi-minute runtimes. Enabled by
     * `--smoke` or a nonempty $ORION_BENCH_SMOKE.
     */
    bool smoke = false;
    /** `--threads N`: sets core num_threads for the whole run (0 = all). */
    int num_threads = -1;  // -1 = leave the global config untouched
    /**
     * `--json <path>`: write a machine-readable report of every metric
     * recorded via json_metric() on exit. This is the repo's perf
     * trajectory: CI uploads one BENCH_<name>.json per benchmark run.
     */
    std::string json_path;
};

inline BenchOptions&
options()
{
    static BenchOptions opts;
    return opts;
}

namespace detail {

/** Accumulated state of the JSON report (metrics in recording order). */
struct JsonReport {
    std::string bench_name;
    std::vector<std::pair<std::string, double>> metrics;
    std::chrono::steady_clock::time_point start;
};

inline JsonReport&
json_report()
{
    static JsonReport report;
    return report;
}

/** Minimal JSON string escape (quotes, backslashes, control chars). */
inline std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out.push_back(' ');
        } else {
            out.push_back(c);
        }
    }
    return out;
}

/** Best-effort commit id: $ORION_GIT_SHA, then $GITHUB_SHA, else unknown. */
inline std::string
git_sha()
{
    for (const char* var : {"ORION_GIT_SHA", "GITHUB_SHA"}) {
        if (const char* env = std::getenv(var)) {
            if (env[0] != '\0') return env;
        }
    }
    return "unknown";
}

inline void
write_json_report()
{
    const BenchOptions& opts = options();
    if (opts.json_path.empty()) return;
    const JsonReport& report = json_report();
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     opts.json_path.c_str());
        return;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      report.start)
            .count();
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n",
                 json_escape(report.bench_name).c_str());
    std::fprintf(f, "  \"git_sha\": \"%s\",\n",
                 json_escape(git_sha()).c_str());
    std::fprintf(f, "  \"threads\": %d,\n", core::ThreadPool::global_threads());
    std::fprintf(f, "  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
    std::fprintf(f, "  \"wall_time_s\": %.6f,\n", wall);
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < report.metrics.size(); ++i) {
        std::fprintf(f, "%s\n    \"%s\": %.9g", i == 0 ? "" : ",",
                     json_escape(report.metrics[i].first).c_str(),
                     report.metrics[i].second);
    }
    // The process registry's snapshot rides along, so BENCH_*.json and a
    // live server's metrics_text() share one schema (op counters, arena,
    // stage histograms, and the bench.* mirrors of the rows above).
    std::fprintf(f, "\n  },\n  \"telemetry\": {");
    const std::map<std::string, double> snap =
        telemetry::Registry::global().snapshot();
    std::size_t t = 0;
    for (const auto& [name, value] : snap) {
        std::fprintf(f, "%s\n    \"%s\": %.9g", t++ == 0 ? "" : ",",
                     json_escape(name).c_str(), value);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("[json report: %s]\n", opts.json_path.c_str());
}

}  // namespace detail

/**
 * Records one named metric (typically a latency in ms) for the JSON
 * report. No-op unless `--json <path>` was passed; later records with the
 * same name overwrite the earlier value.
 */
inline void
json_metric(const std::string& name, double value)
{
    // Mirror every bench metric into the process registry under bench.*:
    // the registry is the shared schema, the JSON report a view of it.
    telemetry::Registry::global().gauge("bench." + name).set(value);
    if (options().json_path.empty()) return;
    for (auto& [k, v] : detail::json_report().metrics) {
        if (k == name) {
            v = value;
            return;
        }
    }
    detail::json_report().metrics.emplace_back(name, value);
}

/**
 * Parses --smoke / --threads N / --json PATH (and $ORION_BENCH_SMOKE),
 * applies the thread knob to the global config, and registers the exit-time
 * JSON report writer. Call first thing in every main().
 */
inline void
init(int argc, char** argv)
{
    BenchOptions& opts = options();
    if (const char* env = std::getenv("ORION_BENCH_SMOKE")) {
        if (env[0] != '\0' && std::strcmp(env, "0") != 0) opts.smoke = true;
    }
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            opts.smoke = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            opts.num_threads = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            opts.json_path = argv[++i];
        }
        // Unrecognized arguments are left for the binary's own flags.
    }
    if (opts.num_threads >= 0) core::set_num_threads(opts.num_threads);
    if (opts.smoke) std::printf("[smoke mode: tiny single iterations]\n");
    if (!opts.json_path.empty()) {
        detail::JsonReport& report = detail::json_report();
        report.start = std::chrono::steady_clock::now();
        const char* slash = (argc > 0) ? std::strrchr(argv[0], '/') : nullptr;
        report.bench_name =
            (argc > 0) ? (slash ? slash + 1 : argv[0]) : "unknown";
        std::atexit(detail::write_json_report);
    }
}

inline bool
smoke()
{
    return options().smoke;
}

/** Repetition count: `full` normally, 1 in smoke mode. */
inline int
reps(int full)
{
    return smoke() ? 1 : full;
}

inline std::vector<double>
random_vector(std::size_t n, double range = 1.0, u64 seed = 42)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-range, range);
    std::vector<double> out(n);
    for (double& x : out) x = dist(rng);
    return out;
}

/** Wall-clock seconds of one call. */
template <typename F>
double
time_once(F&& f)
{
    const auto t0 = std::chrono::steady_clock::now();
    f();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Median wall-clock seconds over `reps` calls. */
template <typename F>
double
time_median(int reps, F&& f)
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) times.push_back(time_once(f));
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

/** Max |a - b| over the common prefix. */
inline double
max_abs_diff(const std::vector<double>& a, const std::vector<double>& b)
{
    double m = 0.0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        m = std::max(m, std::abs(a[i] - b[i]));
    }
    return m;
}

/** Table 2's precision metric: -log2(mean absolute difference). */
inline double
precision_bits(const std::vector<double>& got,
               const std::vector<double>& want)
{
    double sum = 0.0;
    const std::size_t n = std::min(got.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) sum += std::abs(got[i] - want[i]);
    const double mean = sum / static_cast<double>(std::max<std::size_t>(n, 1));
    return -std::log2(std::max(mean, 1e-300));
}

/** Fraction of runs where both vectors share the argmax (top-1 agreement). */
inline bool
same_argmax(const std::vector<double>& a, const std::vector<double>& b)
{
    std::size_t ia = 0, ib = 0;
    for (std::size_t i = 1; i < a.size(); ++i) {
        if (a[i] > a[ia]) ia = i;
    }
    for (std::size_t i = 1; i < b.size(); ++i) {
        if (b[i] > b[ib]) ib = i;
    }
    return ia == ib;
}

inline void
print_header(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

}  // namespace orion::bench

#endif  // ORION_BENCH_BENCH_UTIL_H_
