/**
 * @file
 * Table 2: the main benchmark suite. One row per network/activation:
 * parameters, FLOPs, ciphertext rotations, activation depth, bootstrap
 * count, precision (bits), and inference time.
 *
 * Reproduction notes (see DESIGN.md, "Substitutions"):
 *  - Datasets and trained weights are unavailable offline, so the paper's
 *    accuracy columns are replaced by FHE-vs-cleartext top-1 agreement on
 *    synthetic inputs; the precision column keeps the paper's definition.
 *  - MNIST rows run under *real* RNS-CKKS end to end (they fit functional
 *    parameters); larger rows use the functional simulation backend with
 *    rotation/bootstrap counts from the compiler and latency from the
 *    paper-scale cost model (N = 2^16).
 *  - Our rescale-eager polynomial evaluator consumes ~1 extra level per
 *    activation stage vs the paper's accounting, so depth and bootstrap
 *    counts run somewhat higher at the same L_eff (see EXPERIMENTS.md).
 */

#include "bench/bench_util.h"

using namespace orion;

namespace {

struct Row {
    std::string model;
    bool real_fhe;  // run under real CKKS (MNIST-sized)
    const char* paper;  // "rots/actdepth/boots/prec/time" from Table 2
};

void
run_row(const Row& row)
{
    const nn::Network net = nn::make_model(row.model);
    const u64 in_size = net.shape_of(net.input_id()).size();

    // Paper-scale simulation-only session (2^15 slots, l_eff 10).
    Session session = Session::simulation();
    core::CompileOptions opt;
    opt.structural_only = true;
    opt.calibration_samples = in_size > 100000 ? 2 : 8;
    const core::CompiledNetwork& cn = session.compile(net, opt);

    // Functional run: simulation with bootstrap noise; top-1 agreement and
    // precision vs the cleartext network.
    const int trials = bench::smoke() ? 1 : (in_size > 100000 ? 1 : 4);
    int agree = 0;
    double prec = 0.0;
    for (int t = 0; t < trials; ++t) {
        const std::vector<double> x =
            bench::random_vector(in_size, 1.0, 100 + t);
        const core::ExecutionResult r = session.simulate(x);
        const std::vector<double> want = net.forward(x);
        agree += bench::same_argmax(r.output, want) ? 1 : 0;
        prec += bench::precision_bits(r.output, want);
    }
    prec /= trials;

    double real_seconds = -1.0;
    double real_prec = 0.0;
    if (row.real_fhe) {
        // Real end-to-end RNS-CKKS inference at functional parameters.
        Session fhe = Session::with_params(
            ckks::CkksParams::network(u64(1) << 13, 8), /*l_eff=*/6);
        core::CompileOptions fopt;
        fopt.calibration_samples = opt.calibration_samples;
        fhe.compile(net, fopt);
        const std::vector<double> x =
            bench::random_vector(in_size, 1.0, 200);
        const core::ExecutionResult r = fhe.run(x);
        real_seconds = r.wall_seconds;
        real_prec = bench::precision_bits(r.output, net.forward(x));
    }

    std::printf(
        "%-14s %7.2fM %8.2fM %8llu %6d %7llu %7.1fb %3d/%d %10.1f %s\n",
        row.model.c_str(), net.param_count() / 1e6, net.flop_count() / 1e6,
        static_cast<unsigned long long>(cn.total_rotations),
        cn.total_mult_depth,
        static_cast<unsigned long long>(cn.num_bootstraps), prec, agree,
        trials, cn.modeled_latency,
        real_seconds >= 0
            ? (std::string("| real FHE: ") + std::to_string(real_seconds) +
               " s, " + std::to_string(real_prec) + " b")
                  .c_str()
            : "");
    std::printf("   paper: %s\n", row.paper);
    std::fflush(stdout);
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header("Table 2: main results across networks/datasets");
    std::printf("%-14s %8s %9s %8s %6s %7s %8s %5s %10s\n", "model",
                "params", "FLOPs", "#rots", "depth", "#boots", "prec",
                "top1", "model t(s)");

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick") quick = true;
    }

    std::vector<Row> rows = {
        {"mlp", true, "rots 70, depth 5, boots 0, prec 4.6b, 0.29s"},
        {"lola", true, "rots 73, depth 5, boots 0, prec 4.8b, 0.23s"},
        {"lenet5", true, "rots 282, depth 7, boots 0, prec 10.4b, 2.93s"},
        {"alexnet-relu", false,
         "rots 1470, act depth 109, boots 15, prec 4.3b, 337s"},
        {"alexnet-silu", false,
         "rots 1470, act depth 60, boots 7, prec 7.2b, 190s"},
        {"vgg16-relu", false,
         "rots 1771, act depth 227, boots 28, prec 5.1b, 589s"},
        {"vgg16-silu", false,
         "rots 1771, act depth 137, boots 14, prec 9.7b, 397s"},
        {"resnet20-relu", false,
         "rots 836, act depth 287, boots 37, prec 4.8b, 618s"},
        {"resnet20-silu", false,
         "rots 836, act depth 154, boots 19, prec 13.6b, 301s"},
    };
    if (bench::smoke()) {
        // One real-FHE MNIST row and one structural CIFAR row cover both
        // backends in seconds.
        rows = {rows[0], rows[7]};
    }
    if (!quick && !bench::smoke()) {
        rows.push_back({"mobilenet", false,
                        "rots 2508, act depth 218, boots 42, prec 8.9b, "
                        "892s"});
        rows.push_back({"resnet18", false,
                        "rots 10838, act depth 138, boots 61, prec 8.6b, "
                        "1447s"});
        rows.push_back({"resnet34", false,
                        "rots 48108, act depth 267, boots 146, prec 8.6b, "
                        "14338s"});
        rows.push_back({"resnet50", false,
                        "rots 143217, act depth 395, boots 351, prec 8.9b, "
                        "32324s"});
    }

    for (const Row& row : rows) run_row(row);

    std::printf("\nNotes: #rots/#boots are compiler-counted; 'model t' is "
                "the paper-scale (N=2^16,\nsingle-thread) cost-model "
                "latency; precision/top-1 from the functional backend\n"
                "(real CKKS for MNIST rows). Accuracy columns require the "
                "original datasets (see DESIGN.md).\n");
    return 0;
}
