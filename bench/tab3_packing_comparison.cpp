/**
 * @file
 * Table 3: ciphertext rotation counts, Lee et al. vs Orion, on the CIFAR
 * networks (ResNet-20, ResNet-110, VGG-16, AlexNet).
 *
 * Paper values: 1382/836 = 1.65x (ResNet-20), 7622/4676 = 1.64x
 * (ResNet-110), 9214/1771 = 5.20x (VGG-16), 9422/1470 = 6.41x (AlexNet).
 * The reproduction target is the *shape*: Orion wins everywhere and the
 * improvement grows with model width (VGG/AlexNet >> ResNets).
 */

#include "bench/bench_util.h"
#include "src/baselines/lee_packing.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header("Table 3: rotation counts, Lee et al. vs Orion");

    const u64 slots = 1u << 15;  // paper: N = 2^16, n = 2^15 slots
    struct Row {
        const char* name;
        const char* paper;
    };
    std::vector<std::pair<std::string, std::string>> rows = {
        {"resnet20-relu", "1382 -> 836 (1.65x)"},
        {"resnet110-relu", "7622 -> 4676 (1.64x)"},
        {"vgg16-relu", "9214 -> 1771 (5.20x)"},
        {"alexnet-relu", "9422 -> 1470 (6.41x)"},
    };
    if (bench::smoke()) rows.resize(1);

    std::printf("%-16s %12s %12s %10s   %s\n", "network", "no-BSGS",
                "Orion", "improve", "(paper: Lee et al. -> Orion)");
    for (const auto& [name, paper] : rows) {
        const nn::Network net = nn::make_model(name);
        const auto lee = baselines::lee_network_counts(net, slots);

        core::CompileOptions opt;
        opt.slots = slots;
        opt.l_eff = 10;
        opt.structural_only = true;
        opt.calibration_samples = 1;
        const core::CompiledNetwork cn = core::compile(net, opt);

        std::printf("%-16s %12llu %12llu %9.2fx   %s\n", name.c_str(),
                    static_cast<unsigned long long>(lee.rotations),
                    static_cast<unsigned long long>(cn.total_rotations),
                    static_cast<double>(lee.rotations) /
                        static_cast<double>(cn.total_rotations),
                    paper.c_str());
        std::fflush(stdout);
    }
    std::printf(
        "\nNotes: the baseline column counts the packed-SISO lineage "
        "(diagonal method, no BSGS)\nthat Lee et al. build on; their "
        "optimized parallel packing shares rotations across\nchannels, so "
        "the paper's measured improvement (1.6x-6.4x) sits between Orion's "
        "counts\nand this upper bound. Orion's absolute counts are "
        "directly comparable to the paper's.\n");
    return 0;
}
