/**
 * @file
 * Microbenchmark of the public-key bootstrap circuit: the wall-clock
 * split across ModRaise / CoeffToSlot / EvalMod / SlotToCoeff, the
 * round-trip precision, key material sizes, and a cross-check of the
 * measured latency against the cost model's Figure-1c analytic schedule
 * (the same model bootstrap placement optimizes with).
 */

#include "bench/bench_util.h"
#include "src/core/telemetry.h"

using namespace orion;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "bench_bootstrap: public-key CtS -> EvalMod -> StC split");

    // --paper: the N = 2^16 paper-scale ring (CkksParams::bootstrap_full)
    // instead of the N = 2^11 toy — a real measured full-size bootstrap,
    // minutes of keygen + one pass rather than a microbenchmark loop.
    bool paper = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper") == 0) paper = true;
    }
    const int l_eff = paper ? 4 : 3;
    ckks::CkksParams params =
        paper ? ckks::CkksParams::bootstrap_full(l_eff)
              : ckks::CkksParams::bootstrap_toy(l_eff);
    ckks::BootstrapParams opts{};
    if (paper) {
        // At N = 2^16 the special-FFT depth is 15; two collapsed stages
        // would mean 2^8-diagonal matrices whose quantization noise eats
        // ~7 bits of the round-trip. Three stages keep the per-stage
        // radix at the toy point's 2^5 (l_boot 15, still the paper's
        // Table-1 shape) and need fewer BSGS rotations overall.
        opts.cts_levels = 3;
        opts.stc_levels = 3;
        params.num_scale_primes += 2;
    }
    const ckks::Context ctx(params);
    const ckks::Encoder encoder(ctx);

    const double t_plan = bench::time_once([&] {
        (void)ckks::BootstrapPlan::build(params, opts);
    });
    ckks::KeyGenerator keygen(ctx, /*seed=*/7);
    const ckks::PublicKey pk = keygen.make_public_key();
    const ckks::KswitchKey relin = keygen.make_relin_key();
    const ckks::Bootstrapper boot(ctx, encoder, l_eff, opts);
    const std::vector<ckks::GaloisKeyRequest> requests =
        boot.galois_requests();
    ckks::GaloisKeys galois;
    const double t_keys = bench::time_once([&] {
        galois = keygen.make_galois_keys(
            std::span<const ckks::GaloisKeyRequest>(requests), true,
            boot.conjugation_level());
    });
    ckks::Encryptor encryptor(ctx, pk);
    ckks::Decryptor decryptor(ctx, keygen.secret_key());
    ckks::Evaluator eval(ctx, encoder);
    eval.set_relin_key(&relin);
    eval.set_galois_keys(&galois);

    const ckks::BootstrapPlan& plan = boot.plan();
    std::printf("\nparameters: N = 2^%d, log Delta = %d, log q0 = %d, "
                "secret weight %d\n",
                ctx.log_degree(), params.log_scale, params.first_prime_bits,
                params.secret_weight);
    std::printf("circuit: l_boot %d = CtS %d + EvalMod %d + StC %d | "
                "K = %d, sine degree %d, double angle %d\n",
                plan.depth, plan.params.cts_levels, plan.eval_depth,
                plan.params.stc_levels, plan.params.k_range,
                plan.eval_degree, plan.params.double_angle);
    std::printf("keys: %zu Galois elements (level-pruned), %.1f MB | "
                "plan %.0f ms, keygen %.0f ms\n",
                galois.keys.size(),
                static_cast<double>(galois.byte_size()) / (1024 * 1024),
                t_plan * 1e3, t_keys * 1e3);
    bench::json_metric("log_degree", ctx.log_degree());
    bench::json_metric("l_eff", l_eff);
    bench::json_metric("l_boot", plan.depth);
    bench::json_metric("eval_degree", plan.eval_degree);
    bench::json_metric("galois_mb",
                       static_cast<double>(galois.byte_size()) /
                           (1024 * 1024));

    const u64 n = ctx.slot_count();
    const std::vector<double> input = bench::random_vector(n, 1.0, 5);
    const ckks::Ciphertext ct =
        encryptor.encrypt(encoder.encode(input, 0, ctx.scale()));

    // One pass at paper scale (the single-shot wall-clock IS the result);
    // median of 5 at toy scale.
    const int iters = paper ? 1 : bench::reps(5);
    ckks::BootstrapStats split{};
    ckks::Ciphertext out;
    const double total = bench::time_median(iters, [&] {
        out = boot.bootstrap(eval, ct, &split);
    });

    const std::vector<double> got =
        encoder.decode(decryptor.decrypt(out));
    const double bits = bench::precision_bits(got, input);

    std::printf("\n%-14s %10s\n", "stage", "ms");
    std::printf("%-14s %10.2f\n", "mod raise", split.mod_raise_s * 1e3);
    std::printf("%-14s %10.2f\n", "coeff-to-slot",
                split.coeff_to_slot_s * 1e3);
    std::printf("%-14s %10.2f\n", "eval-mod", split.eval_mod_s * 1e3);
    std::printf("%-14s %10.2f\n", "slot-to-coeff",
                split.slot_to_coeff_s * 1e3);
    std::printf("%-14s %10.2f   (precision %.1f bits)\n", "total",
                total * 1e3, bits);

    // Figure-1c cross-check: the analytic schedule the placement solver
    // prices bootstraps with, calibrated like Session::compile does
    // (measured l_boot from the plan).
    core::CostModel cost = core::CostModel::for_params(
        ctx.degree(), params.digit_size, params.digit_size, plan.depth);
    const double modeled = cost.bootstrap(l_eff);
    std::printf("\ncost model: %.2f ms modeled vs %.2f ms measured "
                "(ratio %.2fx; calibrate() closes the constant)\n",
                modeled * 1e3, total * 1e3,
                total / std::max(modeled, 1e-12));

    bench::json_metric("mod_raise_ms", split.mod_raise_s * 1e3);
    bench::json_metric("cts_ms", split.coeff_to_slot_s * 1e3);
    bench::json_metric("eval_mod_ms", split.eval_mod_s * 1e3);
    bench::json_metric("stc_ms", split.slot_to_coeff_s * 1e3);
    bench::json_metric("total_ms", total * 1e3);
    bench::json_metric("modeled_ms", modeled * 1e3);
    bench::json_metric("precision_bits", bits);

    // The same stage split from the process registry's always-on stage
    // histograms (every bootstrap observes them), the schema a live
    // server's metrics_text() scrape exposes.
    telemetry::Registry& reg = telemetry::Registry::global();
    bench::json_metric("cts_p50_ms",
                       1e3 * reg.histogram("boot.cts.seconds")
                                 .percentile(50.0));
    bench::json_metric("eval_mod_p50_ms",
                       1e3 * reg.histogram("boot.eval_mod.seconds")
                                 .percentile(50.0));
    bench::json_metric("stc_p50_ms",
                       1e3 * reg.histogram("boot.stc.seconds")
                                 .percentile(50.0));

    if (bits < 15.0) {
        std::fprintf(stderr, "FAIL: bootstrap precision %.1f bits < 15\n",
                     bits);
        return 1;
    }
    return 0;
}
