/**
 * @file
 * Serving throughput/latency benchmark: a tiny square-activation MLP
 * behind the InferenceServer, swept over scheduler concurrency
 * (max_inflight). Reports requests/second and p50/p95 client-observed
 * latency per concurrency level, with `--json` metrics for the CI perf
 * trajectory. Two sessions with distinct keys keep the executor pool's
 * key rebinding on the measured path.
 */

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/serve.h"

using namespace orion;

namespace {

double
percentile(std::vector<double> v, double p)
{
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::print_header(
        "bench_serve: encrypted-inference throughput vs concurrency");

    const ckks::CkksParams params = ckks::CkksParams::toy();
    const ckks::Context ctx(params);
    // The same micro model the serving tests validate (src/nn/models.h).
    const nn::Network net = nn::make_micro_mlp();
    core::CompileOptions opt;
    opt.slots = ctx.slot_count();
    opt.l_eff = 4;
    opt.cost = core::CostModel::for_params(ctx.degree(), params.digit_size,
                                           params.digit_size, 3);
    opt.calibration_samples = 3;
    const core::CompiledNetwork cn = core::compile(net, opt);
    const auto prepared =
        std::make_shared<const core::PreparedProgram>(cn, ctx);

    // Two sessions: half the requests go through each key bundle.
    serve::ServeClient alice(cn, ctx, /*seed=*/1001);
    serve::ServeClient bob(cn, ctx, /*seed=*/2002);

    const std::vector<int> concurrency =
        bench::smoke() ? std::vector<int>{4} : std::vector<int>{1, 2, 4, 8};
    const int per_worker = bench::reps(4);

    std::printf("\n%-12s %10s %10s %10s %12s %12s\n", "max_inflight",
                "requests", "p50 ms", "p95 ms", "req/s",
                "queue p95 ms");
    for (const int c : concurrency) {
        serve::ServeOptions sopts;
        sopts.max_inflight = c;
        sopts.queue_capacity = 256;
        serve::InferenceServer server(cn, ctx, sopts, prepared);
        alice.set_session_id(server.register_session(alice.key_bundle()));
        bob.set_session_id(server.register_session(bob.key_bundle()));

        const int requests = c * per_worker;
        std::vector<std::future<serve::ServeReply>> futures;
        std::vector<std::chrono::steady_clock::time_point> submitted;
        futures.reserve(static_cast<std::size_t>(requests));
        submitted.reserve(static_cast<std::size_t>(requests));

        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < requests; ++r) {
            serve::ServeClient& client = (r % 2 == 0) ? alice : bob;
            const std::vector<double> input = bench::random_vector(
                64, 1.0, 400 + static_cast<u64>(r));
            submitted.push_back(std::chrono::steady_clock::now());
            futures.push_back(server.submit(client.make_request(input)));
        }
        std::vector<double> latency_ms, queue_ms;
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const serve::ServeReply reply = futures[i].get();
            latency_ms.push_back(
                1e3 *
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - submitted[i])
                    .count());
            queue_ms.push_back(1e3 * reply.stats.queue_wait_s);
        }
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const serve::ServerStats stats = server.stats();
        ORION_CHECK(stats.completed == static_cast<u64>(requests) &&
                        stats.failed == 0,
                    "bench requests failed");

        const double p50 = percentile(latency_ms, 0.50);
        const double p95 = percentile(latency_ms, 0.95);
        const double rps = static_cast<double>(requests) / wall;
        std::printf("%-12d %10d %10.1f %10.1f %12.2f %12.1f\n", c, requests,
                    p50, p95, rps, percentile(queue_ms, 0.95));

        const std::string prefix = "c" + std::to_string(c) + "/";
        bench::json_metric(prefix + "throughput_rps", rps);
        bench::json_metric(prefix + "p50_ms", p50);
        bench::json_metric(prefix + "p95_ms", p95);
        bench::json_metric(prefix + "queue_p95_ms",
                           percentile(queue_ms, 0.95));
        bench::json_metric(prefix + "peak_inflight",
                           static_cast<double>(stats.peak_inflight));
        bench::json_metric(
            prefix + "mean_exec_ms",
            1e3 * stats.total_execute_s /
                static_cast<double>(std::max<u64>(stats.completed, 1)));
    }
    std::printf("\n(two sessions with distinct key bundles; kernel threads "
                "per request = 1,\n scaling comes from request-level "
                "parallelism across the worker pool)\n");
    return 0;
}
